//! Offline stand-in for the real `serde_derive` crate.
//!
//! The build container has no network access, so the registry `serde_derive`
//! (and its `syn`/`quote` dependency tree) cannot be fetched. This crate
//! re-implements the two derive macros the workspace uses with a hand-rolled
//! token walk over `proc_macro::TokenStream`:
//!
//! * `#[derive(Serialize)]` generates a real, field-by-field
//!   [`serde::Serialize`] implementation producing the shim's JSON `Value`
//!   tree, following serde's data model (structs as objects, newtype structs
//!   as their inner value, enums externally tagged).
//! * `#[derive(Deserialize)]` generates a compile-compatibility stub that
//!   returns an `unsupported` error at runtime. Nothing in this workspace
//!   deserializes a derived type (only primitives and `Vec<i32>` round-trip
//!   through `serde_json::from_str`), so the stub keeps every existing
//!   `derive(Deserialize)` attribute compiling without dragging in a full
//!   deserializer framework.
//!
//! Supported input shapes: non-generic and simply-generic `struct`s (named,
//! tuple, unit) and `enum`s (unit, tuple, and struct variants, no
//! discriminants), which covers every type in this repository. Unsupported
//! shapes fail the build with a `compile_error!`, not silently.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Body {
    /// Named-field struct: field identifiers in declaration order.
    Named(Vec<String>),
    /// Tuple struct with the given arity.
    Tuple(usize),
    /// Unit struct.
    Unit,
    /// Enum: (variant name, shape).
    Enum(Vec<(String, VariantShape)>),
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Input {
    name: String,
    /// Bare type-parameter identifiers (no bounds), e.g. `["T"]`.
    generics: Vec<String>,
    body: Body,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(msg) => {
            return format!("compile_error!(\"serde shim derive: {msg}\");")
                .parse()
                .expect("error tokens parse")
        }
    };
    let code = match mode {
        Mode::Serialize => gen_serialize(&parsed),
        Mode::Deserialize => gen_deserialize(&parsed),
    };
    code.parse().expect("generated impl parses")
}

// ---------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

fn is_ident(t: &TokenTree, s: &str) -> bool {
    matches!(t, TokenTree::Ident(i) if i.to_string() == s)
}

/// Advances past attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
fn skip_attrs_and_vis(toks: &[TokenTree], mut i: usize) -> usize {
    loop {
        if i < toks.len() && is_punct(&toks[i], '#') {
            i += 1; // the `[...]` group
            if i < toks.len() && matches!(&toks[i], TokenTree::Group(_)) {
                i += 1;
            }
            continue;
        }
        if i < toks.len() && is_ident(&toks[i], "pub") {
            i += 1;
            if i < toks.len()
                && matches!(&toks[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1; // pub(crate) / pub(super)
            }
            continue;
        }
        return i;
    }
}

/// Skips a type (or expression) until a `,` at angle-bracket depth 0,
/// returning the index just past the comma (or `toks.len()`).
fn skip_to_comma(toks: &[TokenTree], mut i: usize) -> usize {
    let mut depth: i32 = 0;
    let mut prev_dash = false;
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Punct(p) => {
                let c = p.as_char();
                if c == '<' {
                    depth += 1;
                } else if c == '>' && !prev_dash {
                    depth -= 1;
                } else if c == ',' && depth == 0 {
                    return i + 1;
                }
                prev_dash = c == '-';
            }
            _ => prev_dash = false,
        }
        i += 1;
    }
    i
}

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&toks, 0);

    let is_enum = if is_ident(&toks[i], "struct") {
        false
    } else if is_ident(&toks[i], "enum") {
        true
    } else {
        return Err("expected `struct` or `enum`".into());
    };
    i += 1;

    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        _ => return Err("expected type name".into()),
    };
    i += 1;

    // Generics: collect bare parameter names at depth 1.
    let mut generics = Vec::new();
    if i < toks.len() && is_punct(&toks[i], '<') {
        let mut depth = 1i32;
        let mut at_param_start = true;
        let mut prev_lifetime = false;
        i += 1;
        while i < toks.len() && depth > 0 {
            match &toks[i] {
                TokenTree::Punct(p) => {
                    match p.as_char() {
                        '<' => depth += 1,
                        '>' => depth -= 1,
                        ',' if depth == 1 => at_param_start = true,
                        _ => {}
                    }
                    prev_lifetime = p.as_char() == '\'';
                }
                TokenTree::Ident(id) => {
                    if depth == 1
                        && at_param_start
                        && !prev_lifetime
                        && !is_ident(&toks[i], "const")
                    {
                        generics.push(id.to_string());
                        at_param_start = false;
                    }
                    prev_lifetime = false;
                }
                _ => prev_lifetime = false,
            }
            i += 1;
        }
    }

    // Body: the next group (struct braces/parens or enum braces); a bare `;`
    // means a unit struct. A `where` clause would sit between generics and
    // the body — none exist in this workspace, so reject loudly.
    if i < toks.len() && is_ident(&toks[i], "where") {
        return Err(format!("`where` clauses unsupported (type {name})"));
    }
    let body = if is_enum {
        match &toks[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(&g.stream().into_iter().collect::<Vec<_>>())?)
            }
            _ => return Err(format!("expected enum body for {name}")),
        }
    } else {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Body::Named(
                parse_named_fields(&g.stream().into_iter().collect::<Vec<_>>())?,
            ),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Body::Tuple(
                count_tuple_fields(&g.stream().into_iter().collect::<Vec<_>>()),
            ),
            Some(t) if is_punct(t, ';') => Body::Unit,
            None => Body::Unit,
            _ => return Err(format!("unsupported struct body for {name}")),
        }
    };

    Ok(Input {
        name,
        generics,
        body,
    })
}

fn parse_named_fields(toks: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs_and_vis(toks, i);
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            t => return Err(format!("expected field name, found `{t}`")),
        };
        i += 1;
        if i >= toks.len() || !is_punct(&toks[i], ':') {
            return Err(format!("expected `:` after field `{name}`"));
        }
        i = skip_to_comma(toks, i + 1);
        out.push(name);
    }
    Ok(out)
}

fn count_tuple_fields(toks: &[TokenTree]) -> usize {
    let mut n = 0;
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs_and_vis(toks, i);
        if i >= toks.len() {
            break;
        }
        n += 1;
        i = skip_to_comma(toks, i);
    }
    n
}

fn parse_variants(toks: &[TokenTree]) -> Result<Vec<(String, VariantShape)>, String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs_and_vis(toks, i);
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            t => return Err(format!("expected variant name, found `{t}`")),
        };
        i += 1;
        let shape = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_tuple_fields(
                    &g.stream().into_iter().collect::<Vec<_>>(),
                ))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Named(parse_named_fields(
                    &g.stream().into_iter().collect::<Vec<_>>(),
                )?)
            }
            _ => VariantShape::Unit,
        };
        if let Some(t) = toks.get(i) {
            if is_punct(t, '=') {
                return Err(format!("enum discriminants unsupported (variant {name})"));
            }
        }
        // Skip to the next variant.
        i = skip_to_comma(toks, i);
        out.push((name, shape));
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Code generation (string assembly; no quote available offline).
// ---------------------------------------------------------------------

/// `impl<T: Bound> Trait for Name<T>` header pieces: (impl-generics, ty-generics).
fn generics_for(input: &Input, bound: &str) -> (String, String) {
    if input.generics.is_empty() {
        return (String::new(), String::new());
    }
    let impl_g = input
        .generics
        .iter()
        .map(|g| format!("{g}: {bound}"))
        .collect::<Vec<_>>()
        .join(", ");
    let ty_g = input.generics.join(", ");
    (format!("<{impl_g}>"), format!("<{ty_g}>"))
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let (impl_g, ty_g) = generics_for(input, "::serde::Serialize");
    let body = match &input.body {
        Body::Named(fields) => {
            let mut pushes = String::new();
            for f in fields {
                pushes.push_str(&format!(
                    "__fields.push((::std::string::String::from(\"{f}\"), \
                     ::serde::Serialize::to_value(&self.{f})));\n"
                ));
            }
            format!(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, \
                 ::serde::value::Value)> = ::std::vec::Vec::new();\n{pushes}\
                 ::serde::value::Value::Object(__fields)"
            )
        }
        Body::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::Tuple(n) => {
            let elems = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::value::Value::Array(vec![{elems}])")
        }
        Body::Unit => "::serde::value::Value::Null".to_string(),
        Body::Enum(variants) => {
            let mut arms = String::new();
            for (v, shape) in variants {
                match shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{v} => ::serde::value::Value::String(\
                         ::std::string::String::from(\"{v}\")),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let binders = (0..*n)
                            .map(|k| format!("__f{k}"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let elems = (0..*n)
                                .map(|k| format!("::serde::Serialize::to_value(__f{k})"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!("::serde::value::Value::Array(vec![{elems}])")
                        };
                        arms.push_str(&format!(
                            "{name}::{v}({binders}) => ::serde::value::Value::Object(vec![(\
                             ::std::string::String::from(\"{v}\"), {inner})]),\n"
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let binders = fields.join(", ");
                        let pushes = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), \
                                     ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect::<Vec<_>>()
                            .join(", ");
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binders} }} => ::serde::value::Value::Object(vec![(\
                             ::std::string::String::from(\"{v}\"), \
                             ::serde::value::Value::Object(vec![{pushes}]))]),\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{impl_g} ::serde::Serialize for {name}{ty_g} {{\n\
             fn to_value(&self) -> ::serde::value::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    // The stub never touches field values, so type parameters need no bounds
    // beyond what the struct itself requires.
    let (impl_g, ty_g) = if input.generics.is_empty() {
        (String::new(), String::new())
    } else {
        let g = input.generics.join(", ");
        (format!("<{g}>"), format!("<{g}>"))
    };
    format!(
        "#[automatically_derived]\n\
         impl{impl_g} ::serde::Deserialize for {name}{ty_g} {{\n\
             fn from_value(_v: &::serde::value::Value) -> \
             ::std::result::Result<Self, ::serde::de::Error> {{\n\
                 ::std::result::Result::Err(::serde::de::Error::unsupported(\"{name}\"))\n\
             }}\n\
         }}"
    )
}
