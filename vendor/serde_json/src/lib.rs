//! Offline stand-in for the real `serde_json` crate (see `vendor/README.md`).
//!
//! Implements the three entry points the workspace uses —
//! [`to_string_pretty`], [`to_string`], and [`from_str`] — over the vendored
//! serde shim's [`Value`] tree. The pretty printer reproduces the real
//! serde_json's format exactly (2-space indent, `": "` separators, shortest
//! round-trip floats with a trailing `.0` when fractionless) so the golden
//! snapshot files in `tests/golden/` remain byte-identical.

use std::fmt;

pub use serde::value::{Number, Value};

/// Serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}
impl std::error::Error for Error {}

impl From<serde::de::Error> for Error {
    fn from(e: serde::de::Error) -> Self {
        Error(e.0)
    }
}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Never fails for the shim's value tree; the `Result` mirrors the real API.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().render_compact())
}

/// Serializes `value` as pretty-printed JSON (2-space indent).
///
/// # Errors
///
/// Never fails for the shim's value tree; the `Result` mirrors the real API.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().render_pretty(2))
}

/// Parses JSON text into any [`serde::Deserialize`] type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse_value(s)?;
    Ok(T::from_value(&v)?)
}

/// Parses JSON text into the generic [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.bytes.get(self.pos) {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(_) => self.number(),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by the shim's
                            // own printer; reject rather than mis-decode.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("surrogate \\u escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("eof"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(self.err("expected a number"));
        }
        if is_float {
            text.parse::<f64>()
                .map(|f| Value::Number(Number::F(f)))
                .map_err(|_| self.err("invalid float"))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u128>()
                .map(|u| Value::Number(Number::I(-(u as i128))))
                .map_err(|_| self.err("invalid integer"))
        } else {
            text.parse::<u128>()
                .map(|u| Value::Number(Number::U(u)))
                .map_err(|_| self.err("invalid integer"))
        }
    }
}
