//! Offline stand-in for the real `proptest` crate (see `vendor/README.md`).
//!
//! Re-implements the subset of proptest this workspace's property tests
//! use: the [`proptest!`] macro, [`Strategy`] with `prop_map`, integer-range
//! and boolean strategies, [`Just`], tuple strategies, weighted
//! [`prop_oneof!`], `collection::vec`, `option::of`, and the
//! `prop_assert*` macros. Cases are generated from a deterministic
//! per-test seed; there is **no shrinking** — a failing case panics with the
//! generated values visible in the assertion message, which is enough to
//! reproduce (the seed is fixed per test name and case index).

use std::ops::{Range, RangeInclusive};

/// Deterministic generator handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds the generator for one test case.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// FNV-1a over a test name, for per-test seed diversity.
#[must_use]
pub fn name_seed(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Test-runner configuration (`cases` only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` generated inputs.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Boxes a strategy for use in heterogeneous [`Union`]s (`prop_oneof!`).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Weighted choice between strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds from `(weight, strategy)` arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or all weights are zero.
    #[must_use]
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs at least one weighted arm");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.next_u64() % self.total;
        for (w, s) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights summed in constructor")
    }
}

// Integer ranges as strategies.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// Tuple strategies.
macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Full-range values (`any::<T>()`).
pub struct Any<T>(std::marker::PhantomData<T>);

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_lossless)]
            fn arbitrary(rng: &mut TestRng) -> $t { rng.next_u64() as $t }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Length constraint accepted by [`collection::vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}
impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}
impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy for vectors of `element` with a length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Builds a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! Option strategies (`proptest::option::of`).
    use super::{Strategy, TestRng};

    /// Strategy producing `None` about a quarter of the time.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Builds an [`OptionStrategy`].
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod bool {
    //! Boolean strategies (`proptest::bool::ANY`).
    use super::{Strategy, TestRng};

    /// Uniform `bool` strategy.
    pub struct BoolAny;

    /// The uniform `bool` strategy value.
    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    //! The glob-import surface (`use proptest::prelude::*`).
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, Just, ProptestConfig,
        Strategy, TestRng,
    };
}

/// Property assertion (panics on failure; no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Property equality assertion (panics on failure; no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Weighted or unweighted choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::boxed($strategy))),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($config:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
      )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $config;
                let __base = $crate::name_seed(stringify!($name));
                for __case in 0..u64::from(__config.cases) {
                    let mut __rng =
                        $crate::TestRng::from_seed(__base ^ __case.wrapping_mul(0x9e37_79b9));
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}
