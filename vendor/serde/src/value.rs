//! The JSON value tree shared by the vendored `serde` and `serde_json`.

/// A JSON number. Integers keep full precision; floats render with the
/// shortest round-trip representation plus a trailing `.0` when fractionless
/// (matching the real serde_json's `ryu` output for the value ranges this
/// repository produces).
#[derive(Debug, Clone, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    U(u128),
    /// Negative integer.
    I(i128),
    /// Floating point.
    F(f64),
}

/// A JSON value. Objects preserve insertion order so derived struct output
/// matches field declaration order, as the real serde does.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Renders compact JSON (no whitespace).
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders pretty JSON with the given indent width (serde_json uses 2).
    pub fn render_pretty(&self, indent: usize) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(indent), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Number(n) => out.push_str(&render_number(n)),
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    item.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push(']');
            }
            Value::Object(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..level * w {
            out.push(' ');
        }
    }
}

fn render_number(n: &Number) -> String {
    match n {
        Number::U(u) => u.to_string(),
        Number::I(i) => i.to_string(),
        Number::F(f) => {
            if !f.is_finite() {
                // The real serde_json errors on non-finite floats; the only
                // caller (`to_string_pretty`) panics on error anyway.
                return "null".to_string();
            }
            let s = format!("{f}");
            if s.contains('.') || s.contains('e') || s.contains('E') {
                s
            } else {
                format!("{s}.0")
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
