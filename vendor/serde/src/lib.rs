//! Offline stand-in for the real `serde` crate.
//!
//! The build container cannot reach a crates registry, so this workspace
//! vendors a minimal serde-compatible surface (see `vendor/README.md`):
//!
//! * [`Serialize`] renders a value into the JSON-shaped [`value::Value`]
//!   tree; `#[derive(Serialize)]` (re-exported from the vendored
//!   `serde_derive`) generates real field-by-field implementations, so
//!   `serde_json::to_string_pretty` produces byte-identical output to the
//!   real serde_json for the data shapes this repository serializes
//!   (structs, enums, vectors, numbers, strings).
//! * [`Deserialize`] is implemented for primitives and containers;
//!   `#[derive(Deserialize)]` generates a compile-compatibility stub that
//!   errors at runtime (nothing in the workspace deserializes derived
//!   types).
//!
//! Only what the workspace uses is implemented; this is not a general serde
//! replacement.

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

pub mod de {
    //! Deserialization error type.
    use std::fmt;

    /// Error produced by [`crate::Deserialize`] implementations.
    #[derive(Debug, Clone)]
    pub struct Error(pub String);

    impl Error {
        /// Error for a type whose derived impl is a compile-compatibility
        /// stub (see the crate docs).
        pub fn unsupported(ty: &str) -> Self {
            Error(format!(
                "vendored serde shim: deserialization of `{ty}` is not supported"
            ))
        }

        /// Type-mismatch error.
        pub fn mismatch(expected: &str, got: &crate::value::Value) -> Self {
            Error(format!("expected {expected}, found {got:?}"))
        }
    }

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for Error {}
}

use value::{Number, Value};

/// Serialization into the shim's JSON value tree.
pub trait Serialize {
    /// Renders `self` as a JSON value.
    fn to_value(&self) -> Value;
}

/// Deserialization from the shim's JSON value tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a JSON value.
    ///
    /// # Errors
    ///
    /// Returns [`de::Error`] on shape mismatch or for stubbed derived types.
    fn from_value(v: &Value) -> Result<Self, de::Error>;
}

// ---------------------------------------------------------------------
// Serialize impls.
// ---------------------------------------------------------------------

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Number(Number::U(*self as u128)) }
        }
    )*};
}
macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i128;
                if v >= 0 { Value::Number(Number::U(v as u128)) }
                else { Value::Number(Number::I(v)) }
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, u128, usize);
ser_int!(i8, i16, i32, i64, i128, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F(*self))
    }
}
impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F(*self as f64))
    }
}
impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

/// Map keys must render as JSON strings (serde stringifies integer keys).
pub trait SerializeKey {
    /// The JSON object key for this map key.
    fn to_key(&self) -> String;
}
macro_rules! key_display {
    ($($t:ty),*) => {$(
        impl SerializeKey for $t {
            fn to_key(&self) -> String { self.to_string() }
        }
    )*};
}
key_display!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, String, &str, char);

impl<K: SerializeKey, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}
impl<K: SerializeKey, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort by key (the real serde_json preserves
        // hash order, but nothing in this workspace snapshots a HashMap).
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}
impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

// ---------------------------------------------------------------------
// Deserialize impls (primitives and containers only; derived types stub).
// ---------------------------------------------------------------------

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                match v {
                    Value::Number(Number::U(u)) => <$t>::try_from(*u)
                        .map_err(|_| de::Error::mismatch(stringify!($t), v)),
                    Value::Number(Number::I(i)) => <$t>::try_from(*i)
                        .map_err(|_| de::Error::mismatch(stringify!($t), v)),
                    _ => Err(de::Error::mismatch(stringify!($t), v)),
                }
            }
        }
    )*};
}
de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Number(Number::F(f)) => Ok(*f),
            Value::Number(Number::U(u)) => Ok(*u as f64),
            Value::Number(Number::I(i)) => Ok(*i as f64),
            _ => Err(de::Error::mismatch("f64", v)),
        }
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(de::Error::mismatch("bool", v)),
        }
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(de::Error::mismatch("string", v)),
        }
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(de::Error::mismatch("array", v)),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}
