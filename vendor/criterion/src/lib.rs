//! Offline stand-in for the real `criterion` crate (see `vendor/README.md`).
//!
//! Provides the API surface the workspace's benches use — benchmark groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Throughput`,
//! `sample_size`, and the `criterion_group!` / `criterion_main!` macros —
//! over a simple wall-clock harness: one warm-up iteration, then
//! `sample_size` timed iterations, reporting min / mean / max per benchmark
//! in criterion's familiar `time: [low mean high]` shape. No statistical
//! analysis, HTML reports, or regression tracking.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier: a function name plus a parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`, criterion's display convention.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}
impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// Work-per-iteration annotation (accepted, echoed in the report header).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timed-loop driver passed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` once as warm-up, then `sample_size` timed iterations.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        black_box(f());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let min = *samples.iter().min().expect("non-empty");
    let max = *samples.iter().max().expect("non-empty");
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{name:<40} time: [{} {} {}]",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max)
    );
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Records the per-iteration workload (report annotation only).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        match t {
            Throughput::Elements(n) => println!("# {}: {} element(s)/iter", self.name, n),
            Throughput::Bytes(n) => println!("# {}: {} byte(s)/iter", self.name, n),
        }
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.name), &b.samples);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.name), &b.samples);
        self
    }

    /// Ends the group (report already printed per benchmark).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the default number of timed iterations per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _parent: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(&id.name, &b.samples);
        self
    }
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Ignore harness flags cargo-bench passes (e.g. `--bench`).
            $($group();)+
        }
    };
}
