//! Offline stand-in for the real `rand` crate (see `vendor/README.md`).
//!
//! Implements the surface the workspace uses: `rngs::StdRng`,
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] / [`Rng::gen_bool`]
//! over integer ranges. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic per seed, as the callers require. The stream
//! differs from the real `StdRng` (ChaCha12); nothing in the workspace
//! snapshots the stream itself, only properties of the generated workloads.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a deterministic generator from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers (blanket-implemented for every [`RngCore`]).
pub trait Rng: RngCore + Sized {
    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// A range that can be sampled to produce a `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (xoshiro256++ under the hood).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the xoshiro authors recommend.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let w = rng.gen_range(2u8..=9);
            assert!((2..=9).contains(&w));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "got {hits}");
    }
}
