//! Generators for the paper's microbenchmark kernels (§4.2).
//!
//! Two microbenchmarks drive the whole evaluation:
//!
//! * **Store bandwidth** — a tight, fully unrolled sequence of doubleword
//!   stores covering `total_bytes` of ascending uncached addresses, putting
//!   maximum pressure on the system bus. Through the CSB, each cache line's
//!   worth of stores ends with a conditional flush (and a retry check, as in
//!   the paper's assembly listing).
//! * **Atomic device access** — either the conventional
//!   lock/store/membar/unlock sequence (a swap-based spin lock on a cached
//!   lock variable) or the CSB store/conditional-flush sequence; Figure 5
//!   compares their latencies.
//!
//! All generators target the standard address layout of
//! [`SimConfig::default_map`]: device registers live at [`UNCACHED_BASE`] or
//! [`COMBINING_BASE`], the lock at [`LOCK_ADDR`].

use std::fmt;

use csb_isa::{Assembler, MemWidth, Program, ProgramError, Reg};

use crate::config::{SimConfig, COMBINING_BASE, IO_WINDOW, LOCK_ADDR, UNCACHED_BASE};

/// Mark id retired immediately before the measured sequence begins.
pub const MARK_START: u32 = 0;
/// Mark id retired when the measured sequence is architecturally complete.
pub const MARK_END: u32 = 1;

/// Which store path the bandwidth kernel exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorePath {
    /// Plain uncached space: the uncached buffer (combining per its block
    /// size) turns the stores into bus transactions.
    Uncached,
    /// Combining space: stores accumulate in the CSB; each line is committed
    /// with a conditional flush.
    Csb,
    /// [`StorePath::Csb`] with the retry branch compiled out of line: the
    /// per-line flush check is a *forward* `bnz` to a stub after the hot
    /// sequence, and the stub branches back to the line's start. Static
    /// forward-not-taken prediction is then correct on every successful
    /// flush, so the hot path retires without a single squash — the
    /// unlikely-path layout a compiler's branch-probability pass produces
    /// for the paper's §3.2 retry idiom.
    CsbOutlined,
}

/// Issue order of the stores within each cache line.
///
/// Hardware pattern detectors (the R10000's uncached-accelerated mode, the
/// PowerPC 620's pairing) only combine strictly sequential streams; the
/// paper's §2 point is that they "fail if the sequence of stores is
/// interrupted by a store to a different address". [`StoreOrder::Shuffled`]
/// keeps every store inside its line but breaks consecutiveness, separating
/// pattern-based combining from block-based combining and the CSB (whose
/// stores may arrive in any order, §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreOrder {
    /// Ascending consecutive addresses (the paper's unrolled loop).
    Ascending,
    /// A fixed even/odd interleave within each line: offsets 0, 2, 4, …
    /// then 1, 3, 5, … (in doublewords).
    Shuffled,
}

impl StoreOrder {
    /// Doubleword visit order for a group of `n` doublewords.
    fn order(self, n: usize) -> Vec<usize> {
        match self {
            StoreOrder::Ascending => (0..n).collect(),
            StoreOrder::Shuffled => {
                let mut v: Vec<usize> = (0..n).step_by(2).collect();
                v.extend((1..n).step_by(2));
                v
            }
        }
    }
}

/// Invalid workload parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadError {
    /// Transfer size must be a nonzero multiple of 8 that fits the I/O
    /// window.
    BadTransfer {
        /// Requested bytes.
        bytes: usize,
    },
    /// Doubleword count out of the supported range.
    BadDwords {
        /// Requested doublewords.
        dwords: usize,
        /// Maximum supported.
        max: usize,
    },
    /// Program assembly failed (generator bug).
    Assemble(ProgramError),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::BadTransfer { bytes } => {
                write!(f, "transfer of {bytes} bytes is not a positive multiple of 8 within the I/O window")
            }
            WorkloadError::BadDwords { dwords, max } => {
                write!(f, "{dwords} doublewords outside supported range 1..={max}")
            }
            WorkloadError::Assemble(e) => write!(f, "assembly failed: {e}"),
        }
    }
}

impl std::error::Error for WorkloadError {}

impl From<ProgramError> for WorkloadError {
    fn from(e: ProgramError) -> Self {
        WorkloadError::Assemble(e)
    }
}

/// Builds the uncached-store-bandwidth kernel (§4.2): `total_bytes / 8`
/// doubleword stores to consecutive addresses.
///
/// For [`StorePath::Csb`] the stores are grouped per cache line, each group
/// followed by the conditional flush + check + retry idiom from the paper's
/// §3.2 listing. A final partial line is flushed with its own (smaller)
/// expected count.
///
/// # Errors
///
/// Returns [`WorkloadError::BadTransfer`] unless `total_bytes` is a nonzero
/// multiple of 8 that fits in the I/O window.
///
/// # Examples
///
/// ```
/// use csb_core::{workloads, SimConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cfg = SimConfig::default();
/// let p = workloads::store_bandwidth(64, &cfg, workloads::StorePath::Uncached)?;
/// assert!(p.len() > 8); // 8 stores plus setup
/// # Ok(())
/// # }
/// ```
pub fn store_bandwidth(
    total_bytes: usize,
    cfg: &SimConfig,
    path: StorePath,
) -> Result<Program, WorkloadError> {
    store_bandwidth_ordered(total_bytes, cfg, path, StoreOrder::Ascending)
}

/// [`store_bandwidth`] with an explicit per-line store order (see
/// [`StoreOrder`]).
///
/// # Errors
///
/// As for [`store_bandwidth`].
pub fn store_bandwidth_ordered(
    total_bytes: usize,
    cfg: &SimConfig,
    path: StorePath,
    order: StoreOrder,
) -> Result<Program, WorkloadError> {
    if total_bytes == 0 || !total_bytes.is_multiple_of(8) || total_bytes as u64 > IO_WINDOW {
        return Err(WorkloadError::BadTransfer { bytes: total_bytes });
    }
    let dwords = total_bytes / 8;
    let line = cfg.line();
    let per_line = line / 8;
    let mut a = Assembler::new();
    a.movi(Reg::L1, 0x5151_5151_5151_5151u64 as i64);
    a.mark(MARK_START);
    // (out-of-line stub, line entry) pairs, emitted after `halt`.
    let mut stubs = Vec::new();
    match path {
        StorePath::Uncached => {
            a.movi(Reg::O1, UNCACHED_BASE as i64);
            let mut remaining = dwords;
            let mut line_idx = 0i64;
            while remaining > 0 {
                let n = remaining.min(per_line);
                let base_off = line_idx * line as i64;
                for i in order.order(n) {
                    a.std(Reg::L1, Reg::O1, base_off + 8 * i as i64);
                }
                remaining -= n;
                line_idx += 1;
            }
        }
        StorePath::Csb => {
            a.movi(Reg::O1, COMBINING_BASE as i64);
            let mut remaining = dwords;
            let mut line_idx = 0i64;
            while remaining > 0 {
                let n = remaining.min(per_line);
                let base_off = line_idx * line as i64;
                let retry = a.new_label();
                a.bind(retry)?;
                a.movi(Reg::L4, n as i64);
                for i in order.order(n) {
                    a.std(Reg::L1, Reg::O1, base_off + 8 * i as i64);
                }
                a.swap(Reg::L4, Reg::O1, base_off);
                a.cmpi(Reg::L4, n as i64);
                a.bnz(retry);
                remaining -= n;
                line_idx += 1;
            }
        }
        StorePath::CsbOutlined => {
            a.movi(Reg::O1, COMBINING_BASE as i64);
            let mut remaining = dwords;
            let mut line_idx = 0i64;
            while remaining > 0 {
                let n = remaining.min(per_line);
                let base_off = line_idx * line as i64;
                let retry = a.new_label();
                let stub = a.new_label();
                a.bind(retry)?;
                a.movi(Reg::L4, n as i64);
                for i in order.order(n) {
                    a.std(Reg::L1, Reg::O1, base_off + 8 * i as i64);
                }
                a.swap(Reg::L4, Reg::O1, base_off);
                a.cmpi(Reg::L4, n as i64);
                // Forward branch: predicted not-taken, i.e. correct on a
                // successful flush. A failed flush pays one squash to
                // reach the stub, which re-enters the line's retry loop.
                a.bnz(stub);
                stubs.push((stub, retry));
                remaining -= n;
                line_idx += 1;
            }
        }
    }
    a.mark(MARK_END);
    a.halt();
    for (stub, retry) in stubs {
        a.bind(stub)?;
        a.ba(retry);
    }
    Ok(a.assemble()?)
}

/// Builds the conventional atomic-access kernel of §4.2: spin-lock acquire
/// (SPARC `swap` in a retry loop), `dwords` uncached doubleword stores, a
/// memory barrier, and the lock release, bracketed by timing marks.
///
/// # Errors
///
/// Returns [`WorkloadError::BadDwords`] unless `1 <= dwords <= 512`.
pub fn lock_sequence(dwords: usize) -> Result<Program, WorkloadError> {
    if dwords == 0 || dwords > 512 {
        return Err(WorkloadError::BadDwords { dwords, max: 512 });
    }
    let mut a = Assembler::new();
    a.movi(Reg::O0, LOCK_ADDR as i64);
    a.movi(Reg::O1, UNCACHED_BASE as i64);
    a.movi(Reg::L1, 0x6262_6262_6262_6262u64 as i64);
    a.mark(MARK_START);
    // Lock acquire: swap 1 into the lock until the old value was 0.
    let retry = a.new_label();
    a.bind(retry)?;
    a.movi(Reg::L0, 1);
    a.swap(Reg::L0, Reg::O0, 0);
    a.cmpi(Reg::L0, 0);
    a.bnz(retry);
    // Barrier between the lock acquire and the device stores, as in §4.2.
    a.membar();
    for i in 0..dwords {
        a.std(Reg::L1, Reg::O1, 8 * i as i64);
    }
    // The lock may be released only after the last uncached store has left
    // the uncached buffer.
    a.membar();
    a.std(Reg::G0, Reg::O0, 0); // release: store 0 (cached)
    a.mark(MARK_END);
    a.halt();
    Ok(a.assemble()?)
}

/// Builds a worker for the many-core contention sweep's conventional
/// baseline: `iterations` lock-based accesses ([`lock_sequence`] body) of
/// `dwords` uncached stores each, every process contending on the single
/// global lock word — the §4.2 path whose convoy the per-process CSB
/// schemes eliminate.
///
/// # Errors
///
/// Returns [`WorkloadError::BadDwords`] unless `1 <= dwords <= 512`.
pub fn lock_worker(iterations: usize, dwords: usize) -> Result<Program, WorkloadError> {
    if dwords == 0 || dwords > 512 {
        return Err(WorkloadError::BadDwords { dwords, max: 512 });
    }
    let mut a = Assembler::new();
    a.movi(Reg::O0, LOCK_ADDR as i64);
    a.movi(Reg::O1, UNCACHED_BASE as i64);
    a.movi(Reg::L1, 0x6262_6262_6262_6262u64 as i64);
    a.movi(Reg::L5, iterations as i64);
    a.mark(MARK_START);
    let outer = a.new_label();
    a.bind(outer)?;
    // Lock acquire: swap 1 into the lock until the old value was 0.
    let retry = a.new_label();
    a.bind(retry)?;
    a.movi(Reg::L0, 1);
    a.swap(Reg::L0, Reg::O0, 0);
    a.cmpi(Reg::L0, 0);
    a.bnz(retry);
    a.membar();
    for i in 0..dwords {
        a.std(Reg::L1, Reg::O1, 8 * i as i64);
    }
    // The lock may be released only after the last uncached store has left
    // the uncached buffer.
    a.membar();
    a.std(Reg::G0, Reg::O0, 0); // release: store 0 (cached)
    a.alui(csb_isa::AluOp::Sub, Reg::L5, Reg::L5, 1);
    a.cmpi(Reg::L5, 0);
    a.bnz(outer);
    a.mark(MARK_END);
    a.halt();
    Ok(a.assemble()?)
}

/// Builds the CSB atomic-access kernel of §4.2: `dwords` combining stores
/// followed by a conditional flush, its check, and a retry branch. The
/// access is architecturally complete as soon as the flush succeeds.
///
/// # Errors
///
/// Returns [`WorkloadError::BadDwords`] unless `1 <= dwords <= line/8`.
pub fn csb_sequence(dwords: usize, cfg: &SimConfig) -> Result<Program, WorkloadError> {
    let max = cfg.line() / 8;
    if dwords == 0 || dwords > max {
        return Err(WorkloadError::BadDwords { dwords, max });
    }
    let mut a = Assembler::new();
    a.movi(Reg::O1, COMBINING_BASE as i64);
    a.movi(Reg::L1, 0x6262_6262_6262_6262u64 as i64);
    a.mark(MARK_START);
    let retry = a.new_label();
    a.bind(retry)?;
    a.movi(Reg::L4, dwords as i64);
    for i in 0..dwords {
        a.std(Reg::L1, Reg::O1, 8 * i as i64);
    }
    a.swap(Reg::L4, Reg::O1, 0);
    a.cmpi(Reg::L4, dwords as i64);
    a.bnz(retry);
    a.mark(MARK_END);
    a.halt();
    Ok(a.assemble()?)
}

/// Builds the CSB sequence with the paper's first livelock remedy (§3.2):
/// after `max_retries` failed conditional flushes the program falls back to
/// the heavyweight lock-based path, which tolerates preemption and thus
/// guarantees progress.
///
/// The `mark` pair brackets the whole access either way; compare
/// [`csb_sequence`] (retry forever) and [`lock_sequence`] (lock always).
///
/// # Errors
///
/// Returns [`WorkloadError::BadDwords`] for out-of-range sizes or a zero
/// retry budget.
pub fn csb_sequence_with_fallback(
    dwords: usize,
    max_retries: u64,
    cfg: &SimConfig,
) -> Result<Program, WorkloadError> {
    let max = cfg.line() / 8;
    if dwords == 0 || dwords > max || max_retries == 0 {
        return Err(WorkloadError::BadDwords { dwords, max });
    }
    let mut a = Assembler::new();
    a.movi(Reg::O0, LOCK_ADDR as i64);
    a.movi(Reg::O1, COMBINING_BASE as i64);
    a.movi(Reg::O2, UNCACHED_BASE as i64);
    a.movi(Reg::L1, 0x6262_6262_6262_6262u64 as i64);
    a.movi(Reg::L6, max_retries as i64);
    a.mark(MARK_START);
    let retry = a.new_label();
    let done = a.new_label();
    let fallback = a.new_label();
    a.bind(retry)?;
    a.movi(Reg::L4, dwords as i64);
    for i in 0..dwords {
        a.std(Reg::L1, Reg::O1, 8 * i as i64);
    }
    a.swap(Reg::L4, Reg::O1, 0);
    a.cmpi(Reg::L4, dwords as i64);
    a.bz(done);
    // Failed flush: burn one retry, fall back once the budget is gone.
    a.alui(csb_isa::AluOp::Sub, Reg::L6, Reg::L6, 1);
    a.cmpi(Reg::L6, 0);
    a.bnz(retry);
    a.bind(fallback)?;
    let spin = a.new_label();
    a.bind(spin)?;
    a.movi(Reg::L0, 1);
    a.swap(Reg::L0, Reg::O0, 0);
    a.cmpi(Reg::L0, 0);
    a.bnz(spin);
    a.membar();
    for i in 0..dwords {
        a.std(Reg::L1, Reg::O2, 8 * i as i64);
    }
    a.membar();
    a.std(Reg::G0, Reg::O0, 0);
    a.bind(done)?;
    a.mark(MARK_END);
    a.halt();
    Ok(a.assemble()?)
}

/// Software retry policy for the conditional-flush loop — the space of
/// §3.2 livelock remedies the fault sweeps compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryPolicy {
    /// Retry forever, back-to-back (the paper's baseline listing). Under a
    /// hostile fault schedule this is the policy the livelock watchdog
    /// exists for.
    NaiveSpin,
    /// Give up after `attempts` failed conditional flushes and halt
    /// without delivering (success is observable from the device
    /// contents).
    Bounded {
        /// Total flush attempts before giving up (>= 1).
        attempts: u64,
    },
    /// Bounded retries with exponential backoff and deterministic jitter:
    /// after the k-th failure the program spins a delay loop of
    /// `min(base << k, max)` iterations plus a seed-derived jitter of at
    /// most half that, then retries. Jitter is computed at assembly time,
    /// so the program — and therefore the whole simulation — stays fully
    /// deterministic per seed.
    Backoff {
        /// Total flush attempts before giving up (>= 1).
        attempts: u64,
        /// Delay-loop iterations after the first failure.
        base: u64,
        /// Upper bound on the un-jittered delay.
        max: u64,
        /// Jitter seed (vary per actor to de-synchronize retries).
        seed: u64,
    },
}

impl RetryPolicy {
    /// Short label for tables and artifacts.
    pub fn name(self) -> &'static str {
        match self {
            RetryPolicy::NaiveSpin => "naive-spin",
            RetryPolicy::Bounded { .. } => "bounded",
            RetryPolicy::Backoff { .. } => "backoff",
        }
    }
}

/// Assembly-time jitter for [`RetryPolicy::Backoff`] (SplitMix64, same
/// generator family as the fault schedule, different constants path).
fn backoff_jitter(seed: u64, attempt: u64, span: u64) -> u64 {
    if span == 0 {
        return 0;
    }
    let mut z = seed
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(attempt.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    (z ^ (z >> 31)) % span
}

/// Builds the CSB atomic-access kernel under a configurable software
/// retry policy: `dwords` combining stores, a conditional flush, and —
/// on failure — whatever [`RetryPolicy`] prescribes. The success path
/// retires [`MARK_END`]; a bounded policy that exhausts its budget halts
/// without it, leaving the device empty (how the fault sweeps measure
/// success rate).
///
/// [`RetryPolicy::NaiveSpin`] reduces to [`csb_sequence`]; bounded
/// policies are unrolled per attempt so each backoff delay can carry its
/// own assembly-time jittered immediate.
///
/// # Errors
///
/// Returns [`WorkloadError::BadDwords`] for out-of-range sizes or a zero
/// attempt budget.
pub fn csb_sequence_with_policy(
    dwords: usize,
    policy: RetryPolicy,
    cfg: &SimConfig,
) -> Result<Program, WorkloadError> {
    let max_dw = cfg.line() / 8;
    if dwords == 0 || dwords > max_dw {
        return Err(WorkloadError::BadDwords {
            dwords,
            max: max_dw,
        });
    }
    let attempts = match policy {
        RetryPolicy::NaiveSpin => return csb_sequence(dwords, cfg),
        RetryPolicy::Bounded { attempts } | RetryPolicy::Backoff { attempts, .. } => attempts,
    };
    if attempts == 0 {
        return Err(WorkloadError::BadDwords {
            dwords,
            max: max_dw,
        });
    }
    let mut a = Assembler::new();
    a.movi(Reg::O1, COMBINING_BASE as i64);
    a.movi(Reg::L1, 0x6262_6262_6262_6262u64 as i64);
    a.mark(MARK_START);
    let done = a.new_label();
    for attempt in 0..attempts {
        a.movi(Reg::L4, dwords as i64);
        for i in 0..dwords {
            a.std(Reg::L1, Reg::O1, 8 * i as i64);
        }
        a.swap(Reg::L4, Reg::O1, 0);
        a.cmpi(Reg::L4, dwords as i64);
        a.bz(done);
        if attempt + 1 == attempts {
            // Budget exhausted: give up without delivering.
            continue;
        }
        if let RetryPolicy::Backoff {
            base, max, seed, ..
        } = policy
        {
            let delay = (base << attempt.min(63)).min(max.max(base));
            let delay = delay + backoff_jitter(seed, attempt, delay / 2 + 1);
            if delay > 0 {
                let spin = a.new_label();
                a.movi(Reg::L0, delay as i64);
                a.bind(spin)?;
                a.alui(csb_isa::AluOp::Sub, Reg::L0, Reg::L0, 1);
                a.cmpi(Reg::L0, 0);
                a.bnz(spin);
            }
        }
    }
    // Budget exhausted: fall through and halt without MARK_END.
    a.halt();
    a.bind(done)?;
    a.mark(MARK_END);
    a.halt();
    Ok(a.assemble()?)
}

/// Builds a worker for the multi-process conflict experiments: `iterations`
/// CSB sequences of `dwords` stores each (each with the full retry loop),
/// all to this process's own `line_index`-th line of the combining window.
///
/// # Errors
///
/// Returns [`WorkloadError`] for out-of-range parameters.
pub fn csb_worker(
    iterations: usize,
    dwords: usize,
    line_index: usize,
    cfg: &SimConfig,
) -> Result<Program, WorkloadError> {
    let max = cfg.line() / 8;
    if dwords == 0 || dwords > max {
        return Err(WorkloadError::BadDwords { dwords, max });
    }
    let line_off = (line_index * cfg.line()) as u64;
    if line_off + cfg.line() as u64 > IO_WINDOW {
        return Err(WorkloadError::BadTransfer {
            bytes: line_off as usize,
        });
    }
    let mut a = Assembler::new();
    a.movi(Reg::O1, (COMBINING_BASE + line_off) as i64);
    a.movi(Reg::L1, 0x7373_7373_7373_7373u64 as i64);
    a.movi(Reg::L5, iterations as i64);
    a.mark(MARK_START);
    let outer = a.new_label();
    a.bind(outer)?;
    let retry = a.new_label();
    a.bind(retry)?;
    a.movi(Reg::L4, dwords as i64);
    for i in 0..dwords {
        a.std(Reg::L1, Reg::O1, 8 * i as i64);
    }
    a.swap(Reg::L4, Reg::O1, 0);
    a.cmpi(Reg::L4, dwords as i64);
    a.bnz(retry);
    a.alui(csb_isa::AluOp::Sub, Reg::L5, Reg::L5, 1);
    a.cmpi(Reg::L5, 0);
    a.bnz(outer);
    a.mark(MARK_END);
    a.halt();
    Ok(a.assemble()?)
}

/// Parameters for the reliable-messaging senders ([`csb_messages`] /
/// [`lock_messages`]): a stream of sequence-numbered messages, each one
/// [`csb_nic::Header`]-framed in its own NI window slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessagingSpec {
    /// Messages to send, with consecutive sequence numbers `0..count`.
    pub count: usize,
    /// Payload doublewords per message (the header adds one more).
    pub payload_dwords: usize,
    /// Sender id stamped into every header.
    pub sender: u16,
    /// NI window slots cycled round-robin (message `m` lands in slot
    /// `m % slots`; one slot per cache line).
    pub slots: usize,
}

impl MessagingSpec {
    /// Payload value pattern for message `seq`: the sequence number
    /// replicated into every byte, so receivers can verify payload
    /// integrity per message.
    pub fn payload_pattern(seq: u16) -> u64 {
        u64::from(seq as u8).wrapping_mul(0x0101_0101_0101_0101)
    }

    fn validate(&self, cfg: &SimConfig) -> Result<(), WorkloadError> {
        let max = cfg.line() / 8 - 1;
        if self.payload_dwords == 0 || self.payload_dwords > max {
            return Err(WorkloadError::BadDwords {
                dwords: self.payload_dwords,
                max,
            });
        }
        let window_bytes = self.slots * cfg.line();
        if self.count == 0
            || self.count > u16::MAX as usize
            || self.slots == 0
            || window_bytes as u64 > IO_WINDOW
        {
            return Err(WorkloadError::BadTransfer {
                bytes: window_bytes,
            });
        }
        Ok(())
    }
}

/// Builds the CSB messaging sender: for each message, one combining-store
/// group writes the [`csb_nic::encode_header`] doubleword plus
/// `payload_dwords` payload dwords into the message's window slot, then
/// commits the line with a conditional flush under `policy` — so the NI
/// receives each message as a single atomic burst. A bounded policy that
/// exhausts its flush budget halts the sender mid-stream (messages from
/// that point on are never sent: the receive-side seq accounting reports
/// them as dropped).
///
/// # Errors
///
/// Returns [`WorkloadError`] for out-of-range sizes, slot counts past the
/// I/O window, or a zero attempt budget.
pub fn csb_messages(
    spec: MessagingSpec,
    policy: RetryPolicy,
    cfg: &SimConfig,
) -> Result<Program, WorkloadError> {
    spec.validate(cfg)?;
    let attempts = match policy {
        RetryPolicy::NaiveSpin => u64::MAX,
        RetryPolicy::Bounded { attempts } | RetryPolicy::Backoff { attempts, .. } => attempts,
    };
    if attempts == 0 {
        return Err(WorkloadError::BadDwords {
            dwords: spec.payload_dwords,
            max: cfg.line() / 8 - 1,
        });
    }
    let expected = spec.payload_dwords as i64 + 1;
    let mut a = Assembler::new();
    a.movi(Reg::O1, COMBINING_BASE as i64);
    a.mark(MARK_START);
    let give_up = a.new_label();
    for m in 0..spec.count {
        let seq = m as u16;
        let line_off = ((m % spec.slots) * cfg.line()) as i64;
        let header = csb_nic::encode_header((spec.payload_dwords * 8) as u16, seq, spec.sender);
        a.movi(Reg::L2, header as i64);
        a.movi(Reg::L1, MessagingSpec::payload_pattern(seq) as i64);
        let msg_done = a.new_label();
        if matches!(policy, RetryPolicy::NaiveSpin) {
            let retry = a.new_label();
            a.bind(retry)?;
            a.movi(Reg::L4, expected);
            a.std(Reg::L2, Reg::O1, line_off);
            for i in 0..spec.payload_dwords {
                a.std(Reg::L1, Reg::O1, line_off + 8 * (i as i64 + 1));
            }
            a.swap(Reg::L4, Reg::O1, line_off);
            a.cmpi(Reg::L4, expected);
            a.bnz(retry);
        } else {
            for attempt in 0..attempts {
                a.movi(Reg::L4, expected);
                a.std(Reg::L2, Reg::O1, line_off);
                for i in 0..spec.payload_dwords {
                    a.std(Reg::L1, Reg::O1, line_off + 8 * (i as i64 + 1));
                }
                a.swap(Reg::L4, Reg::O1, line_off);
                a.cmpi(Reg::L4, expected);
                a.bz(msg_done);
                if attempt + 1 == attempts {
                    continue;
                }
                if let RetryPolicy::Backoff {
                    base, max, seed, ..
                } = policy
                {
                    let delay = (base << attempt.min(63)).min(max.max(base));
                    let delay = delay + backoff_jitter(seed, attempt, delay / 2 + 1);
                    if delay > 0 {
                        let spin = a.new_label();
                        a.movi(Reg::L0, delay as i64);
                        a.bind(spin)?;
                        a.alui(csb_isa::AluOp::Sub, Reg::L0, Reg::L0, 1);
                        a.cmpi(Reg::L0, 0);
                        a.bnz(spin);
                    }
                }
            }
            // This message's budget is gone: abandon the whole stream
            // (later messages would arrive out of order otherwise).
            a.ba(give_up);
        }
        a.bind(msg_done)?;
    }
    a.mark(MARK_END);
    a.halt();
    a.bind(give_up)?;
    a.halt();
    Ok(a.assemble()?)
}

/// Builds the conventional locked messaging sender: for each message, the
/// swap-based spin lock is acquired under `policy`, the header and payload
/// dwords are written to the message's slot as plain uncached stores
/// (strongly ordered, so the NI assembles each frame from a dribble of
/// beats), a membar drains them, and the lock is released. With a single
/// sender the acquire always succeeds on its first attempt; the policy
/// dimension exists so the sweep's program shapes mirror the CSB paths.
///
/// # Errors
///
/// Returns [`WorkloadError`] for out-of-range sizes, slot counts past the
/// I/O window, or a zero attempt budget.
pub fn lock_messages(
    spec: MessagingSpec,
    policy: RetryPolicy,
    cfg: &SimConfig,
) -> Result<Program, WorkloadError> {
    spec.validate(cfg)?;
    let attempts = match policy {
        RetryPolicy::NaiveSpin => u64::MAX,
        RetryPolicy::Bounded { attempts } | RetryPolicy::Backoff { attempts, .. } => attempts,
    };
    if attempts == 0 {
        return Err(WorkloadError::BadDwords {
            dwords: spec.payload_dwords,
            max: cfg.line() / 8 - 1,
        });
    }
    let mut a = Assembler::new();
    a.movi(Reg::O0, LOCK_ADDR as i64);
    a.movi(Reg::O1, UNCACHED_BASE as i64);
    a.mark(MARK_START);
    let give_up = a.new_label();
    for m in 0..spec.count {
        let seq = m as u16;
        let line_off = ((m % spec.slots) * cfg.line()) as i64;
        let header = csb_nic::encode_header((spec.payload_dwords * 8) as u16, seq, spec.sender);
        a.movi(Reg::L2, header as i64);
        a.movi(Reg::L1, MessagingSpec::payload_pattern(seq) as i64);
        let acquired = a.new_label();
        if matches!(policy, RetryPolicy::NaiveSpin) {
            let retry = a.new_label();
            a.bind(retry)?;
            a.movi(Reg::L0, 1);
            a.swap(Reg::L0, Reg::O0, 0);
            a.cmpi(Reg::L0, 0);
            a.bnz(retry);
        } else {
            for attempt in 0..attempts {
                a.movi(Reg::L0, 1);
                a.swap(Reg::L0, Reg::O0, 0);
                a.cmpi(Reg::L0, 0);
                a.bz(acquired);
                if attempt + 1 == attempts {
                    continue;
                }
                if let RetryPolicy::Backoff {
                    base, max, seed, ..
                } = policy
                {
                    let delay = (base << attempt.min(63)).min(max.max(base));
                    let delay = delay + backoff_jitter(seed, attempt, delay / 2 + 1);
                    if delay > 0 {
                        let spin = a.new_label();
                        a.movi(Reg::L0, delay as i64);
                        a.bind(spin)?;
                        a.alui(csb_isa::AluOp::Sub, Reg::L0, Reg::L0, 1);
                        a.cmpi(Reg::L0, 0);
                        a.bnz(spin);
                    }
                }
            }
            a.ba(give_up);
        }
        a.bind(acquired)?;
        a.membar();
        a.std(Reg::L2, Reg::O1, line_off);
        for i in 0..spec.payload_dwords {
            a.std(Reg::L1, Reg::O1, line_off + 8 * (i as i64 + 1));
        }
        // The lock may be released only after the last store has left the
        // uncached buffer.
        a.membar();
        a.std(Reg::G0, Reg::O0, 0); // release: store 0 (cached)
    }
    a.mark(MARK_END);
    a.halt();
    a.bind(give_up)?;
    a.halt();
    Ok(a.assemble()?)
}

/// Parameters for [`random_mixed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomMix {
    /// Instructions to generate (excluding the trailing `halt`).
    pub ops: usize,
    /// Percent (0–100) of generated instructions that are memory
    /// operations; the rest are ALU work.
    pub mem_percent: u8,
}

impl Default for RandomMix {
    fn default() -> Self {
        RandomMix {
            ops: 200,
            mem_percent: 40,
        }
    }
}

/// Generates a random but architecturally valid mixed workload: cached
/// loads/stores to a scratch region, uncached and combining doubleword
/// stores, occasional uncached loads, membars, and ALU filler — a stress
/// harness for the whole machine rather than a benchmark.
///
/// Every memory access is naturally aligned and lands in a mapped window;
/// combining stores are always committed with a matching conditional flush
/// (the generator tracks its own store count), so a conflict-free run must
/// end with zero failed flushes. Deterministic per `seed`.
///
/// # Errors
///
/// Returns [`WorkloadError`] if assembly fails (generator bug).
pub fn random_mixed(seed: u64, mix: RandomMix, cfg: &SimConfig) -> Result<Program, WorkloadError> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let mut rng = StdRng::seed_from_u64(seed);
    let line = cfg.line() as i64;
    let per_line = (cfg.line() / 8) as i64;
    let mut a = Assembler::new();
    a.movi(Reg::O0, 0x4000); // cached scratch
    a.movi(Reg::O1, UNCACHED_BASE as i64);
    a.movi(Reg::O2, COMBINING_BASE as i64);
    a.movi(Reg::L1, 0x9a9a_9a9a_9a9a_9a9au64 as i64);
    a.mark(MARK_START);

    let mut csb_pending = 0i64; // stores accumulated toward the open line
    let mut emitted = 0usize;
    while emitted < mix.ops {
        let is_mem = rng.gen_range(0..100u8) < mix.mem_percent;
        if !is_mem {
            // ALU filler over scratch registers L2/L3.
            let dst = if rng.gen_bool(0.5) { Reg::L2 } else { Reg::L3 };
            a.alui(csb_isa::AluOp::Add, dst, Reg::L1, rng.gen_range(0..64));
            emitted += 1;
            continue;
        }
        match rng.gen_range(0..5) {
            0 => {
                // Cached store then load (always within 4 KiB scratch).
                let off = rng.gen_range(0..512i64) * 8;
                a.st(Reg::L1, Reg::O0, off, MemWidth::B8);
            }
            1 => {
                let off = rng.gen_range(0..512i64) * 8;
                a.ld(Reg::L2, Reg::O0, off, MemWidth::B8);
            }
            2 => {
                // Plain uncached store anywhere in the window's first 4 KiB.
                let off = rng.gen_range(0..512i64) * 8;
                a.std(Reg::L1, Reg::O1, off);
            }
            3 => {
                // Uncached load (round trip).
                let off = rng.gen_range(0..512i64) * 8;
                a.ld(Reg::L3, Reg::O1, off, MemWidth::B8);
            }
            _ => {
                // Combining store into line 0 of the CSB window; the flush
                // below keeps the bookkeeping exact.
                let slot = rng.gen_range(0..per_line);
                a.std(Reg::L1, Reg::O2, slot * 8);
                csb_pending += 1;
                // Commit with some probability, or when the budget is rich.
                if csb_pending > 0 && (rng.gen_bool(0.3) || csb_pending == per_line) {
                    let retry = a.new_label();
                    a.bind(retry)?;
                    a.movi(Reg::L4, csb_pending);
                    a.swap(Reg::L4, Reg::O2, 0);
                    a.cmpi(Reg::L4, csb_pending);
                    a.bnz(retry);
                    csb_pending = 0;
                }
            }
        }
        if rng.gen_bool(0.05) {
            a.membar();
        }
        emitted += 1;
        let _ = line; // line retained for clarity in offsets above
    }
    // Close any open combining sequence so the run drains fully.
    if csb_pending > 0 {
        let retry = a.new_label();
        a.bind(retry)?;
        a.movi(Reg::L4, csb_pending);
        a.swap(Reg::L4, Reg::O2, 0);
        a.cmpi(Reg::L4, csb_pending);
        a.bnz(retry);
    }
    a.mark(MARK_END);
    a.halt();
    Ok(a.assemble()?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_program_shapes() {
        let cfg = SimConfig::default();
        let p = store_bandwidth(64, &cfg, StorePath::Uncached).unwrap();
        // 2 setup + mark + 8 stores + mark + halt
        assert_eq!(p.len(), 13);
        let p = store_bandwidth(64, &cfg, StorePath::Csb).unwrap();
        // adds movi/swap/cmp/bnz per line
        assert_eq!(p.len(), 17);
    }

    #[test]
    fn csb_partial_line_expected_count() {
        let cfg = SimConfig::default();
        // 24 bytes = 3 dwords: one group expecting 3.
        let p = store_bandwidth(24, &cfg, StorePath::Csb).unwrap();
        let listing = p.listing();
        assert!(listing.contains("set 3, %l4"), "listing:\n{listing}");
    }

    #[test]
    fn multi_line_csb_groups() {
        let cfg = SimConfig::default().line_size(32);
        // 80 bytes over 32B lines: groups of 4, 4, 2 dwords.
        let p = store_bandwidth(80, &cfg, StorePath::Csb).unwrap();
        let listing = p.listing();
        assert!(listing.contains("set 4, %l4"));
        assert!(listing.contains("set 2, %l4"));
    }

    #[test]
    fn rejects_bad_sizes() {
        let cfg = SimConfig::default();
        assert!(matches!(
            store_bandwidth(0, &cfg, StorePath::Uncached),
            Err(WorkloadError::BadTransfer { .. })
        ));
        assert!(matches!(
            store_bandwidth(12, &cfg, StorePath::Uncached),
            Err(WorkloadError::BadTransfer { .. })
        ));
        assert!(matches!(
            lock_sequence(0),
            Err(WorkloadError::BadDwords { .. })
        ));
        assert!(matches!(
            lock_sequence(513),
            Err(WorkloadError::BadDwords { .. })
        ));
        assert!(matches!(
            csb_sequence(9, &cfg),
            Err(WorkloadError::BadDwords { dwords: 9, max: 8 })
        ));
        assert!(!csb_sequence(9, &cfg).unwrap_err().to_string().is_empty());
    }

    #[test]
    fn lock_sequence_contains_membar_and_release() {
        let p = lock_sequence(4).unwrap();
        let listing = p.listing();
        assert_eq!(listing.matches("membar").count(), 2);
        assert!(listing.contains("swap"));
        assert!(listing.contains("%g0")); // release stores zero
    }

    #[test]
    fn worker_respects_window() {
        let cfg = SimConfig::default();
        assert!(csb_worker(3, 4, 0, &cfg).is_ok());
        assert!(csb_worker(3, 4, 2000, &cfg).is_err());
    }

    fn msg_spec() -> MessagingSpec {
        MessagingSpec {
            count: 4,
            payload_dwords: 3,
            sender: 7,
            slots: 2,
        }
    }

    #[test]
    fn csb_messages_expected_count_includes_header() {
        let cfg = SimConfig::default();
        let p = csb_messages(msg_spec(), RetryPolicy::NaiveSpin, &cfg).unwrap();
        let listing = p.listing();
        // 3 payload dwords + 1 header dword per flush group.
        assert!(listing.contains("set 4, %l4"), "listing:\n{listing}");
        assert_eq!(listing.matches("swap").count(), 4);
    }

    #[test]
    fn bounded_csb_messages_unroll_attempts() {
        let cfg = SimConfig::default();
        let naive = csb_messages(msg_spec(), RetryPolicy::NaiveSpin, &cfg).unwrap();
        let bounded = csb_messages(msg_spec(), RetryPolicy::Bounded { attempts: 3 }, &cfg).unwrap();
        // 3 flush attempts per message instead of one looped attempt.
        assert_eq!(bounded.listing().matches("swap").count(), 12);
        assert!(bounded.len() > naive.len());
    }

    #[test]
    fn lock_messages_bracket_stores_with_membars() {
        let cfg = SimConfig::default();
        let p = lock_messages(msg_spec(), RetryPolicy::NaiveSpin, &cfg).unwrap();
        let listing = p.listing();
        // Two membars per message: post-acquire and pre-release.
        assert_eq!(listing.matches("membar").count(), 8);
        assert!(listing.contains("%g0")); // release stores zero
    }

    #[test]
    fn messaging_rejects_bad_specs() {
        let cfg = SimConfig::default();
        let bad_dwords = MessagingSpec {
            payload_dwords: cfg.line() / 8,
            ..msg_spec()
        };
        assert!(matches!(
            csb_messages(bad_dwords, RetryPolicy::NaiveSpin, &cfg),
            Err(WorkloadError::BadDwords { .. })
        ));
        let bad_window = MessagingSpec {
            slots: 2000,
            ..msg_spec()
        };
        assert!(matches!(
            lock_messages(bad_window, RetryPolicy::NaiveSpin, &cfg),
            Err(WorkloadError::BadTransfer { .. })
        ));
        let empty = MessagingSpec {
            count: 0,
            ..msg_spec()
        };
        assert!(matches!(
            csb_messages(empty, RetryPolicy::NaiveSpin, &cfg),
            Err(WorkloadError::BadTransfer { .. })
        ));
        assert!(csb_messages(msg_spec(), RetryPolicy::Bounded { attempts: 0 }, &cfg).is_err());
        assert!(lock_messages(msg_spec(), RetryPolicy::Bounded { attempts: 0 }, &cfg).is_err());
    }

    #[test]
    fn messaging_headers_decode_back() {
        let spec = msg_spec();
        for seq in 0..spec.count as u16 {
            let h = csb_nic::encode_header((spec.payload_dwords * 8) as u16, seq, spec.sender);
            let d = csb_nic::decode_header(h).unwrap();
            assert_eq!(d.len as usize, spec.payload_dwords * 8);
            assert_eq!(d.seq, seq);
            assert_eq!(d.sender, spec.sender);
        }
    }
}
