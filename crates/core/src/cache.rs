//! Content-addressed sweep-point cache: every sweep becomes incremental.
//!
//! Each completed simulation point is keyed by an FNV-1a hash over the
//! snapshot format version, the point's machine configuration, its
//! workload, and its fault seed, and its result is persisted as one small
//! checksummed file in a `--cache-dir` store. A later sweep consults the
//! store before simulating: unchanged points are served from disk (a
//! *hit*), changed or new points simulate as before (a *miss*) and
//! overwrite their entry. Because the key hashes the full configuration,
//! editing one point's parameters invalidates exactly that point —
//! everything else stays warm, across processes and machines (entries are
//! plain files; a cache dir can be copied or shared).
//!
//! Correctness guards:
//!
//! * Entries are framed with their own magic and the global
//!   [`SNAPSHOT_FORMAT_VERSION`](crate::SNAPSHOT_FORMAT_VERSION), plus a
//!   trailing FNV-1a checksum. A corrupted, truncated, or stale-format
//!   file is detected on load, counted as an *invalidation*, deleted, and
//!   the point transparently re-simulated.
//! * Points that capture observability artifacts (tracing/metrics) are
//!   never served from cache — artifacts are not stored, so a cached
//!   result could not carry them.
//! * Writes go through a temp file + atomic rename, so concurrent
//!   workers (or concurrent processes sharing one dir) never expose a
//!   half-written entry.
//!
//! The cache is process-global ([`set_active`]) so the experiment
//! harnesses deep inside the sweep engines can consult it without
//! threading a handle through every signature; the bench binaries
//! activate it from `--cache-dir`.

use std::fmt::{self, Write as _};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use csb_snap::{SnapshotReader, SnapshotWriter};

use crate::snapshot::SNAPSHOT_FORMAT_VERSION;

/// Leading magic of every cache entry file.
pub const CACHE_MAGIC: [u8; 8] = *b"CSBCACH\0";

/// Counters describing how effective the cache was over some interval.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Points served from the store without simulating.
    pub hits: u64,
    /// Points simulated because no (valid) entry existed.
    pub misses: u64,
    /// Entries rejected (corrupt, truncated, stale format) and deleted.
    pub invalidations: u64,
    /// Bytes read from the store (including rejected entries).
    pub bytes_read: u64,
    /// Bytes written to the store.
    pub bytes_written: u64,
}

impl CacheStats {
    /// Whether any counter moved.
    pub fn any(&self) -> bool {
        self.hits != 0
            || self.misses != 0
            || self.invalidations != 0
            || self.bytes_read != 0
            || self.bytes_written != 0
    }

    /// Counter-wise difference `self - since` (for before/after deltas
    /// around one sweep).
    pub fn delta(&self, since: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - since.hits,
            misses: self.misses - since.misses,
            invalidations: self.invalidations - since.invalidations,
            bytes_read: self.bytes_read - since.bytes_read,
            bytes_written: self.bytes_written - since.bytes_written,
        }
    }

    /// Counter-wise sum (for merging sweep reports).
    pub fn add(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.invalidations += other.invalidations;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
    }
}

/// An on-disk content-addressed store of completed sweep points.
#[derive(Debug)]
pub struct PointCache {
    dir: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    tmp_seq: AtomicU64,
}

impl PointCache {
    /// Opens (creating if needed) the store at `dir`.
    ///
    /// # Errors
    ///
    /// [`io::Error`] if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<PointCache> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(PointCache {
            dir,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            tmp_seq: AtomicU64::new(0),
        })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Content-addresses one point: an FNV-1a fold of the snapshot format
    /// version and each part in order. Callers pass the point's
    /// configuration/workload renderings and seed; the version term makes
    /// every entry self-invalidate across format bumps.
    pub fn key(parts: &[&[u8]]) -> u64 {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&SNAPSHOT_FORMAT_VERSION.to_le_bytes());
        for p in parts {
            // Length-prefix each part so part boundaries can't alias.
            buf.extend_from_slice(&(p.len() as u64).to_le_bytes());
            buf.extend_from_slice(p);
        }
        csb_snap::fnv1a(&buf)
    }

    /// [`PointCache::key`] for `Debug`-renderable parts plus a seed: each
    /// rendering is streamed straight into the hash (no allocation — the
    /// hot path of a warm sweep is key computation). Each part's byte
    /// length is folded after its content, the streaming analogue of
    /// `key`'s length prefixes, so part boundaries can't alias.
    pub fn key_debug(parts: &[&dyn fmt::Debug], seed: u64) -> u64 {
        struct Counted {
            h: csb_snap::Fnv1a,
            len: u64,
        }
        impl fmt::Write for Counted {
            fn write_str(&mut self, s: &str) -> fmt::Result {
                self.h.update(s.as_bytes());
                self.len += s.len() as u64;
                Ok(())
            }
        }
        let mut w = Counted {
            h: csb_snap::Fnv1a::new(),
            len: 0,
        };
        w.h.update(&SNAPSHOT_FORMAT_VERSION.to_le_bytes());
        for p in parts {
            w.len = 0;
            let _ = write!(w, "{p:?}");
            let len = w.len;
            w.h.update(&len.to_le_bytes());
        }
        w.h.update(&seed.to_le_bytes());
        w.h.finish()
    }

    fn path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}"))
    }

    /// Loads the payload stored under `key`, or `None` on a miss. A
    /// present-but-invalid entry (corrupt, truncated, stale format) is
    /// counted as an invalidation, deleted, and reported as a miss so the
    /// caller re-simulates. The hit/miss counters are the caller's to
    /// bump ([`PointCache::note_hit`] / [`PointCache::note_miss`]) once
    /// it knows the payload decoded.
    pub fn load(&self, key: u64) -> Option<Vec<u8>> {
        let path = self.path(key);
        let bytes = fs::read(&path).ok()?;
        self.bytes_read
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        let payload = SnapshotReader::framed(&bytes, CACHE_MAGIC, SNAPSHOT_FORMAT_VERSION)
            .and_then(|mut r| {
                let p = r.take_bytes()?.to_vec();
                r.expect_end("cache entry")?;
                Ok(p)
            });
        match payload {
            Ok(p) => Some(p),
            Err(_) => {
                self.invalidate(key);
                None
            }
        }
    }

    /// Stores `payload` under `key` (temp file + atomic rename; I/O
    /// errors are swallowed — the cache is best-effort and a failed write
    /// only costs a future re-simulation).
    pub fn store(&self, key: u64, payload: &[u8]) {
        let mut w = SnapshotWriter::framed(CACHE_MAGIC, SNAPSHOT_FORMAT_VERSION);
        w.put_bytes(payload);
        let bytes = w.finish();
        let seq = self.tmp_seq.fetch_add(1, Ordering::Relaxed);
        let tmp = self.dir.join(format!("{key:016x}.tmp{seq}"));
        if fs::write(&tmp, &bytes).is_ok() {
            if fs::rename(&tmp, self.path(key)).is_ok() {
                self.bytes_written
                    .fetch_add(bytes.len() as u64, Ordering::Relaxed);
            } else {
                let _ = fs::remove_file(&tmp);
            }
        }
    }

    /// Deletes the entry under `key` and counts an invalidation (a
    /// caller that got a framed-but-undecodable payload uses this too).
    pub fn invalidate(&self, key: u64) {
        self.invalidations.fetch_add(1, Ordering::Relaxed);
        let _ = fs::remove_file(self.path(key));
    }

    /// Counts one served point.
    pub fn note_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one simulated point.
    pub fn note_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// A snapshot of the lifetime counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
        }
    }
}

static ACTIVE: Mutex<Option<Arc<PointCache>>> = Mutex::new(None);

/// Installs (or with `None` removes) the process-global cache the sweep
/// engines consult. The bench binaries call this from `--cache-dir`.
pub fn set_active(cache: Option<Arc<PointCache>>) {
    *ACTIVE.lock().expect("cache registry poisoned") = cache;
}

/// The installed cache, if any.
pub fn active() -> Option<Arc<PointCache>> {
    ACTIVE.lock().expect("cache registry poisoned").clone()
}

/// Lifetime counters of the installed cache, if any.
pub fn active_stats() -> Option<CacheStats> {
    active().map(|c| c.stats())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("csb-cache-test-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trips_and_counts() {
        let cache = PointCache::open(tmp_dir("rt")).unwrap();
        let key = PointCache::key(&[b"cfg", b"work", &7u64.to_le_bytes()]);
        assert!(cache.load(key).is_none());
        cache.store(key, b"payload");
        assert_eq!(cache.load(key).as_deref(), Some(&b"payload"[..]));
        let s = cache.stats();
        assert!(s.bytes_written > 0 && s.bytes_read > 0);
        assert_eq!(s.invalidations, 0);
        fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn corrupt_entry_is_invalidated() {
        let cache = PointCache::open(tmp_dir("corrupt")).unwrap();
        let key = PointCache::key(&[b"x"]);
        cache.store(key, b"data");
        let path = cache.dir().join(format!("{key:016x}"));
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        assert!(cache.load(key).is_none(), "flipped byte must fail checksum");
        assert_eq!(cache.stats().invalidations, 1);
        assert!(!path.exists(), "invalid entry must be deleted");
        fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn keys_separate_parts_and_version() {
        // ["ab","c"] and ["a","bc"] must not collide: parts are
        // length-prefixed inside the fold.
        assert_ne!(
            PointCache::key(&[b"ab", b"c"]),
            PointCache::key(&[b"a", b"bc"])
        );
        assert_ne!(PointCache::key(&[b"a"]), PointCache::key(&[b"b"]));
    }
}
