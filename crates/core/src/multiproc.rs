//! Multi-process execution: context switches, CSB conflicts, livelock, and
//! backoff.
//!
//! The CSB's non-blocking synchronization is only interesting when several
//! processes compete for it. This module time-slices one core between
//! processes (each with its own [`csb_cpu::CpuContext`] and PID) exactly the
//! way the paper's §3.2 scenario describes: a context switch in the middle
//! of a combining-store sequence lets the next process's first store clear
//! the buffer, so the interrupted process's conditional flush fails and its
//! software retry loop runs the sequence again.
//!
//! Two scheduling policies are provided:
//!
//! * [`SwitchPolicy::Fixed`] — switch every `n` CPU cycles. A slice shorter
//!   than a sequence reproduces the theoretical livelock the paper notes:
//!   every attempt is interrupted, every flush fails, nobody progresses.
//! * [`SwitchPolicy::Backoff`] — exponential backoff: a process whose slice
//!   ended with new flush failures gets a doubled slice next time (up to a
//!   cap). The paper suggests software backoff; granting a longer
//!   uninterrupted window models the same remedy at the scheduler level and
//!   restores progress.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use csb_cpu::CpuContext;
use csb_isa::Program;
use serde::{Deserialize, Serialize};

use crate::config::SimConfig;
use crate::sim::{ActorState, SimError, Simulator, WatchdogConfig};
use csb_faults::{FaultConfig, FaultStats};

/// Scheduling policy for the time-sliced core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SwitchPolicy {
    /// Round-robin with a fixed slice length in CPU cycles.
    Fixed(u64),
    /// Round-robin with exponential backoff: a slice that ends with new
    /// conditional-flush failures doubles the process's next slice.
    Backoff {
        /// Initial slice length in CPU cycles.
        base: u64,
        /// Upper bound on the slice length.
        max: u64,
    },
}

/// How the scheduler finds the next runnable process.
///
/// Both modes implement the *same* scheduling function — run the undone,
/// arrived process with the smallest `(wake, seq)` key (least recently
/// scheduled first, arrival order among never-run processes) — so every
/// simulation observable is byte-identical between them. They differ only
/// in traversal cost, i.e. host wall-clock:
///
/// * [`SchedulerMode::RoundRobin`] re-scans all `n` processes at every
///   pick and steps the clock through idle gaps one slice quantum at a
///   time — O(n) per pick, O(n · gap/quantum) per idle gap. This is the
///   legacy slicer, kept as the differential baseline.
/// * [`SchedulerMode::HorizonHeap`] keeps undone, non-running processes
///   in a binary min-heap keyed by `(wake, seq, pid)` — O(log n) per pick
///   — and jumps the clock straight to the heap minimum, so a fully idle
///   machine crosses an arrival gap in O(1) advances no matter how many
///   processors are parked.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulerMode {
    /// Legacy O(n) scan + slice-quantum clock stepping.
    RoundRobin,
    /// O(log n) horizon heap + single-jump idle gaps (the default).
    #[default]
    HorizonHeap,
}

/// Result of a multi-process run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiSummary {
    /// Total CPU cycles.
    pub cycles: u64,
    /// Context switches performed.
    pub switches: u64,
    /// Conditional flushes that failed (conflicts + interrupted sequences).
    pub flush_failures: u64,
    /// Conditional flushes that succeeded.
    pub flush_successes: u64,
    /// Per-process completion cycle, indexed by process.
    pub completions: Vec<u64>,
}

#[derive(Debug)]
struct Proc {
    program: Program,
    ctx: Option<CpuContext>, // None while running or never started
    done: bool,
    /// Cycle this process becomes schedulable for the first time
    /// (open-loop arrival; 0 = resident at reset).
    arrival: u64,
    /// Scheduling key, first component: the cycle this process last
    /// yielded the core (or its arrival, if it never ran).
    wake: u64,
    /// Scheduling key, second component: a monotone stamp that makes the
    /// ready queue FIFO among equal wakes (arrival/pid order before any
    /// process has run).
    seq: u64,
}

/// A time-sliced multi-process simulation on one core.
///
/// # Examples
///
/// Two processes hammering different CSB lines, switched every 200 cycles —
/// every switch mid-sequence costs a failed flush and a retry, but both
/// finish:
///
/// ```
/// use csb_core::{multiproc::{MultiSim, SwitchPolicy}, SimConfig, workloads};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cfg = SimConfig::default();
/// let programs = vec![
///     workloads::csb_worker(5, 8, 0, &cfg)?,
///     workloads::csb_worker(5, 8, 1, &cfg)?,
/// ];
/// let mut ms = MultiSim::new(cfg, programs, SwitchPolicy::Fixed(200))?;
/// let summary = ms.run(10_000_000)?;
/// assert_eq!(summary.flush_successes, 10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MultiSim {
    sim: Simulator,
    procs: Vec<Proc>,
    slices: Vec<u64>,
    policy: SwitchPolicy,
    current: usize,
    switches: u64,
    completions: Vec<Option<u64>>,
    /// CPU cycle the running process's slice started. Lives on the struct
    /// (not as a `run` local) so a snapshot taken mid-run resumes
    /// mid-slice.
    slice_start: u64,
    /// Flush-failure count at the slice boundary (backoff bookkeeping).
    failures_at_slice_start: u64,
    /// Flush-success count at the slice boundary (backoff bookkeeping).
    successes_at_slice_start: u64,
    /// Traversal strategy; never serialized (both modes compute the same
    /// schedule, so snapshots are mode-agnostic).
    mode: SchedulerMode,
    /// Next value of [`Proc::seq`]; starts at `n` (0..n seed the initial
    /// arrival order).
    seq_counter: u64,
    /// Ready queue for [`SchedulerMode::HorizonHeap`]: exactly the undone,
    /// non-running processes, keyed `(wake, seq, pid)`. Entries are exact,
    /// never stale — one push when a process yields (or at reset/restore
    /// rebuild), one pop when it is picked; the running process has no
    /// entry, and a key is never re-written while queued.
    heap: BinaryHeap<Reverse<(u64, u64, usize)>>,
}

impl MultiSim {
    /// Creates a run of `programs`, process `i` receiving PID `i`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] for invalid machine configurations.
    ///
    /// # Panics
    ///
    /// Panics if `programs` is empty.
    pub fn new(
        cfg: SimConfig,
        programs: Vec<Program>,
        policy: SwitchPolicy,
    ) -> Result<Self, SimError> {
        assert!(!programs.is_empty(), "at least one process required");
        let base_slice = match policy {
            SwitchPolicy::Fixed(n) => n,
            SwitchPolicy::Backoff { base, .. } => base,
        };
        let n = programs.len();
        let sim = Simulator::new(cfg, programs[0].clone())?;
        let procs = programs
            .into_iter()
            .enumerate()
            .map(|(i, program)| Proc {
                program,
                ctx: if i == 0 {
                    None
                } else {
                    Some(CpuContext::new(i as u32))
                },
                done: false,
                arrival: 0,
                wake: 0,
                seq: i as u64,
            })
            .collect();
        let mut ms = MultiSim {
            sim,
            procs,
            slices: vec![base_slice.max(1); n],
            policy,
            current: 0,
            switches: 0,
            completions: vec![None; n],
            slice_start: 0,
            failures_at_slice_start: 0,
            successes_at_slice_start: 0,
            mode: SchedulerMode::default(),
            seq_counter: n as u64,
            heap: BinaryHeap::new(),
        };
        ms.rebuild_heap();
        Ok(ms)
    }

    /// Installs per-process arrival cycles (open-loop workload): process
    /// `i` first becomes schedulable at cycle `arrivals[i]`. Must be
    /// called before the run starts; process 0 is resident at reset, so
    /// `arrivals[0]` must be 0.
    ///
    /// # Panics
    ///
    /// Panics if `arrivals.len()` differs from the process count, if
    /// `arrivals[0] != 0`, or if the run has already started.
    pub fn set_arrivals(&mut self, arrivals: &[u64]) {
        assert_eq!(
            arrivals.len(),
            self.procs.len(),
            "one arrival cycle per process"
        );
        assert_eq!(arrivals[0], 0, "process 0 is resident at reset");
        assert!(
            self.sim.cpu().now() == 0 && self.switches == 0,
            "arrivals must be installed before the run starts"
        );
        for (p, &at) in self.procs.iter_mut().zip(arrivals) {
            p.arrival = at;
            p.wake = at;
        }
        self.rebuild_heap();
    }

    /// Selects the scheduler traversal (see [`SchedulerMode`]). Both modes
    /// produce byte-identical simulations; this only changes host cost.
    pub fn set_scheduler(&mut self, mode: SchedulerMode) {
        self.mode = mode;
        self.rebuild_heap();
    }

    /// The active scheduler traversal.
    pub fn scheduler(&self) -> SchedulerMode {
        self.mode
    }

    /// Repopulates the ready heap from the per-process `(wake, seq)`
    /// fields — the heap is derived state (reset, restore, mode change).
    fn rebuild_heap(&mut self) {
        self.heap.clear();
        for (i, p) in self.procs.iter().enumerate() {
            if !p.done && i != self.current {
                self.heap.push(Reverse((p.wake, p.seq, i)));
            }
        }
    }

    /// Minimum `(wake, seq, pid)` over the schedulable processes, without
    /// removing it. Within the pick block the running process is included
    /// when still undone (it was just yield-stamped).
    fn peek_next(&self) -> Option<(u64, u64, usize)> {
        match self.mode {
            SchedulerMode::HorizonHeap => self.heap.peek().map(|Reverse(k)| *k),
            SchedulerMode::RoundRobin => self
                .procs
                .iter()
                .enumerate()
                .filter(|(_, p)| !p.done)
                .map(|(i, p)| (p.wake, p.seq, i))
                .min(),
        }
    }

    /// Clock step for legacy idle-gap crossing: one base slice per
    /// advance, mirroring the per-slice wakeups a round-robin slicer
    /// would burn while every resident process is parked.
    fn gap_quantum(&self) -> u64 {
        match self.policy {
            SwitchPolicy::Fixed(n) => n.max(1),
            SwitchPolicy::Backoff { base, .. } => base.max(1),
        }
    }

    fn switch_to(&mut self, next: usize) {
        let incoming = self.procs[next]
            .ctx
            .take()
            .expect("undone, non-running process has a saved context");
        let program = self.procs[next].program.clone();
        let outgoing = self.sim.cpu_mut().switch_context(incoming, Some(program));
        if !self.procs[self.current].done {
            self.procs[self.current].ctx = Some(outgoing);
        }
        self.current = next;
        self.switches += 1;
    }

    /// Builds the per-process actor snapshot for a livelock report.
    fn enrich_livelock(&self, e: SimError) -> SimError {
        match e {
            SimError::Livelock(mut r) => {
                r.actors = self
                    .procs
                    .iter()
                    .enumerate()
                    .map(|(i, p)| ActorState {
                        name: format!("proc{i}"),
                        running: i == self.current,
                        halted: p.done,
                        completion_cycle: self.completions[i],
                        slice: self.slices[i],
                    })
                    .collect();
                SimError::Livelock(r)
            }
            other => other,
        }
    }

    /// Runs until every process has halted and the machine drained.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Livelock`] when the progress watchdog detects a
    /// livelock (e.g. a fixed slice shorter than the CSB sequence, so no
    /// flush ever succeeds — the paper's §3.2 scenario), with one
    /// [`ActorState`] per process in the report, or
    /// [`SimError::CycleLimit`] if the run merely ran out of cycles.
    pub fn run(&mut self, limit: u64) -> Result<MultiSummary, SimError> {
        loop {
            if self.procs.iter().all(|p| p.done) {
                // Drain remaining bus traffic.
                while !self.sim.complete() {
                    if self.sim.cpu().now() >= limit {
                        return Err(SimError::CycleLimit { limit });
                    }
                    self.sim
                        .advance_checked(limit)
                        .map_err(|e| self.enrich_livelock(e))?;
                }
                break;
            }
            let now = self.sim.cpu().now();
            if now >= limit {
                return Err(SimError::CycleLimit { limit });
            }

            // Pick before advancing: if the running process is done or its
            // slice is over, hand the core to the minimum-(wake, seq)
            // schedulable process — crossing the idle gap first when that
            // minimum is a future arrival.
            let cur_done = self.procs[self.current].done;
            let slice_over = !cur_done
                && now.saturating_sub(self.slice_start) >= self.slices[self.current]
                // A precise interrupt waits for an in-flight side-effecting
                // head instruction (e.g. a conditional flush that already
                // reached the CSB) to retire; switching under it would
                // replay the I/O operation.
                && self.sim.cpu().switch_safe();
            if cur_done || slice_over {
                // Backoff bookkeeping for the outgoing process: a slice that
                // saw a failed flush doubles the next slice; a slice that
                // made progress (successful flush) resets it; an inconclusive
                // slice (sequence still mid-flight) keeps the current length
                // so doubling can accumulate out of a livelock.
                if let SwitchPolicy::Backoff { base, max } = self.policy {
                    let stats = self.sim.csb_stats();
                    let idx = self.current;
                    if !cur_done && stats.flush_failures > self.failures_at_slice_start {
                        self.slices[idx] = (self.slices[idx] * 2).min(max.max(base));
                    } else if stats.flush_successes > self.successes_at_slice_start {
                        self.slices[idx] = base.max(1);
                    }
                }
                // Yield-stamp the outgoing process: it re-enters the ready
                // queue behind everything already waiting (monotone seq
                // keeps the queue FIFO, which is exactly the legacy
                // rotation order).
                if !cur_done {
                    let p = &mut self.procs[self.current];
                    p.wake = now;
                    p.seq = self.seq_counter;
                    self.seq_counter += 1;
                    if self.mode == SchedulerMode::HorizonHeap {
                        self.heap.push(Reverse((p.wake, p.seq, self.current)));
                    }
                }
                // Commit the pick, crossing the idle gap first if every
                // schedulable process is a future arrival. A gap can only
                // open once the running process halted (an undone resident
                // would have wake == now), so the machine is quiescent
                // modulo bus drain and advancing to the next arrival is
                // safe. The planned sleep is reported to the watchdog so
                // it does not read as a stall — `note_scheduled_wake`
                // defers only once the machine is drained, so a genuine
                // NACK storm keeps its original deadline in both modes.
                loop {
                    let (wake, _seq, idx) = self.peek_next().expect("an undone process exists");
                    let now = self.sim.cpu().now();
                    if wake <= now {
                        if self.mode == SchedulerMode::HorizonHeap {
                            self.heap.pop();
                        }
                        if idx != self.current {
                            self.switch_to(idx);
                        }
                        self.slice_start = now;
                        let stats = self.sim.csb_stats();
                        self.failures_at_slice_start = stats.flush_failures;
                        self.successes_at_slice_start = stats.flush_successes;
                        break;
                    }
                    if now >= limit {
                        return Err(SimError::CycleLimit { limit });
                    }
                    self.sim.note_scheduled_wake(wake.min(limit));
                    let cap = match self.mode {
                        // One jump to the next arrival, however far.
                        SchedulerMode::HorizonHeap => wake.min(limit),
                        // Legacy stepping: one slice quantum per advance,
                        // the cost profile of a slicer that re-polls every
                        // parked process each slice.
                        SchedulerMode::RoundRobin => {
                            wake.min(limit).min(now.saturating_add(self.gap_quantum()))
                        }
                    };
                    self.sim
                        .advance_checked(cap.max(now + 1))
                        .map_err(|e| self.enrich_livelock(e))?;
                }
            }

            let now = self.sim.cpu().now();
            if now >= limit {
                return Err(SimError::CycleLimit { limit });
            }
            // Fast-forward may jump an idle gap, but never past the point
            // where this loop would act: the end of the current slice (the
            // first cycle `slice_over` can fire — `switch_safe` is
            // invariant while the pipeline is inert, so if it is false now
            // it stays false until a real tick) or the cycle limit.
            let cap = if self.sim.cpu().switch_safe() {
                limit.min(self.slice_start.saturating_add(self.slices[self.current]))
            } else {
                limit
            };
            self.sim
                .advance_checked(cap.max(now + 1))
                .map_err(|e| self.enrich_livelock(e))?;

            if self.sim.cpu().halted() && !self.procs[self.current].done {
                self.procs[self.current].done = true;
                self.completions[self.current] = Some(self.sim.cpu().now());
            }
        }
        let summary = self.sim.summary();
        Ok(MultiSummary {
            cycles: summary.cycles,
            switches: self.switches,
            flush_failures: summary.csb.flush_failures,
            flush_successes: summary.csb.flush_successes,
            completions: self.completions.iter().map(|c| c.unwrap_or(0)).collect(),
        })
    }

    /// Serializes the whole multi-process state — scheduler (per-process
    /// contexts, slices, backoff bookkeeping) plus the underlying machine
    /// — into a versioned frame. Valid at any point, including after a
    /// [`SimError::CycleLimit`] return from [`MultiSim::run`]: a restored
    /// scheduler resumes mid-slice and finishes byte-identically to one
    /// that never stopped. [`MultiSim::restore`] needs the same
    /// `(cfg, programs, policy)` triple again.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = csb_snap::SnapshotWriter::framed(
            crate::snapshot::SNAPSHOT_MAGIC,
            crate::snapshot::SNAPSHOT_FORMAT_VERSION,
        );
        w.put_u64(crate::snapshot::config_fingerprint(self.sim.config()));
        w.put_u64(csb_snap::fnv1a(format!("{:?}", self.policy).as_bytes()));
        w.put_usize(self.procs.len());
        for p in &self.procs {
            w.put_u64(crate::snapshot::program_fingerprint(&p.program));
        }
        w.put_tag("multi");
        w.put_usize(self.current);
        for p in &self.procs {
            match &p.ctx {
                Some(ctx) => {
                    w.put_bool(true);
                    ctx.save_state(&mut w);
                }
                None => w.put_bool(false),
            }
            w.put_bool(p.done);
        }
        for s in &self.slices {
            w.put_u64(*s);
        }
        w.put_u64(self.switches);
        for c in &self.completions {
            w.put_opt_u64(*c);
        }
        w.put_u64(self.slice_start);
        w.put_u64(self.failures_at_slice_start);
        w.put_u64(self.successes_at_slice_start);
        // Scheduler keys (format v2). The ready heap itself is not
        // serialized: it is derived state, rebuilt from these fields on
        // restore. SchedulerMode is deliberately absent — both traversals
        // compute the same schedule, so a snapshot taken under either
        // restores under either.
        for p in &self.procs {
            w.put_u64(p.arrival);
            w.put_u64(p.wake);
            w.put_u64(p.seq);
        }
        w.put_u64(self.seq_counter);
        self.sim.save_state(&mut w);
        w.finish()
    }

    /// Rebuilds a multi-process run from a [`MultiSim::snapshot`] frame
    /// taken under the same `(cfg, programs, policy)` triple.
    ///
    /// # Errors
    ///
    /// [`crate::RestoreError`] when the triple fails validation, the
    /// frame is malformed, or the fingerprints reveal a different
    /// configuration, policy, or program list.
    ///
    /// # Panics
    ///
    /// Panics if `programs` is empty (as [`MultiSim::new`]).
    pub fn restore(
        cfg: SimConfig,
        programs: Vec<Program>,
        policy: SwitchPolicy,
        bytes: &[u8],
    ) -> Result<Self, crate::RestoreError> {
        use crate::RestoreError;
        let mut ms = MultiSim::new(cfg, programs, policy)?;
        let mut r = csb_snap::SnapshotReader::framed(
            bytes,
            crate::snapshot::SNAPSHOT_MAGIC,
            crate::snapshot::SNAPSHOT_FORMAT_VERSION,
        )?;
        if r.take_u64()? != crate::snapshot::config_fingerprint(ms.sim.config()) {
            return Err(RestoreError::ConfigMismatch);
        }
        if r.take_u64()? != csb_snap::fnv1a(format!("{:?}", ms.policy).as_bytes()) {
            return Err(RestoreError::ConfigMismatch);
        }
        if r.take_usize()? != ms.procs.len() {
            return Err(RestoreError::ProgramMismatch);
        }
        for p in &ms.procs {
            if r.take_u64()? != crate::snapshot::program_fingerprint(&p.program) {
                return Err(RestoreError::ProgramMismatch);
            }
        }
        r.take_tag("multi")?;
        let current = r.take_usize()?;
        if current >= ms.procs.len() {
            return Err(RestoreError::Snapshot(csb_snap::SnapshotError::Corrupt(
                format!("running process {current} of {}", ms.procs.len()),
            )));
        }
        for p in &mut ms.procs {
            if r.take_bool()? {
                let mut ctx = CpuContext::new(0);
                ctx.restore_state(&mut r)?;
                p.ctx = Some(ctx);
            } else {
                p.ctx = None;
            }
            p.done = r.take_bool()?;
        }
        for s in &mut ms.slices {
            *s = r.take_u64()?;
        }
        ms.switches = r.take_u64()?;
        for c in &mut ms.completions {
            *c = r.take_opt_u64()?;
        }
        ms.slice_start = r.take_u64()?;
        ms.failures_at_slice_start = r.take_u64()?;
        ms.successes_at_slice_start = r.take_u64()?;
        for p in &mut ms.procs {
            p.arrival = r.take_u64()?;
            p.wake = r.take_u64()?;
            p.seq = r.take_u64()?;
        }
        ms.seq_counter = r.take_u64()?;
        // Install the running process's program before restoring the
        // machine: the CPU re-derives its in-flight instructions from the
        // program it holds.
        if current != 0 {
            let program = ms.procs[current].program.clone();
            let _ = ms
                .sim
                .cpu_mut()
                .switch_context(CpuContext::new(current as u32), Some(program));
        }
        ms.current = current;
        ms.sim.restore_state(&mut r)?;
        r.expect_end("multi-process snapshot")?;
        ms.rebuild_heap();
        Ok(ms)
    }

    /// The underlying simulator (device and statistics inspection).
    pub fn simulator(&self) -> &Simulator {
        &self.sim
    }

    /// Enables or disables event-driven fast-forward on the underlying
    /// simulator (see [`Simulator::set_fast_forward`]).
    pub fn set_fast_forward(&mut self, on: bool) {
        self.sim.set_fast_forward(on);
    }

    /// Starts recording counters and latency histograms on the underlying
    /// simulator (see [`Simulator::enable_metrics`]).
    pub fn enable_metrics(&mut self) {
        self.sim.enable_metrics();
    }

    /// Starts recording structured trace events on the underlying
    /// simulator (see [`Simulator::enable_tracing`]).
    pub fn enable_tracing(&mut self) {
        self.sim.enable_tracing();
    }

    /// Installs a deterministic fault schedule on the underlying simulator
    /// (see [`Simulator::set_faults`]).
    pub fn set_faults(&mut self, cfg: Option<FaultConfig>) {
        self.sim.set_faults(cfg);
    }

    /// Counters of the active fault schedule (see
    /// [`Simulator::fault_stats`]).
    pub fn fault_stats(&self) -> FaultStats {
        self.sim.fault_stats()
    }

    /// Replaces the progress-watchdog thresholds (see
    /// [`Simulator::set_watchdog`]).
    pub fn set_watchdog(&mut self, cfg: WatchdogConfig) {
        self.sim.set_watchdog(cfg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;

    fn two_workers(cfg: &SimConfig, iters: usize) -> Vec<Program> {
        vec![
            workloads::csb_worker(iters, 8, 0, cfg).unwrap(),
            workloads::csb_worker(iters, 8, 1, cfg).unwrap(),
        ]
    }

    #[test]
    fn long_slices_avoid_conflicts() {
        let cfg = SimConfig::default();
        let programs = two_workers(&cfg, 3);
        let mut ms = MultiSim::new(cfg, programs, SwitchPolicy::Fixed(100_000)).unwrap();
        let s = ms.run(10_000_000).unwrap();
        assert_eq!(s.flush_successes, 6);
        assert_eq!(s.flush_failures, 0);
        assert!(s.completions.iter().all(|&c| c > 0));
    }

    #[test]
    fn short_slices_cause_conflicts_but_progress() {
        let cfg = SimConfig::default();
        let programs = two_workers(&cfg, 4);
        // A sequence is ~15-20 cycles; 60-cycle slices interrupt often but
        // leave room to finish sequences.
        let mut ms = MultiSim::new(cfg, programs, SwitchPolicy::Fixed(60)).unwrap();
        let s = ms.run(10_000_000).unwrap();
        assert_eq!(s.flush_successes, 8);
        assert!(
            s.flush_failures > 0,
            "interrupted sequences must fail flushes"
        );
        assert!(s.switches > 2);
    }

    #[test]
    fn pathological_slices_livelock() {
        let cfg = SimConfig::default();
        let programs = two_workers(&cfg, 1);
        // Slices far shorter than a sequence: no flush can ever succeed.
        // The watchdog must report a structured livelock well before the
        // cycle limit, with one actor per process.
        let mut ms = MultiSim::new(cfg, programs, SwitchPolicy::Fixed(6)).unwrap();
        match ms.run(300_000) {
            Err(SimError::Livelock(r)) => {
                assert_eq!(r.trigger, crate::sim::LivelockTrigger::FlushFutility);
                assert!(r.cycle < 300_000, "must fire before the cycle limit");
                assert_eq!(r.consecutive_flush_failures, 64);
                assert_eq!(r.csb.flush_successes, 0);
                assert_eq!(r.actors.len(), 2);
                assert!(r.actors.iter().all(|a| !a.halted));
                assert_eq!(r.actors[0].name, "proc0");
            }
            other => panic!("expected livelock, got {other:?}"),
        }
    }

    #[test]
    fn backoff_recovers_from_livelock() {
        let cfg = SimConfig::default();
        let programs = two_workers(&cfg, 2);
        let mut ms =
            MultiSim::new(cfg, programs, SwitchPolicy::Backoff { base: 6, max: 4096 }).unwrap();
        let s = ms.run(10_000_000).unwrap();
        assert_eq!(s.flush_successes, 4);
        assert!(s.flush_failures > 0, "backoff should be exercised");
    }

    #[test]
    fn retry_limit_fallback_survives_pathological_slicing() {
        // The paper's first livelock remedy: "limit the number of failed
        // conditional flushes". With 6-cycle slices the pure-CSB workers
        // livelock (see pathological_slices_livelock); the fallback workers
        // burn their retry budget and finish over the lock path instead.
        let cfg = SimConfig::default();
        let programs = vec![
            workloads::csb_sequence_with_fallback(8, 3, &cfg).unwrap(),
            workloads::csb_sequence_with_fallback(8, 3, &cfg).unwrap(),
        ];
        let mut ms = MultiSim::new(cfg, programs, SwitchPolicy::Fixed(6)).unwrap();
        let s = ms.run(10_000_000).unwrap();
        assert!(s.flush_failures >= 6, "both budgets must be exhausted");
        assert_eq!(
            s.flush_successes, 0,
            "no flush can succeed under 6-cycle slices"
        );
        assert!(s.completions.iter().all(|&c| c > 0), "fallback must finish");
        // The device still received both messages (16 dwords), via the
        // uncached window.
        assert_eq!(ms.simulator().device().payload_bytes(), 128);
    }

    #[test]
    fn single_process_degenerates_to_plain_run() {
        let cfg = SimConfig::default();
        let programs = vec![workloads::csb_worker(2, 4, 0, &cfg).unwrap()];
        let mut ms = MultiSim::new(cfg, programs, SwitchPolicy::Fixed(50)).unwrap();
        let s = ms.run(1_000_000).unwrap();
        assert_eq!(s.flush_successes, 2);
        assert_eq!(s.flush_failures, 0);
    }
}
