//! Multi-process execution: context switches, CSB conflicts, livelock, and
//! backoff.
//!
//! The CSB's non-blocking synchronization is only interesting when several
//! processes compete for it. This module time-slices one core between
//! processes (each with its own [`csb_cpu::CpuContext`] and PID) exactly the
//! way the paper's §3.2 scenario describes: a context switch in the middle
//! of a combining-store sequence lets the next process's first store clear
//! the buffer, so the interrupted process's conditional flush fails and its
//! software retry loop runs the sequence again.
//!
//! Two scheduling policies are provided:
//!
//! * [`SwitchPolicy::Fixed`] — switch every `n` CPU cycles. A slice shorter
//!   than a sequence reproduces the theoretical livelock the paper notes:
//!   every attempt is interrupted, every flush fails, nobody progresses.
//! * [`SwitchPolicy::Backoff`] — exponential backoff: a process whose slice
//!   ended with new flush failures gets a doubled slice next time (up to a
//!   cap). The paper suggests software backoff; granting a longer
//!   uninterrupted window models the same remedy at the scheduler level and
//!   restores progress.

use csb_cpu::CpuContext;
use csb_isa::Program;
use serde::{Deserialize, Serialize};

use crate::config::SimConfig;
use crate::sim::{ActorState, SimError, Simulator, WatchdogConfig};
use csb_faults::{FaultConfig, FaultStats};

/// Scheduling policy for the time-sliced core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SwitchPolicy {
    /// Round-robin with a fixed slice length in CPU cycles.
    Fixed(u64),
    /// Round-robin with exponential backoff: a slice that ends with new
    /// conditional-flush failures doubles the process's next slice.
    Backoff {
        /// Initial slice length in CPU cycles.
        base: u64,
        /// Upper bound on the slice length.
        max: u64,
    },
}

/// Result of a multi-process run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiSummary {
    /// Total CPU cycles.
    pub cycles: u64,
    /// Context switches performed.
    pub switches: u64,
    /// Conditional flushes that failed (conflicts + interrupted sequences).
    pub flush_failures: u64,
    /// Conditional flushes that succeeded.
    pub flush_successes: u64,
    /// Per-process completion cycle, indexed by process.
    pub completions: Vec<u64>,
}

#[derive(Debug)]
struct Proc {
    program: Program,
    ctx: Option<CpuContext>, // None while running or never started
    done: bool,
}

/// A time-sliced multi-process simulation on one core.
///
/// # Examples
///
/// Two processes hammering different CSB lines, switched every 200 cycles —
/// every switch mid-sequence costs a failed flush and a retry, but both
/// finish:
///
/// ```
/// use csb_core::{multiproc::{MultiSim, SwitchPolicy}, SimConfig, workloads};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cfg = SimConfig::default();
/// let programs = vec![
///     workloads::csb_worker(5, 8, 0, &cfg)?,
///     workloads::csb_worker(5, 8, 1, &cfg)?,
/// ];
/// let mut ms = MultiSim::new(cfg, programs, SwitchPolicy::Fixed(200))?;
/// let summary = ms.run(10_000_000)?;
/// assert_eq!(summary.flush_successes, 10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MultiSim {
    sim: Simulator,
    procs: Vec<Proc>,
    slices: Vec<u64>,
    policy: SwitchPolicy,
    current: usize,
    switches: u64,
    completions: Vec<Option<u64>>,
    /// CPU cycle the running process's slice started. Lives on the struct
    /// (not as a `run` local) so a snapshot taken mid-run resumes
    /// mid-slice.
    slice_start: u64,
    /// Flush-failure count at the slice boundary (backoff bookkeeping).
    failures_at_slice_start: u64,
    /// Flush-success count at the slice boundary (backoff bookkeeping).
    successes_at_slice_start: u64,
}

impl MultiSim {
    /// Creates a run of `programs`, process `i` receiving PID `i`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] for invalid machine configurations.
    ///
    /// # Panics
    ///
    /// Panics if `programs` is empty.
    pub fn new(
        cfg: SimConfig,
        programs: Vec<Program>,
        policy: SwitchPolicy,
    ) -> Result<Self, SimError> {
        assert!(!programs.is_empty(), "at least one process required");
        let base_slice = match policy {
            SwitchPolicy::Fixed(n) => n,
            SwitchPolicy::Backoff { base, .. } => base,
        };
        let n = programs.len();
        let sim = Simulator::new(cfg, programs[0].clone())?;
        let procs = programs
            .into_iter()
            .enumerate()
            .map(|(i, program)| Proc {
                program,
                ctx: if i == 0 {
                    None
                } else {
                    Some(CpuContext::new(i as u32))
                },
                done: false,
            })
            .collect();
        Ok(MultiSim {
            sim,
            procs,
            slices: vec![base_slice.max(1); n],
            policy,
            current: 0,
            switches: 0,
            completions: vec![None; n],
            slice_start: 0,
            failures_at_slice_start: 0,
            successes_at_slice_start: 0,
        })
    }

    fn next_undone(&self) -> Option<usize> {
        let n = self.procs.len();
        (1..=n)
            .map(|k| (self.current + k) % n)
            .find(|&i| !self.procs[i].done)
    }

    fn switch_to(&mut self, next: usize) {
        let incoming = self.procs[next]
            .ctx
            .take()
            .expect("undone, non-running process has a saved context");
        let program = self.procs[next].program.clone();
        let outgoing = self.sim.cpu_mut().switch_context(incoming, Some(program));
        if !self.procs[self.current].done {
            self.procs[self.current].ctx = Some(outgoing);
        }
        self.current = next;
        self.switches += 1;
    }

    /// Builds the per-process actor snapshot for a livelock report.
    fn enrich_livelock(&self, e: SimError) -> SimError {
        match e {
            SimError::Livelock(mut r) => {
                r.actors = self
                    .procs
                    .iter()
                    .enumerate()
                    .map(|(i, p)| ActorState {
                        name: format!("proc{i}"),
                        running: i == self.current,
                        halted: p.done,
                        completion_cycle: self.completions[i],
                        slice: self.slices[i],
                    })
                    .collect();
                SimError::Livelock(r)
            }
            other => other,
        }
    }

    /// Runs until every process has halted and the machine drained.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Livelock`] when the progress watchdog detects a
    /// livelock (e.g. a fixed slice shorter than the CSB sequence, so no
    /// flush ever succeeds — the paper's §3.2 scenario), with one
    /// [`ActorState`] per process in the report, or
    /// [`SimError::CycleLimit`] if the run merely ran out of cycles.
    pub fn run(&mut self, limit: u64) -> Result<MultiSummary, SimError> {
        loop {
            if self.procs.iter().all(|p| p.done) {
                // Drain remaining bus traffic.
                while !self.sim.complete() {
                    if self.sim.cpu().now() >= limit {
                        return Err(SimError::CycleLimit { limit });
                    }
                    self.sim
                        .advance_checked(limit)
                        .map_err(|e| self.enrich_livelock(e))?;
                }
                break;
            }
            let now = self.sim.cpu().now();
            if now >= limit {
                return Err(SimError::CycleLimit { limit });
            }
            // Fast-forward may jump an idle gap, but never past the point
            // where this loop would act: the end of the current slice (the
            // first cycle `slice_over` can fire — `switch_safe` is
            // invariant while the pipeline is inert, so if it is false now
            // it stays false until a real tick) or the cycle limit.
            let cap = if self.sim.cpu().switch_safe() {
                limit.min(self.slice_start.saturating_add(self.slices[self.current]))
            } else {
                limit
            };
            self.sim
                .advance_checked(cap.max(now + 1))
                .map_err(|e| self.enrich_livelock(e))?;
            let now = self.sim.cpu().now();

            if self.sim.cpu().halted() && !self.procs[self.current].done {
                self.procs[self.current].done = true;
                self.completions[self.current] = Some(now);
            }

            let cur_done = self.procs[self.current].done;
            let slice_over = now.saturating_sub(self.slice_start) >= self.slices[self.current]
                // A precise interrupt waits for an in-flight side-effecting
                // head instruction (e.g. a conditional flush that already
                // reached the CSB) to retire; switching under it would
                // replay the I/O operation.
                && self.sim.cpu().switch_safe();
            if cur_done || slice_over {
                // Backoff bookkeeping for the outgoing process: a slice that
                // saw a failed flush doubles the next slice; a slice that
                // made progress (successful flush) resets it; an inconclusive
                // slice (sequence still mid-flight) keeps the current length
                // so doubling can accumulate out of a livelock.
                if let SwitchPolicy::Backoff { base, max } = self.policy {
                    let stats = self.sim.csb_stats();
                    let idx = self.current;
                    if !cur_done && stats.flush_failures > self.failures_at_slice_start {
                        self.slices[idx] = (self.slices[idx] * 2).min(max.max(base));
                    } else if stats.flush_successes > self.successes_at_slice_start {
                        self.slices[idx] = base.max(1);
                    }
                }
                if let Some(next) = self.next_undone() {
                    if next != self.current {
                        self.switch_to(next);
                    }
                    self.slice_start = now;
                    let stats = self.sim.csb_stats();
                    self.failures_at_slice_start = stats.flush_failures;
                    self.successes_at_slice_start = stats.flush_successes;
                }
            }
        }
        let summary = self.sim.summary();
        Ok(MultiSummary {
            cycles: summary.cycles,
            switches: self.switches,
            flush_failures: summary.csb.flush_failures,
            flush_successes: summary.csb.flush_successes,
            completions: self.completions.iter().map(|c| c.unwrap_or(0)).collect(),
        })
    }

    /// Serializes the whole multi-process state — scheduler (per-process
    /// contexts, slices, backoff bookkeeping) plus the underlying machine
    /// — into a versioned frame. Valid at any point, including after a
    /// [`SimError::CycleLimit`] return from [`MultiSim::run`]: a restored
    /// scheduler resumes mid-slice and finishes byte-identically to one
    /// that never stopped. [`MultiSim::restore`] needs the same
    /// `(cfg, programs, policy)` triple again.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = csb_snap::SnapshotWriter::framed(
            crate::snapshot::SNAPSHOT_MAGIC,
            crate::snapshot::SNAPSHOT_FORMAT_VERSION,
        );
        w.put_u64(crate::snapshot::config_fingerprint(self.sim.config()));
        w.put_u64(csb_snap::fnv1a(format!("{:?}", self.policy).as_bytes()));
        w.put_usize(self.procs.len());
        for p in &self.procs {
            w.put_u64(crate::snapshot::program_fingerprint(&p.program));
        }
        w.put_tag("multi");
        w.put_usize(self.current);
        for p in &self.procs {
            match &p.ctx {
                Some(ctx) => {
                    w.put_bool(true);
                    ctx.save_state(&mut w);
                }
                None => w.put_bool(false),
            }
            w.put_bool(p.done);
        }
        for s in &self.slices {
            w.put_u64(*s);
        }
        w.put_u64(self.switches);
        for c in &self.completions {
            w.put_opt_u64(*c);
        }
        w.put_u64(self.slice_start);
        w.put_u64(self.failures_at_slice_start);
        w.put_u64(self.successes_at_slice_start);
        self.sim.save_state(&mut w);
        w.finish()
    }

    /// Rebuilds a multi-process run from a [`MultiSim::snapshot`] frame
    /// taken under the same `(cfg, programs, policy)` triple.
    ///
    /// # Errors
    ///
    /// [`crate::RestoreError`] when the triple fails validation, the
    /// frame is malformed, or the fingerprints reveal a different
    /// configuration, policy, or program list.
    ///
    /// # Panics
    ///
    /// Panics if `programs` is empty (as [`MultiSim::new`]).
    pub fn restore(
        cfg: SimConfig,
        programs: Vec<Program>,
        policy: SwitchPolicy,
        bytes: &[u8],
    ) -> Result<Self, crate::RestoreError> {
        use crate::RestoreError;
        let mut ms = MultiSim::new(cfg, programs, policy)?;
        let mut r = csb_snap::SnapshotReader::framed(
            bytes,
            crate::snapshot::SNAPSHOT_MAGIC,
            crate::snapshot::SNAPSHOT_FORMAT_VERSION,
        )?;
        if r.take_u64()? != crate::snapshot::config_fingerprint(ms.sim.config()) {
            return Err(RestoreError::ConfigMismatch);
        }
        if r.take_u64()? != csb_snap::fnv1a(format!("{:?}", ms.policy).as_bytes()) {
            return Err(RestoreError::ConfigMismatch);
        }
        if r.take_usize()? != ms.procs.len() {
            return Err(RestoreError::ProgramMismatch);
        }
        for p in &ms.procs {
            if r.take_u64()? != crate::snapshot::program_fingerprint(&p.program) {
                return Err(RestoreError::ProgramMismatch);
            }
        }
        r.take_tag("multi")?;
        let current = r.take_usize()?;
        if current >= ms.procs.len() {
            return Err(RestoreError::Snapshot(csb_snap::SnapshotError::Corrupt(
                format!("running process {current} of {}", ms.procs.len()),
            )));
        }
        for p in &mut ms.procs {
            if r.take_bool()? {
                let mut ctx = CpuContext::new(0);
                ctx.restore_state(&mut r)?;
                p.ctx = Some(ctx);
            } else {
                p.ctx = None;
            }
            p.done = r.take_bool()?;
        }
        for s in &mut ms.slices {
            *s = r.take_u64()?;
        }
        ms.switches = r.take_u64()?;
        for c in &mut ms.completions {
            *c = r.take_opt_u64()?;
        }
        ms.slice_start = r.take_u64()?;
        ms.failures_at_slice_start = r.take_u64()?;
        ms.successes_at_slice_start = r.take_u64()?;
        // Install the running process's program before restoring the
        // machine: the CPU re-derives its in-flight instructions from the
        // program it holds.
        if current != 0 {
            let program = ms.procs[current].program.clone();
            let _ = ms
                .sim
                .cpu_mut()
                .switch_context(CpuContext::new(current as u32), Some(program));
        }
        ms.current = current;
        ms.sim.restore_state(&mut r)?;
        r.expect_end("multi-process snapshot")?;
        Ok(ms)
    }

    /// The underlying simulator (device and statistics inspection).
    pub fn simulator(&self) -> &Simulator {
        &self.sim
    }

    /// Enables or disables event-driven fast-forward on the underlying
    /// simulator (see [`Simulator::set_fast_forward`]).
    pub fn set_fast_forward(&mut self, on: bool) {
        self.sim.set_fast_forward(on);
    }

    /// Installs a deterministic fault schedule on the underlying simulator
    /// (see [`Simulator::set_faults`]).
    pub fn set_faults(&mut self, cfg: Option<FaultConfig>) {
        self.sim.set_faults(cfg);
    }

    /// Counters of the active fault schedule (see
    /// [`Simulator::fault_stats`]).
    pub fn fault_stats(&self) -> FaultStats {
        self.sim.fault_stats()
    }

    /// Replaces the progress-watchdog thresholds (see
    /// [`Simulator::set_watchdog`]).
    pub fn set_watchdog(&mut self, cfg: WatchdogConfig) {
        self.sim.set_watchdog(cfg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;

    fn two_workers(cfg: &SimConfig, iters: usize) -> Vec<Program> {
        vec![
            workloads::csb_worker(iters, 8, 0, cfg).unwrap(),
            workloads::csb_worker(iters, 8, 1, cfg).unwrap(),
        ]
    }

    #[test]
    fn long_slices_avoid_conflicts() {
        let cfg = SimConfig::default();
        let programs = two_workers(&cfg, 3);
        let mut ms = MultiSim::new(cfg, programs, SwitchPolicy::Fixed(100_000)).unwrap();
        let s = ms.run(10_000_000).unwrap();
        assert_eq!(s.flush_successes, 6);
        assert_eq!(s.flush_failures, 0);
        assert!(s.completions.iter().all(|&c| c > 0));
    }

    #[test]
    fn short_slices_cause_conflicts_but_progress() {
        let cfg = SimConfig::default();
        let programs = two_workers(&cfg, 4);
        // A sequence is ~15-20 cycles; 60-cycle slices interrupt often but
        // leave room to finish sequences.
        let mut ms = MultiSim::new(cfg, programs, SwitchPolicy::Fixed(60)).unwrap();
        let s = ms.run(10_000_000).unwrap();
        assert_eq!(s.flush_successes, 8);
        assert!(
            s.flush_failures > 0,
            "interrupted sequences must fail flushes"
        );
        assert!(s.switches > 2);
    }

    #[test]
    fn pathological_slices_livelock() {
        let cfg = SimConfig::default();
        let programs = two_workers(&cfg, 1);
        // Slices far shorter than a sequence: no flush can ever succeed.
        // The watchdog must report a structured livelock well before the
        // cycle limit, with one actor per process.
        let mut ms = MultiSim::new(cfg, programs, SwitchPolicy::Fixed(6)).unwrap();
        match ms.run(300_000) {
            Err(SimError::Livelock(r)) => {
                assert_eq!(r.trigger, crate::sim::LivelockTrigger::FlushFutility);
                assert!(r.cycle < 300_000, "must fire before the cycle limit");
                assert_eq!(r.consecutive_flush_failures, 64);
                assert_eq!(r.csb.flush_successes, 0);
                assert_eq!(r.actors.len(), 2);
                assert!(r.actors.iter().all(|a| !a.halted));
                assert_eq!(r.actors[0].name, "proc0");
            }
            other => panic!("expected livelock, got {other:?}"),
        }
    }

    #[test]
    fn backoff_recovers_from_livelock() {
        let cfg = SimConfig::default();
        let programs = two_workers(&cfg, 2);
        let mut ms =
            MultiSim::new(cfg, programs, SwitchPolicy::Backoff { base: 6, max: 4096 }).unwrap();
        let s = ms.run(10_000_000).unwrap();
        assert_eq!(s.flush_successes, 4);
        assert!(s.flush_failures > 0, "backoff should be exercised");
    }

    #[test]
    fn retry_limit_fallback_survives_pathological_slicing() {
        // The paper's first livelock remedy: "limit the number of failed
        // conditional flushes". With 6-cycle slices the pure-CSB workers
        // livelock (see pathological_slices_livelock); the fallback workers
        // burn their retry budget and finish over the lock path instead.
        let cfg = SimConfig::default();
        let programs = vec![
            workloads::csb_sequence_with_fallback(8, 3, &cfg).unwrap(),
            workloads::csb_sequence_with_fallback(8, 3, &cfg).unwrap(),
        ];
        let mut ms = MultiSim::new(cfg, programs, SwitchPolicy::Fixed(6)).unwrap();
        let s = ms.run(10_000_000).unwrap();
        assert!(s.flush_failures >= 6, "both budgets must be exhausted");
        assert_eq!(
            s.flush_successes, 0,
            "no flush can succeed under 6-cycle slices"
        );
        assert!(s.completions.iter().all(|&c| c > 0), "fallback must finish");
        // The device still received both messages (16 dwords), via the
        // uncached window.
        assert_eq!(ms.simulator().device().payload_bytes(), 128);
    }

    #[test]
    fn single_process_degenerates_to_plain_run() {
        let cfg = SimConfig::default();
        let programs = vec![workloads::csb_worker(2, 4, 0, &cfg).unwrap()];
        let mut ms = MultiSim::new(cfg, programs, SwitchPolicy::Fixed(50)).unwrap();
        let s = ms.run(1_000_000).unwrap();
        assert_eq!(s.flush_successes, 2);
        assert_eq!(s.flush_failures, 0);
    }
}
