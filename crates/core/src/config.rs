//! Whole-machine configuration.

use std::fmt;

use csb_bus::BusConfig;
use csb_cpu::CpuConfig;
use csb_isa::{Addr, AddressMap, AddressSpace};
use csb_mem::MemoryConfig;
use csb_uncached::{CsbConfig, UncachedConfig};
use serde::{Deserialize, Serialize};

/// Base of the plain uncached I/O window (64 KiB).
pub const UNCACHED_BASE: u64 = 0x1000_0000;
/// Base of the uncached *combining* (CSB) window (64 KiB).
pub const COMBINING_BASE: u64 = 0x2000_0000;
/// Cached address used as the lock variable by the Figure 5 benchmark.
pub const LOCK_ADDR: u64 = 0x8000;

/// Size of each I/O window.
pub const IO_WINDOW: u64 = 0x1_0000;

/// Configuration of the complete simulated machine.
///
/// The default reproduces the paper's baseline: a 4-wide out-of-order core,
/// 64-byte cache lines with a 100-cycle miss, an 8-byte multiplexed bus at a
/// CPU:bus frequency ratio of 6, a non-combining uncached buffer, and a
/// single-buffered full-line CSB.
///
/// # Examples
///
/// ```
/// use csb_core::SimConfig;
/// use csb_bus::BusConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Figure 4(c)'s machine: 16-byte split bus with a turnaround cycle.
/// let cfg = SimConfig::default()
///     .bus(BusConfig::split(16).turnaround(1).max_burst(64).build()?)
///     .combining_block(32);
/// cfg.validate()?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// Core microarchitecture.
    pub cpu: CpuConfig,
    /// Cache hierarchy and memory latency.
    pub mem: MemoryConfig,
    /// System bus model.
    pub bus: BusConfig,
    /// CPU cycles per bus cycle (the paper's processor:bus frequency ratio).
    pub ratio: u64,
    /// Uncached buffer (combining block size = the baseline scheme).
    pub uncached: UncachedConfig,
    /// Conditional store buffer.
    pub csb: CsbConfig,
    /// Page-attribute map. [`SimConfig::default_map`] provides the standard
    /// layout used by all workload generators.
    pub map: AddressMap,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            cpu: CpuConfig::default(),
            mem: MemoryConfig::with_line(64),
            bus: BusConfig::multiplexed(8)
                .max_burst(64)
                .build()
                .expect("default bus config is valid"),
            ratio: 6,
            uncached: UncachedConfig::non_combining(),
            csb: CsbConfig::new(64),
            map: Self::default_map(),
        }
    }
}

impl SimConfig {
    /// The standard address layout: a plain-uncached window at
    /// [`UNCACHED_BASE`] and a combining window at [`COMBINING_BASE`];
    /// everything else cached.
    pub fn default_map() -> AddressMap {
        let mut map = AddressMap::new();
        map.add_region(Addr::new(UNCACHED_BASE), IO_WINDOW, AddressSpace::Uncached)
            .expect("static layout is valid");
        map.add_region(
            Addr::new(COMBINING_BASE),
            IO_WINDOW,
            AddressSpace::UncachedCombining,
        )
        .expect("static layout is valid");
        map
    }

    /// Cache-line size shared by the caches, the bus burst limit, and the
    /// CSB data register.
    pub fn line(&self) -> usize {
        self.mem.l1.line
    }

    /// Replaces the bus model.
    pub fn bus(mut self, bus: BusConfig) -> Self {
        self.bus = bus;
        self
    }

    /// Sets the CPU:bus frequency ratio.
    pub fn frequency_ratio(mut self, ratio: u64) -> Self {
        self.ratio = ratio;
        self
    }

    /// Sets the uncached buffer's combining block size.
    pub fn combining_block(mut self, block: usize) -> Self {
        self.uncached.block = block;
        self
    }

    /// Replaces the core configuration.
    pub fn cpu(mut self, cpu: CpuConfig) -> Self {
        self.cpu = cpu;
        self
    }

    /// Sets the cache-line size everywhere it appears (caches, bus burst
    /// limit, CSB line), keeping the machine self-consistent.
    pub fn line_size(mut self, line: usize) -> Self {
        self.mem = MemoryConfig {
            mem_latency: self.mem.mem_latency,
            ..MemoryConfig::with_line(line)
        };
        self.csb = CsbConfig { line, ..self.csb };
        let b = self.bus;
        let mut builder = match b.kind() {
            csb_bus::BusKind::Multiplexed => BusConfig::multiplexed(b.width()),
            csb_bus::BusKind::Split => BusConfig::split(b.width()),
        }
        .turnaround(b.turnaround())
        .min_addr_delay(b.min_addr_delay())
        .max_burst(line);
        if let Some(bg) = b.background() {
            builder = builder.background(bg.utilization, bg.burst);
        }
        if let Ok(bus) = builder.build() {
            self.bus = bus;
        }
        self
    }

    /// Enables the double-buffered CSB extension.
    pub fn csb_double_buffered(mut self) -> Self {
        self.csb.double_buffered = true;
        self
    }

    /// Enables the variable-burst CSB extension.
    pub fn csb_variable_burst(mut self) -> Self {
        self.csb.variable_burst = true;
        self
    }

    /// Checks cross-component consistency.
    ///
    /// # Errors
    ///
    /// Returns [`SimConfigError`] if the ratio is zero, line sizes disagree
    /// between the caches, the bus burst limit, and the CSB, or the
    /// combining block exceeds the line.
    pub fn validate(&self) -> Result<(), SimConfigError> {
        if self.ratio == 0 {
            return Err(SimConfigError::ZeroRatio);
        }
        let line = self.line();
        if self.mem.l2.line != line {
            return Err(SimConfigError::LineMismatch {
                what: "L2 line",
                got: self.mem.l2.line,
                line,
            });
        }
        if self.bus.max_burst() != line {
            return Err(SimConfigError::LineMismatch {
                what: "bus max burst",
                got: self.bus.max_burst(),
                line,
            });
        }
        if self.csb.line != line {
            return Err(SimConfigError::LineMismatch {
                what: "CSB line",
                got: self.csb.line,
                line,
            });
        }
        if self.uncached.block > line {
            return Err(SimConfigError::BlockExceedsLine {
                block: self.uncached.block,
                line,
            });
        }
        Ok(())
    }
}

/// Inconsistent [`SimConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimConfigError {
    /// The CPU:bus frequency ratio was zero.
    ZeroRatio,
    /// A component disagrees with the machine's cache-line size.
    LineMismatch {
        /// Which component.
        what: &'static str,
        /// Its configured size.
        got: usize,
        /// The machine line size.
        line: usize,
    },
    /// The uncached combining block exceeds the cache line.
    BlockExceedsLine {
        /// Configured block.
        block: usize,
        /// The machine line size.
        line: usize,
    },
}

impl fmt::Display for SimConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimConfigError::ZeroRatio => f.write_str("CPU:bus frequency ratio must be nonzero"),
            SimConfigError::LineMismatch { what, got, line } => {
                write!(f, "{what} is {got} but the machine line size is {line}")
            }
            SimConfigError::BlockExceedsLine { block, line } => {
                write!(f, "combining block {block} exceeds the cache line {line}")
            }
        }
    }
}

impl std::error::Error for SimConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_consistent() {
        let cfg = SimConfig::default();
        cfg.validate().unwrap();
        assert_eq!(cfg.line(), 64);
        assert_eq!(cfg.ratio, 6);
        assert_eq!(cfg.uncached.block, 8);
    }

    #[test]
    fn line_size_rebuilds_everything() {
        for line in [32usize, 64, 128] {
            let cfg = SimConfig::default().line_size(line);
            cfg.validate().unwrap();
            assert_eq!(cfg.line(), line);
            assert_eq!(cfg.bus.max_burst(), line);
            assert_eq!(cfg.csb.line, line);
        }
    }

    #[test]
    fn validation_catches_mismatches() {
        let cfg = SimConfig {
            ratio: 0,
            ..SimConfig::default()
        };
        assert_eq!(cfg.validate(), Err(SimConfigError::ZeroRatio));

        let mut cfg = SimConfig::default();
        cfg.csb.line = 32;
        assert!(matches!(
            cfg.validate(),
            Err(SimConfigError::LineMismatch { .. })
        ));

        let cfg = SimConfig::default().line_size(32).combining_block(64);
        assert!(matches!(
            cfg.validate(),
            Err(SimConfigError::BlockExceedsLine { .. })
        ));
        assert!(!cfg.validate().unwrap_err().to_string().is_empty());
    }

    #[test]
    fn default_map_layout() {
        let map = SimConfig::default_map();
        assert_eq!(map.space_of(Addr::new(LOCK_ADDR)), AddressSpace::Cached);
        assert_eq!(
            map.space_of(Addr::new(UNCACHED_BASE)),
            AddressSpace::Uncached
        );
        assert_eq!(
            map.space_of(Addr::new(COMBINING_BASE + 0x100)),
            AddressSpace::UncachedCombining
        );
    }

    #[test]
    fn builder_methods_compose() {
        let cfg = SimConfig::default()
            .frequency_ratio(9)
            .combining_block(64)
            .csb_double_buffered()
            .csb_variable_burst();
        assert_eq!(cfg.ratio, 9);
        assert!(cfg.csb.double_buffered);
        assert!(cfg.csb.variable_burst);
        cfg.validate().unwrap();
    }
}
