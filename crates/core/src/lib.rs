//! Full-system simulator for the conditional store buffer reproduction.
//!
//! This crate wires together every substrate built for the reproduction of
//! Schaelicke & Davis, *"Improving I/O Performance with a Conditional Store
//! Buffer"* (MICRO 1998):
//!
//! * the out-of-order core (`csb-cpu`),
//! * the two-level cache hierarchy and functional memory (`csb-mem`),
//! * the uncached combining buffer and the CSB itself (`csb-uncached`),
//! * the multiplexed / split system bus models (`csb-bus`),
//!
//! and adds everything the evaluation needs on top:
//!
//! * [`Simulator`] — the clocked machine (CPU cycles; the bus ticks every
//!   `ratio` CPU cycles) with an [`IoDevice`] sink recording every bus write,
//! * [`workloads`] — generators for the paper's microbenchmark kernels,
//! * [`experiments`] — harnesses that regenerate Figures 3, 4, and 5 plus
//!   the ablations discussed in the text,
//! * [`multiproc`] — a context-switching scheduler for the multi-process
//!   conflict, livelock, and backoff studies,
//! * [`dma`] — the PIO-vs-DMA break-even model from the qualitative
//!   evaluation (§5),
//! * fault injection ([`Simulator::set_faults`], re-exported from
//!   `csb-faults`) and a livelock watchdog
//!   ([`Simulator::set_watchdog`]) for the robustness studies: seeded,
//!   deterministic bus errors, device NACKs, and forced flush
//!   disturbances, with structured [`SimError::Livelock`] reports when
//!   retry loops stop making progress.
//!
//! # Examples
//!
//! Measure uncached store bandwidth through the CSB on the paper's default
//! machine (8-byte multiplexed bus, 64-byte lines, CPU:bus ratio 6):
//!
//! ```
//! use csb_core::{SimConfig, Simulator, workloads};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = SimConfig::default();
//! let program = workloads::store_bandwidth(256, &cfg, workloads::StorePath::Csb)?;
//! let mut sim = Simulator::new(cfg, program)?;
//! let summary = sim.run(1_000_000)?;
//!
//! // 256 bytes = 4 full-line bursts of 9 bus cycles each.
//! assert_eq!(summary.bus.transactions, 4);
//! let bw = summary.bus.effective_bandwidth();
//! assert!(bw > 6.0, "CSB should approach peak bandwidth, got {bw}");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod device;
mod sim;

pub mod cache;
pub mod dma;
pub mod experiments;
pub mod multiproc;
pub mod snapshot;
pub mod trace;
pub mod workloads;

pub use config::{SimConfig, SimConfigError, COMBINING_BASE, LOCK_ADDR, UNCACHED_BASE};
pub use csb_faults::{FaultConfig, FaultInjector, FaultKind, FaultStats, FaultWindow};
pub use device::{DeliveredWrite, IoDevice};
pub use sim::{
    default_fast_forward, set_default_fast_forward, ActorState, LivelockReport, LivelockTrigger,
    MetricsReport, RunSummary, SimError, Simulator, WatchdogConfig,
};
pub use snapshot::{RestoreError, SNAPSHOT_FORMAT_VERSION, SNAPSHOT_MAGIC};
