//! In-text ablation studies.
//!
//! * **Superscalar width vs. lock overhead** (§4.3.2): the paper reports
//!   that 2-way and 8-way machines "did not change the lock overhead at
//!   all, because of the short data and control dependencies".
//! * **Double-buffered CSB** (§3.2): a second line buffer lets combining
//!   stores proceed while a flushed line awaits the system interface.
//! * **Variable-burst CSB** (§3.2): on buses with multiple burst sizes the
//!   always-full-line restriction can be relaxed, removing the small-
//!   transfer padding penalty.

use csb_cpu::CpuConfig;
use serde::{Deserialize, Serialize};

use super::fig5::LockResidency;
use super::runner::{
    self, LabeledArtifacts, ObsConfig, PointSpec, PointValue, PointWork, RunReport,
};
use super::{ExpError, Scheme, TRANSFERS};
use crate::config::SimConfig;
use crate::workloads::StoreOrder;

/// Builds a bandwidth point spec for the ablation sweeps.
fn bw_spec(label: String, cfg: &SimConfig, transfer: usize, scheme: Scheme) -> PointSpec {
    bw_spec_ordered(label, cfg, transfer, scheme, StoreOrder::Ascending)
}

/// [`bw_spec`] with an explicit store order.
fn bw_spec_ordered(
    label: String,
    cfg: &SimConfig,
    transfer: usize,
    scheme: Scheme,
    order: StoreOrder,
) -> PointSpec {
    PointSpec {
        label,
        cfg: cfg.clone(),
        work: PointWork::Bandwidth {
            transfer,
            scheme,
            order,
        },
    }
}

/// Builds a lock-hit latency point spec for the ablation sweeps.
fn lat_spec(label: String, cfg: &SimConfig, dwords: usize, scheme: Scheme) -> PointSpec {
    PointSpec {
        label,
        cfg: cfg.clone(),
        work: PointWork::Latency {
            dwords,
            scheme,
            residency: LockResidency::Hit,
        },
    }
}

fn expect_bw(v: PointValue) -> f64 {
    v.bandwidth()
        .expect("ablation enumerated a bandwidth point")
}

fn expect_lat(v: PointValue) -> u64 {
    v.latency().expect("ablation enumerated a latency point")
}

/// Lock/CSB latency at a fixed transfer size for one machine width.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WidthRow {
    /// Superscalar width (dispatch/retire per cycle).
    pub width: usize,
    /// Lock sequence latency (cycles), non-combining, lock hit.
    pub lock_cycles: u64,
    /// CSB sequence latency (cycles).
    pub csb_cycles: u64,
}

/// Runs the superscalar-width ablation at `dwords` doublewords.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn superscalar_widths(dwords: usize) -> Result<Vec<WidthRow>, ExpError> {
    Ok(superscalar_widths_jobs(dwords, 1)?.0)
}

/// [`superscalar_widths`] on `jobs` workers, with the sweep's [`RunReport`].
///
/// # Errors
///
/// Propagates simulation failures.
pub fn superscalar_widths_jobs(
    dwords: usize,
    jobs: usize,
) -> Result<(Vec<WidthRow>, RunReport), ExpError> {
    let (rows, _, report) = superscalar_widths_jobs_observed(dwords, jobs, ObsConfig::default())?;
    Ok((rows, report))
}

/// [`superscalar_widths_jobs`] with artifact capture: also returns one
/// [`LabeledArtifacts`] per enumerated point, in enumeration order.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn superscalar_widths_jobs_observed(
    dwords: usize,
    jobs: usize,
    obs: ObsConfig,
) -> Result<(Vec<WidthRow>, Vec<LabeledArtifacts>, RunReport), ExpError> {
    let widths = [2usize, 4, 8];
    let specs: Vec<PointSpec> = widths
        .iter()
        .flat_map(|&width| {
            let cfg = SimConfig::default().cpu(CpuConfig::superscalar(width));
            [
                lat_spec(
                    format!("width/{width}/lock"),
                    &cfg,
                    dwords,
                    Scheme::Uncached { block: 8 },
                ),
                lat_spec(format!("width/{width}/csb"), &cfg, dwords, Scheme::Csb),
            ]
        })
        .collect();
    let (values, artifacts, report) = runner::run_values_observed(&specs, jobs, obs)?;
    let rows = widths
        .iter()
        .zip(values.chunks(2))
        .map(|(&width, pair)| WidthRow {
            width,
            lock_cycles: expect_lat(pair[0]),
            csb_cycles: expect_lat(pair[1]),
        })
        .collect();
    Ok((rows, artifacts, report))
}

/// Bandwidth comparison between two CSB configurations over [`TRANSFERS`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CsbVariantRow {
    /// Transfer size in bytes.
    pub transfer: usize,
    /// Baseline single-buffered full-line CSB (bytes/bus cycle).
    pub baseline: f64,
    /// The variant's bandwidth (bytes/bus cycle).
    pub variant: f64,
}

/// Compares the baseline CSB against the double-buffered extension.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn double_buffered() -> Result<Vec<CsbVariantRow>, ExpError> {
    Ok(double_buffered_jobs(1)?.0)
}

/// [`double_buffered`] on `jobs` workers, with the sweep's [`RunReport`].
///
/// # Errors
///
/// Propagates simulation failures.
pub fn double_buffered_jobs(jobs: usize) -> Result<(Vec<CsbVariantRow>, RunReport), ExpError> {
    let (rows, _, report) = double_buffered_jobs_observed(jobs, ObsConfig::default())?;
    Ok((rows, report))
}

/// [`double_buffered_jobs`] with artifact capture.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn double_buffered_jobs_observed(
    jobs: usize,
    obs: ObsConfig,
) -> Result<(Vec<CsbVariantRow>, Vec<LabeledArtifacts>, RunReport), ExpError> {
    csb_variant_jobs(
        SimConfig::default().csb_double_buffered(),
        "double",
        jobs,
        obs,
    )
}

/// Compares the baseline CSB against the variable-burst extension.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn variable_burst() -> Result<Vec<CsbVariantRow>, ExpError> {
    Ok(variable_burst_jobs(1)?.0)
}

/// [`variable_burst`] on `jobs` workers, with the sweep's [`RunReport`].
///
/// # Errors
///
/// Propagates simulation failures.
pub fn variable_burst_jobs(jobs: usize) -> Result<(Vec<CsbVariantRow>, RunReport), ExpError> {
    let (rows, _, report) = variable_burst_jobs_observed(jobs, ObsConfig::default())?;
    Ok((rows, report))
}

/// [`variable_burst_jobs`] with artifact capture.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn variable_burst_jobs_observed(
    jobs: usize,
    obs: ObsConfig,
) -> Result<(Vec<CsbVariantRow>, Vec<LabeledArtifacts>, RunReport), ExpError> {
    csb_variant_jobs(
        SimConfig::default().csb_variable_burst(),
        "varburst",
        jobs,
        obs,
    )
}

/// Shared sweep for the CSB extensions: baseline vs. variant over
/// [`TRANSFERS`], through the engine.
fn csb_variant_jobs(
    var_cfg: SimConfig,
    tag: &str,
    jobs: usize,
    obs: ObsConfig,
) -> Result<(Vec<CsbVariantRow>, Vec<LabeledArtifacts>, RunReport), ExpError> {
    let base_cfg = SimConfig::default();
    let specs: Vec<PointSpec> = TRANSFERS
        .iter()
        .flat_map(|&t| {
            [
                bw_spec(format!("{tag}/{t}B/base"), &base_cfg, t, Scheme::Csb),
                bw_spec(format!("{tag}/{t}B/variant"), &var_cfg, t, Scheme::Csb),
            ]
        })
        .collect();
    let (values, artifacts, report) = runner::run_values_observed(&specs, jobs, obs)?;
    let rows = TRANSFERS
        .iter()
        .zip(values.chunks(2))
        .map(|(&transfer, pair)| CsbVariantRow {
            transfer,
            baseline: expect_bw(pair[0]),
            variant: expect_bw(pair[1]),
        })
        .collect();
    Ok((rows, artifacts, report))
}

/// One scheme's bandwidth under three bus-load models.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadedBusRow {
    /// Scheme label.
    pub scheme: String,
    /// Dedicated, idle bus (the figures' baseline assumption).
    pub idle: f64,
    /// The paper's loaded-bus approximation: a turnaround cycle after every
    /// transaction.
    pub turnaround_approx: f64,
    /// Real multi-master contention: foreign masters holding one third of
    /// the bus in line-sized bursts.
    pub contention: f64,
}

/// Compares the paper's turnaround-as-loaded-bus approximation (Figure
/// 3(g)) against an explicit multi-master contention model at one-third
/// foreign utilization, for a 1 KiB transfer on the default machine.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn loaded_bus() -> Result<Vec<LoadedBusRow>, ExpError> {
    Ok(loaded_bus_jobs(1)?.0)
}

/// [`loaded_bus`] on `jobs` workers, with the sweep's [`RunReport`].
///
/// # Errors
///
/// Propagates simulation failures.
pub fn loaded_bus_jobs(jobs: usize) -> Result<(Vec<LoadedBusRow>, RunReport), ExpError> {
    let (rows, _, report) = loaded_bus_jobs_observed(jobs, ObsConfig::default())?;
    Ok((rows, report))
}

/// [`loaded_bus_jobs`] with artifact capture.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn loaded_bus_jobs_observed(
    jobs: usize,
    obs: ObsConfig,
) -> Result<(Vec<LoadedBusRow>, Vec<LabeledArtifacts>, RunReport), ExpError> {
    let idle_cfg = SimConfig::default();
    let approx_cfg = SimConfig::default().bus(
        csb_bus::BusConfig::multiplexed(8)
            .max_burst(64)
            .turnaround(1)
            .build()
            .expect("static config is valid"),
    );
    let loaded_cfg = SimConfig::default().bus(
        csb_bus::BusConfig::multiplexed(8)
            .max_burst(64)
            .background(1.0 / 3.0, 64)
            .build()
            .expect("static config is valid"),
    );
    let schemes = [
        Scheme::Uncached { block: 8 },
        Scheme::Uncached { block: 64 },
        Scheme::Csb,
    ];
    let specs: Vec<PointSpec> = schemes
        .iter()
        .flat_map(|&s| {
            [
                bw_spec(format!("load/{s}/idle"), &idle_cfg, 1024, s),
                bw_spec(format!("load/{s}/approx"), &approx_cfg, 1024, s),
                bw_spec(format!("load/{s}/contention"), &loaded_cfg, 1024, s),
            ]
        })
        .collect();
    let (values, artifacts, report) = runner::run_values_observed(&specs, jobs, obs)?;
    let rows = schemes
        .iter()
        .zip(values.chunks(3))
        .map(|(&s, triple)| LoadedBusRow {
            scheme: s.to_string(),
            idle: expect_bw(triple[0]),
            turnaround_approx: expect_bw(triple[1]),
            contention: expect_bw(triple[2]),
        })
        .collect();
    Ok((rows, artifacts, report))
}

/// Bandwidth as a function of uncached-buffer capacity for one scheme.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CapacityRow {
    /// Buffer entries.
    pub capacity: usize,
    /// Non-combining bandwidth at 1 KiB (B/bus-cycle).
    pub none: f64,
    /// Full-line combining bandwidth at 1 KiB.
    pub full_line: f64,
}

/// Sweeps the uncached buffer's entry count. Combining quality depends on
/// how long stores wait in the buffer (§4.1: "combining is limited by the
/// time that an entry spends waiting in the buffer"), and a deeper buffer
/// absorbs a longer burst of retired stores before stalling the core.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn buffer_capacity() -> Result<Vec<CapacityRow>, ExpError> {
    Ok(buffer_capacity_jobs(1)?.0)
}

/// [`buffer_capacity`] on `jobs` workers, with the sweep's [`RunReport`].
///
/// # Errors
///
/// Propagates simulation failures.
pub fn buffer_capacity_jobs(jobs: usize) -> Result<(Vec<CapacityRow>, RunReport), ExpError> {
    let (rows, _, report) = buffer_capacity_jobs_observed(jobs, ObsConfig::default())?;
    Ok((rows, report))
}

/// [`buffer_capacity_jobs`] with artifact capture.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn buffer_capacity_jobs_observed(
    jobs: usize,
    obs: ObsConfig,
) -> Result<(Vec<CapacityRow>, Vec<LabeledArtifacts>, RunReport), ExpError> {
    let capacities = [2usize, 4, 8, 16];
    let specs: Vec<PointSpec> = capacities
        .iter()
        .flat_map(|&capacity| {
            let mut none_cfg = SimConfig::default();
            none_cfg.uncached.capacity = capacity;
            let mut full_cfg = SimConfig::default().combining_block(64);
            full_cfg.uncached.capacity = capacity;
            [
                bw_spec(
                    format!("depth/{capacity}/none"),
                    &none_cfg,
                    1024,
                    Scheme::Uncached { block: 8 },
                ),
                bw_spec(
                    format!("depth/{capacity}/full"),
                    &full_cfg,
                    1024,
                    Scheme::Uncached { block: 64 },
                ),
            ]
        })
        .collect();
    let (values, artifacts, report) = runner::run_values_observed(&specs, jobs, obs)?;
    let rows = capacities
        .iter()
        .zip(values.chunks(2))
        .map(|(&capacity, pair)| CapacityRow {
            capacity,
            none: expect_bw(pair[0]),
            full_line: expect_bw(pair[1]),
        })
        .collect();
    Ok((rows, artifacts, report))
}

/// CSB sequence latency as a function of the core's uncached issue rate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IssueRateRow {
    /// Non-speculative uncached operations issued per cycle at retirement.
    pub per_cycle: usize,
    /// CSB sequence latency for 8 doublewords (CPU cycles).
    pub csb_cycles: u64,
}

/// Sweeps the retirement-stage uncached issue rate: the paper's model
/// issues one non-speculative operation per cycle, which is what pins the
/// CSB's latency slope at 1 cycle per doubleword; a dual-issue uncached
/// path halves the slope.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn uncached_issue_rate() -> Result<Vec<IssueRateRow>, ExpError> {
    Ok(uncached_issue_rate_jobs(1)?.0)
}

/// [`uncached_issue_rate`] on `jobs` workers, with the sweep's [`RunReport`].
///
/// # Errors
///
/// Propagates simulation failures.
pub fn uncached_issue_rate_jobs(jobs: usize) -> Result<(Vec<IssueRateRow>, RunReport), ExpError> {
    let (rows, _, report) = uncached_issue_rate_jobs_observed(jobs, ObsConfig::default())?;
    Ok((rows, report))
}

/// [`uncached_issue_rate_jobs`] with artifact capture.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn uncached_issue_rate_jobs_observed(
    jobs: usize,
    obs: ObsConfig,
) -> Result<(Vec<IssueRateRow>, Vec<LabeledArtifacts>, RunReport), ExpError> {
    let rates = [1usize, 2, 4];
    let specs: Vec<PointSpec> = rates
        .iter()
        .map(|&per_cycle| {
            let mut cfg = SimConfig::default();
            cfg.cpu.uncached_per_cycle = per_cycle;
            lat_spec(format!("issue/{per_cycle}/csb"), &cfg, 8, Scheme::Csb)
        })
        .collect();
    let (values, artifacts, report) = runner::run_values_observed(&specs, jobs, obs)?;
    let rows = rates
        .iter()
        .zip(values)
        .map(|(&per_cycle, v)| IssueRateRow {
            per_cycle,
            csb_cycles: expect_lat(v),
        })
        .collect();
    Ok((rows, artifacts, report))
}

/// Store-order sensitivity of one scheme at one transfer size.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OrderSensitivityRow {
    /// Transfer size in bytes.
    pub transfer: usize,
    /// Scheme label.
    pub scheme: String,
    /// Bandwidth (B/bus-cycle) with ascending consecutive stores.
    pub ascending: f64,
    /// Bandwidth with the per-line even/odd shuffle.
    pub shuffled: f64,
}

/// Quantifies the paper's §2 claim that hardware pattern-combining "fails
/// if the sequence of stores is interrupted": compares the related-work
/// baselines (R10000 uncached-accelerated, PowerPC 620 pairing) against
/// idealized block combining and the CSB under ascending vs. shuffled
/// per-line store order, on the default machine.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn related_work() -> Result<Vec<OrderSensitivityRow>, ExpError> {
    Ok(related_work_jobs(1)?.0)
}

/// [`related_work`] on `jobs` workers, with the sweep's [`RunReport`].
///
/// # Errors
///
/// Propagates simulation failures.
pub fn related_work_jobs(jobs: usize) -> Result<(Vec<OrderSensitivityRow>, RunReport), ExpError> {
    let (rows, _, report) = related_work_jobs_observed(jobs, ObsConfig::default())?;
    Ok((rows, report))
}

/// [`related_work_jobs`] with artifact capture.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn related_work_jobs_observed(
    jobs: usize,
    obs: ObsConfig,
) -> Result<(Vec<OrderSensitivityRow>, Vec<LabeledArtifacts>, RunReport), ExpError> {
    let cfg = SimConfig::default();
    let schemes = [
        Scheme::Uncached { block: 8 },
        Scheme::Ppc620,
        Scheme::R10k,
        Scheme::Uncached { block: 64 },
        Scheme::Csb,
    ];
    let grid: Vec<(usize, Scheme)> = [64usize, 256, 1024]
        .iter()
        .flat_map(|&t| schemes.iter().map(move |&s| (t, s)))
        .collect();
    let specs: Vec<PointSpec> = grid
        .iter()
        .flat_map(|&(t, s)| {
            [
                bw_spec_ordered(
                    format!("order/{t}B/{s}/asc"),
                    &cfg,
                    t,
                    s,
                    StoreOrder::Ascending,
                ),
                bw_spec_ordered(
                    format!("order/{t}B/{s}/shuf"),
                    &cfg,
                    t,
                    s,
                    StoreOrder::Shuffled,
                ),
            ]
        })
        .collect();
    let (values, artifacts, report) = runner::run_values_observed(&specs, jobs, obs)?;
    let rows = grid
        .iter()
        .zip(values.chunks(2))
        .map(|(&(transfer, s), pair)| OrderSensitivityRow {
            transfer,
            scheme: s.to_string(),
            ascending: expect_bw(pair[0]),
            shuffled: expect_bw(pair[1]),
        })
        .collect();
    Ok((rows, artifacts, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{bandwidth_point, bandwidth_point_ordered};

    #[test]
    fn r10000_matches_full_line_on_ascending_streams() {
        let cfg = SimConfig::default();
        let r10k = bandwidth_point(&cfg, 1024, Scheme::R10k).unwrap();
        let block = bandwidth_point(&cfg, 1024, Scheme::Uncached { block: 64 }).unwrap();
        assert!(
            (r10k - block).abs() < 0.5,
            "sequential streams: R10000 {r10k} ~ block combining {block}"
        );
    }

    #[test]
    fn r10000_collapses_on_shuffled_streams() {
        // The §2 claim: pattern detection fails on interrupted sequences,
        // degrading to single-beat transfers (the non-combining 4 B/c),
        // while block combining and the CSB do not care about order.
        let cfg = SimConfig::default();
        let r10k = bandwidth_point_ordered(&cfg, 1024, Scheme::R10k, StoreOrder::Shuffled).unwrap();
        assert!(
            (r10k - 4.0).abs() < 0.3,
            "shuffled R10000 ~ non-combining, got {r10k}"
        );
        let block = bandwidth_point_ordered(
            &cfg,
            1024,
            Scheme::Uncached { block: 64 },
            StoreOrder::Shuffled,
        )
        .unwrap();
        assert!(
            block > 6.5,
            "block combining is order-insensitive, got {block}"
        );
        let csb = bandwidth_point_ordered(&cfg, 1024, Scheme::Csb, StoreOrder::Shuffled).unwrap();
        assert!(
            (csb - 64.0 / 9.0).abs() < 0.2,
            "CSB is order-insensitive, got {csb}"
        );
    }

    #[test]
    fn ppc620_pairs_only_consecutive_stores() {
        let cfg = SimConfig::default();
        let asc = bandwidth_point(&cfg, 1024, Scheme::Ppc620).unwrap();
        assert!(
            (asc - 16.0 / 3.0).abs() < 0.2,
            "pairs: 16B per 3 cycles, got {asc}"
        );
        let shuf =
            bandwidth_point_ordered(&cfg, 1024, Scheme::Ppc620, StoreOrder::Shuffled).unwrap();
        assert!(
            (shuf - 4.0).abs() < 0.3,
            "no pairs when shuffled, got {shuf}"
        );
    }

    #[test]
    fn deeper_buffers_help_combining_not_singles() {
        let rows = buffer_capacity().unwrap();
        let shallow = rows.iter().find(|r| r.capacity == 2).unwrap();
        let deep = rows.iter().find(|r| r.capacity == 16).unwrap();
        // Non-combining is bus-bound: 4 B/c regardless of depth.
        assert!((shallow.none - 4.0).abs() < 0.1);
        assert!((deep.none - 4.0).abs() < 0.1);
        // Combining cannot get worse with depth.
        assert!(deep.full_line + 1e-9 >= shallow.full_line);
    }

    #[test]
    fn dual_issue_uncached_path_cuts_csb_latency() {
        let rows = uncached_issue_rate().unwrap();
        let single = rows.iter().find(|r| r.per_cycle == 1).unwrap().csb_cycles;
        let dual = rows.iter().find(|r| r.per_cycle == 2).unwrap().csb_cycles;
        assert!(dual < single, "dual issue {dual} must beat single {single}");
        // The slope component halves: 8 stores at 2/cycle save ~4 cycles.
        assert!(single - dual >= 3, "saved {} cycles", single - dual);
    }

    #[test]
    fn loaded_bus_degrades_everyone_but_csb_least() {
        let rows = loaded_bus().unwrap();
        for r in &rows {
            assert!(
                r.turnaround_approx < r.idle,
                "{}: approx must cost bandwidth",
                r.scheme
            );
            assert!(
                r.contention < r.idle,
                "{}: contention must cost bandwidth",
                r.scheme
            );
        }
        let none = rows.iter().find(|r| r.scheme == "none").unwrap();
        let csb = rows.iter().find(|r| r.scheme == "CSB").unwrap();
        // Under contention the CSB's relative advantage grows: bursts lose a
        // smaller fraction of their bandwidth than single beats do.
        assert!(
            csb.contention / csb.idle > none.contention / none.idle,
            "CSB {:.2}/{:.2} vs none {:.2}/{:.2}",
            csb.contention,
            csb.idle,
            none.contention,
            none.idle
        );
    }

    #[test]
    fn related_work_table_is_complete() {
        let rows = related_work().unwrap();
        assert_eq!(rows.len(), 15); // 3 transfers x 5 schemes
        assert!(rows.iter().any(|r| r.scheme == "R10000"));
    }

    #[test]
    fn lock_overhead_insensitive_to_width() {
        // The paper's claim: short dependence chains make the lock overhead
        // identical on 2-way and 8-way machines. Allow a small tolerance
        // for front-end width effects.
        let rows = superscalar_widths(4).unwrap();
        let base = rows.iter().find(|r| r.width == 4).unwrap().lock_cycles;
        for r in &rows {
            let diff = r.lock_cycles.abs_diff(base);
            assert!(
                diff <= base / 5,
                "width {} lock {} deviates from width-4 {}",
                r.width,
                r.lock_cycles,
                base
            );
        }
    }

    #[test]
    fn variable_burst_removes_small_transfer_penalty() {
        let rows = variable_burst().unwrap();
        let t16 = rows.iter().find(|r| r.transfer == 16).unwrap();
        // 16 bytes: full line costs 9 bus cycles; a 16B transaction costs 3.
        assert!(
            t16.variant > t16.baseline * 2.0,
            "variable burst {} vs full line {}",
            t16.variant,
            t16.baseline
        );
        // At a full line the two are identical.
        let t64 = rows.iter().find(|r| r.transfer == 64).unwrap();
        assert!((t64.variant - t64.baseline).abs() < 0.2);
    }

    #[test]
    fn double_buffering_never_hurts() {
        for row in double_buffered().unwrap() {
            assert!(
                row.variant >= row.baseline - 0.2,
                "double buffering regressed at {}B: {} vs {}",
                row.transfer,
                row.variant,
                row.baseline
            );
        }
    }
}
