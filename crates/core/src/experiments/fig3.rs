//! Figure 3: uncached store bandwidth on a multiplexed bus, panels (a)–(i).
//!
//! All panels use an 8-byte multiplexed bus. The sweeps:
//!
//! * (a)–(c): CPU:bus frequency ratio ∈ {3, 6, 9}, 32-byte line, no
//!   turnaround. (The paper plots three "current and probable design
//!   points" without naming them; 3–9 spans late-90s machines around the
//!   ratio of 6 the rest of the evaluation fixes.)
//! * (d)–(f): line size ∈ {32, 64, 128} bytes at ratio 6.
//! * (g): a turnaround cycle after every transaction (ratio 6, 64 B line).
//! * (h)–(i): minimum address-to-address delay ∈ {4, 8} cycles — the
//!   unpipelined flow-control acknowledgment penalty for strongly ordered
//!   uncached accesses.

use csb_bus::BusConfig;

use super::runner::{
    run_bandwidth_panels, run_bandwidth_panels_observed, BandwidthPanelSpec, LabeledArtifacts,
    ObsConfig, RunReport,
};
use super::{BandwidthPanel, ExpError};
use crate::config::SimConfig;

/// Frequency ratios swept by panels (a)–(c).
pub const RATIOS: [u64; 3] = [3, 6, 9];
/// Line sizes swept by panels (d)–(f).
pub const LINES: [usize; 3] = [32, 64, 128];
/// Acknowledgment delays swept by panels (h)–(i).
pub const DELAYS: [u64; 2] = [4, 8];

/// One panel's machine parameters — the whole figure as a declarative
/// table consumed by the engine.
#[derive(Debug, Clone, Copy)]
pub struct PanelDef {
    /// Panel id, e.g. `"3a"`.
    pub id: &'static str,
    /// Cache line (= max burst) size in bytes.
    pub line: usize,
    /// CPU:bus frequency ratio.
    pub ratio: u64,
    /// Turnaround cycles after every transaction.
    pub turnaround: u64,
    /// Minimum address-to-address delay in bus cycles.
    pub delay: u64,
}

/// All nine panels. (a)–(c) sweep the frequency ratio, (d)–(f) the line
/// size, (g) adds a turnaround cycle, (h)–(i) sweep the ack delay.
pub const PANELS: [PanelDef; 9] = [
    PanelDef {
        id: "3a",
        line: 32,
        ratio: RATIOS[0],
        turnaround: 0,
        delay: 0,
    },
    PanelDef {
        id: "3b",
        line: 32,
        ratio: RATIOS[1],
        turnaround: 0,
        delay: 0,
    },
    PanelDef {
        id: "3c",
        line: 32,
        ratio: RATIOS[2],
        turnaround: 0,
        delay: 0,
    },
    PanelDef {
        id: "3d",
        line: LINES[0],
        ratio: 6,
        turnaround: 0,
        delay: 0,
    },
    PanelDef {
        id: "3e",
        line: LINES[1],
        ratio: 6,
        turnaround: 0,
        delay: 0,
    },
    PanelDef {
        id: "3f",
        line: LINES[2],
        ratio: 6,
        turnaround: 0,
        delay: 0,
    },
    PanelDef {
        id: "3g",
        line: 64,
        ratio: 6,
        turnaround: 1,
        delay: 0,
    },
    PanelDef {
        id: "3h",
        line: 64,
        ratio: 6,
        turnaround: 0,
        delay: DELAYS[0],
    },
    PanelDef {
        id: "3i",
        line: 64,
        ratio: 6,
        turnaround: 0,
        delay: DELAYS[1],
    },
];

fn mux_bus(line: usize, turnaround: u64, delay: u64) -> BusConfig {
    BusConfig::multiplexed(8)
        .max_burst(line)
        .turnaround(turnaround)
        .min_addr_delay(delay)
        .build()
        .expect("static Figure 3 bus configs are valid")
}

impl PanelDef {
    /// Expands the table row into the engine's panel spec.
    pub fn spec(&self) -> BandwidthPanelSpec {
        let suffix = if self.turnaround > 0 {
            format!("{}-cycle turnaround", self.turnaround)
        } else if self.delay > 0 {
            format!("min addr delay {}", self.delay)
        } else {
            "no turnaround".to_string()
        };
        let title = format!(
            "8B multiplexed bus, {}B line, CPU:bus ratio {}, {suffix}",
            self.line, self.ratio
        );
        let cfg = SimConfig::default()
            .line_size(self.line)
            .bus(mux_bus(self.line, self.turnaround, self.delay))
            .frequency_ratio(self.ratio);
        BandwidthPanelSpec::new(self.id, title, cfg)
    }
}

/// The figure's panel specs, in panel order.
pub fn panel_specs() -> Vec<BandwidthPanelSpec> {
    PANELS.iter().map(PanelDef::spec).collect()
}

/// Runs all nine panels serially.
///
/// # Errors
///
/// Propagates the first failing simulation point.
pub fn run() -> Result<Vec<BandwidthPanel>, ExpError> {
    Ok(run_jobs(1)?.0)
}

/// Runs all nine panels on `jobs` workers (`0` = all cores), with the
/// sweep's [`RunReport`].
///
/// # Errors
///
/// Propagates the first failing point, lowest point index first.
pub fn run_jobs(jobs: usize) -> Result<(Vec<BandwidthPanel>, RunReport), ExpError> {
    run_bandwidth_panels(&panel_specs(), jobs)
}

/// [`run_jobs`] with artifact capture: also returns one
/// [`LabeledArtifacts`] per simulation point, in enumeration order.
///
/// # Errors
///
/// Propagates the first failing point, lowest point index first.
pub fn run_jobs_observed(
    jobs: usize,
    obs: ObsConfig,
) -> Result<(Vec<BandwidthPanel>, Vec<LabeledArtifacts>, RunReport), ExpError> {
    run_bandwidth_panels_observed(&panel_specs(), jobs, obs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{bandwidth_point, Scheme};

    #[test]
    fn panel_g_turnaround_shapes() {
        // With a turnaround cycle, non-combining bandwidth *decreases* with
        // transfer size (2, 5, 8, ... cycles for 1, 2, 3 transactions) and
        // the CSB overtakes everything earlier.
        let cfg = SimConfig::default()
            .bus(mux_bus(64, 1, 0))
            .frequency_ratio(6);
        let none_16 = bandwidth_point(&cfg, 16, Scheme::Uncached { block: 8 }).unwrap();
        let none_1k = bandwidth_point(&cfg, 1024, Scheme::Uncached { block: 8 }).unwrap();
        assert!(
            none_16 > none_1k,
            "turnaround penalizes long non-combined streams"
        );
        let csb_1k = bandwidth_point(&cfg, 1024, Scheme::Csb).unwrap();
        assert!(csb_1k > 2.0 * none_1k, "CSB {csb_1k} vs none {none_1k}");
    }

    #[test]
    fn panel_h_delay_hurts_short_transactions_only() {
        // An 8-beat burst (9 cycles) completely overlaps a 4-cycle ack
        // window; doubleword singles are throttled to one per 4 cycles.
        let cfg = SimConfig::default()
            .bus(mux_bus(64, 0, 4))
            .frequency_ratio(6);
        let none = bandwidth_point(&cfg, 1024, Scheme::Uncached { block: 8 }).unwrap();
        assert!(
            (none - 2.0).abs() < 0.1,
            "8B per 4 cycles = 2 B/c, got {none}"
        );
        let csb = bandwidth_point(&cfg, 1024, Scheme::Csb).unwrap();
        assert!(csb > 6.5, "burst hides the ack window, got {csb}");
    }

    #[test]
    fn ratio_improves_early_combining() {
        // Higher CPU:bus ratio lets more stores pile into the buffer while
        // the first transaction occupies the bus, so full-line combining at
        // a fixed transfer size cannot get worse.
        let line = 32;
        let slow = SimConfig::default()
            .line_size(line)
            .bus(mux_bus(line, 0, 0))
            .frequency_ratio(3);
        let fast = slow.clone().frequency_ratio(9);
        let b_slow = bandwidth_point(&slow, 256, Scheme::Uncached { block: 32 }).unwrap();
        let b_fast = bandwidth_point(&fast, 256, Scheme::Uncached { block: 32 }).unwrap();
        assert!(
            b_fast >= b_slow - 1e-9,
            "ratio 9 {b_fast} vs ratio 3 {b_slow}"
        );
    }
}
