//! Reliable NIC messaging sweep: exactly-once delivery under fault
//! injection (the robustness study for the paper's §2/§5 NI scenario).
//!
//! Each point runs one of the messaging senders
//! ([`workloads::csb_messages`] / [`workloads::lock_messages`]) against a
//! [`csb_nic::Nic`] attached to the machine's I/O window, so every bus
//! write the sender produces is assembled into sequence-numbered frames by
//! the device itself. The receive-side seq accounting then classifies the
//! outcome per message: **delivered** (first copy of a seq with an intact
//! payload), **duplicate** (a seq seen again), **torn** (a header landed
//! on an incomplete frame — counted by the NI), and **dropped** (a seq
//! that never completed, because the sender's retry budget ran dry or the
//! livelock watchdog stopped a hard-stalled run).
//!
//! The sweep crosses send path (global lock over single uncached beats,
//! CSB line bursts, double-buffered CSB) × message size × fault rate
//! (conditional-flush disturbances, with bus errors and device NACKs at a
//! quarter of the rate) × retry policy, and reports per-cell delivery
//! counts plus the `nic_e2e_latency` histogram's p50/p95/p99/p99.9 tail —
//! end-to-end from the first header store on the bus to wire arrival
//! through [`csb_nic::WireModel`].
//!
//! Two invariants are checked rather than plotted:
//!
//! * **exactly-once at rate 0** ([`MessagingSweep::exactly_once_at_zero`]):
//!   with no faults, every path delivers every message exactly once — zero
//!   torn, duplicate, and dropped counts — by construction (the uncached
//!   path is FIFO and strongly ordered; the CSB delivers a line only on a
//!   successful atomic flush).
//! * **per-seed monotone degradation**
//!   ([`MessagingSweep::per_seed_monotone`]): seeds are shared across the
//!   rate axis, and the injector compares an ordinal hash against a
//!   rate-proportional threshold, so raising the rate only adds fault
//!   ordinals to the same schedule — per seed, the delivered count can
//!   only fall as the rate rises.

use std::time::Duration;

use serde::Serialize;

use super::runner::{LabeledArtifacts, ObsConfig, PointArtifacts, PointValue, RunReport};
use super::{format_table, ExpError};
use crate::config::{SimConfig, COMBINING_BASE, UNCACHED_BASE};
use crate::sim::{SimError, Simulator};
use crate::workloads::{self, MessagingSpec, RetryPolicy};
use csb_faults::FaultConfig;
use csb_isa::Addr;
use csb_obs::{BucketCount, HistogramSummary};

/// Fault rates swept (flush-disturb fraction; bus errors and device NACKs
/// run at a quarter of it). Seeds are shared across this axis so each
/// seed's degradation curve is monotone by construction.
pub const RATES: [f64; 4] = [0.0, 0.25, 0.5, 0.9];

/// Payload sizes swept, in doublewords (8 and 56 payload bytes: a
/// doorbell-sized message and a near-full line).
pub const SIZES: [usize; 2] = [1, 7];

/// Independent fault-schedule seeds per (path, size, policy) group.
pub const SEEDS_PER_CELL: u64 = 4;

/// Messages per point (sequence numbers `0..MESSAGES`).
pub const MESSAGES: usize = 16;

/// NI window slots the sender cycles through.
const SLOTS: usize = 4;

/// Sender id stamped into every header.
const SENDER: u16 = 1;

/// Cycle budget per point (the watchdog fires far earlier on livelock).
const POINT_LIMIT: u64 = 2_000_000;

/// The end-to-end latency histogram the quantile columns read.
const E2E_HISTOGRAM: &str = "nic_e2e_latency";

/// One send path (row group): how header and payload stores reach the NI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum SendPath {
    /// Global spin lock around single uncached beats (conventional
    /// baseline: the NI assembles each frame from a dribble of writes).
    Lock,
    /// CSB line bursts: each message arrives as one atomic flush.
    Csb,
    /// The same sender on the double-buffered CSB (§3.3 ablation).
    CsbDouble,
}

/// The send-path ladder the sweep compares, in row-group order.
pub fn paths() -> Vec<SendPath> {
    vec![SendPath::Lock, SendPath::Csb, SendPath::CsbDouble]
}

impl SendPath {
    /// Short label for tables and artifacts.
    pub fn label(self) -> &'static str {
        match self {
            SendPath::Lock => "lock",
            SendPath::Csb => "csb",
            SendPath::CsbDouble => "csb2x",
        }
    }

    /// Machine configuration for this path.
    fn config(self) -> SimConfig {
        match self {
            SendPath::Lock | SendPath::Csb => SimConfig::default(),
            SendPath::CsbDouble => SimConfig::default().csb_double_buffered(),
        }
    }

    /// Bus address the NI window is mapped at for this path.
    fn window_base(self) -> u64 {
        match self {
            SendPath::Lock => UNCACHED_BASE,
            SendPath::Csb | SendPath::CsbDouble => COMBINING_BASE,
        }
    }
}

/// Column label for one policy, including its budget (mirrors the fault
/// sweep's labels).
fn policy_label(p: RetryPolicy) -> String {
    match p {
        RetryPolicy::NaiveSpin => "naive-spin".to_string(),
        RetryPolicy::Bounded { attempts } => format!("bounded-{attempts}"),
        RetryPolicy::Backoff { attempts, .. } => format!("backoff-{attempts}"),
    }
}

/// Aggregated outcomes of one (path, size, rate, policy) cell across its
/// seeds.
#[derive(Debug, Clone, Serialize)]
pub struct MessagingCell {
    /// Policy label (column group).
    pub policy: String,
    /// Messages delivered exactly once with an intact payload.
    pub delivered: u64,
    /// Frames torn by a header overwriting an incomplete message.
    pub torn: u64,
    /// Extra copies of an already-delivered sequence number.
    pub duplicates: u64,
    /// Sequence numbers that never completed.
    pub dropped: u64,
    /// Delivered messages whose payload bytes were wrong.
    pub corrupt: u64,
    /// Runs stopped by the livelock watchdog.
    pub livelocks: u64,
    /// Total runs (== [`SEEDS_PER_CELL`]).
    pub runs: u64,
    /// End-to-end latency (first header store to wire arrival, CPU
    /// cycles) merged across seeds; absent when nothing was delivered.
    pub e2e: Option<HistogramSummary>,
}

impl MessagingCell {
    /// Delivered fraction of the cell's expected message count.
    pub fn delivered_fraction(&self) -> f64 {
        let expected = self.runs * MESSAGES as u64;
        if expected == 0 {
            0.0
        } else {
            self.delivered as f64 / expected as f64
        }
    }

    /// The hard reliability invariant: every expected message delivered,
    /// nothing torn, duplicated, dropped, or corrupted.
    pub fn exactly_once(&self) -> bool {
        self.delivered == self.runs * MESSAGES as u64
            && self.torn == 0
            && self.duplicates == 0
            && self.dropped == 0
            && self.corrupt == 0
    }
}

/// One (path, size, rate) row across the policy ladder.
#[derive(Debug, Clone, Serialize)]
pub struct MessagingRow {
    /// Send-path label.
    pub path: String,
    /// Payload bytes per message.
    pub bytes: usize,
    /// Flush-disturb injection rate.
    pub rate: f64,
    /// One cell per policy, in [`super::faults::policies`] order.
    pub cells: Vec<MessagingCell>,
}

/// The whole sweep: path × size × rate × policy, aggregated over seeds.
#[derive(Debug, Clone, Serialize)]
pub struct MessagingSweep {
    /// Sweep id (`"messaging"`).
    pub id: String,
    /// Human-readable parameter description.
    pub title: String,
    /// Policy labels, in column order.
    pub policies: Vec<String>,
    /// One row per (path, size, rate), rates innermost.
    pub rows: Vec<MessagingRow>,
    /// Whether every seed's delivered count was monotone non-increasing
    /// along the rate axis, for every (path, size, policy) group.
    pub per_seed_monotone: bool,
}

impl MessagingSweep {
    /// The hard exactly-once invariant at fault rate 0: every cell of
    /// every zero-rate row passed [`MessagingCell::exactly_once`].
    pub fn exactly_once_at_zero(&self) -> bool {
        self.rows
            .iter()
            .filter(|r| r.rate == 0.0)
            .all(|r| r.cells.iter().all(MessagingCell::exactly_once))
    }

    /// Renders the sweep as a fixed-width text table: one line per
    /// (path, size, rate, policy) cell with delivery accounting and the
    /// end-to-end latency quantile ladder.
    pub fn to_table(&self) -> String {
        let headers: Vec<String> = [
            "path", "bytes", "rate", "policy", "ok%", "torn", "dup", "drop", "ll", "p50", "p95",
            "p99", "p99.9",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let mut rows = Vec::new();
        for row in &self.rows {
            for c in &row.cells {
                let mut line = vec![
                    row.path.clone(),
                    row.bytes.to_string(),
                    format!("{:.2}", row.rate),
                    c.policy.clone(),
                    format!("{:.0}", 100.0 * c.delivered_fraction()),
                    c.torn.to_string(),
                    c.duplicates.to_string(),
                    c.dropped.to_string(),
                    c.livelocks.to_string(),
                ];
                match &c.e2e {
                    Some(h) => {
                        for v in [h.p50, h.p95, h.p99, h.p999] {
                            line.push(v.to_string());
                        }
                    }
                    None => line.extend(std::iter::repeat_n("-".to_string(), 4)),
                }
                rows.push(line);
            }
        }
        format!(
            "Reliable messaging — {}\n{}",
            self.title,
            format_table(&headers, &rows)
        )
    }
}

/// Raw outcome of a single seeded run.
#[derive(Debug, Clone)]
struct PointResult {
    delivered: u64,
    torn: u64,
    duplicates: u64,
    dropped: u64,
    corrupt: u64,
    livelock: bool,
    e2e: Option<HistogramSummary>,
    sim_cycles: u64,
    wall: Duration,
    artifacts: PointArtifacts,
}

/// A summary with re-derived quantiles from raw bucket counts (see the
/// contention sweep: merging into an empty summary runs the estimator).
fn summary_from_buckets(
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: Vec<BucketCount>,
) -> HistogramSummary {
    let mut s = HistogramSummary {
        count: 0,
        sum: 0,
        min: 0,
        max: 0,
        p50: 0,
        p95: 0,
        p99: 0,
        p999: 0,
        buckets: Vec::new(),
    };
    s.merge(&HistogramSummary {
        count,
        sum,
        min,
        max,
        p50: 0,
        p95: 0,
        p99: 0,
        p999: 0,
        buckets,
    });
    s
}

/// The backoff policy carries the point seed so jitter differs per seed.
fn policy_for_seed(policy: RetryPolicy, seed: u64) -> RetryPolicy {
    match policy {
        RetryPolicy::Backoff {
            attempts,
            base,
            max,
            ..
        } => RetryPolicy::Backoff {
            attempts,
            base,
            max,
            seed,
        },
        other => other,
    }
}

/// The message stream every point sends.
fn spec(size: usize) -> MessagingSpec {
    MessagingSpec {
        count: MESSAGES,
        payload_dwords: size,
        sender: SENDER,
        slots: SLOTS,
    }
}

/// Content-address of one seeded messaging point: machine configuration,
/// send path, message shape, per-seed policy, fault rate, and seed.
fn messaging_point_key(
    path: SendPath,
    size: usize,
    policy: RetryPolicy,
    rate: f64,
    seed: u64,
) -> u64 {
    let cfg = format!("{:?}", path.config());
    let work = format!(
        "messaging {} {MESSAGES}x{size}dw s{SLOTS} {:?} rate {:016x}",
        path.label(),
        policy_for_seed(policy, seed),
        rate.to_bits()
    );
    crate::cache::PointCache::key(&[cfg.as_bytes(), work.as_bytes(), &seed.to_le_bytes()])
}

fn encode_messaging_payload(r: &PointResult) -> Vec<u8> {
    let mut w = csb_snap::SnapshotWriter::new();
    w.put_tag("msg");
    w.put_u64(r.delivered);
    w.put_u64(r.torn);
    w.put_u64(r.duplicates);
    w.put_u64(r.dropped);
    w.put_u64(r.corrupt);
    w.put_bool(r.livelock);
    w.put_u64(r.sim_cycles);
    // Raw histogram bucket counts, so a cached cell merges across seeds
    // exactly like a live one (quantiles are re-derived on decode).
    match &r.e2e {
        Some(h) => {
            w.put_bool(true);
            w.put_u64(h.count);
            w.put_u64(h.sum);
            w.put_u64(h.min);
            w.put_u64(h.max);
            w.put_usize(h.buckets.len());
            for b in &h.buckets {
                w.put_u64(b.le);
                w.put_u64(b.n);
            }
        }
        None => w.put_bool(false),
    }
    w.finish()
}

fn decode_messaging_payload(bytes: &[u8]) -> Option<PointResult> {
    let mut r = csb_snap::SnapshotReader::new(bytes);
    r.take_tag("msg").ok()?;
    let delivered = r.take_u64().ok()?;
    let torn = r.take_u64().ok()?;
    let duplicates = r.take_u64().ok()?;
    let dropped = r.take_u64().ok()?;
    let corrupt = r.take_u64().ok()?;
    let livelock = r.take_bool().ok()?;
    let sim_cycles = r.take_u64().ok()?;
    let e2e = if r.take_bool().ok()? {
        let count = r.take_u64().ok()?;
        let sum = r.take_u64().ok()?;
        let min = r.take_u64().ok()?;
        let max = r.take_u64().ok()?;
        let len = r.take_usize().ok()?;
        let mut buckets = Vec::with_capacity(len);
        for _ in 0..len {
            let le = r.take_u64().ok()?;
            let n = r.take_u64().ok()?;
            buckets.push(BucketCount { le, n });
        }
        Some(summary_from_buckets(count, sum, min, max, buckets))
    } else {
        None
    };
    let _checksum = r.take_u64().ok()?;
    r.expect_end("cached messaging point payload").ok()?;
    Some(PointResult {
        delivered,
        torn,
        duplicates,
        dropped,
        corrupt,
        livelock,
        e2e,
        sim_cycles,
        wall: Duration::ZERO,
        artifacts: PointArtifacts::default(),
    })
}

/// Runs one (path, size, policy, rate, seed) point through a reusable
/// simulator slot.
fn run_point(
    slot: &mut Option<Simulator>,
    path: SendPath,
    size: usize,
    policy: RetryPolicy,
    rate: f64,
    seed: u64,
    obs: ObsConfig,
) -> Result<PointResult, ExpError> {
    let t0 = std::time::Instant::now();
    // Artifact-capturing points bypass the cache (see the runner module).
    let cache = if obs.any() {
        None
    } else {
        crate::cache::active()
    };
    let key = messaging_point_key(path, size, policy, rate, seed);
    if let Some(cache) = &cache {
        if let Some(payload) = cache.load(key) {
            if let Some(mut cached) = decode_messaging_payload(&payload) {
                cache.note_hit();
                cached.wall = t0.elapsed();
                return Ok(cached);
            }
            cache.invalidate(key);
        }
    }
    let cfg = path.config();
    let seeded = policy_for_seed(policy, seed);
    let program = match path {
        SendPath::Lock => workloads::lock_messages(spec(size), seeded, &cfg)?,
        SendPath::Csb | SendPath::CsbDouble => workloads::csb_messages(spec(size), seeded, &cfg)?,
    };
    let nic_cfg = csb_nic::NicConfig {
        slot_size: cfg.line(),
        slots: SLOTS,
        ..csb_nic::NicConfig::default()
    };
    let base = path.window_base();
    let sim = super::install_sim(slot, cfg, program)?;
    sim.attach_nic(nic_cfg, Addr::new(base))?;
    if rate > 0.0 {
        sim.set_faults(Some(
            FaultConfig::new(seed)
                .flush_disturb_rate(rate)
                .bus_error_rate(rate * 0.25)
                .device_nack_rate(rate * 0.25),
        ));
    }
    if obs.trace {
        sim.enable_tracing();
    }
    // The end-to-end quantiles *are* the result, so metrics always record.
    sim.enable_metrics();
    let livelock = match sim.run(POINT_LIMIT) {
        Ok(_) => false,
        Err(SimError::Livelock(_)) => true,
        Err(e) => return Err(e.into()),
    };
    let sim_cycles = sim.summary().cycles;
    let report = sim.metrics_report();
    let nic = sim.nic().expect("NIC attached above");
    // Receive-side seq accounting: first intact copy of each expected seq
    // is a delivery, repeats are duplicates, the rest of the expected
    // window is dropped.
    let mut seen = [false; MESSAGES];
    let mut delivered = 0u64;
    let mut duplicates = 0u64;
    let mut corrupt = 0u64;
    for m in nic.messages() {
        let sq = m.seq as usize;
        if m.sender != SENDER || sq >= MESSAGES {
            corrupt += 1;
            continue;
        }
        if seen[sq] {
            duplicates += 1;
            continue;
        }
        seen[sq] = true;
        let pat = MessagingSpec::payload_pattern(m.seq).to_le_bytes();
        let intact =
            m.payload.len() == size * 8 && m.payload.chunks(8).all(|c| c == &pat[..c.len()]);
        if intact {
            delivered += 1;
        } else {
            corrupt += 1;
        }
    }
    let distinct = seen.iter().filter(|&&s| s).count() as u64;
    let result = PointResult {
        delivered,
        torn: nic.stats().torn_frames,
        duplicates,
        dropped: MESSAGES as u64 - distinct,
        corrupt,
        livelock,
        e2e: report.metrics.histograms.get(E2E_HISTOGRAM).cloned(),
        sim_cycles,
        wall: t0.elapsed(),
        artifacts: PointArtifacts {
            trace_json: obs.trace.then(|| sim.chrome_trace()),
            metrics: obs.metrics.then_some(report),
        },
    };
    if let Some(cache) = &cache {
        cache.note_miss();
        cache.store(key, &encode_messaging_payload(&result));
    }
    Ok(result)
}

/// Runs the full sweep serially.
///
/// # Errors
///
/// Propagates the first point that fails for a reason other than the
/// expected fault outcomes (livelock and give-up are *results*, not
/// errors).
pub fn run() -> Result<MessagingSweep, ExpError> {
    Ok(run_jobs(1)?.0)
}

/// Runs the full sweep on `jobs` workers (`0` = all cores), with the
/// engine's [`RunReport`].
///
/// # Errors
///
/// As for [`run`]; the lowest-indexed failing point wins.
pub fn run_jobs(jobs: usize) -> Result<(MessagingSweep, RunReport), ExpError> {
    let (sweep, _, report) = run_jobs_observed(jobs, ObsConfig::default())?;
    Ok((sweep, report))
}

/// [`run_jobs`] with artifact capture: every seeded point runs with
/// tracing and/or metrics per `obs` and returns one [`LabeledArtifacts`]
/// per point (label `messaging/<path>/<bytes>B/r<rate%>/<policy>`,
/// distinguished per seed by [`LabeledArtifacts::seed`]), in
/// sweep-enumeration order.
///
/// # Errors
///
/// As for [`run_jobs`]; the lowest-indexed failing point wins.
pub fn run_jobs_observed(
    jobs: usize,
    obs: ObsConfig,
) -> Result<(MessagingSweep, Vec<LabeledArtifacts>, RunReport), ExpError> {
    let paths = paths();
    let policies = super::faults::policies();
    let mut points = Vec::new();
    for (pa, &path) in paths.iter().enumerate() {
        for (si, &size) in SIZES.iter().enumerate() {
            for (ri, &rate) in RATES.iter().enumerate() {
                for (pi, &policy) in policies.iter().enumerate() {
                    for s in 0..SEEDS_PER_CELL {
                        // Seeds differ per (path, size, policy) group but
                        // are *shared across rates*, so each seed's
                        // degradation curve rides one fault schedule (the
                        // monotonicity argument in the module docs).
                        let seed = 0x0e2e_0000
                            + (pa as u64) * 100_000
                            + (si as u64) * 10_000
                            + (pi as u64) * 1_000
                            + s;
                        points.push((pa, si, ri, pi, path, size, policy, rate, seed));
                    }
                }
            }
        }
    }
    let cache_before = crate::cache::active_stats();
    let t0 = std::time::Instant::now();
    let results = super::runner::parallel_map_with(
        &points,
        jobs,
        || None,
        |slot, &(_, _, _, _, path, size, policy, rate, seed)| {
            run_point(slot, path, size, policy, rate, seed, obs)
        },
    );
    let wall = t0.elapsed();

    // cells[path][size][rate][policy]; per_seed[path][size][policy][seed]
    // keeps each seed's delivered counts along the rate axis.
    let mut cells: Vec<Vec<Vec<Vec<Vec<PointResult>>>>> =
        vec![vec![vec![vec![Vec::new(); policies.len()]; RATES.len()]; SIZES.len()]; paths.len()];
    let mut per_seed: Vec<Vec<Vec<Vec<Vec<u64>>>>> =
        vec![
            vec![vec![vec![Vec::new(); SEEDS_PER_CELL as usize]; policies.len()]; SIZES.len()];
            paths.len()
        ];
    let mut report = RunReport {
        jobs: if jobs == 0 {
            super::runner::default_jobs()
        } else {
            jobs
        },
        points: points.len(),
        wall,
        capacity: wall * jobs.max(1) as u32,
        ..RunReport::default()
    };
    let mut artifacts = Vec::with_capacity(points.len());
    for (&(pa, si, ri, pi, path, size, policy, rate, seed), result) in points.iter().zip(results) {
        let r = result?;
        report.busy += r.wall;
        report.sim_cycles += r.sim_cycles;
        if let Some(point_metrics) = &r.artifacts.metrics {
            report
                .metrics
                .get_or_insert_with(Default::default)
                .merge(&point_metrics.metrics);
        }
        artifacts.push(LabeledArtifacts {
            label: format!(
                "messaging/{}/{}B/r{:02}/{}",
                path.label(),
                size * 8,
                (rate * 100.0).round() as u32,
                policy_label(policy)
            ),
            value: PointValue::Bandwidth(r.delivered as f64 / MESSAGES as f64),
            sim_cycles: r.sim_cycles,
            wall: r.wall,
            seed,
            config_hash: csb_obs::hash_config(&format!(
                "{:?} messaging {} {}B {policy:?} rate {rate}",
                path.config(),
                path.label(),
                size * 8
            )),
            artifacts: r.artifacts.clone(),
        });
        per_seed[pa][si][pi][(seed - 0x0e2e_0000) as usize % 1_000].push(r.delivered);
        cells[pa][si][ri][pi].push(r);
    }
    if let (Some(before), Some(after)) = (cache_before, crate::cache::active_stats()) {
        let delta = after.delta(&before);
        if delta.any() {
            report.cache = Some(delta);
            let m = report.metrics.get_or_insert_with(Default::default);
            m.counters.insert("cache.hit".to_string(), delta.hits);
            m.counters.insert("cache.miss".to_string(), delta.misses);
        }
    }

    // Points enumerate rates in ascending order, so each per-seed vector
    // is the seed's delivered curve along the rate axis.
    let per_seed_monotone = per_seed
        .iter()
        .flatten()
        .flatten()
        .flatten()
        .all(|curve| curve.windows(2).all(|w| w[1] <= w[0]));

    let mut rows = Vec::new();
    for (pa, &path) in paths.iter().enumerate() {
        for (si, &size) in SIZES.iter().enumerate() {
            for (ri, &rate) in RATES.iter().enumerate() {
                rows.push(MessagingRow {
                    path: path.label().to_string(),
                    bytes: size * 8,
                    rate,
                    cells: policies
                        .iter()
                        .enumerate()
                        .map(|(pi, &policy)| {
                            let rs = &cells[pa][si][ri][pi];
                            let e2e = rs.iter().filter_map(|r| r.e2e.as_ref()).fold(
                                None::<HistogramSummary>,
                                |acc, h| match acc {
                                    Some(mut s) => {
                                        s.merge(h);
                                        Some(s)
                                    }
                                    None => Some(h.clone()),
                                },
                            );
                            MessagingCell {
                                policy: policy_label(policy),
                                delivered: rs.iter().map(|r| r.delivered).sum(),
                                torn: rs.iter().map(|r| r.torn).sum(),
                                duplicates: rs.iter().map(|r| r.duplicates).sum(),
                                dropped: rs.iter().map(|r| r.dropped).sum(),
                                corrupt: rs.iter().map(|r| r.corrupt).sum(),
                                livelocks: rs.iter().filter(|r| r.livelock).count() as u64,
                                runs: rs.len() as u64,
                                e2e,
                            }
                        })
                        .collect(),
                });
            }
        }
    }

    Ok((
        MessagingSweep {
            id: "messaging".to_string(),
            title: format!(
                "{MESSAGES} messages over {SLOTS} NI slots, \
                 {SEEDS_PER_CELL} seeds/cell shared across rates, \
                 disturb rate swept (bus errors and NACKs at rate/4)"
            ),
            policies: policies.iter().map(|&p| policy_label(p)).collect(),
            rows,
            per_seed_monotone,
        },
        artifacts,
        report,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_is_exactly_once_on_every_path() {
        let mut slot = None;
        for &path in &paths() {
            for &policy in &super::super::faults::policies() {
                let r =
                    run_point(&mut slot, path, 1, policy, 0.0, 42, ObsConfig::default()).unwrap();
                let label = format!("{}/{}", path.label(), policy_label(policy));
                assert_eq!(r.delivered, MESSAGES as u64, "{label}: all delivered");
                assert_eq!(r.torn, 0, "{label}: no torn frames");
                assert_eq!(r.duplicates, 0, "{label}: no duplicates");
                assert_eq!(r.dropped, 0, "{label}: no drops");
                assert_eq!(r.corrupt, 0, "{label}: payloads intact");
                assert!(!r.livelock, "{label}: no livelock");
                let h = r.e2e.expect("every message records e2e latency");
                assert_eq!(h.count, MESSAGES as u64);
                assert!(h.p999 >= h.p50);
            }
        }
    }

    #[test]
    fn csb_bursts_beat_locked_beats_on_e2e_latency() {
        // The paper's qualitative claim, end to end: a message that
        // arrives as one atomic line burst finishes assembly in one bus
        // transaction, while the locked path dribbles it a beat at a time.
        let mut slot = None;
        let lock = run_point(
            &mut slot,
            SendPath::Lock,
            7,
            RetryPolicy::NaiveSpin,
            0.0,
            1,
            ObsConfig::default(),
        )
        .unwrap();
        let csb = run_point(
            &mut slot,
            SendPath::Csb,
            7,
            RetryPolicy::NaiveSpin,
            0.0,
            1,
            ObsConfig::default(),
        )
        .unwrap();
        let (l, c) = (lock.e2e.unwrap(), csb.e2e.unwrap());
        assert!(
            c.p50 < l.p50,
            "CSB p50 {} must beat lock p50 {}",
            c.p50,
            l.p50
        );
    }

    #[test]
    fn per_seed_delivery_is_monotone_on_a_slice() {
        // The shared-seed monotonicity argument, checked end to end on a
        // small slice: for every path and seed, the delivered count can
        // only fall as the rate rises.
        let mut slot = None;
        for &path in &paths() {
            for seed in [0x0e2e_0007, 0x0e2e_0008] {
                let mut prev = u64::MAX;
                for &rate in &[0.0, 0.5, 0.9] {
                    let r = run_point(
                        &mut slot,
                        path,
                        1,
                        RetryPolicy::Bounded { attempts: 4 },
                        rate,
                        seed,
                        ObsConfig::default(),
                    )
                    .unwrap();
                    assert!(
                        r.delivered <= prev,
                        "{} seed {seed:#x}: delivered rose from {prev} to {} at rate {rate}",
                        path.label(),
                        r.delivered
                    );
                    prev = r.delivered;
                }
            }
        }
    }

    #[test]
    fn cached_point_round_trips_histogram_buckets() {
        let mut slot = None;
        let live = run_point(
            &mut slot,
            SendPath::Csb,
            7,
            RetryPolicy::NaiveSpin,
            0.25,
            0x0e2e_0100,
            ObsConfig::default(),
        )
        .unwrap();
        let decoded =
            decode_messaging_payload(&encode_messaging_payload(&live)).expect("payload decodes");
        assert_eq!(decoded.delivered, live.delivered);
        assert_eq!(decoded.dropped, live.dropped);
        assert_eq!(decoded.torn, live.torn);
        assert_eq!(decoded.livelock, live.livelock);
        assert_eq!(
            decoded.e2e, live.e2e,
            "quantiles re-derived from buckets must match the live summary"
        );
    }
}
