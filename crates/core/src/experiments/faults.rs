//! Fault sweeps: success rate and latency degradation of software retry
//! policies under a seeded, deterministic fault schedule.
//!
//! Each point runs the CSB atomic-access kernel
//! ([`workloads::csb_sequence_with_policy`]) on the paper's default
//! machine with a [`FaultConfig`] injecting forced conditional-flush
//! disturbances at the swept rate, plus bus errors and device NACKs at a
//! quarter of it (the hardware-retry paths — transparent to software but
//! visible as latency). A run *succeeds* when the device received the
//! full payload and the end timing mark retired; a run that gives up
//! (bounded budget exhausted) or is stopped by the livelock watchdog
//! counts as a failure.
//!
//! Per seed, raising the rate can only add fault ordinals (the injector
//! compares a hash against a rate-proportional threshold), so each
//! policy's success curve is monotone non-increasing in the rate by
//! construction — the sweep's acceptance check, not a statistical
//! accident.

use serde::{Deserialize, Serialize};

use super::runner::{LabeledArtifacts, ObsConfig, PointArtifacts, PointValue, RunReport};
use super::{format_table, ExpError, DWORD_BYTES};
use crate::config::SimConfig;
use crate::sim::{SimError, Simulator};
use crate::workloads::{self, RetryPolicy, MARK_END, MARK_START};
use csb_faults::FaultConfig;

/// Fault rates swept (fraction of decisions that inject).
pub const RATES: [f64; 6] = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9];

/// Independent seeds per (rate, policy) cell.
pub const SEEDS_PER_CELL: u64 = 16;

/// Doublewords per access (one full line on the default machine).
const DWORDS: usize = 8;

/// Cycle budget per point (the watchdog fires far earlier on livelock).
const POINT_LIMIT: u64 = 2_000_000;

/// The retry-policy ladder the sweep compares.
pub fn policies() -> Vec<RetryPolicy> {
    vec![
        RetryPolicy::NaiveSpin,
        RetryPolicy::Bounded { attempts: 4 },
        RetryPolicy::Backoff {
            attempts: 12,
            base: 32,
            max: 1024,
            seed: 0, // replaced per point so actors de-synchronize
        },
    ]
}

/// Column label for one policy, including its budget.
fn policy_label(p: RetryPolicy) -> String {
    match p {
        RetryPolicy::NaiveSpin => "naive-spin".to_string(),
        RetryPolicy::Bounded { attempts } => format!("bounded-{attempts}"),
        RetryPolicy::Backoff { attempts, .. } => format!("backoff-{attempts}"),
    }
}

/// Aggregated outcomes of one (rate, policy) cell across its seeds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultCell {
    /// Policy label (column header).
    pub policy: String,
    /// Runs whose full payload reached the device.
    pub successes: u64,
    /// Runs stopped by the livelock watchdog.
    pub livelocks: u64,
    /// Total runs (== [`SEEDS_PER_CELL`]).
    pub runs: u64,
    /// Mean conditional-flush attempts per run.
    pub mean_attempts: f64,
    /// Mean access latency of *successful* runs in CPU cycles (0 when
    /// none succeeded).
    pub mean_latency: f64,
}

impl FaultCell {
    /// Success fraction in `[0, 1]`.
    pub fn success_rate(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.successes as f64 / self.runs as f64
        }
    }
}

/// One fault rate's cells across the policy ladder.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultRow {
    /// Injection rate for flush disturbances (bus errors and NACKs run at
    /// a quarter of it).
    pub rate: f64,
    /// One cell per policy, in [`policies`] order.
    pub cells: Vec<FaultCell>,
}

/// The whole sweep: rate × policy, aggregated over seeds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultSweep {
    /// Sweep id (`"faults"`).
    pub id: String,
    /// Human-readable parameter description.
    pub title: String,
    /// Policy labels, in column order.
    pub policies: Vec<String>,
    /// One row per rate.
    pub rows: Vec<FaultRow>,
}

impl FaultSweep {
    /// Renders the sweep as a fixed-width text table: per policy, the
    /// success percentage and the mean successful-run latency (with the
    /// latency-degradation factor relative to the zero-fault row).
    pub fn to_table(&self) -> String {
        let mut headers = vec!["rate".to_string()];
        for p in &self.policies {
            headers.push(format!("{p} ok%"));
            headers.push(format!("{p} lat"));
        }
        let base: Vec<f64> = self
            .rows
            .first()
            .map(|r| r.cells.iter().map(|c| c.mean_latency).collect())
            .unwrap_or_default();
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                let mut row = vec![format!("{:.2}", r.rate)];
                for (i, c) in r.cells.iter().enumerate() {
                    row.push(format!("{:.0}", 100.0 * c.success_rate()));
                    if c.successes == 0 {
                        row.push("-".to_string());
                    } else {
                        let degr = match base.get(i) {
                            Some(&b) if b > 0.0 => {
                                format!(" ({:.2}x)", c.mean_latency / b)
                            }
                            _ => String::new(),
                        };
                        row.push(format!("{:.0}{degr}", c.mean_latency));
                    }
                }
                row
            })
            .collect();
        format!(
            "Fault sweep — {}\n{}",
            self.title,
            format_table(&headers, &rows)
        )
    }
}

/// Raw outcome of a single seeded run.
#[derive(Debug, Clone)]
struct PointResult {
    success: bool,
    livelock: bool,
    attempts: u64,
    latency: u64,
    sim_cycles: u64,
    wall: std::time::Duration,
    artifacts: PointArtifacts,
}

/// The backoff policy carries the point seed so jitter differs per seed.
fn policy_for_seed(policy: RetryPolicy, seed: u64) -> RetryPolicy {
    match policy {
        RetryPolicy::Backoff {
            attempts,
            base,
            max,
            ..
        } => RetryPolicy::Backoff {
            attempts,
            base,
            max,
            seed,
        },
        other => other,
    }
}

/// Runs one (policy, rate, seed) point through a reusable simulator slot.
/// Content-address of one seeded fault point: machine configuration,
/// workload parameters (dwords + per-seed policy), fault rate, and seed.
fn fault_point_key(policy: RetryPolicy, rate: f64, seed: u64) -> u64 {
    let cfg = format!("{:?}", SimConfig::default());
    let work = format!(
        "faults {DWORDS}dw {:?} rate {:016x}",
        policy_for_seed(policy, seed),
        rate.to_bits()
    );
    crate::cache::PointCache::key(&[cfg.as_bytes(), work.as_bytes(), &seed.to_le_bytes()])
}

fn encode_fault_payload(r: &PointResult) -> Vec<u8> {
    let mut w = csb_snap::SnapshotWriter::new();
    w.put_tag("fpt");
    w.put_bool(r.success);
    w.put_bool(r.livelock);
    w.put_u64(r.attempts);
    w.put_u64(r.latency);
    w.put_u64(r.sim_cycles);
    w.finish()
}

fn decode_fault_payload(bytes: &[u8]) -> Option<PointResult> {
    let mut r = csb_snap::SnapshotReader::new(bytes);
    r.take_tag("fpt").ok()?;
    let success = r.take_bool().ok()?;
    let livelock = r.take_bool().ok()?;
    let attempts = r.take_u64().ok()?;
    let latency = r.take_u64().ok()?;
    let sim_cycles = r.take_u64().ok()?;
    let _checksum = r.take_u64().ok()?;
    r.expect_end("cached fault point payload").ok()?;
    Some(PointResult {
        success,
        livelock,
        attempts,
        latency,
        sim_cycles,
        wall: std::time::Duration::ZERO,
        artifacts: PointArtifacts::default(),
    })
}

fn run_point(
    slot: &mut Option<Simulator>,
    policy: RetryPolicy,
    rate: f64,
    seed: u64,
    obs: ObsConfig,
) -> Result<PointResult, ExpError> {
    let t0 = std::time::Instant::now();
    // Artifact-capturing points bypass the cache (see the runner module).
    let cache = if obs.any() {
        None
    } else {
        crate::cache::active()
    };
    let key = fault_point_key(policy, rate, seed);
    if let Some(cache) = &cache {
        if let Some(payload) = cache.load(key) {
            if let Some(mut cached) = decode_fault_payload(&payload) {
                cache.note_hit();
                cached.wall = t0.elapsed();
                return Ok(cached);
            }
            cache.invalidate(key);
        }
    }
    let cfg = SimConfig::default();
    let program = workloads::csb_sequence_with_policy(DWORDS, policy_for_seed(policy, seed), &cfg)?;
    let sim = super::install_sim(slot, cfg, program)?;
    if rate > 0.0 {
        sim.set_faults(Some(
            FaultConfig::new(seed)
                .flush_disturb_rate(rate)
                .bus_error_rate(rate * 0.25)
                .device_nack_rate(rate * 0.25),
        ));
    }
    if obs.trace {
        sim.enable_tracing();
    }
    if obs.metrics {
        sim.enable_metrics();
    }
    let (summary, livelock) = match sim.run(POINT_LIMIT) {
        Ok(summary) => (summary, false),
        Err(SimError::Livelock(_)) => (sim.summary(), true),
        Err(e) => return Err(e.into()),
    };
    let delivered = sim.device().payload_bytes() == (DWORDS * DWORD_BYTES) as u64;
    let latency = summary.cpu.mark_interval(MARK_START, MARK_END);
    let result = PointResult {
        success: !livelock && delivered && latency.is_some(),
        livelock,
        attempts: summary.csb.flush_successes + summary.csb.flush_failures,
        latency: latency.unwrap_or(0),
        sim_cycles: summary.cycles,
        wall: t0.elapsed(),
        artifacts: PointArtifacts {
            trace_json: obs.trace.then(|| sim.chrome_trace()),
            metrics: obs.metrics.then(|| sim.metrics_report()),
        },
    };
    if let Some(cache) = &cache {
        cache.note_miss();
        cache.store(key, &encode_fault_payload(&result));
    }
    Ok(result)
}

/// Runs the full sweep serially.
///
/// # Errors
///
/// Propagates the first point that fails for a reason other than the
/// expected fault outcomes (livelock and give-up are *results*, not
/// errors).
pub fn run() -> Result<FaultSweep, ExpError> {
    Ok(run_jobs(1)?.0)
}

/// Runs the full sweep on `jobs` workers (`0` = all cores), with the
/// engine's [`RunReport`].
///
/// # Errors
///
/// As for [`run`]; the lowest-indexed failing point wins.
pub fn run_jobs(jobs: usize) -> Result<(FaultSweep, RunReport), ExpError> {
    let (sweep, _, report) = run_jobs_observed(jobs, ObsConfig::default())?;
    Ok((sweep, report))
}

/// [`run_jobs`] with artifact capture: every seeded point runs with
/// tracing and/or metrics enabled per `obs` and returns one
/// [`LabeledArtifacts`] per point (label `faults/r<rate%>/<policy>`,
/// distinguished per seed by [`LabeledArtifacts::seed`]), in
/// sweep-enumeration order —
/// the same per-point artifact contract as the figure harnesses.
///
/// # Errors
///
/// As for [`run_jobs`]; the lowest-indexed failing point wins.
pub fn run_jobs_observed(
    jobs: usize,
    obs: ObsConfig,
) -> Result<(FaultSweep, Vec<LabeledArtifacts>, RunReport), ExpError> {
    let policies = policies();
    let mut points = Vec::new();
    for (ri, &rate) in RATES.iter().enumerate() {
        for (pi, &policy) in policies.iter().enumerate() {
            for seed in 0..SEEDS_PER_CELL {
                // Seeds differ per cell so no two cells share a schedule.
                let seed = 0x5eed_0000 + (ri as u64) * 1_000 + (pi as u64) * 100 + seed;
                points.push((ri, pi, policy, rate, seed));
            }
        }
    }
    let cache_before = crate::cache::active_stats();
    let t0 = std::time::Instant::now();
    let results = super::runner::parallel_map_with(
        &points,
        jobs,
        || None,
        |slot, &(_, _, policy, rate, seed)| run_point(slot, policy, rate, seed, obs),
    );
    let wall = t0.elapsed();

    let mut cells: Vec<Vec<Vec<PointResult>>> = vec![vec![Vec::new(); policies.len()]; RATES.len()];
    let mut report = RunReport {
        jobs: if jobs == 0 {
            super::runner::default_jobs()
        } else {
            jobs
        },
        points: points.len(),
        wall,
        capacity: wall * jobs.max(1) as u32,
        ..RunReport::default()
    };
    let mut artifacts = Vec::with_capacity(points.len());
    for (&(ri, pi, policy, rate, seed), result) in points.iter().zip(results) {
        let r = result?;
        report.busy += r.wall;
        report.sim_cycles += r.sim_cycles;
        if let Some(point_metrics) = &r.artifacts.metrics {
            report
                .metrics
                .get_or_insert_with(Default::default)
                .merge(&point_metrics.metrics);
        }
        artifacts.push(LabeledArtifacts {
            label: format!(
                "faults/r{:02}/{}",
                (rate * 100.0).round() as u32,
                policy_label(policy)
            ),
            value: PointValue::Latency(r.latency),
            sim_cycles: r.sim_cycles,
            wall: r.wall,
            seed,
            config_hash: csb_obs::hash_config(&format!(
                "{:?} {policy:?} rate {rate}",
                SimConfig::default()
            )),
            artifacts: r.artifacts.clone(),
        });
        cells[ri][pi].push(r);
    }
    if let (Some(before), Some(after)) = (cache_before, crate::cache::active_stats()) {
        let delta = after.delta(&before);
        if delta.any() {
            report.cache = Some(delta);
            let m = report.metrics.get_or_insert_with(Default::default);
            m.counters.insert("cache.hit".to_string(), delta.hits);
            m.counters.insert("cache.miss".to_string(), delta.misses);
        }
    }

    let rows = RATES
        .iter()
        .enumerate()
        .map(|(ri, &rate)| FaultRow {
            rate,
            cells: policies
                .iter()
                .enumerate()
                .map(|(pi, &policy)| {
                    let rs = &cells[ri][pi];
                    let successes = rs.iter().filter(|r| r.success).count() as u64;
                    let latencies: Vec<u64> =
                        rs.iter().filter(|r| r.success).map(|r| r.latency).collect();
                    FaultCell {
                        policy: policy_label(policy),
                        successes,
                        livelocks: rs.iter().filter(|r| r.livelock).count() as u64,
                        runs: rs.len() as u64,
                        mean_attempts: rs.iter().map(|r| r.attempts).sum::<u64>() as f64
                            / rs.len().max(1) as f64,
                        mean_latency: if latencies.is_empty() {
                            0.0
                        } else {
                            latencies.iter().sum::<u64>() as f64 / latencies.len() as f64
                        },
                    }
                })
                .collect(),
        })
        .collect();

    Ok((
        FaultSweep {
            id: "faults".to_string(),
            title: format!(
                "retry policies under seeded faults; {DWORDS} dwords, \
                 {SEEDS_PER_CELL} seeds/cell, disturb rate swept \
                 (bus errors and NACKs at rate/4)"
            ),
            policies: policies.iter().map(|&p| policy_label(p)).collect(),
            rows,
        },
        artifacts,
        report,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_always_succeeds() {
        let mut slot = None;
        for (i, &policy) in policies().iter().enumerate() {
            let r = run_point(&mut slot, policy, 0.0, 7 + i as u64, ObsConfig::default()).unwrap();
            assert!(r.success, "{}: zero-fault run must succeed", i);
            assert!(!r.livelock);
            assert_eq!(r.attempts, 1, "no retries without faults");
        }
    }

    #[test]
    fn bounded_policy_gives_up_under_total_disturbance() {
        let mut slot = None;
        let r = run_point(
            &mut slot,
            RetryPolicy::Bounded { attempts: 4 },
            0.9,
            3,
            ObsConfig::default(),
        )
        .unwrap();
        // Seed 3 at rate 0.9: not guaranteed to fault 4 times in a row,
        // so assert only the structural invariant — a failed bounded run
        // halts cleanly instead of livelocking.
        if !r.success {
            assert!(!r.livelock, "bounded budget must give up, not livelock");
            assert_eq!(r.attempts, 4);
        }
    }

    #[test]
    fn success_rate_is_monotone_per_policy() {
        // The per-seed monotonicity argument, checked end to end on a
        // small slice of the sweep: for every policy and seed, success at
        // a higher rate implies success at every lower rate.
        let mut slot = None;
        for &policy in &policies() {
            let mut prev_successes = u64::MAX;
            for &rate in &[0.0, 0.5, 0.9] {
                let mut successes = 0;
                for seed in 0..8 {
                    if run_point(&mut slot, policy, rate, 100 + seed, ObsConfig::default())
                        .unwrap()
                        .success
                    {
                        successes += 1;
                    }
                }
                assert!(
                    successes <= prev_successes,
                    "{}: successes rose from {prev_successes} to {successes}",
                    policy_label(policy)
                );
                prev_successes = successes;
            }
        }
    }
}
