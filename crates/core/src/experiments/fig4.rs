//! Figure 4: uncached store bandwidth on a split address/data bus, (a)–(e).
//!
//! Split buses carry the address on its own path, so a transaction occupies
//! the data path only for its beats — but the wide data path (128/256 bits)
//! introduces a new overhead: wasted width for sub-width transfers. The
//! sweeps:
//!
//! * (a)–(b): bus width ∈ {16, 32} bytes, 64-byte line, ratio 6, no
//!   turnaround;
//! * (c): 16-byte bus with a turnaround cycle;
//! * (d)–(e): 16-byte bus with a minimum address-to-address delay of
//!   {4, 8} cycles (unpipelined acknowledgments for strongly ordered I/O).

use csb_bus::BusConfig;

use super::{bandwidth_panel, BandwidthPanel, ExpError};
use crate::config::SimConfig;

/// Bus widths swept by panels (a)–(b), in bytes.
pub const WIDTHS: [usize; 2] = [16, 32];
/// Acknowledgment delays swept by panels (d)–(e).
pub const DELAYS: [u64; 2] = [4, 8];

fn split_bus(width: usize, turnaround: u64, delay: u64) -> BusConfig {
    BusConfig::split(width)
        .max_burst(64)
        .turnaround(turnaround)
        .min_addr_delay(delay)
        .build()
        .expect("static Figure 4 bus configs are valid")
}

/// Runs all five panels.
///
/// # Errors
///
/// Propagates the first failing simulation point.
pub fn run() -> Result<Vec<BandwidthPanel>, ExpError> {
    let mut panels = Vec::new();

    for (idx, &width) in WIDTHS.iter().enumerate() {
        let id = ['a', 'b'][idx];
        let cfg = SimConfig::default()
            .bus(split_bus(width, 0, 0))
            .frequency_ratio(6);
        panels.push(bandwidth_panel(
            &format!("4{id}"),
            &format!("{width}B split bus, 64B line, CPU:bus ratio 6, no turnaround"),
            &cfg,
        )?);
    }

    let cfg = SimConfig::default()
        .bus(split_bus(16, 1, 0))
        .frequency_ratio(6);
    panels.push(bandwidth_panel(
        "4c",
        "16B split bus, 64B line, CPU:bus ratio 6, 1-cycle turnaround",
        &cfg,
    )?);

    for (idx, &delay) in DELAYS.iter().enumerate() {
        let id = ['d', 'e'][idx];
        let cfg = SimConfig::default()
            .bus(split_bus(16, 0, delay))
            .frequency_ratio(6);
        panels.push(bandwidth_panel(
            &format!("4{id}"),
            &format!("16B split bus, 64B line, CPU:bus ratio 6, min addr delay {delay}"),
            &cfg,
        )?);
    }

    Ok(panels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{bandwidth_point, Scheme};

    #[test]
    fn dword_wastes_half_of_a_128bit_bus() {
        let cfg = SimConfig::default()
            .bus(split_bus(16, 0, 0))
            .frequency_ratio(6);
        let bw = bandwidth_point(&cfg, 1024, Scheme::Uncached { block: 8 }).unwrap();
        assert!(
            (bw - 8.0).abs() < 0.1,
            "8B per data cycle on a 16B bus, got {bw}"
        );
    }

    #[test]
    fn line_burst_on_256bit_bus_takes_two_cycles() {
        // Paper: "a burst transfer takes only two cycles, the same number of
        // cycles as two individual doubleword stores." One line through the
        // CSB is exactly one 2-cycle burst: 32 bytes per bus cycle.
        let cfg = SimConfig::default()
            .bus(split_bus(32, 0, 0))
            .frequency_ratio(6);
        let csb = bandwidth_point(&cfg, 64, Scheme::Csb).unwrap();
        assert!(
            (csb - 32.0).abs() < 0.5,
            "64B per 2 cycles = 32 B/c, got {csb}"
        );
        let none = bandwidth_point(&cfg, 1024, Scheme::Uncached { block: 8 }).unwrap();
        assert!((none - 8.0).abs() < 0.2, "got {none}");
        // For long streams the 1-uncached-store/cycle issue rate becomes the
        // bottleneck on so wide a bus; the CSB still beats non-combining by
        // a wide margin.
        let csb_long = bandwidth_point(&cfg, 1024, Scheme::Csb).unwrap();
        assert!(csb_long > 3.0 * none, "got {csb_long} vs none {none}");
    }

    #[test]
    fn only_csb_hides_delay_4_on_16b_bus() {
        // A full-line burst is 4 data cycles on a 16-byte bus, exactly
        // covering a 4-cycle ack window; everything shorter is throttled.
        let cfg = SimConfig::default()
            .bus(split_bus(16, 0, 4))
            .frequency_ratio(6);
        let csb = bandwidth_point(&cfg, 1024, Scheme::Csb).unwrap();
        assert!(csb > 15.0, "CSB should sustain ~16 B/c, got {csb}");
        let half = bandwidth_point(&cfg, 1024, Scheme::Uncached { block: 32 }).unwrap();
        assert!(
            half < csb * 0.6,
            "32B chunks are throttled by the ack, got {half}"
        );
    }

    #[test]
    fn delay_8_affects_even_bursts() {
        let cfg = SimConfig::default()
            .bus(split_bus(16, 0, 8))
            .frequency_ratio(6);
        let csb = bandwidth_point(&cfg, 1024, Scheme::Csb).unwrap();
        assert!((csb - 8.0).abs() < 0.5, "64B per 8 cycles, got {csb}");
    }
}
