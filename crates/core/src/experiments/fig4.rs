//! Figure 4: uncached store bandwidth on a split address/data bus, (a)–(e).
//!
//! Split buses carry the address on its own path, so a transaction occupies
//! the data path only for its beats — but the wide data path (128/256 bits)
//! introduces a new overhead: wasted width for sub-width transfers. The
//! sweeps:
//!
//! * (a)–(b): bus width ∈ {16, 32} bytes, 64-byte line, ratio 6, no
//!   turnaround;
//! * (c): 16-byte bus with a turnaround cycle;
//! * (d)–(e): 16-byte bus with a minimum address-to-address delay of
//!   {4, 8} cycles (unpipelined acknowledgments for strongly ordered I/O).

use csb_bus::BusConfig;

use super::runner::{
    run_bandwidth_panels, run_bandwidth_panels_observed, BandwidthPanelSpec, LabeledArtifacts,
    ObsConfig, RunReport,
};
use super::{BandwidthPanel, ExpError};
use crate::config::SimConfig;

/// Bus widths swept by panels (a)–(b), in bytes.
pub const WIDTHS: [usize; 2] = [16, 32];
/// Acknowledgment delays swept by panels (d)–(e).
pub const DELAYS: [u64; 2] = [4, 8];

/// One panel's machine parameters — the whole figure as a declarative
/// table consumed by the engine.
#[derive(Debug, Clone, Copy)]
pub struct PanelDef {
    /// Panel id, e.g. `"4a"`.
    pub id: &'static str,
    /// Data-path width in bytes.
    pub width: usize,
    /// Turnaround cycles after every transaction.
    pub turnaround: u64,
    /// Minimum address-to-address delay in bus cycles.
    pub delay: u64,
}

/// All five panels. (a)–(b) sweep the bus width, (c) adds a turnaround
/// cycle, (d)–(e) sweep the ack delay on the 16-byte bus.
pub const PANELS: [PanelDef; 5] = [
    PanelDef {
        id: "4a",
        width: WIDTHS[0],
        turnaround: 0,
        delay: 0,
    },
    PanelDef {
        id: "4b",
        width: WIDTHS[1],
        turnaround: 0,
        delay: 0,
    },
    PanelDef {
        id: "4c",
        width: 16,
        turnaround: 1,
        delay: 0,
    },
    PanelDef {
        id: "4d",
        width: 16,
        turnaround: 0,
        delay: DELAYS[0],
    },
    PanelDef {
        id: "4e",
        width: 16,
        turnaround: 0,
        delay: DELAYS[1],
    },
];

fn split_bus(width: usize, turnaround: u64, delay: u64) -> BusConfig {
    BusConfig::split(width)
        .max_burst(64)
        .turnaround(turnaround)
        .min_addr_delay(delay)
        .build()
        .expect("static Figure 4 bus configs are valid")
}

impl PanelDef {
    /// Expands the table row into the engine's panel spec.
    pub fn spec(&self) -> BandwidthPanelSpec {
        let suffix = if self.turnaround > 0 {
            format!("{}-cycle turnaround", self.turnaround)
        } else if self.delay > 0 {
            format!("min addr delay {}", self.delay)
        } else {
            "no turnaround".to_string()
        };
        let title = format!(
            "{}B split bus, 64B line, CPU:bus ratio 6, {suffix}",
            self.width
        );
        let cfg = SimConfig::default()
            .bus(split_bus(self.width, self.turnaround, self.delay))
            .frequency_ratio(6);
        BandwidthPanelSpec::new(self.id, title, cfg)
    }
}

/// The figure's panel specs, in panel order.
pub fn panel_specs() -> Vec<BandwidthPanelSpec> {
    PANELS.iter().map(PanelDef::spec).collect()
}

/// Runs all five panels serially.
///
/// # Errors
///
/// Propagates the first failing simulation point.
pub fn run() -> Result<Vec<BandwidthPanel>, ExpError> {
    Ok(run_jobs(1)?.0)
}

/// Runs all five panels on `jobs` workers (`0` = all cores), with the
/// sweep's [`RunReport`].
///
/// # Errors
///
/// Propagates the first failing point, lowest point index first.
pub fn run_jobs(jobs: usize) -> Result<(Vec<BandwidthPanel>, RunReport), ExpError> {
    run_bandwidth_panels(&panel_specs(), jobs)
}

/// [`run_jobs`] with artifact capture: also returns one
/// [`LabeledArtifacts`] per simulation point, in enumeration order.
///
/// # Errors
///
/// Propagates the first failing point, lowest point index first.
pub fn run_jobs_observed(
    jobs: usize,
    obs: ObsConfig,
) -> Result<(Vec<BandwidthPanel>, Vec<LabeledArtifacts>, RunReport), ExpError> {
    run_bandwidth_panels_observed(&panel_specs(), jobs, obs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{bandwidth_point, Scheme};

    #[test]
    fn dword_wastes_half_of_a_128bit_bus() {
        let cfg = SimConfig::default()
            .bus(split_bus(16, 0, 0))
            .frequency_ratio(6);
        let bw = bandwidth_point(&cfg, 1024, Scheme::Uncached { block: 8 }).unwrap();
        assert!(
            (bw - 8.0).abs() < 0.1,
            "8B per data cycle on a 16B bus, got {bw}"
        );
    }

    #[test]
    fn line_burst_on_256bit_bus_takes_two_cycles() {
        // Paper: "a burst transfer takes only two cycles, the same number of
        // cycles as two individual doubleword stores." One line through the
        // CSB is exactly one 2-cycle burst: 32 bytes per bus cycle.
        let cfg = SimConfig::default()
            .bus(split_bus(32, 0, 0))
            .frequency_ratio(6);
        let csb = bandwidth_point(&cfg, 64, Scheme::Csb).unwrap();
        assert!(
            (csb - 32.0).abs() < 0.5,
            "64B per 2 cycles = 32 B/c, got {csb}"
        );
        let none = bandwidth_point(&cfg, 1024, Scheme::Uncached { block: 8 }).unwrap();
        assert!((none - 8.0).abs() < 0.2, "got {none}");
        // For long streams the 1-uncached-store/cycle issue rate becomes the
        // bottleneck on so wide a bus; the CSB still beats non-combining by
        // a wide margin.
        let csb_long = bandwidth_point(&cfg, 1024, Scheme::Csb).unwrap();
        assert!(csb_long > 3.0 * none, "got {csb_long} vs none {none}");
    }

    #[test]
    fn only_csb_hides_delay_4_on_16b_bus() {
        // A full-line burst is 4 data cycles on a 16-byte bus, exactly
        // covering a 4-cycle ack window; everything shorter is throttled.
        let cfg = SimConfig::default()
            .bus(split_bus(16, 0, 4))
            .frequency_ratio(6);
        let csb = bandwidth_point(&cfg, 1024, Scheme::Csb).unwrap();
        assert!(csb > 15.0, "CSB should sustain ~16 B/c, got {csb}");
        let half = bandwidth_point(&cfg, 1024, Scheme::Uncached { block: 32 }).unwrap();
        assert!(
            half < csb * 0.6,
            "32B chunks are throttled by the ack, got {half}"
        );
    }

    #[test]
    fn delay_8_affects_even_bursts() {
        let cfg = SimConfig::default()
            .bus(split_bus(16, 0, 8))
            .frequency_ratio(6);
        let csb = bandwidth_point(&cfg, 1024, Scheme::Csb).unwrap();
        assert!((csb - 8.0).abs() < 0.5, "64B per 8 cycles, got {csb}");
    }
}
