//! Figure 5: locking vs. the conditional store buffer, panels (a)–(b).
//!
//! The conventional path acquires a spin lock (SPARC `swap` on a cached
//! lock variable), performs 2–8 uncached doubleword stores, executes a
//! memory barrier (release may only happen after the last uncached store
//! leaves the uncached buffer), and releases the lock. The CSB path issues
//! the same stores as combining stores and commits them with one
//! conditional flush — complete as soon as the flush succeeds.
//!
//! Panel (a): the lock hits in the L1. Panel (b): the lock access misses
//! the whole hierarchy (100-cycle miss latency), modeling a lock recently
//! taken by another processor.

use csb_isa::Addr;

use super::runner::{
    run_latency_panels, run_latency_panels_observed, LabeledArtifacts, LatencyPanelSpec, ObsConfig,
    PointArtifacts, RunReport,
};
use super::{ExpError, LatencyPanel, Scheme};
use crate::config::{SimConfig, LOCK_ADDR};
use crate::sim::Simulator;
use crate::workloads::{self, MARK_END, MARK_START};

/// Doubleword counts swept (2–8, i.e. 16–64 bytes).
pub const DWORDS: [usize; 7] = [2, 3, 4, 5, 6, 7, 8];

/// Whether the lock variable hits in the L1 when acquired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockResidency {
    /// Lock line pre-loaded into the L1 (panel (a)).
    Hit,
    /// Lock line evicted from both caches (panel (b)).
    Miss,
}

/// Measures one point: cycles for a lock-based sequence of `dwords` stores
/// under the given combining block, or via the CSB.
///
/// # Errors
///
/// Returns [`ExpError`] if the simulation does not complete or the timing
/// marks are missing.
pub fn latency_point(
    cfg: &SimConfig,
    dwords: usize,
    scheme: Scheme,
    residency: LockResidency,
) -> Result<u64, ExpError> {
    latency_point_instrumented(cfg, dwords, scheme, residency).map(|(lat, _)| lat)
}

/// [`latency_point`] plus the simulated cycle count, for the runner's
/// `RunReport` instrumentation.
pub(crate) fn latency_point_instrumented(
    cfg: &SimConfig,
    dwords: usize,
    scheme: Scheme,
    residency: LockResidency,
) -> Result<(u64, u64), ExpError> {
    latency_point_observed(cfg, dwords, scheme, residency, ObsConfig::default())
        .map(|(lat, cycles, _)| (lat, cycles))
}

/// [`latency_point`] with observability: returns the latency, the simulated
/// cycle count, and whatever artifacts [`ObsConfig`] asked for.
///
/// # Errors
///
/// As for [`latency_point`].
pub fn latency_point_observed(
    cfg: &SimConfig,
    dwords: usize,
    scheme: Scheme,
    residency: LockResidency,
    obs: ObsConfig,
) -> Result<(u64, u64, PointArtifacts), ExpError> {
    latency_point_reusing(&mut None, cfg, dwords, scheme, residency, obs)
}

/// [`latency_point_observed`] through a reusable simulator slot: an empty
/// slot is filled by cold construction, a filled one is warm-reset via
/// [`Simulator::reset_with`] — either way the measurement is identical.
/// The sweep engine hands each worker one slot for its whole point queue.
pub(crate) fn latency_point_reusing(
    slot: &mut Option<Simulator>,
    cfg: &SimConfig,
    dwords: usize,
    scheme: Scheme,
    residency: LockResidency,
    obs: ObsConfig,
) -> Result<(u64, u64, PointArtifacts), ExpError> {
    let sim = latency_sim_into(slot, cfg, dwords, scheme, residency)?;
    if obs.trace {
        sim.enable_tracing();
    }
    if obs.metrics {
        sim.enable_metrics();
    }
    let summary = sim.run(50_000_000)?;
    let latency = summary
        .cpu
        .mark_interval(MARK_START, MARK_END)
        .ok_or(ExpError::MissingMark)?;
    let artifacts = PointArtifacts {
        trace_json: obs.trace.then(|| sim.chrome_trace()),
        metrics: obs.metrics.then(|| sim.metrics_report()),
    };
    Ok((latency, summary.cycles, artifacts))
}

/// The scheme-specialized machine configuration and lock/CSB sequence for
/// one latency point.
fn latency_parts(
    cfg: &SimConfig,
    dwords: usize,
    scheme: Scheme,
) -> Result<(SimConfig, csb_isa::Program), ExpError> {
    Ok(match scheme {
        Scheme::Uncached { block } => {
            let c = cfg.clone().combining_block(block);
            let p = workloads::lock_sequence(dwords)?;
            (c, p)
        }
        Scheme::R10k => {
            let mut c = cfg.clone();
            c.uncached = csb_uncached::UncachedConfig::r10000(c.line());
            let p = workloads::lock_sequence(dwords)?;
            (c, p)
        }
        Scheme::Ppc620 => {
            let mut c = cfg.clone();
            c.uncached = csb_uncached::UncachedConfig::ppc620();
            let p = workloads::lock_sequence(dwords)?;
            (c, p)
        }
        // The latency kernel has no bandwidth-style retry unrolling to
        // outline; both CSB flavors measure the same sequence.
        Scheme::Csb | Scheme::CsbOutlined => (cfg.clone(), workloads::csb_sequence(dwords, cfg)?),
    })
}

/// Builds the ready-to-run simulator for one latency point: the
/// scheme-specialized machine, the lock/CSB sequence, and the lock line
/// warmed or evicted per `residency` — not yet run. The cold half of the
/// warm-vs-cold differential tests; production paths go through
/// [`latency_sim_into`].
#[cfg(test)]
pub(crate) fn latency_sim(
    cfg: &SimConfig,
    dwords: usize,
    scheme: Scheme,
    residency: LockResidency,
) -> Result<Simulator, ExpError> {
    let mut slot = None;
    latency_sim_into(&mut slot, cfg, dwords, scheme, residency)?;
    Ok(slot.expect("slot was just filled"))
}

/// [`latency_sim`] into a reusable slot (see [`super::install_sim`]). The
/// residency preparation (line warm/evict) runs after the reset, exactly
/// as it runs after a cold construction.
pub(crate) fn latency_sim_into<'a>(
    slot: &'a mut Option<Simulator>,
    cfg: &SimConfig,
    dwords: usize,
    scheme: Scheme,
    residency: LockResidency,
) -> Result<&'a mut Simulator, ExpError> {
    let (cfg, program) = latency_parts(cfg, dwords, scheme)?;
    let sim = super::install_sim(slot, cfg, program)?;
    match residency {
        LockResidency::Hit => sim.warm_line(Addr::new(LOCK_ADDR)),
        LockResidency::Miss => sim.evict_line(Addr::new(LOCK_ADDR)),
    }
    Ok(sim)
}

/// The declarative panel spec for one residency on the given machine.
pub fn panel_spec(cfg: &SimConfig, residency: LockResidency) -> LatencyPanelSpec {
    let (id, title) = match residency {
        LockResidency::Hit => (
            "5a",
            "lock hits in L1; 8B multiplexed bus, ratio 6, 64B line",
        ),
        LockResidency::Miss => (
            "5b",
            "lock misses to memory (100 cycles); 8B multiplexed bus, ratio 6, 64B line",
        ),
    };
    LatencyPanelSpec::new(id, title, cfg.clone(), residency)
}

/// Both panels' specs on the paper's default machine.
pub fn panel_specs() -> Vec<LatencyPanelSpec> {
    let cfg = SimConfig::default();
    vec![
        panel_spec(&cfg, LockResidency::Hit),
        panel_spec(&cfg, LockResidency::Miss),
    ]
}

/// Runs one panel across [`DWORDS`] and the scheme ladder, serially.
///
/// # Errors
///
/// Propagates the first failing point.
pub fn panel(cfg: &SimConfig, residency: LockResidency) -> Result<LatencyPanel, ExpError> {
    let spec = panel_spec(cfg, residency);
    let (panels, _) = run_latency_panels(std::slice::from_ref(&spec), 1)?;
    Ok(panels
        .into_iter()
        .next()
        .expect("one spec yields one panel"))
}

/// Runs both panels on the paper's default machine, serially.
///
/// # Errors
///
/// Propagates the first failing point.
pub fn run() -> Result<Vec<LatencyPanel>, ExpError> {
    Ok(run_jobs(1)?.0)
}

/// Runs both panels on `jobs` workers (`0` = all cores), with the sweep's
/// [`RunReport`].
///
/// # Errors
///
/// Propagates the first failing point, lowest point index first.
pub fn run_jobs(jobs: usize) -> Result<(Vec<LatencyPanel>, RunReport), ExpError> {
    run_latency_panels(&panel_specs(), jobs)
}

/// [`run_jobs`] with artifact capture: also returns one
/// [`LabeledArtifacts`] per simulation point, in enumeration order.
///
/// # Errors
///
/// Propagates the first failing point, lowest point index first.
pub fn run_jobs_observed(
    jobs: usize,
    obs: ObsConfig,
) -> Result<(Vec<LatencyPanel>, Vec<LabeledArtifacts>, RunReport), ExpError> {
    run_latency_panels_observed(&panel_specs(), jobs, obs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csb_beats_locking_everywhere() {
        let cfg = SimConfig::default();
        for &d in &[2usize, 8] {
            let lock =
                latency_point(&cfg, d, Scheme::Uncached { block: 8 }, LockResidency::Hit).unwrap();
            let csb = latency_point(&cfg, d, Scheme::Csb, LockResidency::Hit).unwrap();
            assert!(
                csb * 2 < lock,
                "{d} dwords: CSB {csb} should be far below locking {lock}"
            );
        }
    }

    #[test]
    fn lock_miss_adds_roughly_the_miss_latency() {
        let cfg = SimConfig::default();
        let hit =
            latency_point(&cfg, 4, Scheme::Uncached { block: 8 }, LockResidency::Hit).unwrap();
        let miss =
            latency_point(&cfg, 4, Scheme::Uncached { block: 8 }, LockResidency::Miss).unwrap();
        let delta = miss - hit;
        assert!(
            (80..=140).contains(&delta),
            "miss-hit delta should be near the 100-cycle miss, got {delta}"
        );
    }

    #[test]
    fn non_combining_slope_near_twelve() {
        // Paper: +12 cycles per doubleword at ratio 6 (each store is a
        // 2-bus-cycle transaction the membar must wait out).
        let cfg = SimConfig::default();
        let c2 = latency_point(&cfg, 2, Scheme::Uncached { block: 8 }, LockResidency::Hit).unwrap();
        let c8 = latency_point(&cfg, 8, Scheme::Uncached { block: 8 }, LockResidency::Hit).unwrap();
        let slope = (c8 - c2) as f64 / 6.0;
        assert!(
            (10.0..=14.0).contains(&slope),
            "expected ~12 cycles/dword, got {slope} ({c2}..{c8})"
        );
    }

    #[test]
    fn csb_slope_near_one() {
        let cfg = SimConfig::default();
        let c2 = latency_point(&cfg, 2, Scheme::Csb, LockResidency::Hit).unwrap();
        let c8 = latency_point(&cfg, 8, Scheme::Csb, LockResidency::Hit).unwrap();
        let slope = (c8 - c2) as f64 / 6.0;
        assert!(
            (0.5..=2.5).contains(&slope),
            "expected ~1 cycle/dword, got {slope} ({c2}..{c8})"
        );
    }

    #[test]
    fn seven_to_eight_dwords_can_reduce_lock_latency() {
        // Alignment: 7 dwords = 3 transactions (32+16+8), 8 dwords = 1
        // full-line burst, with full-line combining.
        let cfg = SimConfig::default();
        let c7 =
            latency_point(&cfg, 7, Scheme::Uncached { block: 64 }, LockResidency::Hit).unwrap();
        let c8 =
            latency_point(&cfg, 8, Scheme::Uncached { block: 64 }, LockResidency::Hit).unwrap();
        assert!(
            c8 <= c7,
            "8 dwords ({c8}) should not exceed 7 dwords ({c7})"
        );
    }
}
