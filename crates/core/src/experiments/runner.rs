//! Parallel experiment engine: enumerate simulation points, fan them out
//! across cores, reassemble deterministically.
//!
//! Every figure in the paper's evaluation is a grid of *independent*
//! execution-driven simulation points — (panel × transfer × scheme) for the
//! bandwidth figures, (panel × doublewords × scheme) for Figure 5, plus the
//! ablation sweeps. This module splits each harness into:
//!
//! 1. **Enumeration** — a pure step producing a `Vec<`[`PointSpec`]`>`
//!    (machine configuration + workload parameters + a human label),
//! 2. **Execution** — [`run_points`] drives the specs through
//!    [`execute_point`] on a scoped worker pool ([`parallel_map`]), and
//! 3. **Reassembly** — results come back *keyed by point index*, so the
//!    tables built from them are byte-identical no matter how many workers
//!    ran (`jobs = 1` takes the exact serial path: same closure, same
//!    iteration order, current thread).
//!
//! The pool is a hand-rolled `std::thread::scope` + atomic-cursor design
//! rather than rayon: this build environment has no registry access (see
//! `vendor/README.md`), and work-stealing buys nothing here — points are
//! coarse (millions of simulated cycles each), so a shared take-a-ticket
//! counter already load-balances them.
//!
//! Execution is instrumented: each point reports its wall-clock and
//! simulated cycle count, and a sweep returns a [`RunReport`] with pool
//! utilization, aggregate throughput, and the slowest point. The bench
//! binaries print the report to **stderr**, keeping stdout (the tables)
//! byte-identical across `--jobs` settings.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use csb_obs::MetricsSnapshot;

use super::fig5::{self, LockResidency};
use super::{
    bandwidth_point_reusing, BandwidthPanel, BandwidthRow, ExpError, LatencyPanel, LatencyRow,
    Scheme, DWORD_BYTES, TRANSFERS,
};
use crate::config::SimConfig;
use crate::sim::{MetricsReport, Simulator};
use crate::workloads::StoreOrder;

/// Which observability artifacts to capture for every executed point.
///
/// The default captures nothing — points run exactly as before, and the
/// figure tables stay byte-identical. Turning either switch on makes each
/// simulation record into a per-point [`PointArtifacts`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ObsConfig {
    /// Capture a Chrome trace-event JSON document per point.
    pub trace: bool,
    /// Capture a [`MetricsReport`] (counters + latency histograms) per
    /// point.
    pub metrics: bool,
}

impl ObsConfig {
    /// Whether any artifact capture is enabled.
    pub fn any(self) -> bool {
        self.trace || self.metrics
    }
}

/// Observability artifacts captured for one executed point.
#[derive(Debug, Clone, Default)]
pub struct PointArtifacts {
    /// Chrome trace-event JSON (present when [`ObsConfig::trace`] was set).
    pub trace_json: Option<String>,
    /// Per-point metrics report (present when [`ObsConfig::metrics`] was
    /// set).
    pub metrics: Option<MetricsReport>,
}

impl PointArtifacts {
    /// Whether this point captured anything.
    pub fn is_empty(&self) -> bool {
        self.trace_json.is_none() && self.metrics.is_none()
    }
}

/// One point's artifacts tagged with the spec label that produced them —
/// what the bench binaries key artifact filenames on. Also carries the
/// point's measured value, simulated cycle count, and wall time so ledger
/// records can be assembled from this struct alone.
#[derive(Debug, Clone)]
pub struct LabeledArtifacts {
    /// The spec's display label, e.g. `"3e/256B/CSB"`.
    pub label: String,
    /// The point's measured value.
    pub value: PointValue,
    /// CPU cycles the point's simulation ran for.
    pub sim_cycles: u64,
    /// Wall-clock time the point took on its worker.
    pub wall: Duration,
    /// Fault-schedule seed (0 for deterministic points).
    pub seed: u64,
    /// FNV-1a hash of the point's machine-configuration rendering.
    pub config_hash: u64,
    /// The captured artifacts.
    pub artifacts: PointArtifacts,
}

/// The workload half of a simulation point: what to measure on the
/// machine a [`PointSpec`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointWork {
    /// Uncached store bandwidth (Figures 3/4 and the bandwidth ablations):
    /// payload bytes per bus cycle.
    Bandwidth {
        /// Transfer size in bytes.
        transfer: usize,
        /// Store-handling scheme under test.
        scheme: Scheme,
        /// Per-line store issue order.
        order: StoreOrder,
    },
    /// Lock-sequence latency (Figure 5 and the latency ablations): CPU
    /// cycles between the timing marks.
    Latency {
        /// Uncached doubleword stores in the sequence.
        dwords: usize,
        /// Store-handling scheme under test.
        scheme: Scheme,
        /// Whether the lock variable hits in the L1.
        residency: LockResidency,
    },
}

/// One fully-described simulation point: a machine plus the measurement to
/// take on it. Specs are pure data — enumerating them runs no simulation.
#[derive(Debug, Clone)]
pub struct PointSpec {
    /// Display label, e.g. `"3e/256B/CSB"` — used by [`RunReport`] to name
    /// the slowest point.
    pub label: String,
    /// Machine configuration (already specialized for the panel; the
    /// scheme in [`PointSpec::work`] applies its own overrides on top).
    pub cfg: SimConfig,
    /// The measurement to take.
    pub work: PointWork,
}

/// The measured value of one executed point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PointValue {
    /// Payload bytes per bus cycle.
    Bandwidth(f64),
    /// CPU cycles per sequence.
    Latency(u64),
}

impl PointValue {
    /// The bandwidth reading, if this was a bandwidth point.
    pub fn bandwidth(self) -> Option<f64> {
        match self {
            PointValue::Bandwidth(b) => Some(b),
            PointValue::Latency(_) => None,
        }
    }

    /// The latency reading, if this was a latency point.
    pub fn latency(self) -> Option<u64> {
        match self {
            PointValue::Latency(c) => Some(c),
            PointValue::Bandwidth(_) => None,
        }
    }
}

/// One executed point: its value plus per-point instrumentation.
#[derive(Debug, Clone)]
pub struct PointOutcome {
    /// The measured value.
    pub value: PointValue,
    /// CPU cycles the simulation ran for.
    pub sim_cycles: u64,
    /// Wall-clock time the point took on its worker.
    pub wall: Duration,
    /// Observability artifacts (empty unless an [`ObsConfig`] asked for
    /// them).
    pub artifacts: PointArtifacts,
}

/// Executes a single spec on the calling thread.
///
/// # Errors
///
/// Returns [`ExpError`] if the workload is invalid or the simulation does
/// not complete.
pub fn execute_point(spec: &PointSpec) -> Result<PointOutcome, ExpError> {
    execute_point_observed(spec, ObsConfig::default())
}

/// [`execute_point`] with artifact capture: the simulation runs with
/// tracing and/or metrics enabled per `obs`, and the outcome carries the
/// captured [`PointArtifacts`].
///
/// # Errors
///
/// As for [`execute_point`].
pub fn execute_point_observed(spec: &PointSpec, obs: ObsConfig) -> Result<PointOutcome, ExpError> {
    execute_point_reusing(&mut None, spec, obs)
}

/// [`execute_point_observed`] through a reusable simulator slot. A worker
/// passes the same slot for every spec in its queue: the first point
/// cold-constructs the simulator, every later point warm-resets it
/// ([`Simulator::reset_with`]) instead of rebuilding its arenas. Results
/// are identical either way; `&mut None` recovers the cold path exactly.
pub(crate) fn execute_point_reusing(
    slot: &mut Option<Simulator>,
    spec: &PointSpec,
    obs: ObsConfig,
) -> Result<PointOutcome, ExpError> {
    // Points that capture artifacts never touch the cache: traces and
    // metrics are not stored, so a cached result could not carry them.
    let cache = if obs.any() {
        None
    } else {
        crate::cache::active()
    };
    let t0 = Instant::now();
    let key = point_cache_key(spec, 0);
    if let Some(cache) = &cache {
        if let Some(payload) = cache.load(key) {
            let decoded =
                decode_point_payload(&payload).filter(|&(value, _)| kind_matches(spec, value));
            if let Some((value, sim_cycles)) = decoded {
                cache.note_hit();
                return Ok(PointOutcome {
                    value,
                    sim_cycles,
                    wall: t0.elapsed(),
                    artifacts: PointArtifacts::default(),
                });
            }
            cache.invalidate(key);
        }
    }
    let (value, sim_cycles, artifacts) = match spec.work {
        PointWork::Bandwidth {
            transfer,
            scheme,
            order,
        } => {
            let (bw, cycles, artifacts) =
                bandwidth_point_reusing(slot, &spec.cfg, transfer, scheme, order, obs)?;
            (PointValue::Bandwidth(bw), cycles, artifacts)
        }
        PointWork::Latency {
            dwords,
            scheme,
            residency,
        } => {
            let (lat, cycles, artifacts) =
                fig5::latency_point_reusing(slot, &spec.cfg, dwords, scheme, residency, obs)?;
            (PointValue::Latency(lat), cycles, artifacts)
        }
    };
    if let Some(cache) = &cache {
        cache.note_miss();
        cache.store(key, &encode_point_payload(value, sim_cycles));
    }
    Ok(PointOutcome {
        value,
        sim_cycles,
        wall: t0.elapsed(),
        artifacts,
    })
}

/// Content-address of one sweep point: snapshot format version (inside
/// [`PointCache::key_debug`]) + machine configuration + workload + fault
/// seed.
/// The display label is deliberately excluded — the same point reached
/// from different sweeps shares one entry.
///
/// [`PointCache`]: crate::cache::PointCache
fn point_cache_key(spec: &PointSpec, seed: u64) -> u64 {
    crate::cache::PointCache::key_debug(&[&spec.cfg, &spec.work], seed)
}

/// Whether a cached value's kind matches what the spec would measure (a
/// key collision guard; mismatches invalidate and re-simulate).
fn kind_matches(spec: &PointSpec, value: PointValue) -> bool {
    matches!(
        (&spec.work, value),
        (PointWork::Bandwidth { .. }, PointValue::Bandwidth(_))
            | (PointWork::Latency { .. }, PointValue::Latency(_))
    )
}

fn encode_point_payload(value: PointValue, sim_cycles: u64) -> Vec<u8> {
    let mut w = csb_snap::SnapshotWriter::new();
    w.put_tag("pt");
    match value {
        PointValue::Bandwidth(b) => {
            w.put_u8(0);
            w.put_f64(b);
        }
        PointValue::Latency(c) => {
            w.put_u8(1);
            w.put_u64(c);
        }
    }
    w.put_u64(sim_cycles);
    w.finish()
}

fn decode_point_payload(bytes: &[u8]) -> Option<(PointValue, u64)> {
    let mut r = csb_snap::SnapshotReader::new(bytes);
    r.take_tag("pt").ok()?;
    let value = match r.take_u8().ok()? {
        0 => PointValue::Bandwidth(r.take_f64().ok()?),
        1 => PointValue::Latency(r.take_u64().ok()?),
        _ => return None,
    };
    let sim_cycles = r.take_u64().ok()?;
    // `SnapshotWriter::finish` appends a checksum; the framed cache entry
    // already verified integrity, so just consume it.
    let _checksum = r.take_u64().ok()?;
    r.expect_end("cached point payload").ok()?;
    Some((value, sim_cycles))
}

/// The number of workers `jobs = 0` ("all cores") resolves to.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Applies `f` to every item and returns the outputs *in item order*.
///
/// With `jobs <= 1` (after resolving `0` to [`default_jobs`]) this is a
/// plain serial loop on the calling thread. Otherwise `min(jobs, len)`
/// scoped workers pull indices from a shared atomic cursor and write into
/// an index-addressed slot table, so the output order never depends on
/// scheduling.
pub fn parallel_map<I, T, F>(items: &[I], jobs: usize, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    parallel_map_with(items, jobs, || (), |(), item| f(item))
}

/// [`parallel_map`] with per-worker state: `init` builds one state value
/// per worker (one total on the serial path), and `f` receives that
/// worker's state alongside each item it pulls. The experiment engine uses
/// this to hand every worker a reusable simulator slot for its whole point
/// queue. The state never migrates between threads, so the output is still
/// a pure function of the items whenever `f`'s *result* is — state may
/// only carry reusable storage, not values that leak into outputs.
pub fn parallel_map_with<S, I, T, N, F>(items: &[I], jobs: usize, init: N, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    N: Fn() -> S + Sync,
    F: Fn(&mut S, &I) -> T + Sync,
{
    let jobs = if jobs == 0 { default_jobs() } else { jobs };
    let workers = jobs.min(items.len());
    if workers <= 1 {
        let mut state = init();
        return items.iter().map(|item| f(&mut state, item)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut state = init();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(i) else { break };
                    let out = f(&mut state, item);
                    *slots[i].lock().expect("result slot poisoned") = Some(out);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every index below the cursor was filled")
        })
        .collect()
}

/// Instrumentation for one sweep through the engine.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Worker count the sweep ran with.
    pub jobs: usize,
    /// Points executed (including failed ones).
    pub points: usize,
    /// Points that returned an error.
    pub errors: usize,
    /// Wall-clock for the whole sweep (enumeration to reassembly).
    pub wall: Duration,
    /// Sum of per-point wall-clock across all workers.
    pub busy: Duration,
    /// Total simulated CPU cycles across all points.
    pub sim_cycles: u64,
    /// Label and wall-clock of the slowest point.
    pub slowest: Option<(String, Duration)>,
    /// Pool capacity actually offered: Σ per-sweep `wall × jobs`. Kept
    /// separately from `wall` so merging sweeps that ran with *different*
    /// worker counts cannot inflate the [`RunReport::utilization`]
    /// denominator (`max(jobs) × Σwall` overstates capacity whenever any
    /// sweep ran narrower than the widest one).
    pub capacity: Duration,
    /// Aggregate metrics across every observed point (present only when a
    /// sweep ran with [`ObsConfig::metrics`]).
    pub metrics: Option<MetricsSnapshot>,
    /// Point-cache effectiveness over this sweep (present only when a
    /// cache was active — see [`crate::cache::set_active`]).
    pub cache: Option<crate::cache::CacheStats>,
}

impl RunReport {
    /// The pool's wall-clock capacity: the tracked [`RunReport::capacity`]
    /// when one was recorded, else `wall × jobs` (a report built by hand or
    /// by an older producer).
    pub fn pool_capacity(&self) -> Duration {
        if self.capacity > Duration::ZERO {
            self.capacity
        } else {
            self.wall * self.jobs.max(1) as u32
        }
    }

    /// Fraction of the pool's wall-clock capacity spent simulating:
    /// `busy / capacity`. 1.0 means every worker was saturated.
    pub fn utilization(&self) -> f64 {
        let capacity = self.pool_capacity().as_secs_f64();
        if capacity > 0.0 {
            (self.busy.as_secs_f64() / capacity).min(1.0)
        } else {
            0.0
        }
    }

    /// Folds another sweep's report into this one. Wall-clock adds (sweeps
    /// run back to back), as do point counts, cycle totals, and pool
    /// capacities; the worker count keeps the maximum seen. Capacities are
    /// normalized through [`RunReport::pool_capacity`] *before* the merge so
    /// each sweep contributes `its own wall × its own jobs` — not the
    /// merged maximum.
    pub fn merge(&mut self, other: &RunReport) {
        self.capacity = self.pool_capacity() + other.pool_capacity();
        self.jobs = self.jobs.max(other.jobs);
        self.points += other.points;
        self.errors += other.errors;
        self.wall += other.wall;
        self.busy += other.busy;
        self.sim_cycles += other.sim_cycles;
        self.slowest = match (&self.slowest, &other.slowest) {
            (Some(x), Some(y)) => Some(if x.1 >= y.1 { x.clone() } else { y.clone() }),
            (Some(x), None) => Some(x.clone()),
            (None, y) => y.clone(),
        };
        self.metrics = match (self.metrics.take(), &other.metrics) {
            (Some(mut m), Some(o)) => {
                m.merge(o);
                Some(m)
            }
            (Some(m), None) => Some(m),
            (None, o) => o.clone(),
        };
        self.cache = match (self.cache.take(), &other.cache) {
            (Some(mut c), Some(o)) => {
                c.add(o);
                Some(c)
            }
            (Some(c), None) => Some(c),
            (None, o) => *o,
        };
    }

    /// Renders the report as the multi-line block the bench binaries print
    /// to stderr.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "runner: {} point(s) on {} worker(s) in {:.3}s",
            self.points,
            self.jobs.max(1),
            self.wall.as_secs_f64()
        ));
        if self.errors > 0 {
            out.push_str(&format!(" ({} failed)", self.errors));
        }
        out.push('\n');
        let wall = self.wall.as_secs_f64();
        let per_point = if self.points > 0 {
            self.busy.as_secs_f64() / self.points as f64
        } else {
            0.0
        };
        out.push_str(&format!(
            "runner: {} simulated cycles ({:.1}M cycles/s), {:.1}ms avg/point, utilization {:.0}%",
            self.sim_cycles,
            if wall > 0.0 {
                self.sim_cycles as f64 / wall / 1e6
            } else {
                0.0
            },
            per_point * 1e3,
            self.utilization() * 100.0
        ));
        if let Some((label, d)) = &self.slowest {
            out.push_str(&format!(
                "\nrunner: slowest point {} at {:.1}ms",
                label,
                d.as_secs_f64() * 1e3
            ));
        }
        if let Some(c) = &self.cache {
            out.push_str(&format!(
                "\nrunner: cache {} hit(s), {} miss(es), {} invalidation(s), {:.1} KiB read, {:.1} KiB written",
                c.hits,
                c.misses,
                c.invalidations,
                c.bytes_read as f64 / 1024.0,
                c.bytes_written as f64 / 1024.0
            ));
        }
        if let Some(metrics) = &self.metrics {
            if let Some(h) = metrics.histograms.get("csb_flush_retry_latency") {
                out.push_str(&format!(
                    "\nrunner: flush retry latency p50 {} p95 {} p99 {} p99.9 {} max {} cycles over {} flush(es)",
                    h.p50, h.p95, h.p99, h.p999, h.max, h.count
                ));
            }
        }
        out
    }
}

/// Executes every spec on `jobs` workers, returning per-point results in
/// spec order plus the sweep's [`RunReport`].
pub fn run_points(
    specs: &[PointSpec],
    jobs: usize,
) -> (Vec<Result<PointOutcome, ExpError>>, RunReport) {
    run_points_observed(specs, jobs, ObsConfig::default())
}

/// [`run_points`] with artifact capture: every point runs with tracing
/// and/or metrics enabled per `obs`, outcomes carry their
/// [`PointArtifacts`], and (when metrics are on) the report aggregates a
/// merged [`MetricsSnapshot`] across all points.
pub fn run_points_observed(
    specs: &[PointSpec],
    jobs: usize,
    obs: ObsConfig,
) -> (Vec<Result<PointOutcome, ExpError>>, RunReport) {
    let jobs = if jobs == 0 { default_jobs() } else { jobs };
    let cache_before = crate::cache::active_stats();
    let t0 = Instant::now();
    // Each worker threads one simulator slot through its whole queue, so
    // every point after a worker's first runs on a warm-reset simulator.
    let results = parallel_map_with(
        specs,
        jobs,
        || None,
        |slot, spec| execute_point_reusing(slot, spec, obs),
    );
    let wall = t0.elapsed();
    let workers = jobs.min(specs.len()).max(1);
    let mut report = RunReport {
        jobs: workers,
        points: specs.len(),
        wall,
        capacity: wall * workers as u32,
        ..RunReport::default()
    };
    for (spec, result) in specs.iter().zip(&results) {
        match result {
            Ok(outcome) => {
                report.busy += outcome.wall;
                report.sim_cycles += outcome.sim_cycles;
                let slower = report
                    .slowest
                    .as_ref()
                    .is_none_or(|(_, d)| outcome.wall > *d);
                if slower {
                    report.slowest = Some((spec.label.clone(), outcome.wall));
                }
                if let Some(point_metrics) = &outcome.artifacts.metrics {
                    report
                        .metrics
                        .get_or_insert_with(MetricsSnapshot::default)
                        .merge(&point_metrics.metrics);
                }
            }
            Err(_) => report.errors += 1,
        }
    }
    if let (Some(before), Some(after)) = (cache_before, crate::cache::active_stats()) {
        // A cache was installed but no point consulted it (e.g. every
        // point captured artifacts): nothing to report.
        let delta = after.delta(&before);
        if delta.any() {
            report.cache = Some(delta);
            // Surface the pair in the metrics aggregate too, so a metrics
            // consumer sees cache effectiveness alongside the counters.
            let m = report.metrics.get_or_insert_with(MetricsSnapshot::default);
            m.counters.insert("cache.hit".to_string(), delta.hits);
            m.counters.insert("cache.miss".to_string(), delta.misses);
        }
    }
    (results, report)
}

/// Executes every spec and unwraps the values, failing with the error of
/// the *lowest-indexed* failing point — exactly what a serial `?`-loop
/// would report.
///
/// # Errors
///
/// The first (in spec order) point failure.
pub fn run_values(
    specs: &[PointSpec],
    jobs: usize,
) -> Result<(Vec<PointValue>, RunReport), ExpError> {
    let (values, _, report) = run_values_observed(specs, jobs, ObsConfig::default())?;
    Ok((values, report))
}

/// [`run_values`] with artifact capture: also returns one
/// [`LabeledArtifacts`] per spec, in spec order (empty artifacts when
/// `obs` captures nothing).
///
/// # Errors
///
/// The first (in spec order) point failure.
pub fn run_values_observed(
    specs: &[PointSpec],
    jobs: usize,
    obs: ObsConfig,
) -> Result<(Vec<PointValue>, Vec<LabeledArtifacts>, RunReport), ExpError> {
    let (results, report) = run_points_observed(specs, jobs, obs);
    let mut values = Vec::with_capacity(results.len());
    let mut artifacts = Vec::with_capacity(results.len());
    for (spec, r) in specs.iter().zip(results) {
        let outcome = r?;
        values.push(outcome.value);
        artifacts.push(LabeledArtifacts {
            label: spec.label.clone(),
            value: outcome.value,
            sim_cycles: outcome.sim_cycles,
            wall: outcome.wall,
            seed: 0,
            config_hash: csb_obs::hash_config(&format!("{:?} {:?}", spec.cfg, spec.work)),
            artifacts: outcome.artifacts,
        });
    }
    Ok((values, artifacts, report))
}

/// Declarative description of one bandwidth panel: the engine expands it
/// to [`TRANSFERS`] × the machine's scheme ladder.
#[derive(Debug, Clone)]
pub struct BandwidthPanelSpec {
    /// Panel id, e.g. `"3a"`.
    pub id: String,
    /// Human-readable parameter description.
    pub title: String,
    /// The panel's machine.
    pub cfg: SimConfig,
}

impl BandwidthPanelSpec {
    /// Builds a spec.
    pub fn new(id: impl Into<String>, title: impl Into<String>, cfg: SimConfig) -> Self {
        BandwidthPanelSpec {
            id: id.into(),
            title: title.into(),
            cfg,
        }
    }

    /// The points this panel expands to, in row-major (transfer, scheme)
    /// order — the serial harness's iteration order.
    pub fn enumerate(&self) -> Vec<PointSpec> {
        let schemes = Scheme::ladder(self.cfg.line());
        let mut points = Vec::with_capacity(TRANSFERS.len() * schemes.len());
        for &transfer in &TRANSFERS {
            for &scheme in &schemes {
                points.push(PointSpec {
                    label: format!("{}/{}B/{}", self.id, transfer, scheme),
                    cfg: self.cfg.clone(),
                    work: PointWork::Bandwidth {
                        transfer,
                        scheme,
                        order: StoreOrder::Ascending,
                    },
                });
            }
        }
        points
    }
}

/// Runs a set of bandwidth panels through the engine.
///
/// # Errors
///
/// The first (in enumeration order) point failure.
pub fn run_bandwidth_panels(
    panels: &[BandwidthPanelSpec],
    jobs: usize,
) -> Result<(Vec<BandwidthPanel>, RunReport), ExpError> {
    let (assembled, _, report) = run_bandwidth_panels_observed(panels, jobs, ObsConfig::default())?;
    Ok((assembled, report))
}

/// [`run_bandwidth_panels`] with artifact capture: also returns one
/// [`LabeledArtifacts`] per enumerated point, in enumeration order.
///
/// # Errors
///
/// The first (in enumeration order) point failure.
pub fn run_bandwidth_panels_observed(
    panels: &[BandwidthPanelSpec],
    jobs: usize,
    obs: ObsConfig,
) -> Result<(Vec<BandwidthPanel>, Vec<LabeledArtifacts>, RunReport), ExpError> {
    let specs: Vec<PointSpec> = panels
        .iter()
        .flat_map(BandwidthPanelSpec::enumerate)
        .collect();
    let (values, artifacts, report) = run_values_observed(&specs, jobs, obs)?;
    let mut iter = values.into_iter();
    let assembled = panels
        .iter()
        .map(|panel| {
            let schemes = Scheme::ladder(panel.cfg.line());
            let rows = TRANSFERS
                .iter()
                .map(|&transfer| BandwidthRow {
                    transfer,
                    values: schemes
                        .iter()
                        .map(|_| {
                            iter.next()
                                .expect("one value per enumerated point")
                                .bandwidth()
                                .expect("bandwidth panels enumerate bandwidth points")
                        })
                        .collect(),
                })
                .collect();
            BandwidthPanel {
                id: panel.id.clone(),
                title: panel.title.clone(),
                schemes: schemes.iter().map(Scheme::to_string).collect(),
                rows,
            }
        })
        .collect();
    Ok((assembled, artifacts, report))
}

/// Declarative description of one latency panel (Figure 5): expands to
/// [`fig5::DWORDS`] × the machine's scheme ladder.
#[derive(Debug, Clone)]
pub struct LatencyPanelSpec {
    /// Panel id, e.g. `"5a"`.
    pub id: String,
    /// Human-readable parameter description.
    pub title: String,
    /// The panel's machine.
    pub cfg: SimConfig,
    /// Whether the lock variable hits in the L1.
    pub residency: LockResidency,
}

impl LatencyPanelSpec {
    /// Builds a spec.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        cfg: SimConfig,
        residency: LockResidency,
    ) -> Self {
        LatencyPanelSpec {
            id: id.into(),
            title: title.into(),
            cfg,
            residency,
        }
    }

    /// The points this panel expands to, in row-major (dwords, scheme)
    /// order.
    pub fn enumerate(&self) -> Vec<PointSpec> {
        let schemes = Scheme::ladder(self.cfg.line());
        let mut points = Vec::with_capacity(fig5::DWORDS.len() * schemes.len());
        for &dwords in &fig5::DWORDS {
            for &scheme in &schemes {
                points.push(PointSpec {
                    label: format!("{}/{}dw/{}", self.id, dwords, scheme),
                    cfg: self.cfg.clone(),
                    work: PointWork::Latency {
                        dwords,
                        scheme,
                        residency: self.residency,
                    },
                });
            }
        }
        points
    }
}

/// Runs a set of latency panels through the engine.
///
/// # Errors
///
/// The first (in enumeration order) point failure.
pub fn run_latency_panels(
    panels: &[LatencyPanelSpec],
    jobs: usize,
) -> Result<(Vec<LatencyPanel>, RunReport), ExpError> {
    let (assembled, _, report) = run_latency_panels_observed(panels, jobs, ObsConfig::default())?;
    Ok((assembled, report))
}

/// [`run_latency_panels`] with artifact capture: also returns one
/// [`LabeledArtifacts`] per enumerated point, in enumeration order.
///
/// # Errors
///
/// The first (in enumeration order) point failure.
pub fn run_latency_panels_observed(
    panels: &[LatencyPanelSpec],
    jobs: usize,
    obs: ObsConfig,
) -> Result<(Vec<LatencyPanel>, Vec<LabeledArtifacts>, RunReport), ExpError> {
    let specs: Vec<PointSpec> = panels
        .iter()
        .flat_map(LatencyPanelSpec::enumerate)
        .collect();
    let (values, artifacts, report) = run_values_observed(&specs, jobs, obs)?;
    let mut iter = values.into_iter();
    let assembled = panels
        .iter()
        .map(|panel| {
            let schemes = Scheme::ladder(panel.cfg.line());
            let rows = fig5::DWORDS
                .iter()
                .map(|&dwords| LatencyRow {
                    transfer: dwords * DWORD_BYTES,
                    cycles: schemes
                        .iter()
                        .map(|_| {
                            iter.next()
                                .expect("one value per enumerated point")
                                .latency()
                                .expect("latency panels enumerate latency points")
                        })
                        .collect(),
                })
                .collect();
            LatencyPanel {
                id: panel.id.clone(),
                title: panel.title.clone(),
                schemes: schemes.iter().map(Scheme::to_string).collect(),
                rows,
            }
        })
        .collect();
    Ok((assembled, artifacts, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..67).collect();
        let doubled = parallel_map(&items, 4, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_serial_and_parallel_agree() {
        let items: Vec<u64> = (0..40).collect();
        let f = |&x: &u64| x.wrapping_mul(0x9e37_79b9).rotate_left(13);
        assert_eq!(parallel_map(&items, 1, f), parallel_map(&items, 8, f));
    }

    #[test]
    fn warm_reset_reuse_matches_cold_construction() {
        use super::super::{bandwidth_sim, bandwidth_sim_into, POINT_LIMIT};
        use fig5::{latency_sim, latency_sim_into};

        let small = SimConfig::default().line_size(32).bus(
            csb_bus::BusConfig::multiplexed(8)
                .max_burst(32)
                .build()
                .expect("static test bus config is valid"),
        );
        let default = SimConfig::default();

        // Bandwidth and latency points deliberately alternating machine
        // shapes, schemes, and workloads, all through ONE simulator slot —
        // every warm reset crosses a configuration change.
        enum P {
            Bw(SimConfig, usize, Scheme, StoreOrder),
            Lat(SimConfig, usize, Scheme, LockResidency),
        }
        let queue = [
            P::Bw(default.clone(), 256, Scheme::Csb, StoreOrder::Ascending),
            P::Lat(
                default.clone(),
                8,
                Scheme::Uncached { block: 8 },
                LockResidency::Miss,
            ),
            P::Bw(
                small.clone(),
                64,
                Scheme::Uncached { block: 32 },
                StoreOrder::Shuffled,
            ),
            P::Lat(default.clone(), 4, Scheme::Csb, LockResidency::Hit),
            P::Bw(default.clone(), 128, Scheme::R10k, StoreOrder::Ascending),
            P::Bw(small, 512, Scheme::Ppc620, StoreOrder::Ascending),
        ];

        let mut slot: Option<Simulator> = None;
        for (i, p) in queue.iter().enumerate() {
            let (warm, mut cold) = match p {
                P::Bw(cfg, transfer, scheme, order) => {
                    let warm = bandwidth_sim_into(&mut slot, cfg, *transfer, *scheme, *order)
                        .expect("warm bandwidth sim");
                    let cold =
                        bandwidth_sim(cfg, *transfer, *scheme, *order).expect("cold bandwidth sim");
                    (warm, cold)
                }
                P::Lat(cfg, dwords, scheme, residency) => {
                    let warm = latency_sim_into(&mut slot, cfg, *dwords, *scheme, *residency)
                        .expect("warm latency sim");
                    let cold =
                        latency_sim(cfg, *dwords, *scheme, *residency).expect("cold latency sim");
                    (warm, cold)
                }
            };
            let warm_summary = warm.run(POINT_LIMIT).expect("warm run completes");
            let cold_summary = cold.run(POINT_LIMIT).expect("cold run completes");
            assert_eq!(
                serde_json::to_string(&warm_summary).unwrap(),
                serde_json::to_string(&cold_summary).unwrap(),
                "point {i}: warm-reset summary must be byte-identical to cold"
            );
            assert_eq!(
                serde_json::to_string(warm.device()).unwrap(),
                serde_json::to_string(cold.device()).unwrap(),
                "point {i}: warm-reset device log must be byte-identical to cold"
            );
        }
    }

    #[test]
    fn run_points_first_error_wins() {
        // Two invalid transfers among valid points: run_values must report
        // the lowest-indexed failure regardless of worker count.
        let cfg = SimConfig::default();
        let point = |transfer: usize| PointSpec {
            label: format!("t/{transfer}"),
            cfg: cfg.clone(),
            work: PointWork::Bandwidth {
                transfer,
                scheme: Scheme::Uncached { block: 8 },
                order: StoreOrder::Ascending,
            },
        };
        // transfer=7 is not a multiple of 8 → workload error.
        let specs = vec![point(16), point(7), point(32), point(3)];
        for jobs in [1, 4] {
            let err = run_values(&specs, jobs).unwrap_err();
            match err {
                ExpError::Workload(crate::workloads::WorkloadError::BadTransfer { bytes }) => {
                    assert_eq!(bytes, 7, "jobs={jobs} must surface the first failure");
                }
                other => panic!("unexpected error: {other}"),
            }
        }
    }

    #[test]
    fn bandwidth_panel_parallel_matches_serial() {
        // One panel both ways: same row order, same values, and the same
        // serialized bytes (what the golden files and --json dumps see).
        let cfg = SimConfig::default().line_size(32).bus(
            csb_bus::BusConfig::multiplexed(8)
                .max_burst(32)
                .build()
                .expect("static test bus config is valid"),
        );
        let spec = BandwidthPanelSpec::new("t", "serial/parallel equivalence", cfg);
        let (serial, r1) = run_bandwidth_panels(std::slice::from_ref(&spec), 1).unwrap();
        let (parallel, r4) = run_bandwidth_panels(std::slice::from_ref(&spec), 4).unwrap();
        assert_eq!(
            serde_json::to_string(&serial).unwrap(),
            serde_json::to_string(&parallel).unwrap()
        );
        assert_eq!(serial[0].to_table(), parallel[0].to_table());
        assert_eq!(r1.points, r4.points);
        assert_eq!(r1.sim_cycles, r4.sim_cycles, "same points were simulated");
        assert_eq!(r1.jobs, 1);
        assert_eq!(r4.jobs, 4);
    }

    #[test]
    fn latency_panel_parallel_matches_serial() {
        let spec = fig5::panel_spec(&SimConfig::default(), LockResidency::Hit);
        let (serial, _) = run_latency_panels(std::slice::from_ref(&spec), 1).unwrap();
        let (parallel, _) = run_latency_panels(std::slice::from_ref(&spec), 3).unwrap();
        assert_eq!(
            serde_json::to_string(&serial).unwrap(),
            serde_json::to_string(&parallel).unwrap()
        );
        assert_eq!(serial[0].to_table(), parallel[0].to_table());
    }

    #[test]
    fn report_merge_and_utilization() {
        let mut a = RunReport {
            jobs: 2,
            points: 4,
            wall: Duration::from_secs(2),
            busy: Duration::from_secs(3),
            sim_cycles: 100,
            slowest: Some(("a".into(), Duration::from_millis(900))),
            ..RunReport::default()
        };
        let b = RunReport {
            jobs: 1,
            points: 1,
            errors: 1,
            wall: Duration::from_secs(1),
            busy: Duration::from_secs(1),
            sim_cycles: 50,
            slowest: Some(("b".into(), Duration::from_millis(1000))),
            ..RunReport::default()
        };
        a.merge(&b);
        assert_eq!(a.jobs, 2);
        assert_eq!(a.points, 5);
        assert_eq!(a.errors, 1);
        assert_eq!(a.sim_cycles, 150);
        assert_eq!(a.slowest.as_ref().unwrap().0, "b");
        // Capacity is per-sweep wall × jobs: 2s × 2 + 1s × 1 = 5s — NOT
        // max(jobs) × Σwall = 6s, which would dilute utilization of the
        // narrower sweep. busy 4s over 5s capacity = 4/5.
        assert_eq!(a.pool_capacity(), Duration::from_secs(5));
        assert!((a.utilization() - 4.0 / 5.0).abs() < 1e-9);
        assert!(a.render().contains("5 point(s)"));
    }

    #[test]
    fn merge_normalizes_untracked_capacity() {
        // A report built without an explicit capacity (older producer /
        // hand-rolled) falls back to wall × jobs on both sides of a merge.
        let mut a = RunReport {
            jobs: 4,
            wall: Duration::from_secs(1),
            busy: Duration::from_secs(4),
            ..RunReport::default()
        };
        assert!((a.utilization() - 1.0).abs() < 1e-9);
        let b = RunReport {
            jobs: 1,
            wall: Duration::from_secs(4),
            busy: Duration::from_secs(2),
            ..RunReport::default()
        };
        a.merge(&b);
        // a offered 1s × 4 workers, b offered 4s × 1 worker → 8s total.
        assert_eq!(a.pool_capacity(), Duration::from_secs(8));
        assert!((a.utilization() - 6.0 / 8.0).abs() < 1e-9);
    }

    #[test]
    fn observed_run_captures_artifacts_and_merged_metrics() {
        let cfg = SimConfig::default();
        let specs = vec![
            PointSpec {
                label: "obs/64B/CSB".into(),
                cfg: cfg.clone(),
                work: PointWork::Bandwidth {
                    transfer: 64,
                    scheme: Scheme::Csb,
                    order: StoreOrder::Ascending,
                },
            },
            PointSpec {
                label: "obs/2dw/CSB".into(),
                cfg,
                work: PointWork::Latency {
                    dwords: 2,
                    scheme: Scheme::Csb,
                    residency: LockResidency::Hit,
                },
            },
        ];
        let obs = ObsConfig {
            trace: true,
            metrics: true,
        };
        let (values, artifacts, report) = run_values_observed(&specs, 2, obs).unwrap();
        assert_eq!(values.len(), 2);
        assert_eq!(artifacts.len(), 2);
        let mut flushes = 0;
        for la in &artifacts {
            let trace = la.artifacts.trace_json.as_deref().expect("trace captured");
            assert!(serde_json::parse_value(trace).is_ok(), "{}", la.label);
            let m = la.artifacts.metrics.as_ref().expect("metrics captured");
            assert_eq!(
                m.metrics.histograms["csb_flush_retry_latency"].count, m.csb.flush_successes,
                "{}",
                la.label
            );
            flushes += m.csb.flush_successes;
        }
        // The report's aggregate is the sum of the per-point snapshots.
        let agg = report.metrics.as_ref().expect("aggregate metrics");
        assert_eq!(agg.histograms["csb_flush_retry_latency"].count, flushes);
        let rendered = report.render();
        assert!(rendered.contains("flush retry latency"));
        assert!(rendered.contains(" p99 "), "{rendered}");
        assert!(rendered.contains(" p99.9 "), "{rendered}");
    }

    #[test]
    fn unobserved_run_captures_nothing() {
        let specs = vec![PointSpec {
            label: "plain/16B".into(),
            cfg: SimConfig::default(),
            work: PointWork::Bandwidth {
                transfer: 16,
                scheme: Scheme::Uncached { block: 8 },
                order: StoreOrder::Ascending,
            },
        }];
        let (results, report) = run_points(&specs, 1);
        let outcome = results[0].as_ref().unwrap();
        assert!(outcome.artifacts.is_empty());
        assert!(report.metrics.is_none());
    }

    #[test]
    fn observed_artifacts_identical_across_jobs() {
        // The per-point artifacts are produced by single-threaded
        // simulations and reassembled by index, so worker count must not
        // leak into them.
        let spec = fig5::panel_spec(&SimConfig::default(), LockResidency::Hit);
        let obs = ObsConfig {
            trace: true,
            metrics: true,
        };
        let specs = spec.enumerate();
        let short: Vec<PointSpec> = specs.into_iter().take(6).collect();
        let (v1, a1, _) = run_values_observed(&short, 1, obs).unwrap();
        let (v4, a4, _) = run_values_observed(&short, 4, obs).unwrap();
        assert_eq!(v1, v4);
        for (x, y) in a1.iter().zip(&a4) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.artifacts.trace_json, y.artifacts.trace_json);
            assert_eq!(
                serde_json::to_string(x.artifacts.metrics.as_ref().unwrap()).unwrap(),
                serde_json::to_string(y.artifacts.metrics.as_ref().unwrap()).unwrap()
            );
        }
    }
}
