//! Many-core contention sweep: throughput and flush-latency tails of a
//! server-class I/O mix as the processor count grows.
//!
//! Each point time-slices one [`crate::multiproc::MultiSim`] core between
//! 16/32/64 processes with seeded open-loop arrivals (SplitMix64 offsets
//! over a fixed span; process 0 is resident at reset) and compares three
//! schemes:
//!
//! * `lock` — the conventional §4.2 baseline: every process takes the one
//!   global spin lock around its uncached stores, so accesses convoy.
//! * `csb` — per-process CSB lines ([`workloads::csb_worker`] gives each
//!   process its own combining line): non-blocking, but a context switch
//!   mid-sequence still resets the buffer (the §3.2 interference counted
//!   by [`CsbStats::cross_pid_resets`]).
//! * `csb2x` — the same sharded workload on the paper's optional
//!   double-buffered CSB (§3.3's second line buffer), the ablation knob
//!   for how much buffering the sharded scheme needs.
//!
//! The metric pair matches the paper's framing: delivered device payload
//! bytes per CPU kilocycle (throughput) and the
//! `csb_flush_retry_latency` histogram's p50/p95/p99/p99.9 tail (latency),
//! merged across the seeds of each (cores, scheme) cell. Cached cells
//! persist their raw bucket counts so a cache hit merges exactly like a
//! live run.
//!
//! [`CsbStats::cross_pid_resets`]: csb_uncached::CsbStats::cross_pid_resets

use std::time::Duration;

use serde::{Deserialize, Serialize};

use super::runner::{LabeledArtifacts, ObsConfig, PointArtifacts, PointValue, RunReport};
use super::{format_table, ExpError};
use crate::config::SimConfig;
use crate::multiproc::{MultiSim, SwitchPolicy};
use crate::workloads;
use csb_obs::{BucketCount, HistogramSummary};

/// Processor counts swept.
pub const CORES: [usize; 3] = [16, 32, 64];

/// Independent arrival seeds per (cores, scheme) cell.
pub const SEEDS_PER_CELL: u64 = 2;

/// CSB sequences (or locked accesses) per process.
const ITERATIONS: usize = 8;

/// Doublewords per access (one full line on the default machine).
const DWORDS: usize = 8;

/// Cycle span the open-loop arrivals are scattered over — short enough
/// that the later processors pile onto an already-busy core (the point of
/// the sweep is the contention regime, not isolated runs).
const ARRIVAL_SPAN: u64 = 4_000;

/// Fixed scheduler slice in CPU cycles: a few sequences long, so slice
/// boundaries regularly land mid-sequence (the §3.2 interference window).
const SLICE: u64 = 60;

/// Cycle budget per point (the lock convoy at 64 cores stays far under).
const POINT_LIMIT: u64 = 50_000_000;

/// The flush-latency histogram the quantile columns read.
const FLUSH_HISTOGRAM: &str = "csb_flush_retry_latency";

/// One contention scheme (column group).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ContendScheme {
    /// Global spin lock around uncached stores (conventional baseline).
    Lock,
    /// Per-process CSB lines, single-buffered.
    Csb,
    /// Per-process CSB lines on the double-buffered CSB (§3.3 ablation).
    CsbDouble,
}

/// The scheme ladder the sweep compares, in column order.
pub fn schemes() -> Vec<ContendScheme> {
    vec![
        ContendScheme::Lock,
        ContendScheme::Csb,
        ContendScheme::CsbDouble,
    ]
}

impl ContendScheme {
    /// Short label for tables and artifacts.
    pub fn label(self) -> &'static str {
        match self {
            ContendScheme::Lock => "lock",
            ContendScheme::Csb => "csb",
            ContendScheme::CsbDouble => "csb2x",
        }
    }

    /// Machine configuration for this scheme.
    fn config(self) -> SimConfig {
        match self {
            ContendScheme::Lock | ContendScheme::Csb => SimConfig::default(),
            ContendScheme::CsbDouble => SimConfig::default().csb_double_buffered(),
        }
    }
}

/// Seeded open-loop arrival schedule: process 0 is resident at reset,
/// every later process arrives at a SplitMix64 offset in `[0, span)`.
/// Shared with the engine-throughput contention point so both harnesses
/// measure the same workload.
pub fn arrival_schedule(n: usize, span: u64, seed: u64) -> Vec<u64> {
    let mut arrivals = vec![0u64; n];
    let mut z = seed;
    for a in arrivals.iter_mut().skip(1) {
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut x = z;
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        *a = if span == 0 { 0 } else { x % span };
    }
    arrivals
}

/// Aggregated outcomes of one (cores, scheme) cell across its seeds.
#[derive(Debug, Clone, Serialize)]
pub struct ContendCell {
    /// Scheme label (column group).
    pub scheme: String,
    /// Mean delivered device payload bytes per CPU cycle across seeds.
    pub throughput: f64,
    /// Mean run length in CPU cycles across seeds.
    pub mean_cycles: f64,
    /// Total context switches across seeds.
    pub switches: u64,
    /// Total conditional-flush failures across seeds.
    pub flush_failures: u64,
    /// Total CSB resets caused by a *different* process's store (§3.2
    /// interference; 0 for the lock scheme).
    pub cross_pid_resets: u64,
    /// Flush retry latency merged across seeds (absent for the lock
    /// scheme, which never touches the CSB).
    pub flush: Option<HistogramSummary>,
}

/// One processor count's cells across the scheme ladder.
#[derive(Debug, Clone, Serialize)]
pub struct ContendRow {
    /// Simulated processor count.
    pub cores: usize,
    /// One cell per scheme, in [`schemes`] order.
    pub cells: Vec<ContendCell>,
}

/// The whole sweep: cores × scheme, aggregated over arrival seeds.
#[derive(Debug, Clone, Serialize)]
pub struct ContendSweep {
    /// Sweep id (`"contend"`).
    pub id: String,
    /// Human-readable parameter description.
    pub title: String,
    /// Scheme labels, in column-group order.
    pub schemes: Vec<String>,
    /// One row per processor count.
    pub rows: Vec<ContendRow>,
}

impl ContendSweep {
    /// Renders the sweep as a fixed-width text table: one line per
    /// (cores, scheme) cell with throughput in payload bytes per
    /// kilocycle and the flush-latency quantile ladder.
    pub fn to_table(&self) -> String {
        let headers: Vec<String> = [
            "cores", "scheme", "B/kc", "switch", "x-pid", "p50", "p95", "p99", "p99.9", "max",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let mut rows = Vec::new();
        for row in &self.rows {
            for c in &row.cells {
                let mut line = vec![
                    row.cores.to_string(),
                    c.scheme.clone(),
                    format!("{:.2}", c.throughput * 1000.0),
                    c.switches.to_string(),
                    c.cross_pid_resets.to_string(),
                ];
                match &c.flush {
                    Some(h) => {
                        for v in [h.p50, h.p95, h.p99, h.p999, h.max] {
                            line.push(v.to_string());
                        }
                    }
                    None => line.extend(std::iter::repeat_n("-".to_string(), 5)),
                }
                rows.push(line);
            }
        }
        format!(
            "Many-core contention — {}\n{}",
            self.title,
            format_table(&headers, &rows)
        )
    }
}

/// Raw outcome of a single seeded run.
#[derive(Debug, Clone)]
struct PointResult {
    payload_bytes: u64,
    cycles: u64,
    switches: u64,
    flush_failures: u64,
    cross_pid_resets: u64,
    flush: Option<HistogramSummary>,
    sim_cycles: u64,
    wall: Duration,
    artifacts: PointArtifacts,
}

impl PointResult {
    fn throughput(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.payload_bytes as f64 / self.cycles as f64
        }
    }
}

/// A summary with re-derived quantiles from raw bucket counts: merging
/// into an empty summary runs the exact ranked-walk estimator, so a
/// decoded cache payload is indistinguishable from a live capture.
fn summary_from_buckets(
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: Vec<BucketCount>,
) -> HistogramSummary {
    let mut s = HistogramSummary {
        count: 0,
        sum: 0,
        min: 0,
        max: 0,
        p50: 0,
        p95: 0,
        p99: 0,
        p999: 0,
        buckets: Vec::new(),
    };
    s.merge(&HistogramSummary {
        count,
        sum,
        min,
        max,
        p50: 0,
        p95: 0,
        p99: 0,
        p999: 0,
        buckets,
    });
    s
}

/// Content-address of one seeded contention point: machine configuration,
/// workload shape, scheduling, arrival span, and seed.
fn contend_point_key(scheme: ContendScheme, cores: usize, seed: u64) -> u64 {
    let cfg = format!("{:?}", scheme.config());
    let work = format!(
        "contend {} c{cores} {ITERATIONS}it {DWORDS}dw slice{SLICE} span{ARRIVAL_SPAN}",
        scheme.label()
    );
    crate::cache::PointCache::key(&[cfg.as_bytes(), work.as_bytes(), &seed.to_le_bytes()])
}

fn encode_contend_payload(r: &PointResult) -> Vec<u8> {
    let mut w = csb_snap::SnapshotWriter::new();
    w.put_tag("cnt");
    w.put_u64(r.payload_bytes);
    w.put_u64(r.cycles);
    w.put_u64(r.switches);
    w.put_u64(r.flush_failures);
    w.put_u64(r.cross_pid_resets);
    w.put_u64(r.sim_cycles);
    // Raw histogram bucket counts, so a cached cell merges across seeds
    // exactly like a live one (quantiles are re-derived on decode).
    match &r.flush {
        Some(h) => {
            w.put_bool(true);
            w.put_u64(h.count);
            w.put_u64(h.sum);
            w.put_u64(h.min);
            w.put_u64(h.max);
            w.put_usize(h.buckets.len());
            for b in &h.buckets {
                w.put_u64(b.le);
                w.put_u64(b.n);
            }
        }
        None => w.put_bool(false),
    }
    w.finish()
}

fn decode_contend_payload(bytes: &[u8]) -> Option<PointResult> {
    let mut r = csb_snap::SnapshotReader::new(bytes);
    r.take_tag("cnt").ok()?;
    let payload_bytes = r.take_u64().ok()?;
    let cycles = r.take_u64().ok()?;
    let switches = r.take_u64().ok()?;
    let flush_failures = r.take_u64().ok()?;
    let cross_pid_resets = r.take_u64().ok()?;
    let sim_cycles = r.take_u64().ok()?;
    let flush = if r.take_bool().ok()? {
        let count = r.take_u64().ok()?;
        let sum = r.take_u64().ok()?;
        let min = r.take_u64().ok()?;
        let max = r.take_u64().ok()?;
        let len = r.take_usize().ok()?;
        let mut buckets = Vec::with_capacity(len);
        for _ in 0..len {
            let le = r.take_u64().ok()?;
            let n = r.take_u64().ok()?;
            buckets.push(BucketCount { le, n });
        }
        Some(summary_from_buckets(count, sum, min, max, buckets))
    } else {
        None
    };
    let _checksum = r.take_u64().ok()?;
    r.expect_end("cached contention point payload").ok()?;
    Some(PointResult {
        payload_bytes,
        cycles,
        switches,
        flush_failures,
        cross_pid_resets,
        flush,
        sim_cycles,
        wall: Duration::ZERO,
        artifacts: PointArtifacts::default(),
    })
}

/// Per-process programs for one point.
fn programs(
    scheme: ContendScheme,
    cores: usize,
    cfg: &SimConfig,
) -> Result<Vec<csb_isa::Program>, ExpError> {
    (0..cores)
        .map(|i| match scheme {
            ContendScheme::Lock => Ok(workloads::lock_worker(ITERATIONS, DWORDS)?),
            ContendScheme::Csb | ContendScheme::CsbDouble => {
                Ok(workloads::csb_worker(ITERATIONS, DWORDS, i, cfg)?)
            }
        })
        .collect()
}

/// Runs one (scheme, cores, seed) point.
fn run_point(
    scheme: ContendScheme,
    cores: usize,
    seed: u64,
    obs: ObsConfig,
) -> Result<PointResult, ExpError> {
    let t0 = std::time::Instant::now();
    // Artifact-capturing points bypass the cache (see the runner module).
    let cache = if obs.any() {
        None
    } else {
        crate::cache::active()
    };
    let key = contend_point_key(scheme, cores, seed);
    if let Some(cache) = &cache {
        if let Some(payload) = cache.load(key) {
            if let Some(mut cached) = decode_contend_payload(&payload) {
                cache.note_hit();
                cached.wall = t0.elapsed();
                return Ok(cached);
            }
            cache.invalidate(key);
        }
    }
    let cfg = scheme.config();
    let programs = programs(scheme, cores, &cfg)?;
    let mut ms = MultiSim::new(cfg, programs, SwitchPolicy::Fixed(SLICE))?;
    ms.set_arrivals(&arrival_schedule(cores, ARRIVAL_SPAN, seed));
    // The latency quantiles *are* the result, so metrics always record.
    ms.enable_metrics();
    if obs.trace {
        ms.enable_tracing();
    }
    let summary = ms.run(POINT_LIMIT)?;
    let report = ms.simulator().metrics_report();
    let result = PointResult {
        payload_bytes: ms.simulator().device().payload_bytes(),
        cycles: summary.cycles,
        switches: summary.switches,
        flush_failures: summary.flush_failures,
        cross_pid_resets: report.csb.cross_pid_resets,
        flush: report.metrics.histograms.get(FLUSH_HISTOGRAM).cloned(),
        sim_cycles: summary.cycles,
        wall: t0.elapsed(),
        artifacts: PointArtifacts {
            trace_json: obs.trace.then(|| ms.simulator().chrome_trace()),
            metrics: obs.metrics.then_some(report),
        },
    };
    if let Some(cache) = &cache {
        cache.note_miss();
        cache.store(key, &encode_contend_payload(&result));
    }
    Ok(result)
}

/// Runs the full sweep serially.
///
/// # Errors
///
/// Propagates the first failing point (livelock here is an error — the
/// swept schemes are all progress-safe by construction).
pub fn run() -> Result<ContendSweep, ExpError> {
    Ok(run_jobs(1)?.0)
}

/// Runs the full sweep on `jobs` workers (`0` = all cores), with the
/// engine's [`RunReport`].
///
/// # Errors
///
/// As for [`run`]; the lowest-indexed failing point wins.
pub fn run_jobs(jobs: usize) -> Result<(ContendSweep, RunReport), ExpError> {
    let (sweep, _, report) = run_jobs_observed(jobs, ObsConfig::default())?;
    Ok((sweep, report))
}

/// [`run_jobs`] with artifact capture: every seeded point runs with
/// tracing and/or metrics per `obs` and returns one [`LabeledArtifacts`]
/// per point (label `contend/c<cores>/<scheme>`, distinguished per seed
/// by [`LabeledArtifacts::seed`]), in sweep-enumeration order.
///
/// # Errors
///
/// As for [`run_jobs`]; the lowest-indexed failing point wins.
pub fn run_jobs_observed(
    jobs: usize,
    obs: ObsConfig,
) -> Result<(ContendSweep, Vec<LabeledArtifacts>, RunReport), ExpError> {
    let schemes = schemes();
    let mut points = Vec::new();
    for (ci, &cores) in CORES.iter().enumerate() {
        for (si, &scheme) in schemes.iter().enumerate() {
            for seed in 0..SEEDS_PER_CELL {
                // Seeds differ per cell so no two cells share arrivals.
                let seed = 0xc0de_0000 + (ci as u64) * 1_000 + (si as u64) * 100 + seed;
                points.push((ci, si, scheme, cores, seed));
            }
        }
    }
    let cache_before = crate::cache::active_stats();
    let t0 = std::time::Instant::now();
    let results = super::runner::parallel_map_with(
        &points,
        jobs,
        || (),
        |_, &(_, _, scheme, cores, seed)| run_point(scheme, cores, seed, obs),
    );
    let wall = t0.elapsed();

    let mut cells: Vec<Vec<Vec<PointResult>>> = vec![vec![Vec::new(); schemes.len()]; CORES.len()];
    let mut report = RunReport {
        jobs: if jobs == 0 {
            super::runner::default_jobs()
        } else {
            jobs
        },
        points: points.len(),
        wall,
        capacity: wall * jobs.max(1) as u32,
        ..RunReport::default()
    };
    let mut artifacts = Vec::with_capacity(points.len());
    for (&(ci, si, scheme, cores, seed), result) in points.iter().zip(results) {
        let r = result?;
        report.busy += r.wall;
        report.sim_cycles += r.sim_cycles;
        if let Some(point_metrics) = &r.artifacts.metrics {
            report
                .metrics
                .get_or_insert_with(Default::default)
                .merge(&point_metrics.metrics);
        }
        artifacts.push(LabeledArtifacts {
            label: format!("contend/c{cores}/{}", scheme.label()),
            value: PointValue::Bandwidth(r.throughput()),
            sim_cycles: r.sim_cycles,
            wall: r.wall,
            seed,
            config_hash: csb_obs::hash_config(&format!(
                "{:?} contend {} c{cores}",
                scheme.config(),
                scheme.label()
            )),
            artifacts: r.artifacts.clone(),
        });
        cells[ci][si].push(r);
    }
    if let (Some(before), Some(after)) = (cache_before, crate::cache::active_stats()) {
        let delta = after.delta(&before);
        if delta.any() {
            report.cache = Some(delta);
            let m = report.metrics.get_or_insert_with(Default::default);
            m.counters.insert("cache.hit".to_string(), delta.hits);
            m.counters.insert("cache.miss".to_string(), delta.misses);
        }
    }

    let rows = CORES
        .iter()
        .enumerate()
        .map(|(ci, &cores)| ContendRow {
            cores,
            cells: schemes
                .iter()
                .enumerate()
                .map(|(si, &scheme)| {
                    let rs = &cells[ci][si];
                    let runs = rs.len().max(1) as f64;
                    let flush = rs.iter().filter_map(|r| r.flush.as_ref()).fold(
                        None::<HistogramSummary>,
                        |acc, h| match acc {
                            Some(mut s) => {
                                s.merge(h);
                                Some(s)
                            }
                            None => Some(h.clone()),
                        },
                    );
                    ContendCell {
                        scheme: scheme.label().to_string(),
                        throughput: rs.iter().map(|r| r.throughput()).sum::<f64>() / runs,
                        mean_cycles: rs.iter().map(|r| r.cycles).sum::<u64>() as f64 / runs,
                        switches: rs.iter().map(|r| r.switches).sum(),
                        flush_failures: rs.iter().map(|r| r.flush_failures).sum(),
                        cross_pid_resets: rs.iter().map(|r| r.cross_pid_resets).sum(),
                        flush,
                    }
                })
                .collect(),
        })
        .collect();

    Ok((
        ContendSweep {
            id: "contend".to_string(),
            title: format!(
                "{ITERATIONS} accesses × {DWORDS} dwords per process, \
                 {SLICE}-cycle slices, arrivals over {ARRIVAL_SPAN} cycles, \
                 {SEEDS_PER_CELL} seeds/cell"
            ),
            schemes: schemes.iter().map(|&s| s.label().to_string()).collect(),
            rows,
        },
        artifacts,
        report,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_schedules_are_seeded_and_bounded() {
        let a = arrival_schedule(64, ARRIVAL_SPAN, 7);
        let b = arrival_schedule(64, ARRIVAL_SPAN, 7);
        let c = arrival_schedule(64, ARRIVAL_SPAN, 8);
        assert_eq!(a, b, "same seed, same schedule");
        assert_ne!(a, c, "different seeds must differ");
        assert_eq!(a[0], 0, "process 0 is resident at reset");
        assert!(a.iter().all(|&at| at < ARRIVAL_SPAN));
    }

    #[test]
    fn csb_point_delivers_full_payload_and_tracks_interference() {
        let r = run_point(ContendScheme::Csb, 4, 0xc0de_0000, ObsConfig::default()).unwrap();
        assert_eq!(
            r.payload_bytes,
            (4 * ITERATIONS * DWORDS * 8) as u64,
            "every process's every access must reach the device"
        );
        let h = r.flush.expect("CSB scheme records flush latency");
        // One observation per successful flush; every access ends in one.
        assert_eq!(h.count, (4 * ITERATIONS) as u64);
        assert!(h.p999 >= h.p99 && h.p99 >= h.p50);
    }

    #[test]
    fn lock_point_delivers_without_touching_the_csb() {
        let r = run_point(ContendScheme::Lock, 4, 0xc0de_0000, ObsConfig::default()).unwrap();
        assert_eq!(r.payload_bytes, (4 * ITERATIONS * DWORDS * 8) as u64);
        assert!(r.flush.is_none(), "lock path never flushes the CSB");
        assert_eq!(r.cross_pid_resets, 0);
    }

    #[test]
    fn cached_point_round_trips_histogram_buckets() {
        let live = run_point(ContendScheme::Csb, 4, 0xc0de_0001, ObsConfig::default()).unwrap();
        let decoded =
            decode_contend_payload(&encode_contend_payload(&live)).expect("payload decodes");
        assert_eq!(decoded.payload_bytes, live.payload_bytes);
        assert_eq!(decoded.cycles, live.cycles);
        assert_eq!(
            decoded.flush, live.flush,
            "quantiles re-derived from buckets must match the live summary"
        );
    }
}
