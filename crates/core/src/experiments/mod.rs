//! Experiment harnesses regenerating every figure in the paper's evaluation.
//!
//! * [`fig3`] — uncached store bandwidth on a multiplexed bus, panels (a)–(i),
//! * [`fig4`] — uncached store bandwidth on a split address/data bus, (a)–(e),
//! * [`fig5`] — lock/access/unlock vs. CSB latency, panels (a)–(b),
//! * [`ablations`] — the in-text studies: superscalar width vs. lock
//!   overhead, the double-buffered CSB, and the variable-burst CSB,
//! * [`throughput`] — simulated-cycles-per-second of the engine itself,
//!   naive loop vs. idle-cycle fast-forward,
//! * [`faults`] — success rate and latency degradation of software retry
//!   policies under a seeded fault schedule (robustness study),
//! * [`contend`] — many-core contention: throughput and flush-latency
//!   tails at 16/32/64 processors, lock vs. per-process CSB lines vs. the
//!   double-buffered CSB (server-class scenario, not a paper figure),
//! * [`messaging`] — end-to-end reliable NIC messaging: exactly-once
//!   delivery accounting and latency tails of sequence-numbered messages
//!   through the attached NI, send path × size × fault rate × retry
//!   policy (robustness study, not a paper figure).
//!
//! Each harness returns serializable panel structures with a plain-text
//! table renderer, so the `csb-bench` binaries can print the same rows and
//! series the paper plots. The metric conventions match the paper: payload
//! bytes per bus cycle for Figures 3 and 4, CPU cycles per sequence for
//! Figure 5.

pub mod ablations;
pub mod contend;
pub mod faults;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod messaging;
pub mod runner;
pub mod throughput;

use std::fmt;

use serde::{Deserialize, Serialize};

use csb_isa::Program;

use crate::config::SimConfig;
use crate::sim::{SimError, Simulator};
use crate::workloads::{self, StorePath, WorkloadError};

/// Transfer sizes (bytes) swept by the bandwidth figures.
pub const TRANSFERS: [usize; 7] = [16, 32, 64, 128, 256, 512, 1024];

/// Bytes per doubleword store (Figure 5 sweeps doubleword counts).
pub(crate) const DWORD_BYTES: usize = 8;

/// Cycle budget per simulated point.
const POINT_LIMIT: u64 = 50_000_000;

/// Errors from experiment harnesses.
#[derive(Debug)]
pub enum ExpError {
    /// Workload generation failed.
    Workload(WorkloadError),
    /// Simulation failed.
    Sim(SimError),
    /// A required measurement (timing mark) was missing.
    MissingMark,
}

impl fmt::Display for ExpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExpError::Workload(e) => write!(f, "workload: {e}"),
            ExpError::Sim(e) => write!(f, "simulation: {e}"),
            ExpError::MissingMark => f.write_str("timing mark missing from run"),
        }
    }
}

impl std::error::Error for ExpError {}

impl From<WorkloadError> for ExpError {
    fn from(e: WorkloadError) -> Self {
        ExpError::Workload(e)
    }
}

impl From<SimError> for ExpError {
    fn from(e: SimError) -> Self {
        ExpError::Sim(e)
    }
}

/// A store-handling scheme compared in the figures: hardware combining with
/// a given block size (8 = non-combining), or the CSB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scheme {
    /// Uncached buffer with the given combining block in bytes.
    Uncached {
        /// Combining block size (8 = non-combining).
        block: usize,
    },
    /// MIPS R10000 uncached-accelerated mode: sequential-pattern combining
    /// over a full line; partial lines degrade to single beats.
    R10k,
    /// PowerPC 620: pairs of same-size consecutive stores only.
    Ppc620,
    /// The conditional store buffer.
    Csb,
    /// The CSB driven by the out-of-line-retry kernel layout
    /// ([`workloads::StorePath::CsbOutlined`]): identical hardware, retry
    /// branches compiled off the hot path. Used by the throughput bench's
    /// long CSB-active point; not part of the figure ladders.
    CsbOutlined,
}

impl Scheme {
    /// The schemes a machine with the given line size compares: combining
    /// blocks from 8 bytes (none) up to the full line, then the CSB — the
    /// left-to-right bar order of the paper's figures.
    pub fn ladder(line: usize) -> Vec<Scheme> {
        let mut v = Vec::new();
        let mut b = 8;
        while b <= line {
            v.push(Scheme::Uncached { block: b });
            b *= 2;
        }
        v.push(Scheme::Csb);
        v
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scheme::Uncached { block: 8 } => f.write_str("none"),
            Scheme::Uncached { block } => write!(f, "{block}B"),
            Scheme::R10k => f.write_str("R10000"),
            Scheme::Ppc620 => f.write_str("PPC620"),
            Scheme::Csb => f.write_str("CSB"),
            Scheme::CsbOutlined => f.write_str("CSBo"),
        }
    }
}

/// One bandwidth panel: a machine configuration swept over transfer sizes
/// and schemes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BandwidthPanel {
    /// Panel id, e.g. `"3a"`.
    pub id: String,
    /// Human-readable parameter description.
    pub title: String,
    /// Scheme labels, in column order.
    pub schemes: Vec<String>,
    /// One row per transfer size.
    pub rows: Vec<BandwidthRow>,
}

/// One transfer size's measurements across all schemes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BandwidthRow {
    /// Transfer size in bytes.
    pub transfer: usize,
    /// Bytes per bus cycle, one per scheme.
    pub values: Vec<f64>,
}

impl BandwidthPanel {
    /// Renders the panel as a fixed-width text table (bytes/bus-cycle).
    pub fn to_table(&self) -> String {
        let mut headers = vec!["bytes".to_string()];
        headers.extend(self.schemes.iter().cloned());
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                let mut row = vec![r.transfer.to_string()];
                row.extend(r.values.iter().map(|v| format!("{v:.2}")));
                row
            })
            .collect();
        format!(
            "Figure {} — {}\n{}",
            self.id,
            self.title,
            format_table(&headers, &rows)
        )
    }
}

/// One latency panel (Figure 5): CPU cycles per sequence.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyPanel {
    /// Panel id, e.g. `"5a"`.
    pub id: String,
    /// Human-readable parameter description.
    pub title: String,
    /// Scheme labels, in column order.
    pub schemes: Vec<String>,
    /// One row per transfer size.
    pub rows: Vec<LatencyRow>,
}

/// One transfer size's latency across all schemes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyRow {
    /// Transfer size in bytes (doublewords × 8).
    pub transfer: usize,
    /// CPU cycles per sequence, one per scheme.
    pub cycles: Vec<u64>,
}

impl LatencyPanel {
    /// Renders the panel as a fixed-width text table (CPU cycles).
    pub fn to_table(&self) -> String {
        let mut headers = vec!["bytes".to_string()];
        headers.extend(self.schemes.iter().cloned());
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                let mut row = vec![r.transfer.to_string()];
                row.extend(r.cycles.iter().map(|c| c.to_string()));
                row
            })
            .collect();
        format!(
            "Figure {} — {}\n{}",
            self.id,
            self.title,
            format_table(&headers, &rows)
        )
    }
}

/// Measures effective bandwidth (payload bytes per bus cycle) for one
/// machine configuration, transfer size, and scheme.
///
/// # Errors
///
/// Returns [`ExpError`] if the workload is invalid or the simulation does
/// not complete.
pub fn bandwidth_point(cfg: &SimConfig, transfer: usize, scheme: Scheme) -> Result<f64, ExpError> {
    bandwidth_point_ordered(cfg, transfer, scheme, workloads::StoreOrder::Ascending)
}

/// [`bandwidth_point`] with an explicit per-line store issue order — the
/// knob that separates pattern-based hardware combining (R10000, PowerPC
/// 620) from block combining and the order-insensitive CSB.
///
/// # Errors
///
/// As for [`bandwidth_point`].
pub fn bandwidth_point_ordered(
    cfg: &SimConfig,
    transfer: usize,
    scheme: Scheme,
    order: workloads::StoreOrder,
) -> Result<f64, ExpError> {
    bandwidth_point_instrumented(cfg, transfer, scheme, order).map(|(bw, _)| bw)
}

/// [`bandwidth_point_ordered`] plus the simulated cycle count, for the
/// runner's [`runner::RunReport`] instrumentation.
pub(crate) fn bandwidth_point_instrumented(
    cfg: &SimConfig,
    transfer: usize,
    scheme: Scheme,
    order: workloads::StoreOrder,
) -> Result<(f64, u64), ExpError> {
    bandwidth_point_observed(cfg, transfer, scheme, order, runner::ObsConfig::default())
        .map(|(bw, cycles, _)| (bw, cycles))
}

/// [`bandwidth_point_ordered`] with observability: returns the bandwidth,
/// the simulated cycle count, and whatever artifacts
/// [`runner::ObsConfig`] asked for (Chrome trace JSON and/or a
/// [`crate::MetricsReport`]).
///
/// # Errors
///
/// As for [`bandwidth_point`].
pub fn bandwidth_point_observed(
    cfg: &SimConfig,
    transfer: usize,
    scheme: Scheme,
    order: workloads::StoreOrder,
    obs: runner::ObsConfig,
) -> Result<(f64, u64, runner::PointArtifacts), ExpError> {
    bandwidth_point_reusing(&mut None, cfg, transfer, scheme, order, obs)
}

/// [`bandwidth_point_observed`] through a reusable simulator slot: an empty
/// slot is filled by cold construction, a filled one is warm-reset via
/// [`Simulator::reset_with`] — either way the measurement is identical.
/// The sweep engine hands each worker one slot for its whole point queue.
pub(crate) fn bandwidth_point_reusing(
    slot: &mut Option<Simulator>,
    cfg: &SimConfig,
    transfer: usize,
    scheme: Scheme,
    order: workloads::StoreOrder,
    obs: runner::ObsConfig,
) -> Result<(f64, u64, runner::PointArtifacts), ExpError> {
    let sim = bandwidth_sim_into(slot, cfg, transfer, scheme, order)?;
    if obs.trace {
        sim.enable_tracing();
    }
    if obs.metrics {
        sim.enable_metrics();
    }
    let summary = sim.run(POINT_LIMIT)?;
    let artifacts = runner::PointArtifacts {
        trace_json: obs.trace.then(|| sim.chrome_trace()),
        metrics: obs.metrics.then(|| sim.metrics_report()),
    };
    Ok((summary.bus.effective_bandwidth(), summary.cycles, artifacts))
}

/// The scheme-specialized machine configuration and store workload for one
/// bandwidth point.
fn bandwidth_parts(
    cfg: &SimConfig,
    transfer: usize,
    scheme: Scheme,
    order: workloads::StoreOrder,
) -> Result<(SimConfig, Program), ExpError> {
    let mut cfg = cfg.clone();
    let path = match scheme {
        Scheme::Uncached { block } => {
            cfg = cfg.combining_block(block);
            StorePath::Uncached
        }
        Scheme::R10k => {
            cfg.uncached = csb_uncached::UncachedConfig::r10000(cfg.line());
            StorePath::Uncached
        }
        Scheme::Ppc620 => {
            cfg.uncached = csb_uncached::UncachedConfig::ppc620();
            StorePath::Uncached
        }
        Scheme::Csb => StorePath::Csb,
        Scheme::CsbOutlined => StorePath::CsbOutlined,
    };
    let program = workloads::store_bandwidth_ordered(transfer, &cfg, path, order)?;
    Ok((cfg, program))
}

/// Builds the ready-to-run simulator for one bandwidth point: the
/// scheme-specialized machine plus the generated store workload, not yet
/// run. The cold half of the warm-vs-cold differential tests; production
/// paths go through [`bandwidth_sim_into`].
#[cfg(test)]
pub(crate) fn bandwidth_sim(
    cfg: &SimConfig,
    transfer: usize,
    scheme: Scheme,
    order: workloads::StoreOrder,
) -> Result<Simulator, ExpError> {
    let (cfg, program) = bandwidth_parts(cfg, transfer, scheme, order)?;
    Ok(Simulator::new(cfg, program)?)
}

/// [`bandwidth_sim`] into a reusable slot (see [`install_sim`]).
pub(crate) fn bandwidth_sim_into<'a>(
    slot: &'a mut Option<Simulator>,
    cfg: &SimConfig,
    transfer: usize,
    scheme: Scheme,
    order: workloads::StoreOrder,
) -> Result<&'a mut Simulator, ExpError> {
    let (cfg, program) = bandwidth_parts(cfg, transfer, scheme, order)?;
    install_sim(slot, cfg, program)
}

/// Readies `slot` to simulate `(cfg, program)`: warm-resets the simulator
/// already in the slot, or cold-constructs one into an empty slot. Both
/// paths yield identical simulation results; the warm path skips the
/// allocations construction would repeat.
pub(crate) fn install_sim(
    slot: &mut Option<Simulator>,
    cfg: SimConfig,
    program: Program,
) -> Result<&mut Simulator, ExpError> {
    match slot {
        Some(sim) => sim.reset_with(cfg, program)?,
        None => *slot = Some(Simulator::new(cfg, program)?),
    }
    Ok(slot.as_mut().expect("slot was just filled"))
}

/// Runs a full bandwidth panel over [`TRANSFERS`] and the scheme ladder of
/// the machine's line size, serially. Thin wrapper over the engine — see
/// [`runner::run_bandwidth_panels`] for the parallel path.
///
/// # Errors
///
/// Propagates the first failing point.
pub fn bandwidth_panel(id: &str, title: &str, cfg: &SimConfig) -> Result<BandwidthPanel, ExpError> {
    let spec = runner::BandwidthPanelSpec::new(id, title, cfg.clone());
    let (panels, _) = runner::run_bandwidth_panels(std::slice::from_ref(&spec), 1)?;
    Ok(panels
        .into_iter()
        .next()
        .expect("one spec yields one panel"))
}

/// Renders a fixed-width text table.
pub fn format_table(headers: &[String], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(headers, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_ladder_and_labels() {
        let l = Scheme::ladder(64);
        assert_eq!(l.len(), 5); // 8,16,32,64 + CSB
        assert_eq!(l[0].to_string(), "none");
        assert_eq!(l[2].to_string(), "32B");
        assert_eq!(l[4].to_string(), "CSB");
        assert_eq!(Scheme::ladder(32).len(), 4);
    }

    #[test]
    fn table_alignment() {
        let t = format_table(
            &["a".into(), "bbb".into()],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("bbb"));
    }

    #[test]
    fn bandwidth_point_baseline() {
        // Cross-check the paper's 4 B/cycle non-combining anchor through
        // the public harness entry point.
        let cfg = SimConfig::default();
        let bw = bandwidth_point(&cfg, 256, Scheme::Uncached { block: 8 }).unwrap();
        assert!((bw - 4.0).abs() < 0.1, "got {bw}");
    }

    #[test]
    fn csb_small_transfer_penalty() {
        // A 16-byte transfer through the full-line CSB pays for a 64-byte
        // burst: 16 bytes / 9 bus cycles.
        let cfg = SimConfig::default();
        let bw = bandwidth_point(&cfg, 16, Scheme::Csb).unwrap();
        assert!((bw - 16.0 / 9.0).abs() < 0.05, "got {bw}");
    }
}
