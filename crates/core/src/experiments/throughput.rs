//! Simulated-cycles-per-second throughput measurement: the naive
//! cycle-by-cycle loop vs. the event-driven idle-cycle fast-forward, on
//! representative figure points.
//!
//! What is timed is the sweep engine's steady-state per-point cost: one
//! simulator is cold-constructed (and its caches faulted in) *outside*
//! the measured region, then `reps` executions run back to back through
//! it, each a warm reset ([`Simulator::reset_with`], including the lock
//! line warm/evict replay) followed by the simulation loop — exactly the
//! per-worker reuse path [`super::runner::run_points`] takes after its
//! first point. Fast-forward is toggled per leg, and the measured values
//! of both legs are asserted identical, so the throughput bench doubles
//! as one more differential check. `runner_bench` serializes the
//! resulting [`ThroughputReport`] to `BENCH_sim_throughput.json`.

use std::time::Instant;

use serde::Serialize;

use super::runner::{PointSpec, PointValue, PointWork};
use super::{contend, fig4, fig5, ExpError, Scheme, POINT_LIMIT};
use crate::config::SimConfig;
use crate::multiproc::{MultiSim, SchedulerMode, SwitchPolicy};
use crate::sim::{RunSummary, Simulator};
use crate::workloads::{self, StoreOrder, MARK_END, MARK_START};

/// Before/after throughput for one figure point.
#[derive(Debug, Clone, Serialize)]
pub struct ThroughputPoint {
    /// Runner label, e.g. `"5b/8dw/64B"`.
    pub label: String,
    /// CPU cycles one execution of the point simulates (identical on
    /// both legs).
    pub sim_cycles: u64,
    /// Best-of-samples wall seconds per execution, naive loop.
    pub naive_wall_s: f64,
    /// Simulated cycles per wall second, naive loop.
    pub naive_cycles_per_sec: f64,
    /// Best-of-samples wall seconds per execution with fast-forward on.
    pub ff_wall_s: f64,
    /// Simulated cycles per wall second with fast-forward on.
    pub ff_cycles_per_sec: f64,
    /// `ff_cycles_per_sec / naive_cycles_per_sec`.
    pub speedup: f64,
}

/// The full before/after sweep `runner_bench` writes to
/// `BENCH_sim_throughput.json`.
#[derive(Debug, Clone, Serialize)]
pub struct ThroughputReport {
    /// Wall-clock samples taken per leg (the best is reported).
    pub samples: usize,
    /// Executions batched inside each timed sample.
    pub reps: usize,
    /// One row per measured figure point.
    pub points: Vec<ThroughputPoint>,
}

impl ThroughputReport {
    /// The row for `label`, if it was measured.
    pub fn point(&self, label: &str) -> Option<&ThroughputPoint> {
        self.points.iter().find(|p| p.label == label)
    }

    /// Plain-text rendering for the bench's stderr output.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "point                    sim cycles   naive Mc/s      ff Mc/s   speedup\n",
        );
        for p in &self.points {
            out.push_str(&format!(
                "{:<24} {:>10} {:>12.2} {:>12.2} {:>8.2}x\n",
                p.label,
                p.sim_cycles,
                p.naive_cycles_per_sec / 1e6,
                p.ff_cycles_per_sec / 1e6,
                p.speedup
            ));
        }
        out
    }
}

/// The representative points the throughput bench sweeps: one Figure 4
/// bandwidth point (bus-bound CSB store stream on the split bus) and the
/// Figure 5(b) lock-miss point under full-line combining — the lock swap
/// pays the 100-cycle miss and the stores wait out long bus bursts, so
/// nearly every cycle is provably inert: the fast-forward's home turf.
///
/// # Panics
///
/// Panics if the figure harnesses stop enumerating these labels — the
/// bench must fail loudly rather than silently measure nothing.
pub fn default_points() -> Vec<PointSpec> {
    let want = ["4a/256B/CSB", "5b/8dw/64B"];
    let mut all: Vec<PointSpec> = fig4::panel_specs()
        .iter()
        .flat_map(|p| p.enumerate())
        .chain(fig5::panel_specs().iter().flat_map(|p| p.enumerate()))
        .collect();
    let mut points: Vec<PointSpec> = want
        .iter()
        .map(|label| {
            let idx = all
                .iter()
                .position(|s| &s.label == label)
                .unwrap_or_else(|| panic!("figure harnesses no longer enumerate {label}"));
            all.swap_remove(idx)
        })
        .collect();
    points.push(long_point());
    points.push(csb_active_point());
    points
}

/// The bench's deliberately *long* point: a Figure-3-shaped machine (8 B
/// multiplexed bus, 64 B line, 8-cycle address-to-address delay) pushed to
/// a CPU:bus ratio of 12, streaming a 1 KB uncombined store sequence.
/// Every doubleword pays the full flow-control acknowledgment spacing at
/// twice the usual CPU cycles per bus cycle, so one execution simulates
/// well over 10 000 CPU cycles — long enough that per-run fixed costs
/// (construction, warmup, cache effects) are noise in the measured rate.
pub fn long_point() -> PointSpec {
    let cfg = SimConfig::default()
        .line_size(64)
        .bus(
            csb_bus::BusConfig::multiplexed(8)
                .max_burst(64)
                .min_addr_delay(8)
                .build()
                .expect("static long-point bus config is valid"),
        )
        .frequency_ratio(12);
    PointSpec {
        label: "3long/1024B/none".to_string(),
        cfg,
        work: PointWork::Bandwidth {
            transfer: 1024,
            scheme: Scheme::Uncached { block: 8 },
            order: StoreOrder::Ascending,
        },
    }
}

/// The bench's long *CSB-active* point: a Figure-4-shaped split bus (8 B
/// data path, 64 B bursts) at a CPU:bus ratio of 12, streaming 16 KB
/// through the conditional store buffer — 256 full-line bursts of
/// sustained store/flush traffic, well over 10 000 CPU cycles with the
/// bus occupied almost end to end. The kernel uses the out-of-line retry
/// layout ([`Scheme::CsbOutlined`]) so successful flushes retire without
/// branch squashes; the CPU then genuinely *waits* on CSB capacity for
/// most of the run, and those waits are bridged by the
/// transaction-granular drain walk rather than ticked through. This is
/// the bench's gate for fast-forward staying O(1) per bus transaction
/// while the bus is busy (the idle-gap points above cannot show that).
pub fn csb_active_point() -> PointSpec {
    let cfg = SimConfig::default()
        .line_size(64)
        .bus(
            csb_bus::BusConfig::split(8)
                .max_burst(64)
                .build()
                .expect("static csb-active bus config is valid"),
        )
        .frequency_ratio(12);
    PointSpec {
        label: "4along/16KB/CSB".to_string(),
        cfg,
        work: PointWork::Bandwidth {
            transfer: 16 * 1024,
            scheme: Scheme::CsbOutlined,
            order: StoreOrder::Ascending,
        },
    }
}

/// Readies the simulator in `slot` for one execution of `spec` with the
/// requested loop flavor — shared machinery with the figure harnesses
/// themselves (cold construction into an empty slot, warm reset into a
/// filled one).
fn prepare_into<'a>(
    slot: &'a mut Option<Simulator>,
    spec: &PointSpec,
    fast_forward: bool,
) -> Result<&'a mut Simulator, ExpError> {
    let sim = match spec.work {
        PointWork::Bandwidth {
            transfer,
            scheme,
            order,
        } => super::bandwidth_sim_into(slot, &spec.cfg, transfer, scheme, order)?,
        PointWork::Latency {
            dwords,
            scheme,
            residency,
        } => fig5::latency_sim_into(slot, &spec.cfg, dwords, scheme, residency)?,
    };
    sim.set_fast_forward(fast_forward);
    Ok(sim)
}

/// Cold-builds the ready-to-run simulator for `spec` (test hook).
#[cfg(test)]
fn prepare(spec: &PointSpec, fast_forward: bool) -> Result<Simulator, ExpError> {
    let mut slot = None;
    prepare_into(&mut slot, spec, fast_forward)?;
    Ok(slot.expect("slot was just filled"))
}

/// Extracts the figure value a completed run measured.
fn point_value(work: &PointWork, summary: &RunSummary) -> Result<PointValue, ExpError> {
    match work {
        PointWork::Bandwidth { .. } => Ok(PointValue::Bandwidth(summary.bus.effective_bandwidth())),
        PointWork::Latency { .. } => summary
            .cpu
            .mark_interval(MARK_START, MARK_END)
            .map(PointValue::Latency)
            .ok_or(ExpError::MissingMark),
    }
}

/// One timed sample: `reps` executions back to back through one reused
/// simulator — each a warm reset plus a full run, the sweep engine's
/// steady-state per-point cost. Returns (wall seconds per execution,
/// cycles per second, the measured value, cycles per execution).
fn sample(
    spec: &PointSpec,
    fast_forward: bool,
    reps: usize,
) -> Result<(f64, f64, PointValue, u64), ExpError> {
    let reps = reps.max(1);
    let mut slot = None;
    // Cold construction (and cache/allocator faulting) stays untimed, as
    // it does in a sweep: every worker pays it once, not per point.
    prepare_into(&mut slot, spec, fast_forward)?;
    let mut total = 0u64;
    let mut last = None;
    let t0 = Instant::now();
    for _ in 0..reps {
        let sim = prepare_into(&mut slot, spec, fast_forward)?;
        let summary = sim.run(POINT_LIMIT)?;
        total += summary.cycles;
        last = Some(summary);
    }
    let wall = t0.elapsed().as_secs_f64();
    let last = last.expect("at least one rep ran");
    let value = point_value(&spec.work, &last)?;
    Ok((wall / reps as f64, total as f64 / wall, value, last.cycles))
}

/// Measures one point both ways: naive loop first, then fast-forward.
/// Takes `samples` timed samples of `reps` executions per leg (plus one
/// warmup each) and reports the best.
///
/// # Errors
///
/// Propagates simulation failures from either leg.
///
/// # Panics
///
/// Panics if the two legs disagree on the measured value or cycle count —
/// that would be a cycle-exactness bug, not a throughput result.
pub fn measure_point(
    spec: &PointSpec,
    samples: usize,
    reps: usize,
) -> Result<ThroughputPoint, ExpError> {
    let mut best: [Option<(f64, f64, PointValue, u64)>; 2] = [None, None];
    for (leg, slot) in [false, true].into_iter().zip(best.iter_mut()) {
        sample(spec, leg, reps)?; // warmup: page in code + allocator state
        for _ in 0..samples.max(1) {
            let s = sample(spec, leg, reps)?;
            if slot.as_ref().is_none_or(|b| s.0 < b.0) {
                *slot = Some(s);
            }
        }
    }
    let (naive_wall_s, naive_cps, naive_value, naive_cycles) = best[0].expect("naive leg sampled");
    let (ff_wall_s, ff_cps, ff_value, ff_cycles) = best[1].expect("ff leg sampled");
    assert_eq!(
        naive_value, ff_value,
        "{}: fast-forward changed the measured value",
        spec.label
    );
    assert_eq!(
        naive_cycles, ff_cycles,
        "{}: fast-forward changed the cycle count",
        spec.label
    );
    Ok(ThroughputPoint {
        label: spec.label.clone(),
        sim_cycles: ff_cycles,
        naive_wall_s,
        naive_cycles_per_sec: naive_cps,
        ff_wall_s,
        ff_cycles_per_sec: ff_cps,
        speedup: ff_cps / naive_cps,
    })
}

/// Label of the many-core scheduler point appended by [`measure`].
pub const SCHED_POINT_LABEL: &str = "c64multi/sched";

/// Processors in the scheduler point.
const SCHED_CORES: usize = 64;

/// Arrival span of the scheduler point: I/O bursts trickle in over twenty
/// million cycles, so the machine is parked for ~99.9% of the run.
const SCHED_SPAN: u64 = 20_000_000;

/// Scheduler slice of the scheduler point. Deliberately short: the legacy
/// round-robin traversal polls the parked processors once per slice
/// quantum while crossing an idle gap, so the quantum sets how much
/// per-slice overhead the horizon heap's single jump saves.
const SCHED_SLICE: u64 = 60;

/// The scheduler point's per-processor programs: each processor owes one
/// short CSB burst pair on its own line. Assembled once per sample, not
/// per rep — program assembly is identical on both legs and not what the
/// point measures.
fn sched_programs() -> Result<Vec<csb_isa::Program>, ExpError> {
    let cfg = SimConfig::default();
    Ok((0..SCHED_CORES)
        .map(|i| workloads::csb_worker(2, 8, i, &cfg))
        .collect::<Result<Vec<_>, _>>()?)
}

/// Builds the scheduler point's [`MultiSim`]: 64 processors arriving
/// open-loop across [`SCHED_SPAN`] cycles — the server-class mostly-idle
/// shape where per-slice polling of parked processors is pure overhead.
fn sched_multisim(
    programs: &[csb_isa::Program],
    mode: SchedulerMode,
) -> Result<MultiSim, ExpError> {
    let mut ms = MultiSim::new(
        SimConfig::default(),
        programs.to_vec(),
        SwitchPolicy::Fixed(SCHED_SLICE),
    )?;
    ms.set_arrivals(&contend::arrival_schedule(SCHED_CORES, SCHED_SPAN, 0xc0de));
    ms.set_scheduler(mode);
    ms.set_fast_forward(true);
    Ok(ms)
}

/// One timed sample of the scheduler point: `reps` cold-constructed runs
/// (MultiSim has no warm-reset path; construction is identical on both
/// legs, so it only dilutes the measured gap). Returns (wall seconds per
/// execution, cycles per second, result digest, cycles per execution).
fn sched_sample(
    programs: &[csb_isa::Program],
    mode: SchedulerMode,
    reps: usize,
) -> Result<(f64, f64, String, u64), ExpError> {
    let reps = reps.max(1);
    let mut cycles = 0u64;
    let mut digest = String::new();
    let t0 = Instant::now();
    for _ in 0..reps {
        let mut ms = sched_multisim(programs, mode)?;
        let summary = ms.run(POINT_LIMIT)?;
        cycles = summary.cycles;
        digest = format!("{summary:?}");
    }
    let wall = t0.elapsed().as_secs_f64();
    Ok((
        wall / reps as f64,
        (cycles * reps as u64) as f64 / wall,
        digest,
        cycles,
    ))
}

/// Measures the many-core scheduler point both ways: legacy round-robin
/// traversal as the "naive" leg, the horizon heap as the "ff" leg —
/// fast-forward stays *on* for both, so the measured gap isolates the
/// scheduler (O(n · gap/quantum) polling vs. O(log n) picks with
/// single-jump idle gaps). The two legs' [`crate::multiproc::MultiSummary`]
/// digests are asserted identical, extending the bench's differential
/// guarantee to the scheduler.
///
/// # Errors
///
/// Propagates simulation failures from either leg.
///
/// # Panics
///
/// Panics if the traversals disagree on any summary field — that would be
/// a scheduling-equivalence bug, not a throughput result.
pub fn sched_point(samples: usize, reps: usize) -> Result<ThroughputPoint, ExpError> {
    let programs = sched_programs()?;
    let mut best: [Option<(f64, f64, String, u64)>; 2] = [None, None];
    let legs = [SchedulerMode::RoundRobin, SchedulerMode::HorizonHeap];
    for (mode, slot) in legs.into_iter().zip(best.iter_mut()) {
        sched_sample(&programs, mode, reps)?; // warmup: page in code + allocator state
        for _ in 0..samples.max(1) {
            let s = sched_sample(&programs, mode, reps)?;
            if slot.as_ref().is_none_or(|b| s.0 < b.0) {
                *slot = Some(s);
            }
        }
    }
    let (rr_wall_s, rr_cps, rr_digest, rr_cycles) = best[0].take().expect("round-robin sampled");
    let (heap_wall_s, heap_cps, heap_digest, heap_cycles) = best[1].take().expect("heap sampled");
    assert_eq!(
        rr_digest, heap_digest,
        "{SCHED_POINT_LABEL}: the scheduler traversal changed the simulation"
    );
    assert_eq!(rr_cycles, heap_cycles);
    Ok(ThroughputPoint {
        label: SCHED_POINT_LABEL.to_string(),
        sim_cycles: heap_cycles,
        naive_wall_s: rr_wall_s,
        naive_cycles_per_sec: rr_cps,
        ff_wall_s: heap_wall_s,
        ff_cycles_per_sec: heap_cps,
        speedup: heap_cps / rr_cps,
    })
}

/// Measures every [`default_points`] spec, plus the many-core scheduler
/// point ([`sched_point`] — heap vs. round-robin rather than fast-forward
/// vs. naive, reported through the same before/after row).
///
/// # Errors
///
/// Propagates the first failing point.
pub fn measure(samples: usize, reps: usize) -> Result<ThroughputReport, ExpError> {
    let mut points = default_points()
        .iter()
        .map(|spec| measure_point(spec, samples, reps))
        .collect::<Result<Vec<_>, _>>()?;
    points.push(sched_point(samples, reps)?);
    Ok(ThroughputReport {
        samples,
        reps,
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_points_enumerate_both_figures() {
        let points = default_points();
        let labels: Vec<&str> = points.iter().map(|p| p.label.as_str()).collect();
        assert_eq!(
            labels,
            [
                "4a/256B/CSB",
                "5b/8dw/64B",
                "3long/1024B/none",
                "4along/16KB/CSB"
            ]
        );
    }

    #[test]
    fn measure_point_agrees_across_legs() {
        let points = default_points();
        let spec = &points[1];
        let p = measure_point(spec, 1, 4).expect("point simulates");
        assert_eq!(p.label, "5b/8dw/64B");
        assert!(p.sim_cycles > 0);
        assert!(p.naive_cycles_per_sec > 0.0 && p.ff_cycles_per_sec > 0.0);
    }

    #[test]
    #[ignore = "manual profiling aid"]
    fn profile_breakdown() {
        for spec in default_points() {
            let mut slot = None;
            prepare_into(&mut slot, &spec, true).unwrap();
            slot.as_mut().unwrap().run(POINT_LIMIT).unwrap();
            let n = 3000;
            let t0 = Instant::now();
            for _ in 0..n {
                prepare_into(&mut slot, &spec, true).unwrap();
            }
            let reset = t0.elapsed().as_secs_f64() / f64::from(n);
            let t0 = Instant::now();
            let mut cycles = 0;
            for _ in 0..n {
                prepare_into(&mut slot, &spec, true).unwrap();
                cycles = slot.as_mut().unwrap().run(POINT_LIMIT).unwrap().cycles;
            }
            let full = t0.elapsed().as_secs_f64() / f64::from(n);
            let t0 = Instant::now();
            for _ in 0..n {
                prepare_into(&mut slot, &spec, true).unwrap();
                let sim = slot.as_mut().unwrap();
                while !sim.complete() {
                    sim.tick();
                }
            }
            let naive = t0.elapsed().as_secs_f64() / f64::from(n);
            println!(
                "{}: cycles={cycles} reset={:.2}us reset+run(ff)+summary={:.2}us reset+naive-ticks={:.2}us",
                spec.label,
                reset * 1e6,
                full * 1e6,
                naive * 1e6,
            );
        }
    }

    #[test]
    fn sched_point_legs_agree() {
        let p = sched_point(1, 1).expect("scheduler point simulates");
        assert_eq!(p.label, SCHED_POINT_LABEL);
        // The run ends shortly after the last arrival's burst, which lands
        // somewhere in the top of the [0, SPAN) window.
        assert!(
            p.sim_cycles >= SCHED_SPAN / 2,
            "the run must cross the arrival window, got {}",
            p.sim_cycles
        );
        assert!(p.naive_cycles_per_sec > 0.0 && p.ff_cycles_per_sec > 0.0);
        println!(
            "sched speedup {:.2}x (rr {:.3}ms heap {:.3}ms, {} cycles)",
            p.speedup,
            p.naive_wall_s * 1e3,
            p.ff_wall_s * 1e3,
            p.sim_cycles
        );
    }

    #[test]
    fn long_point_simulates_at_least_ten_thousand_cycles() {
        let spec = long_point();
        let mut sim = prepare(&spec, true).expect("long point builds");
        let summary = sim.run(POINT_LIMIT).expect("long point completes");
        assert!(
            summary.cycles >= 10_000,
            "long point must stay long: simulated only {} cycles",
            summary.cycles
        );
    }

    #[test]
    fn csb_active_point_is_long_and_bus_bound() {
        let spec = csb_active_point();
        let mut sim = prepare(&spec, true).expect("csb-active point builds");
        let summary = sim.run(POINT_LIMIT).expect("csb-active point completes");
        assert!(
            summary.cycles >= 10_000,
            "csb-active point must stay long: simulated only {} cycles",
            summary.cycles
        );
        // 16 KB through 64 B CSB bursts: the point is meaningless if the
        // traffic stops flowing through the conditional store buffer.
        assert_eq!(summary.csb.flush_successes, 256);
        assert_eq!(summary.bus.transactions, 256);
    }
}
