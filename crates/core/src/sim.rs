//! The clocked full-system simulator.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};

use csb_bus::{BusStats, SystemBus, TxnKind};
use csb_cpu::{Cpu, CpuHorizon, CpuStats, MemPort, Pid, StallCause};
use csb_faults::{FaultConfig, FaultInjector, FaultKind, FaultStats};
use csb_isa::{Addr, AddressMap, AddressSpace, Program};
use csb_mem::{AccessKind, FlatMemory, HitLevel, MemoryHierarchy, MemoryStats};
use csb_obs::{
    EventKind, MetricsRegistry, MetricsSnapshot, TimelineEvent, TraceEvent, TraceSink, Track,
};
use csb_uncached::{
    ConditionalStoreBuffer, CsbError, CsbStats, PayloadBuf, PushOutcome, StoreOutcome,
    UncachedBuffer, UncachedStats,
};
use serde::Serialize;

use crate::config::{SimConfig, SimConfigError};
use crate::device::IoDevice;

/// Error from constructing or running a [`Simulator`].
#[derive(Debug)]
pub enum SimError {
    /// Inconsistent machine configuration.
    Config(SimConfigError),
    /// A component rejected its configuration.
    Component(String),
    /// The program did not halt (and drain) within the cycle limit.
    CycleLimit {
        /// The limit that was hit, in CPU cycles.
        limit: u64,
    },
    /// The progress watchdog detected a livelock: the machine is still
    /// ticking but provably going nowhere (see [`WatchdogConfig`]). The
    /// boxed report carries the trigger and a per-actor state snapshot.
    Livelock(Box<LivelockReport>),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config(e) => write!(f, "invalid machine configuration: {e}"),
            SimError::Component(e) => write!(f, "component configuration rejected: {e}"),
            SimError::CycleLimit { limit } => {
                write!(f, "simulation did not complete within {limit} CPU cycles")
            }
            SimError::Livelock(r) => write!(f, "{r}"),
        }
    }
}

/// What convinced the watchdog the run is livelocked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LivelockTrigger {
    /// No instruction retired and no bus transaction was accepted or
    /// delivered for [`WatchdogConfig::stall_cycles`] CPU cycles: the
    /// machine is hard-stalled (e.g. a device NACKing every delivery).
    HardStall,
    /// [`WatchdogConfig::futile_flushes`] conditional flushes failed in a
    /// row without a single success or device delivery in between: the
    /// software retry loop is spinning without progress (the paper's
    /// §3.2 livelock — instructions still retire, so this is invisible
    /// to the hard-stall trigger).
    FlushFutility,
}

impl fmt::Display for LivelockTrigger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LivelockTrigger::HardStall => f.write_str("hard stall"),
            LivelockTrigger::FlushFutility => f.write_str("flush futility"),
        }
    }
}

/// One actor's state at the moment the watchdog fired. For a plain
/// [`Simulator`] run there is a single actor (the running process); a
/// [`crate::multiproc::MultiSim`] replaces the list with one entry per
/// time-sliced process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActorState {
    /// Actor label (`"pid0"`, or `"proc2"` under [`crate::multiproc`]).
    pub name: String,
    /// `true` if this actor owned the core when the watchdog fired.
    pub running: bool,
    /// `true` if the actor's program has halted.
    pub halted: bool,
    /// Completion cycle, when the actor finished before the livelock.
    pub completion_cycle: Option<u64>,
    /// Current scheduler slice in CPU cycles (0 outside multiproc runs).
    pub slice: u64,
}

impl fmt::Display for ActorState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[", self.name)?;
        match (self.halted, self.running) {
            (true, _) => write!(f, "done")?,
            (false, true) => write!(f, "running")?,
            (false, false) => write!(f, "waiting")?,
        }
        if let Some(c) = self.completion_cycle {
            write!(f, "@{c}")?;
        }
        if self.slice > 0 {
            write!(f, ", slice {}", self.slice)?;
        }
        f.write_str("]")
    }
}

/// The structured diagnostic carried by [`SimError::Livelock`].
#[derive(Debug, Clone, PartialEq)]
pub struct LivelockReport {
    /// CPU cycle at which the watchdog fired.
    pub cycle: u64,
    /// Which condition fired.
    pub trigger: LivelockTrigger,
    /// CPU cycles since the last retirement or bus progress.
    pub no_progress_for: u64,
    /// Failed conditional flushes since the last success or delivery.
    pub consecutive_flush_failures: u64,
    /// Instructions retired in total.
    pub retired: u64,
    /// Bus transactions completed in total.
    pub bus_transactions: u64,
    /// Faults injected by the active schedule (0 without one).
    pub injected_faults: u64,
    /// CSB counters at the time of the report.
    pub csb: CsbStats,
    /// One entry per process known to the run.
    pub actors: Vec<ActorState>,
}

impl fmt::Display for LivelockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "livelock detected at cycle {} ({}): {} consecutive failed \
             flushes, {} cycles without progress, {} retired, {} bus txns, \
             {} injected faults; actors:",
            self.cycle,
            self.trigger,
            self.consecutive_flush_failures,
            self.no_progress_for,
            self.retired,
            self.bus_transactions,
            self.injected_faults
        )?;
        for a in &self.actors {
            write!(f, " {a}")?;
        }
        Ok(())
    }
}

/// Progress-watchdog thresholds (see [`Simulator::set_watchdog`]).
///
/// Both triggers are conservative: they fire only on provable
/// non-progress, never on a slow-but-advancing run, and detection is
/// cycle-exact — the naive tick loop and the fast-forward path report
/// the livelock at the same cycle with the same statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Fire [`LivelockTrigger::HardStall`] after this many CPU cycles
    /// with no retirement and no bus progress (0 disables the trigger).
    pub stall_cycles: u64,
    /// Fire [`LivelockTrigger::FlushFutility`] after this many
    /// consecutive failed conditional flushes with no success and no
    /// device delivery in between (0 disables the trigger).
    pub futile_flushes: u64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            stall_cycles: 10_000,
            futile_flushes: 64,
        }
    }
}

impl WatchdogConfig {
    /// A watchdog that never fires.
    pub fn disabled() -> Self {
        WatchdogConfig {
            stall_cycles: 0,
            futile_flushes: 0,
        }
    }
}

impl std::error::Error for SimError {}

impl From<SimConfigError> for SimError {
    fn from(e: SimConfigError) -> Self {
        SimError::Config(e)
    }
}

/// Everything outside the core; implements [`MemPort`] for the CPU.
#[derive(Debug)]
pub(crate) struct Machine {
    map: AddressMap,
    pub(crate) flat: FlatMemory,
    pub(crate) hier: MemoryHierarchy,
    ubuf: UncachedBuffer,
    csb: ConditionalStoreBuffer,
    bus: SystemBus,
    ratio: u64,
    /// Mirror of the CPU clock, kept by the tick loop for latency math.
    now: u64,
    device: IoDevice,
    /// Outstanding uncached reads: tag -> (ready CPU cycle, value).
    pending_reads: HashMap<u64, (u64, u64)>,
    /// Same, for uncached swaps.
    pending_swaps: HashMap<u64, (u64, u64)>,
    /// Uncached swaps in flight: tag -> (width, new value to write).
    swap_writes: HashMap<u64, (usize, u64)>,
    /// Structured trace sink shared with every component (disabled unless
    /// [`Simulator::enable_tracing`] ran).
    obs: TraceSink,
    /// Metrics registry (disabled unless [`Simulator::enable_metrics`] ran).
    metrics: MetricsRegistry,
    /// CPU cycle of the combining store that started the current CSB line
    /// (for the store→flush gap histogram).
    csb_line_start: Option<u64>,
    /// CPU cycle of the first failed conditional flush of the current retry
    /// sequence (for the flush retry latency histogram).
    csb_retry_since: Option<u64>,
    /// Master handle on the fault schedule (clones installed into the bus
    /// and CSB hooks); disabled unless [`Simulator::set_faults`] ran.
    faults: FaultInjector,
    /// Monotone count of bus transactions accepted and delivered — the
    /// machine-side progress signal the livelock watchdog monitors.
    /// Faulted issues and NACKed deliveries do *not* count.
    progress: u64,
    /// CPU cycle at which the watchdog would observe the most recent
    /// `progress` increment in the naive loop: the accepting cycle + 1
    /// (the naive tick advances the clock before the watchdog check).
    /// Keeping this per-accept stamp lets bulk-applied accepts reset the
    /// hard-stall deadline at exactly the cycle the naive loop would.
    progress_at: u64,
    /// Consecutive failed conditional flushes with no success and no
    /// device delivery in between (the watchdog's futility signal).
    futile_flushes: u64,
    /// Optional NI attached as the receive side of the I/O window
    /// (`None` by default: detached simulations pay nothing).
    nic: Option<NicAttachment>,
}

/// A [`csb_nic::Nic`] watching bus writes at and above `base`.
#[derive(Debug)]
struct NicAttachment {
    nic: csb_nic::Nic,
    /// Bus address of window offset 0.
    base: u64,
}

/// What one grant attempt in [`Machine::issue_step`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IssueOutcome {
    /// A transaction was accepted and delivered. `from_csb` tells which
    /// buffer drained; `freed_entry` whether the accept released queue
    /// capacity (an uncached entry fully drained, or a CSB burst slot
    /// freed) — the condition that can unblock a capacity-stalled CPU.
    Accepted { from_csb: bool, freed_entry: bool },
    /// The bus fault hook errored the transaction: the slot is spent,
    /// nothing was delivered, the transaction stays queued for retry.
    Faulted,
    /// The device NACKed the write delivery: slot spent, transaction
    /// stays queued and reissues.
    Nacked,
    /// Neither buffer had a transaction to offer (popping leading
    /// uncached barriers is the only possible state change).
    NoWork,
}

/// Which bulk-applied bus event must hand control back to real ticking
/// during a [`Machine::fast_forward`] walk — the machine-side mirror of
/// the CPU's [`StallCause`]. Stopping too early is always safe (the next
/// real tick re-evaluates everything); failing to stop when an event
/// could change the CPU's horizon would be unsound, so every mapping
/// below is conservative.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DrainWake {
    /// CPU halted: only a full I/O drain (or the cap) ends the walk.
    Drained,
    /// A membar holds retirement: wake when the uncached buffer empties.
    UncachedDrained,
    /// The head uncached store/load was refused for capacity: wake on
    /// any accept that frees an uncached-buffer entry.
    UncachedAccept,
    /// The head combining store/flush was refused: wake on any CSB-burst
    /// accept (each frees both store and flush capacity).
    CsbAccept,
    /// The CPU waits only on its own timetable (`stall: None`): bus
    /// accepts cannot unblock it — uncached ops issue exclusively at the
    /// ROB head, so no pending completion can appear out of a grant —
    /// and only pending read/swap completions stop the walk.
    None,
}

impl Machine {
    fn bus_now(&self) -> u64 {
        self.now / self.ratio
    }

    /// One bus cycle: hand ready transactions to the bus (uncached buffer
    /// first — program order for strongly ordered I/O — then CSB bursts).
    fn bus_tick(&mut self) {
        let bus_now = self.bus_now();
        while self.bus.can_accept(bus_now) {
            if !matches!(
                self.issue_step(bus_now, self.now),
                IssueOutcome::Accepted { .. }
            ) {
                break;
            }
        }
    }

    /// One grant attempt, shared verbatim by the naive loop's [`bus_tick`]
    /// and the fast-forward walk: offers the uncached buffer's head
    /// transaction (program order first), else the CSB's oldest committed
    /// burst, to the bus at `bus_now`. `cpu_cycle` is the CPU cycle this
    /// grant belongs to; an accept stamps `progress_at = cpu_cycle + 1`,
    /// the cycle the naive loop's watchdog would observe it. The caller
    /// must hold `bus.can_accept(bus_now)`; the fault hooks are invoked in
    /// exactly the naive order (one `BusError` draw inside each accepted
    /// `try_issue` slot, one `DeviceNack` draw per issued write), so the
    /// per-kind fault ordinals — and therefore the whole schedule — replay
    /// identically however many grants are applied per call.
    ///
    /// [`bus_tick`]: Machine::bus_tick
    fn issue_step(&mut self, bus_now: u64, cpu_cycle: u64) -> IssueOutcome {
        if let Some(pt) = self.ubuf.peek_transaction() {
            // `can_accept` held, so `Ok(None)` can only mean the bus
            // fault hook errored the transaction: the slot is spent,
            // nothing was delivered, and the transaction stays queued
            // for hardware retry on a later bus cycle.
            let Some(issued) = self
                .bus
                .try_issue(bus_now, pt.txn)
                .expect("uncached buffer emits only legal transactions")
            else {
                self.metrics.inc("fault_bus_errors");
                self.metrics.timeline_mark(cpu_cycle, TimelineEvent::Fault);
                return IssueOutcome::Faulted;
            };
            if matches!(pt.txn.kind, TxnKind::Write) && self.faults.inject(FaultKind::DeviceNack) {
                // The device NACKed the delivery: the bus slot was
                // spent carrying it, but the transaction stays queued
                // and reissues (each carry counts in the bus stats).
                self.metrics.inc("fault_device_nacks");
                self.metrics.timeline_mark(cpu_cycle, TimelineEvent::Fault);
                // Stamped at the explicit grant cycle so the naive loop
                // (where it equals the shared clock) and the fast-forward
                // walk (where the shared clock is frozen) emit
                // byte-identical events.
                self.obs.emit_at(
                    cpu_cycle,
                    Track::Bus,
                    EventKind::DeviceNack {
                        addr: pt.txn.addr.raw(),
                    },
                );
                return IssueOutcome::Nacked;
            }
            let entries_before = self.ubuf.len();
            self.ubuf.transaction_accepted();
            self.progress += 1;
            self.progress_at = cpu_cycle + 1;
            self.metrics
                .observe("uncached_txn_bytes", pt.txn.payload as u64);
            self.metrics.timeline_mark(
                cpu_cycle,
                TimelineEvent::BusTxn {
                    busy_cycles: (issued.completes_at - issued.addr_cycle) * self.ratio,
                    payload: pt.txn.payload as u64,
                },
            );
            self.deliver(pt.txn, pt.data, issued.addr_cycle, issued.completes_at);
            IssueOutcome::Accepted {
                from_csb: false,
                freed_entry: self.ubuf.len() < entries_before,
            }
        } else if let Some(&pt) = self.csb.peek_transaction() {
            let Some(issued) = self
                .bus
                .try_issue(bus_now, pt.txn)
                .expect("CSB emits only legal transactions")
            else {
                self.metrics.inc("fault_bus_errors");
                self.metrics.timeline_mark(cpu_cycle, TimelineEvent::Fault);
                return IssueOutcome::Faulted;
            };
            if matches!(pt.txn.kind, TxnKind::Write) && self.faults.inject(FaultKind::DeviceNack) {
                self.metrics.inc("fault_device_nacks");
                self.metrics.timeline_mark(cpu_cycle, TimelineEvent::Fault);
                self.obs.emit_at(
                    cpu_cycle,
                    Track::Bus,
                    EventKind::DeviceNack {
                        addr: pt.txn.addr.raw(),
                    },
                );
                return IssueOutcome::Nacked;
            }
            self.csb.transaction_accepted();
            self.progress += 1;
            self.progress_at = cpu_cycle + 1;
            self.metrics
                .observe("csb_burst_bytes", pt.txn.payload as u64);
            self.metrics.timeline_mark(
                cpu_cycle,
                TimelineEvent::BusTxn {
                    busy_cycles: (issued.completes_at - issued.addr_cycle) * self.ratio,
                    payload: pt.txn.payload as u64,
                },
            );
            self.deliver(pt.txn, pt.data, issued.addr_cycle, issued.completes_at);
            IssueOutcome::Accepted {
                from_csb: true,
                // Every CSB accept pops one pending burst, freeing both
                // flush capacity and (single-buffered) store capacity.
                freed_entry: true,
            }
        } else {
            IssueOutcome::NoWork
        }
    }

    fn deliver(
        &mut self,
        txn: csb_bus::Transaction,
        data: PayloadBuf,
        addr_cycle: u64,
        completes_at: u64,
    ) {
        match txn.kind {
            TxnKind::Write => {
                self.flat.write_bytes(txn.addr, &data);
                if let Some(att) = &mut self.nic {
                    if txn.addr.raw() >= att.base {
                        let torn_before = att.nic.stats().torn_frames;
                        let msgs_before = att.nic.messages().len();
                        att.nic
                            .ingest_bytes(txn.addr.raw() - att.base, &data, addr_cycle);
                        // Stamped at the delivery's CPU-cycle equivalent of
                        // the bus address phase — a pure function of the
                        // transaction timeline, so the naive loop and a
                        // fast-forward walk (where the shared clock is
                        // frozen) emit byte-identical streams.
                        let cycle = addr_cycle * self.ratio;
                        for _ in torn_before..att.nic.stats().torn_frames {
                            self.metrics.inc("nic_torn_frames");
                            self.obs.emit_at(
                                cycle,
                                Track::Bus,
                                EventKind::NicTornFrame {
                                    offset: txn.addr.raw() - att.base,
                                },
                            );
                        }
                        for m in &att.nic.messages()[msgs_before..] {
                            self.metrics.inc("nic_messages");
                            self.metrics
                                .observe("nic_e2e_latency", m.device_latency() * self.ratio);
                            self.obs.emit_at(
                                cycle,
                                Track::Bus,
                                EventKind::NicMessage {
                                    sender: m.sender,
                                    seq: m.seq,
                                    len: m.payload.len(),
                                    arrival: m.arrived_at * self.ratio,
                                },
                            );
                        }
                    }
                }
                self.device.deliver(txn.addr, data, txn.payload, addr_cycle);
                // A delivery is forward progress for the retry loop even
                // when the triggering flush itself keeps failing.
                self.futile_flushes = 0;
            }
            TxnKind::Read => {
                // Value travels back with the data phase; the register is
                // written the CPU cycle after the transaction completes.
                let ready = (completes_at + 1) * self.ratio;
                if let Some((width, new)) = self.swap_writes.remove(&txn.tag) {
                    let old = self.flat.read(txn.addr, width);
                    self.flat.write(txn.addr, width, new);
                    self.pending_swaps.insert(txn.tag, (ready, old));
                } else {
                    let v = self.flat.read(txn.addr, txn.size.min(8));
                    self.pending_reads.insert(txn.tag, (ready, v));
                }
            }
        }
    }

    fn io_drained(&self) -> bool {
        self.ubuf.is_drained() && self.csb.is_drained()
    }

    /// Transaction-granular drain walk: bulk-applies every machine-side
    /// event strictly before `target` that cannot change the (stalled or
    /// halted) CPU's behaviour, and returns the CPU cycle at which real
    /// ticking must resume (always `<= target`). Each accepted, faulted,
    /// or NACKed issue costs O(1) — the bus timeline is frozen at issue
    /// time (state mutates exclusively inside `try_issue`), so the walk
    /// hops from `earliest_start` to `earliest_start` instead of ticking
    /// through every occupied cycle.
    ///
    /// Events, in cursor order:
    /// - An outstanding uncached read/swap becoming ready stops the walk
    ///   at its ready cycle: only a real CPU tick can poll it.
    /// - A queued transaction issuing is applied via [`issue_step`] —
    ///   exactly the naive `bus_tick` body, fault hooks included, so the
    ///   per-kind fault ordinals (and therefore any replayed schedule)
    ///   are identical however many grants are bulk-applied. After an
    ///   accept the `wake` condition decides whether the CPU could react:
    ///   if so the walk stops *at the issue cycle* (the naive loop's
    ///   `bus_tick` runs before the CPU tick of the same cycle, so the
    ///   CPU observes the accept at exactly that cycle; re-entering
    ///   `bus_tick` there is a provable no-op because the slot is spent).
    /// - A fully drained I/O system under [`DrainWake::Drained`] resumes
    ///   at the cycle *after* the final accept — mirroring the naive
    ///   loop's last halted tick, which advances the clock past the
    ///   accepting cycle before `complete()` turns true.
    ///
    /// The walk terminates: every issue spends a bus slot, which pushes
    /// `earliest_start` forward by at least one bus cycle.
    ///
    /// # Event synthesis under tracing
    ///
    /// When structured tracing is enabled the walk must leave behind the
    /// byte-identical event stream the naive loop would have: inside the
    /// jump, the only per-cycle emissions are the stalled head op's
    /// refusal events (`uncached.full` / `csb.busy`, one per re-attempted
    /// cycle — `refusal` carries the prebuilt event, `None` for causes
    /// that bump counters without emitting). Everything else is already
    /// stamped correctly: bus spans carry explicit timestamps inside
    /// `try_issue`, and device NACKs are stamped at the grant cycle by
    /// [`issue_step`]. The walk therefore emits the refusal for every
    /// skipped cycle — in nondecreasing cycle order, after any bus events
    /// of the same cycle, matching the naive `bus_tick`-before-CPU-tick
    /// order within each cycle — and emits nothing at a cycle the walk
    /// stops *at*, because that cycle is ticked for real.
    ///
    /// [`issue_step`]: Machine::issue_step
    fn fast_forward(
        &mut self,
        target: u64,
        wake: DrainWake,
        refusal: Option<&(Track, EventKind)>,
    ) -> u64 {
        // First cycle whose refusal event has not been emitted yet.
        let mut cursor = self.now;
        let emit_refusals = |obs: &TraceSink, from: u64, to: u64| {
            if let Some((track, kind)) = refusal {
                for c in from..to {
                    obs.emit_at(c, *track, kind.clone());
                }
            }
        };
        let mut t = self.now;
        loop {
            let mut ready: Option<u64> = None;
            for &(r, _) in self
                .pending_reads
                .values()
                .chain(self.pending_swaps.values())
            {
                ready = Some(ready.map_or(r, |h: u64| h.min(r)));
            }
            // First bus tick at or after `t` is bus cycle ceil(t/ratio);
            // the bus accepts at `earliest_start` of that cycle (idempotent
            // at its own result, so that really is the issue cycle). A
            // barrier-only uncached buffer also drains exactly there.
            let issue = (!self.ubuf.is_empty() || !self.csb.is_drained())
                .then(|| self.bus.earliest_start(t.div_ceil(self.ratio)) * self.ratio);
            let (at, is_issue) = match (ready, issue) {
                (None, None) => {
                    emit_refusals(&self.obs, cursor, target);
                    return target;
                }
                // Ties go to the ready event: stopping early is safe, and
                // the real tick's own `bus_tick` performs the issue.
                (Some(r), Some(i)) if r <= i => (r, false),
                (Some(r), None) => (r, false),
                (_, Some(i)) => (i, true),
            };
            if at >= target {
                emit_refusals(&self.obs, cursor, target);
                return target;
            }
            if !is_issue {
                emit_refusals(&self.obs, cursor, at);
                return at;
            }
            // Refusals strictly before the grant cycle go first; the grant
            // cycle's own refusal is emitted only if the walk continues
            // past it (a stop at `at` means that cycle is ticked for real).
            emit_refusals(&self.obs, cursor, at);
            cursor = cursor.max(at);
            t = at;
            match self.issue_step(at / self.ratio, at) {
                IssueOutcome::Accepted {
                    from_csb,
                    freed_entry,
                } => match wake {
                    DrainWake::Drained => {
                        if self.io_drained() {
                            return at + 1;
                        }
                    }
                    DrainWake::UncachedDrained => {
                        if self.ubuf.is_drained() {
                            return at;
                        }
                    }
                    DrainWake::UncachedAccept => {
                        if !from_csb && freed_entry {
                            return at;
                        }
                    }
                    DrainWake::CsbAccept => {
                        if from_csb {
                            return at;
                        }
                    }
                    DrainWake::None => {}
                },
                // Slot spent, transaction still queued: the next issue
                // candidate is strictly later, keep walking (this is what
                // makes NACK/bus-error retry storms O(1) per carry).
                IssueOutcome::Faulted | IssueOutcome::Nacked => {}
                IssueOutcome::NoWork => {
                    // `peek_transaction` popped leading barriers; a
                    // barrier-only uncached buffer just drained here. No
                    // bus event was produced and the loop may revisit this
                    // cycle, so leave the cursor for the range emissions.
                    match wake {
                        DrainWake::Drained if self.io_drained() => return at + 1,
                        DrainWake::UncachedDrained if self.ubuf.is_drained() => return at,
                        _ => {}
                    }
                    continue;
                }
            }
            // The walk continues past the grant cycle: the naive loop's
            // CPU tick at `at` would still have been refused, after the
            // grant's bus events.
            emit_refusals(&self.obs, cursor, at + 1);
            cursor = at + 1;
        }
    }
}

impl MemPort for Machine {
    fn space_of(&self, addr: Addr) -> AddressSpace {
        self.map.space_of(addr)
    }

    fn cached_access(&mut self, addr: Addr, kind: AccessKind, now: u64) -> u64 {
        let (done_at, level) = self.hier.access(addr, kind, now);
        match level {
            HitLevel::L1 => {}
            HitLevel::L2 => self.obs.emit(
                Track::Cpu,
                EventKind::CacheMiss {
                    addr: addr.raw(),
                    level: "L2",
                },
            ),
            HitLevel::Memory => self.obs.emit(
                Track::Cpu,
                EventKind::CacheMiss {
                    addr: addr.raw(),
                    level: "memory",
                },
            ),
        }
        done_at
    }

    fn read(&mut self, addr: Addr, width: usize) -> u64 {
        self.flat.read(addr, width)
    }

    fn write(&mut self, addr: Addr, width: usize, value: u64) {
        self.flat.write(addr, width, value);
    }

    fn swap_value(&mut self, addr: Addr, new: u64) -> u64 {
        self.flat.swap(addr, new)
    }

    fn uncached_store(&mut self, addr: Addr, width: usize, value: u64) -> bool {
        let bytes = value.to_le_bytes();
        self.ubuf.push_store(addr, &bytes[..width]) != PushOutcome::Full
    }

    fn uncached_load(&mut self, addr: Addr, width: usize, tag: u64) -> bool {
        self.ubuf.push_load(addr, width, tag)
    }

    fn uncached_load_poll(&mut self, tag: u64) -> Option<u64> {
        let &(ready, v) = self.pending_reads.get(&tag)?;
        if self.now >= ready {
            self.pending_reads.remove(&tag);
            Some(v)
        } else {
            None
        }
    }

    fn uncached_swap(&mut self, addr: Addr, width: usize, value: u64, tag: u64) -> bool {
        if self.ubuf.push_load(addr, width, tag) {
            self.swap_writes.insert(tag, (width, value));
            true
        } else {
            false
        }
    }

    fn uncached_swap_poll(&mut self, tag: u64) -> Option<u64> {
        let &(ready, v) = self.pending_swaps.get(&tag)?;
        if self.now >= ready {
            self.pending_swaps.remove(&tag);
            Some(v)
        } else {
            None
        }
    }

    fn uncached_drained(&self) -> bool {
        self.ubuf.is_drained()
    }

    fn csb_store(&mut self, pid: Pid, addr: Addr, width: usize, value: u64) -> bool {
        let bytes = value.to_le_bytes();
        match self.csb.store(pid, addr, &bytes[..width]) {
            Ok(outcome) => {
                if matches!(outcome, StoreOutcome::Reset) {
                    self.csb_line_start = Some(self.now);
                }
                true
            }
            Err(CsbError::Busy) => false,
            Err(e @ CsbError::BadStore { .. }) => {
                panic!("program issued an illegal combining store: {e}")
            }
        }
    }

    fn csb_can_flush(&self) -> bool {
        self.csb.can_accept_flush()
    }

    fn csb_flush(&mut self, pid: Pid, addr: Addr, expected: u64) -> u64 {
        let disturbs_before = self.csb.fault_disturbs();
        let outcome = self.csb.conditional_flush(pid, addr, expected);
        if self.csb.fault_disturbs() != disturbs_before {
            self.metrics.inc("fault_flush_disturbs");
            self.metrics.timeline_mark(self.now, TimelineEvent::Fault);
        }
        match outcome {
            csb_uncached::FlushOutcome::Success => self.futile_flushes = 0,
            csb_uncached::FlushOutcome::Fail => self.futile_flushes += 1,
        }
        // Flushes only happen in real CPU ticks (never mid-jump), so
        // `self.now` stamps the same window on both simulation loops.
        self.metrics.timeline_mark(
            self.now,
            match outcome {
                csb_uncached::FlushOutcome::Success => TimelineEvent::FlushSuccess,
                csb_uncached::FlushOutcome::Fail => TimelineEvent::FlushFailure,
            },
        );
        if self.metrics.is_enabled() {
            match outcome {
                csb_uncached::FlushOutcome::Success => {
                    // Latency of the software retry sequence: 0 when the
                    // first attempt succeeded, else the distance back to
                    // the first failure. One observation per success, so
                    // the histogram count equals `CsbStats.flush_successes`.
                    let latency = self.now - self.csb_retry_since.take().unwrap_or(self.now);
                    self.metrics.observe("csb_flush_retry_latency", latency);
                    if latency == 0 {
                        self.metrics.inc("csb_flush_first_try");
                    } else {
                        self.metrics.inc("csb_flush_retried");
                    }
                    if let Some(start) = self.csb_line_start.take() {
                        self.metrics
                            .observe("csb_store_flush_gap", self.now - start);
                    }
                }
                csb_uncached::FlushOutcome::Fail => {
                    self.csb_retry_since.get_or_insert(self.now);
                }
            }
        }
        outcome.register_value(expected)
    }

    fn uncached_store_would_accept(&self, addr: Addr, width: usize) -> bool {
        self.ubuf.would_accept_store(addr, width)
    }

    fn uncached_load_would_accept(&self) -> bool {
        self.ubuf.would_accept_load()
    }

    fn csb_store_would_accept(&self) -> bool {
        self.csb.can_accept_store()
    }

    fn uncached_load_ready(&self, tag: u64) -> bool {
        self.pending_reads
            .get(&tag)
            .is_some_and(|&(ready, _)| self.now >= ready)
    }

    fn uncached_swap_ready(&self, tag: u64) -> bool {
        self.pending_swaps
            .get(&tag)
            .is_some_and(|&(ready, _)| self.now >= ready)
    }
}

/// Everything a metrics JSON artifact holds for one simulation point: the
/// end-of-run statistics of every component plus the histogram snapshot.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MetricsReport {
    /// Total CPU cycles simulated.
    pub cycles: u64,
    /// Core statistics.
    pub cpu: CpuStats,
    /// Bus statistics.
    pub bus: BusStats,
    /// Uncached buffer statistics.
    pub uncached: UncachedStats,
    /// Conditional store buffer statistics.
    pub csb: CsbStats,
    /// Cache hierarchy statistics.
    pub mem: MemoryStats,
    /// Counters and histogram summaries recorded during the run.
    pub metrics: MetricsSnapshot,
}

/// Default for [`Simulator`]'s fast-forward switch (process-wide).
static DEFAULT_FAST_FORWARD: AtomicBool = AtomicBool::new(true);

/// Sets the process-wide default for event-driven fast-forward in newly
/// built [`Simulator`]s (the `--no-fast-forward` escape hatch on the
/// bench binaries). Existing simulators are unaffected; use
/// [`Simulator::set_fast_forward`] for those.
pub fn set_default_fast_forward(on: bool) {
    DEFAULT_FAST_FORWARD.store(on, Ordering::Relaxed);
}

/// The current process-wide default for event-driven fast-forward.
pub fn default_fast_forward() -> bool {
    DEFAULT_FAST_FORWARD.load(Ordering::Relaxed)
}

/// Aggregated results of a simulation run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RunSummary {
    /// Total CPU cycles simulated (including post-halt bus drain).
    pub cycles: u64,
    /// Core statistics.
    pub cpu: CpuStats,
    /// Bus statistics (the bandwidth figures read these).
    pub bus: BusStats,
    /// Uncached buffer statistics.
    pub uncached: UncachedStats,
    /// Conditional store buffer statistics.
    pub csb: CsbStats,
    /// Cache hierarchy statistics.
    pub mem: MemoryStats,
}

/// Serializes a pending-completion map (`tag -> (ready cycle, value)`)
/// sorted by tag so the byte stream is deterministic.
fn save_pending(w: &mut csb_snap::SnapshotWriter, map: &HashMap<u64, (u64, u64)>) {
    let mut tags: Vec<u64> = map.keys().copied().collect();
    tags.sort_unstable();
    w.put_usize(tags.len());
    for t in tags {
        let (ready, value) = map[&t];
        w.put_u64(t);
        w.put_u64(ready);
        w.put_u64(value);
    }
}

/// Restores a map written by [`save_pending`].
fn restore_pending(
    r: &mut csb_snap::SnapshotReader<'_>,
    map: &mut HashMap<u64, (u64, u64)>,
) -> Result<(), csb_snap::SnapshotError> {
    map.clear();
    let n = r.take_usize()?;
    for _ in 0..n {
        let t = r.take_u64()?;
        let ready = r.take_u64()?;
        let value = r.take_u64()?;
        map.insert(t, (ready, value));
    }
    Ok(())
}

/// The complete simulated machine: one out-of-order core, caches, the
/// uncached buffer, the CSB, and a system bus feeding an [`IoDevice`].
///
/// Time advances in CPU cycles; the bus ticks once every
/// [`SimConfig::ratio`] CPU cycles. See the crate-level example.
#[derive(Debug)]
pub struct Simulator {
    cfg: SimConfig,
    cpu: Cpu,
    machine: Machine,
    /// Event-driven idle-gap skipping (cycle-exact; see
    /// [`Simulator::set_fast_forward`]).
    fast_forward: bool,
    /// CPU cycles until the next bus tick (hoisted out of the per-cycle
    /// `now % ratio` check).
    bus_countdown: u64,
    /// Real (non-skipped) ticks executed, for fast-forward diagnostics.
    ticks: u64,
    /// Progress-watchdog thresholds (see [`Simulator::set_watchdog`]).
    watchdog: WatchdogConfig,
    /// CPU cycle at which progress was last observed.
    wd_last_progress: u64,
    /// Retirement count at the last watchdog check.
    wd_seen_retired: u64,
    /// Machine progress count at the last watchdog check.
    wd_seen_progress: u64,
}

impl Simulator {
    /// Builds a machine about to run `program` as process 0.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the configuration is inconsistent or a
    /// component rejects its parameters.
    pub fn new(cfg: SimConfig, program: Program) -> Result<Self, SimError> {
        cfg.validate()?;
        let machine = Machine {
            map: cfg.map.clone(),
            flat: FlatMemory::new(),
            hier: MemoryHierarchy::new(cfg.mem).map_err(|e| SimError::Component(e.to_string()))?,
            ubuf: UncachedBuffer::new(cfg.uncached)
                .map_err(|e| SimError::Component(e.to_string()))?,
            csb: ConditionalStoreBuffer::new(cfg.csb)
                .map_err(|e| SimError::Component(e.to_string()))?,
            bus: SystemBus::new(cfg.bus),
            ratio: cfg.ratio,
            now: 0,
            device: IoDevice::new(),
            pending_reads: HashMap::with_capacity(16),
            pending_swaps: HashMap::with_capacity(16),
            swap_writes: HashMap::with_capacity(16),
            obs: TraceSink::disabled(),
            metrics: MetricsRegistry::disabled(),
            csb_line_start: None,
            csb_retry_since: None,
            faults: FaultInjector::disabled(),
            progress: 0,
            progress_at: 0,
            futile_flushes: 0,
            nic: None,
        };
        let cpu = Cpu::new(cfg.cpu, program);
        Ok(Simulator {
            cfg,
            cpu,
            machine,
            fast_forward: default_fast_forward(),
            bus_countdown: 0,
            ticks: 0,
            watchdog: WatchdogConfig::default(),
            wd_last_progress: 0,
            wd_seen_retired: 0,
            wd_seen_progress: 0,
        })
    }

    /// Warm-resets this simulator to the state [`Simulator::new`] would
    /// produce for `(cfg, program)`, reusing the arena-backed storage a
    /// cold construction would reallocate: the CPU's ROB ring and fetch
    /// queue, both cache levels' set arrays (when the geometry is
    /// unchanged), the uncached buffer's entry/drain queues, the CSB's
    /// pending-burst queue, the functional memory's touched chunks
    /// (zeroed in place), and the device log's reserved capacity. Every
    /// observable result of a subsequent run — summary, stats, metrics,
    /// device contents — is byte-identical to a cold-constructed
    /// simulator's; the experiment engine uses this so each worker thread
    /// drives its whole point queue through one simulator.
    ///
    /// # Errors
    ///
    /// As for [`Simulator::new`]. A failed reset may leave the simulator
    /// partially reset — run nothing on it until a later `reset_with`
    /// succeeds (every field is unconditionally reassigned, so a
    /// subsequent successful reset fully recovers).
    pub fn reset_with(&mut self, cfg: SimConfig, program: Program) -> Result<(), SimError> {
        cfg.validate()?;
        let m = &mut self.machine;
        m.hier
            .reset_with(cfg.mem)
            .map_err(|e| SimError::Component(e.to_string()))?;
        m.ubuf
            .reset_with(cfg.uncached)
            .map_err(|e| SimError::Component(e.to_string()))?;
        m.csb
            .reset_with(cfg.csb)
            .map_err(|e| SimError::Component(e.to_string()))?;
        m.map = cfg.map.clone();
        m.flat.reset();
        m.bus = SystemBus::new(cfg.bus);
        m.ratio = cfg.ratio;
        m.now = 0;
        m.device.clear();
        m.pending_reads.clear();
        m.pending_swaps.clear();
        m.swap_writes.clear();
        m.obs = TraceSink::disabled();
        m.metrics = MetricsRegistry::disabled();
        m.csb_line_start = None;
        m.csb_retry_since = None;
        m.faults = FaultInjector::disabled();
        m.progress = 0;
        m.progress_at = 0;
        m.futile_flushes = 0;
        m.nic = None;
        self.cpu
            .reset_with(cfg.cpu, program, csb_cpu::CpuContext::new(0));
        self.cfg = cfg;
        self.fast_forward = default_fast_forward();
        self.bus_countdown = 0;
        self.ticks = 0;
        self.watchdog = WatchdogConfig::default();
        self.wd_last_progress = 0;
        self.wd_seen_retired = 0;
        self.wd_seen_progress = 0;
        Ok(())
    }

    /// The machine configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The core (for register and statistics inspection).
    pub fn cpu(&self) -> &Cpu {
        &self.cpu
    }

    /// Mutable core access (context setup for multi-process experiments).
    pub fn cpu_mut(&mut self) -> &mut Cpu {
        &mut self.cpu
    }

    /// The I/O device sink.
    pub fn device(&self) -> &IoDevice {
        &self.machine.device
    }

    /// Attaches a network interface as the receive side of the I/O
    /// window starting at `window_base` (typically
    /// [`crate::COMBINING_BASE`] for CSB senders or
    /// [`crate::UNCACHED_BASE`] for locked senders). Every bus write
    /// delivered at or above the base is ingested live — identically on
    /// the naive tick loop and the fast-forward walk — so the NI
    /// assembles messages, detects torn frames, and timestamps wire
    /// arrivals as the run progresses. Replaces any previous attachment;
    /// [`Simulator::reset_with`] detaches.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Component`] if `cfg` is rejected by
    /// [`csb_nic::Nic::new`].
    pub fn attach_nic(
        &mut self,
        cfg: csb_nic::NicConfig,
        window_base: Addr,
    ) -> Result<(), SimError> {
        let nic = csb_nic::Nic::new(cfg).map_err(|e| SimError::Component(e.to_string()))?;
        self.machine.nic = Some(NicAttachment {
            nic,
            base: window_base.raw(),
        });
        Ok(())
    }

    /// The attached network interface, if any.
    pub fn nic(&self) -> Option<&csb_nic::Nic> {
        self.machine.nic.as_ref().map(|att| &att.nic)
    }

    /// Detaches the network interface (subsequent deliveries are no
    /// longer ingested).
    pub fn detach_nic(&mut self) {
        self.machine.nic = None;
    }

    /// Functional memory (test setup and inspection).
    pub fn memory_mut(&mut self) -> &mut FlatMemory {
        &mut self.machine.flat
    }

    /// Pre-loads the cache line containing `addr` (Figure 5(a) lock-hit
    /// setup).
    pub fn warm_line(&mut self, addr: Addr) {
        self.machine.hier.warm(addr);
    }

    /// Evicts the cache line containing `addr` (Figure 5(b) lock-miss
    /// setup).
    pub fn evict_line(&mut self, addr: Addr) {
        self.machine.hier.flush_line(addr);
    }

    /// Starts recording cycle-stamped structured events from every
    /// component into one shared [`TraceSink`]: CPU retires/squashes/stall
    /// runs, CSB store and flush lifecycle, uncached-buffer traffic, and
    /// bus/foreign occupancy (bus timestamps rescaled by the CPU:bus
    /// ratio). Read the stream with [`Simulator::trace_events`] or export
    /// it with [`Simulator::chrome_trace`]. Costs memory per event;
    /// intended for single diagnostic runs, not sweeps.
    pub fn enable_tracing(&mut self) {
        if self.machine.obs.is_enabled() {
            return;
        }
        let sink = TraceSink::enabled();
        self.cpu.set_trace_sink(sink.clone());
        self.machine.ubuf.set_trace_sink(sink.clone());
        self.machine.csb.set_trace_sink(sink.clone());
        self.machine.bus.set_trace_sink(sink.scaled(self.cfg.ratio));
        self.machine.obs = sink;
    }

    /// Starts recording counters and latency histograms (flush retry
    /// latency, store→flush gaps, burst payload sizes, ROB stall runs)
    /// into a [`MetricsRegistry`], snapshotted by
    /// [`Simulator::metrics_snapshot`] / [`Simulator::metrics_report`].
    pub fn enable_metrics(&mut self) {
        if self.machine.metrics.is_enabled() {
            return;
        }
        let metrics = MetricsRegistry::enabled();
        self.cpu.set_metrics(metrics.clone());
        self.machine.metrics = metrics;
    }

    /// Installs a deterministic fault schedule (or clears it with
    /// `None`). One [`FaultInjector`] is shared by every hook point —
    /// bus transaction errors, device NACKs on write delivery, and
    /// forced conditional-flush disturbances — so each fault kind draws
    /// from its own ordinal stream and the whole schedule replays
    /// identically for a given [`FaultConfig`], independent of
    /// fast-forward and of which worker thread runs the simulation.
    ///
    /// With no schedule installed (or a zero-rate one) every hook is a
    /// single predicted-false branch and the simulation is byte-identical
    /// to one without the fault layer.
    pub fn set_faults(&mut self, cfg: Option<FaultConfig>) {
        let injector = match cfg {
            Some(cfg) => FaultInjector::enabled(cfg),
            None => FaultInjector::disabled(),
        };
        self.machine.bus.set_fault_hook(injector.clone());
        self.machine.csb.set_fault_hook(injector.clone());
        self.machine.faults = injector;
    }

    /// Counters of the active fault schedule (all zeros when none is
    /// installed).
    pub fn fault_stats(&self) -> FaultStats {
        self.machine.faults.stats()
    }

    /// Replaces the progress-watchdog thresholds. The default
    /// ([`WatchdogConfig::default`]) is conservative enough never to fire
    /// on a fault-free run; pass [`WatchdogConfig::disabled`] to turn the
    /// watchdog off entirely.
    pub fn set_watchdog(&mut self, cfg: WatchdogConfig) {
        self.watchdog = cfg;
    }

    /// The active progress-watchdog thresholds.
    pub fn watchdog(&self) -> WatchdogConfig {
        self.watchdog
    }

    /// Serializes every stateful component (the same inventory
    /// [`Simulator::reset_with`] reassigns) into `w`. The public framed
    /// entry point is [`Simulator::snapshot`].
    pub(crate) fn save_state(&self, w: &mut csb_snap::SnapshotWriter) {
        w.put_tag("sim");
        self.cpu.save_state(w);
        let m = &self.machine;
        m.flat.save_state(w);
        m.hier.save_state(w);
        m.ubuf.save_state(w);
        m.csb.save_state(w);
        m.bus.save_state(w);
        w.put_u64(m.now);
        m.device.save_state(w);
        match &m.nic {
            Some(att) => {
                w.put_bool(true);
                w.put_u64(att.base);
                // Config echo: the NI is attached per point (not part of
                // `SimConfig`), so the frame must carry enough to rebuild
                // the attachment on restore.
                let c = att.nic.config();
                w.put_usize(c.slot_size);
                w.put_usize(c.slots);
                w.put_u64(c.process_cycles);
                w.put_u64(c.wire.latency);
                w.put_u64(c.wire.cycles_per_dword);
                att.nic.save_state(w);
            }
            None => w.put_bool(false),
        }
        save_pending(w, &m.pending_reads);
        save_pending(w, &m.pending_swaps);
        let mut tags: Vec<u64> = m.swap_writes.keys().copied().collect();
        tags.sort_unstable();
        w.put_usize(tags.len());
        for t in tags {
            let (width, val) = m.swap_writes[&t];
            w.put_u64(t);
            w.put_usize(width);
            w.put_u64(val);
        }
        w.put_opt_u64(m.csb_line_start);
        w.put_opt_u64(m.csb_retry_since);
        match m.faults.config() {
            Some(fc) => {
                w.put_bool(true);
                w.put_u64(fc.seed);
                w.put_f64(fc.bus_error_rate);
                w.put_f64(fc.device_nack_rate);
                w.put_f64(fc.flush_disturb_rate);
                w.put_u32(fc.max_consecutive);
                match fc.window {
                    Some(win) => {
                        w.put_bool(true);
                        w.put_u64(win.start);
                        w.put_u64(win.len);
                    }
                    None => w.put_bool(false),
                }
                let stats = m.faults.stats();
                for v in stats.checks.iter().chain(stats.injected.iter()) {
                    w.put_u64(*v);
                }
                for v in m.faults.consecutive_runs() {
                    w.put_u32(v);
                }
            }
            None => w.put_bool(false),
        }
        w.put_u64(m.progress);
        w.put_u64(m.progress_at);
        w.put_u64(m.futile_flushes);
        w.put_bool(m.obs.is_enabled());
        w.put_bool(m.metrics.is_enabled());
        w.put_bool(self.fast_forward);
        w.put_u64(self.bus_countdown);
        w.put_u64(self.ticks);
        w.put_u64(self.watchdog.stall_cycles);
        w.put_u64(self.watchdog.futile_flushes);
        w.put_u64(self.wd_last_progress);
        w.put_u64(self.wd_seen_retired);
        w.put_u64(self.wd_seen_progress);
    }

    /// Restores state written by [`Simulator::save_state`]. The caller
    /// (see [`Simulator::restore`]) must have warm-reset `self` with the
    /// same `(cfg, program)` the snapshot was taken under.
    pub(crate) fn restore_state(
        &mut self,
        r: &mut csb_snap::SnapshotReader<'_>,
    ) -> Result<(), csb_snap::SnapshotError> {
        r.take_tag("sim")?;
        self.cpu.restore_state(r)?;
        let m = &mut self.machine;
        m.flat.restore_state(r)?;
        m.hier.restore_state(r)?;
        m.ubuf.restore_state(r)?;
        m.csb.restore_state(r)?;
        m.bus.restore_state(r)?;
        m.now = r.take_u64()?;
        m.device.restore_state(r)?;
        m.nic = if r.take_bool()? {
            let base = r.take_u64()?;
            let cfg = csb_nic::NicConfig {
                slot_size: r.take_usize()?,
                slots: r.take_usize()?,
                process_cycles: r.take_u64()?,
                wire: csb_nic::WireModel {
                    latency: r.take_u64()?,
                    cycles_per_dword: r.take_u64()?,
                },
            };
            let mut nic = csb_nic::Nic::new(cfg).map_err(|e| {
                csb_snap::SnapshotError::Corrupt(format!("NIC attachment invalid: {e}"))
            })?;
            nic.restore_state(r)?;
            Some(NicAttachment { nic, base })
        } else {
            None
        };
        restore_pending(r, &mut m.pending_reads)?;
        restore_pending(r, &mut m.pending_swaps)?;
        m.swap_writes.clear();
        let n = r.take_usize()?;
        for _ in 0..n {
            let t = r.take_u64()?;
            let width = r.take_usize()?;
            let val = r.take_u64()?;
            m.swap_writes.insert(t, (width, val));
        }
        m.csb_line_start = r.take_opt_u64()?;
        m.csb_retry_since = r.take_opt_u64()?;
        if r.take_bool()? {
            let seed = r.take_u64()?;
            let bus_error_rate = r.take_f64()?;
            let device_nack_rate = r.take_f64()?;
            let flush_disturb_rate = r.take_f64()?;
            let max_consecutive = r.take_u32()?;
            let window = if r.take_bool()? {
                Some(csb_faults::FaultWindow {
                    start: r.take_u64()?,
                    len: r.take_u64()?,
                })
            } else {
                None
            };
            let mut stats = FaultStats::default();
            for v in stats.checks.iter_mut().chain(stats.injected.iter_mut()) {
                *v = r.take_u64()?;
            }
            let mut consecutive = [0u32; 3];
            for v in &mut consecutive {
                *v = r.take_u32()?;
            }
            self.set_faults(Some(FaultConfig {
                seed,
                bus_error_rate,
                device_nack_rate,
                flush_disturb_rate,
                max_consecutive,
                window,
            }));
            self.machine.faults.restore_counters(stats, consecutive);
        } else {
            self.set_faults(None);
        }
        let m = &mut self.machine;
        m.progress = r.take_u64()?;
        m.progress_at = r.take_u64()?;
        m.futile_flushes = r.take_u64()?;
        let obs_enabled = r.take_bool()?;
        let metrics_enabled = r.take_bool()?;
        self.fast_forward = r.take_bool()?;
        self.bus_countdown = r.take_u64()?;
        self.ticks = r.take_u64()?;
        self.watchdog.stall_cycles = r.take_u64()?;
        self.watchdog.futile_flushes = r.take_u64()?;
        self.wd_last_progress = r.take_u64()?;
        self.wd_seen_retired = r.take_u64()?;
        self.wd_seen_progress = r.take_u64()?;
        // Sinks are wiring, not state: a restored machine records the
        // *continuation* of the run, which tests concatenate with the
        // pre-snapshot stream.
        if obs_enabled {
            self.enable_tracing();
        }
        if metrics_enabled {
            self.enable_metrics();
        }
        Ok(())
    }

    /// Advances the machine by one CPU cycle (bus included on its ticks).
    pub fn tick(&mut self) {
        self.machine.obs.set_now(self.cpu.now());
        if self.bus_countdown == 0 {
            self.machine.bus_tick();
            self.bus_countdown = self.machine.ratio;
        }
        self.bus_countdown -= 1;
        self.cpu.tick(&mut self.machine);
        self.machine.now = self.cpu.now();
        self.ticks += 1;
    }

    /// Enables or disables event-driven fast-forward for this simulator.
    ///
    /// When enabled (the default, unless overridden process-wide with
    /// [`set_default_fast_forward`]), [`Simulator::advance`] jumps the
    /// clock over cycles in which provably nothing can happen — the CPU
    /// pipeline is stalled or drained and no bus slot or uncached
    /// completion falls in the gap — bulk-updating cycle counters and
    /// stall statistics so every observable result (summary, stats,
    /// metrics) is identical to ticking cycle by cycle. Structured
    /// tracing composes with fast-forward: the walk synthesizes the
    /// per-cycle refusal events a naive loop would have emitted inside
    /// each jump, so the exported trace is byte-identical either way.
    pub fn set_fast_forward(&mut self, on: bool) {
        self.fast_forward = on;
    }

    /// `true` if event-driven fast-forward is enabled for this simulator.
    pub fn fast_forward_enabled(&self) -> bool {
        self.fast_forward
    }

    /// Real ticks executed so far (skipped idle cycles are not counted;
    /// without fast-forward this equals [`Cpu::now`]).
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Attempts one fast-forward jump, never past `cap`. Returns `false`
    /// when the next cycle must be simulated for real.
    ///
    /// Unlike the original idle-gap jump, the machine side is a
    /// transaction-granular walk ([`Machine::fast_forward`]): queued bus
    /// transactions issuing inside the gap are bulk-applied instead of
    /// ending it, so an I/O-active phase costs O(1) per transaction
    /// rather than O(cycles). The walk may mutate machine state and still
    /// report `resume <= now` (an issue landing on the current cycle);
    /// that is safe — the real tick's `bus_tick` re-entry is a no-op for
    /// a spent slot, and no stall cycles are skipped.
    fn try_fast_forward(&mut self, cap: u64) -> bool {
        if !self.fast_forward {
            return false;
        }
        let now = self.cpu.now();
        if now >= cap {
            return false;
        }
        // The horizon scan runs after every tick — [`Cpu::next_event`]
        // resolves the common busy-pipeline verdicts from the ROB head in
        // O(1), so even sub-2-transaction bus-idle gaps engage the walk on
        // their first stalled cycle instead of ticking through for real
        // (the old quiet-tick gate burned one real tick per stall entry).
        let CpuHorizon::Idle { wake, stall } = self.cpu.next_event(&self.machine) else {
            return false;
        };
        let mut target = cap;
        if let Some(w) = wake {
            target = target.min(w);
        }
        if target <= now {
            return false;
        }
        let drain_wake = if self.cpu.halted() {
            DrainWake::Drained
        } else {
            match stall {
                Some(StallCause::UncachedStoreFull | StallCause::UncachedLoadFull) => {
                    DrainWake::UncachedAccept
                }
                Some(StallCause::CsbStoreBusy | StallCause::CsbFlushWait) => DrainWake::CsbAccept,
                Some(StallCause::Membar) => DrainWake::UncachedDrained,
                None => DrainWake::None,
            }
        };
        // The per-cycle event the naive loop's refused head-op re-attempt
        // would emit during each skipped cycle, prebuilt so the walk can
        // synthesize the identical stream (`CsbFlushWait` and `Membar`
        // stalls bump counters without emitting; a halted CPU attempts
        // nothing).
        let refusal = if self.machine.obs.is_enabled() && !self.cpu.halted() {
            match stall {
                Some(StallCause::UncachedStoreFull | StallCause::UncachedLoadFull) => {
                    self.cpu.head_addr().map(|addr| {
                        (
                            Track::Uncached,
                            EventKind::UncachedFull { addr: addr.raw() },
                        )
                    })
                }
                Some(StallCause::CsbStoreBusy) => self
                    .cpu
                    .head_addr()
                    .map(|addr| (Track::Csb, EventKind::CsbBusy { addr: addr.raw() })),
                Some(StallCause::CsbFlushWait | StallCause::Membar) | None => None,
            }
        } else {
            None
        };
        let resume = self
            .machine
            .fast_forward(target, drain_wake, refusal.as_ref());
        if resume <= now {
            return false;
        }
        let skipped = resume - now;
        // Component-side counters the skipped refusals would have bumped
        // (the CPU-side counters are handled by `Cpu::fast_forward`).
        match stall {
            Some(StallCause::UncachedStoreFull | StallCause::UncachedLoadFull) => {
                self.machine.ubuf.add_full_stalls(skipped);
            }
            Some(StallCause::CsbStoreBusy) => self.machine.csb.add_busy_stalls(skipped),
            Some(StallCause::CsbFlushWait | StallCause::Membar) | None => {}
        }
        self.cpu.fast_forward(resume, stall);
        self.machine.now = resume;
        let ratio = self.machine.ratio;
        self.bus_countdown = (ratio - resume % ratio) % ratio;
        true
    }

    /// Advances simulated time: one fast-forward jump over a provably
    /// inert gap (never past `cap`) if possible, else one real
    /// [`Simulator::tick`].
    pub fn advance(&mut self, cap: u64) {
        if !self.try_fast_forward(cap) {
            self.tick();
        }
    }

    /// [`Simulator::advance`] plus the livelock watchdog. Fast-forward
    /// jumps are additionally capped at the hard-stall deadline, so the
    /// naive tick loop and the fast-forward path observe a livelock at
    /// exactly the same cycle with identical statistics.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Livelock`] when a watchdog trigger fires; the
    /// simulation can still be inspected (summary, stats, device) but has
    /// provably stopped making progress.
    pub fn advance_checked(&mut self, cap: u64) -> Result<(), SimError> {
        let mut cap = cap;
        if self.watchdog.stall_cycles > 0 {
            cap = cap.min(self.wd_last_progress + self.watchdog.stall_cycles);
        }
        self.advance(cap);
        self.check_watchdog()
    }

    fn check_watchdog(&mut self) -> Result<(), SimError> {
        let retired = self.cpu.stats().retired;
        let progress = self.machine.progress;
        if retired != self.wd_seen_retired || progress != self.wd_seen_progress {
            // Stamp each signal at the cycle the naive loop would observe
            // it: retirement happens only in real ticks (the post-tick
            // clock is exact); bus progress may have been bulk-applied
            // mid-jump, so it carries its own accept-cycle stamp.
            let mut at = 0;
            if retired != self.wd_seen_retired {
                at = self.cpu.now();
            }
            if progress != self.wd_seen_progress {
                at = at.max(self.machine.progress_at);
            }
            self.wd_seen_retired = retired;
            self.wd_seen_progress = progress;
            self.wd_last_progress = at;
        }
        let w = self.watchdog;
        if w.futile_flushes > 0 && self.machine.futile_flushes >= w.futile_flushes {
            return Err(SimError::Livelock(
                self.livelock_report(LivelockTrigger::FlushFutility),
            ));
        }
        if w.stall_cycles > 0
            && self.cpu.now().saturating_sub(self.wd_last_progress) >= w.stall_cycles
        {
            return Err(SimError::Livelock(
                self.livelock_report(LivelockTrigger::HardStall),
            ));
        }
        Ok(())
    }

    fn livelock_report(&self, trigger: LivelockTrigger) -> Box<LivelockReport> {
        Box::new(LivelockReport {
            cycle: self.cpu.now(),
            trigger,
            no_progress_for: self.cpu.now().saturating_sub(self.wd_last_progress),
            consecutive_flush_failures: self.machine.futile_flushes,
            retired: self.cpu.stats().retired,
            bus_transactions: self.machine.bus.stats().transactions,
            injected_faults: self.machine.faults.stats().total_injected(),
            csb: *self.machine.csb.stats(),
            actors: vec![ActorState {
                name: format!("pid{}", self.cpu.context().pid()),
                running: true,
                halted: self.cpu.halted(),
                completion_cycle: None,
                slice: 0,
            }],
        })
    }

    /// `true` once the program halted *and* all buffered I/O reached the
    /// bus.
    pub fn complete(&self) -> bool {
        self.cpu.halted() && self.machine.io_drained()
    }

    /// Tells the progress watchdog that the caller has *scheduled* the
    /// next work for cycle `at`: a fully idle machine (halted CPU, drained
    /// I/O) sleeping toward a planned wake — e.g. [`crate::multiproc::MultiSim`]
    /// waiting for the next process arrival — is waiting, not stalled, so
    /// the hard-stall deadline moves to `at + stall_cycles`. A no-op
    /// unless the machine is fully idle ([`Simulator::complete`]): while
    /// I/O is still draining, a genuine stall (device NACK storm, flush
    /// futility) keeps its original deadline and fires at the identical
    /// cycle on every loop. Idempotent and monotone — the mark never moves
    /// backwards.
    pub fn note_scheduled_wake(&mut self, at: u64) {
        if self.complete() {
            self.wd_last_progress = self.wd_last_progress.max(at);
        }
    }

    /// Runs until completion or `limit` CPU cycles.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CycleLimit`] if the run does not complete in
    /// time, or [`SimError::Livelock`] if the progress watchdog detects
    /// that the run has provably stopped making progress (e.g. a device
    /// NACKing every delivery, or conditional-flush retries that can
    /// never succeed).
    pub fn run(&mut self, limit: u64) -> Result<RunSummary, SimError> {
        if let Some(auto) = crate::snapshot::autosnap() {
            return self.run_autosnap(limit, &auto);
        }
        while !self.complete() {
            if self.cpu.now() >= limit {
                return Err(SimError::CycleLimit { limit });
            }
            self.advance_checked(limit)?;
        }
        Ok(self.summary())
    }

    /// Starts recording every bus transaction for
    /// [`Simulator::bus_log`] / [`crate::trace`] rendering.
    pub fn enable_bus_log(&mut self) {
        self.machine.bus.enable_log();
    }

    /// The recorded bus-transaction log (empty unless
    /// [`Simulator::enable_bus_log`] was called before running).
    pub fn bus_log(&self) -> &[csb_bus::BusLogEntry] {
        self.machine.bus.log()
    }

    /// Conditional store buffer counters (cheap accessor for schedulers).
    pub fn csb_stats(&self) -> csb_uncached::CsbStats {
        *self.machine.csb.stats()
    }

    /// A copy of the recorded structured event stream (empty unless
    /// [`Simulator::enable_tracing`] was called before running).
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.machine.obs.snapshot()
    }

    /// The recorded event stream exported as Chrome trace-event JSON,
    /// loadable in `ui.perfetto.dev` (one track per agent, one trace
    /// microsecond per CPU cycle).
    pub fn chrome_trace(&self) -> String {
        csb_obs::chrome_trace_json(&self.machine.obs.snapshot())
    }

    /// A snapshot of the recorded counters and histograms (empty unless
    /// [`Simulator::enable_metrics`] was called before running).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.machine.metrics.snapshot()
    }

    /// The full metrics artifact for this run: component statistics plus
    /// the histogram snapshot, ready for JSON serialization.
    pub fn metrics_report(&self) -> MetricsReport {
        let s = self.summary();
        MetricsReport {
            cycles: s.cycles,
            cpu: s.cpu,
            bus: s.bus,
            uncached: s.uncached,
            csb: s.csb,
            mem: s.mem,
            metrics: self.metrics_snapshot(),
        }
    }

    /// Snapshot of all statistics.
    pub fn summary(&self) -> RunSummary {
        RunSummary {
            cycles: self.cpu.now(),
            cpu: self.cpu.stats().clone(),
            bus: self.machine.bus.stats().clone(),
            uncached: *self.machine.ubuf.stats(),
            csb: *self.machine.csb.stats(),
            mem: self.machine.hier.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{COMBINING_BASE, UNCACHED_BASE};
    use crate::workloads;
    use csb_isa::{Assembler, Reg};

    fn assemble(f: impl FnOnce(&mut Assembler)) -> Program {
        let mut a = Assembler::new();
        f(&mut a);
        a.assemble().unwrap()
    }

    #[test]
    fn single_uncached_store_reaches_device() {
        let program = assemble(|a| {
            a.movi(Reg::O1, UNCACHED_BASE as i64);
            a.movi(Reg::L0, 0xabcd);
            a.std(Reg::L0, Reg::O1, 0);
            a.halt();
        });
        let mut sim = Simulator::new(SimConfig::default(), program).unwrap();
        let s = sim.run(100_000).unwrap();
        assert_eq!(s.bus.transactions, 1);
        assert_eq!(s.bus.payload_bytes, 8);
        let d = sim.device();
        assert_eq!(d.len(), 1);
        assert_eq!(&d.writes()[0].data[..2], &[0xcd, 0xab]);
    }

    #[test]
    fn csb_sequence_is_one_burst() {
        let program = assemble(|a| {
            let retry = a.new_label();
            a.movi(Reg::O1, COMBINING_BASE as i64);
            a.bind(retry).unwrap();
            a.movi(Reg::L4, 8);
            for i in 0..8 {
                a.movi(Reg::L0, 0x10 + i);
                a.std(Reg::L0, Reg::O1, 8 * i);
            }
            a.swap(Reg::L4, Reg::O1, 0);
            a.cmpi(Reg::L4, 8);
            a.bnz(retry);
            a.halt();
        });
        let mut sim = Simulator::new(SimConfig::default(), program).unwrap();
        let s = sim.run(100_000).unwrap();
        assert_eq!(s.bus.transactions, 1);
        assert_eq!(s.csb.flush_successes, 1);
        let w = &sim.device().writes()[0];
        assert_eq!(w.data.len(), 64);
        assert_eq!(w.payload, 64);
        assert_eq!(w.data[0], 0x10);
        assert_eq!(w.data[56], 0x17);
    }

    #[test]
    fn uncached_load_round_trips_through_bus() {
        let program = assemble(|a| {
            a.movi(Reg::O1, UNCACHED_BASE as i64);
            a.ld(Reg::L1, Reg::O1, 0x40, csb_isa::MemWidth::B8);
            a.halt();
        });
        let mut sim = Simulator::new(SimConfig::default(), program).unwrap();
        sim.memory_mut()
            .write(Addr::new(UNCACHED_BASE + 0x40), 8, 0x7777);
        let s = sim.run(100_000).unwrap();
        assert_eq!(sim.cpu().context().int_reg(Reg::L1), 0x7777);
        assert_eq!(s.bus.transactions, 1);
        assert_eq!(s.cpu.uncached_ops, 1);
    }

    #[test]
    fn non_combining_bandwidth_is_4_bytes_per_cycle() {
        // The paper's headline baseline number.
        let cfg = SimConfig::default();
        let program =
            workloads::store_bandwidth(1024, &cfg, workloads::StorePath::Uncached).unwrap();
        let mut sim = Simulator::new(cfg, program).unwrap();
        let s = sim.run(10_000_000).unwrap();
        assert_eq!(s.bus.transactions, 128);
        let bw = s.bus.effective_bandwidth();
        assert!((bw - 4.0).abs() < 0.05, "expected ~4 B/cycle, got {bw}");
    }

    #[test]
    fn run_summary_cycles_cover_drain() {
        let program = assemble(|a| {
            a.movi(Reg::O1, UNCACHED_BASE as i64);
            a.movi(Reg::L0, 1);
            a.std(Reg::L0, Reg::O1, 0);
            a.halt();
        });
        let mut sim = Simulator::new(SimConfig::default(), program).unwrap();
        let s = sim.run(100_000).unwrap();
        assert!(sim.complete());
        assert!(s.cycles > 0);
    }

    #[test]
    fn cycle_limit_reported() {
        let program = assemble(|a| {
            let spin = a.new_label();
            a.bind(spin).unwrap();
            a.ba(spin);
            a.halt();
        });
        let mut sim = Simulator::new(SimConfig::default(), program).unwrap();
        match sim.run(1000) {
            Err(SimError::CycleLimit { limit: 1000 }) => {}
            other => panic!("expected cycle limit, got {other:?}"),
        }
    }

    #[test]
    fn tracing_and_metrics_cover_a_csb_run() {
        let program = assemble(|a| {
            let retry = a.new_label();
            a.movi(Reg::O1, COMBINING_BASE as i64);
            a.bind(retry).unwrap();
            a.movi(Reg::L4, 8);
            for i in 0..8 {
                a.movi(Reg::L0, 0x10 + i);
                a.std(Reg::L0, Reg::O1, 8 * i);
            }
            a.swap(Reg::L4, Reg::O1, 0);
            a.cmpi(Reg::L4, 8);
            a.bnz(retry);
            a.halt();
        });
        let mut sim = Simulator::new(SimConfig::default(), program).unwrap();
        sim.enable_tracing();
        sim.enable_metrics();
        let s = sim.run(100_000).unwrap();

        let events = sim.trace_events();
        // Each component spoke on its own track.
        for track in [Track::Cpu, Track::Csb, Track::Bus] {
            assert!(
                events.iter().any(|e| e.track == track),
                "no events on {track:?}"
            );
        }
        // The trace agrees with the counters.
        let retires = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Retire { .. }))
            .count() as u64;
        assert_eq!(retires, s.cpu.retired);
        let flush_done = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::CsbFlushOutcome { .. }))
            .count() as u64;
        assert_eq!(flush_done, s.csb.flush_successes + s.csb.flush_failures);
        // The bus span lands on the rescaled CPU timeline.
        let bus_txn = events
            .iter()
            .find(|e| matches!(e.kind, EventKind::BusTxn { .. }))
            .expect("bus transaction traced");
        assert!(bus_txn.dur >= sim.config().ratio);
        assert!(bus_txn.cycle < s.cycles);

        // One flush-retry-latency observation per successful flush — the
        // invariant the metrics artifact is validated against.
        let snap = sim.metrics_snapshot();
        assert_eq!(
            snap.histograms["csb_flush_retry_latency"].count,
            s.csb.flush_successes
        );
        assert_eq!(
            snap.counters
                .get("csb_flush_first_try")
                .copied()
                .unwrap_or(0)
                + snap.counters.get("csb_flush_retried").copied().unwrap_or(0),
            s.csb.flush_successes
        );
        assert_eq!(snap.histograms["csb_burst_bytes"].count, s.csb.bursts);
        assert_eq!(
            snap.histograms["csb_store_flush_gap"].count,
            s.csb.flush_successes
        );

        // The report serializes with everything embedded.
        let report = sim.metrics_report();
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("csb_flush_retry_latency"));
        assert!(json.contains("\"flush_successes\""));

        // And the Chrome export is parseable JSON naming all five tracks.
        let chrome = sim.chrome_trace();
        assert!(serde_json::parse_value(&chrome).is_ok());
        assert!(chrome.contains("CPU pipeline") && chrome.contains("Foreign traffic"));
    }

    #[test]
    fn tracing_disabled_is_inert() {
        let program = assemble(|a| {
            a.movi(Reg::O1, UNCACHED_BASE as i64);
            a.movi(Reg::L0, 1);
            a.std(Reg::L0, Reg::O1, 0);
            a.halt();
        });
        let mut sim = Simulator::new(SimConfig::default(), program).unwrap();
        sim.run(100_000).unwrap();
        assert!(sim.trace_events().is_empty());
        assert!(sim.metrics_snapshot().is_empty());
    }

    #[test]
    fn invalid_config_rejected() {
        let program = assemble(|a| {
            a.halt();
        });
        let cfg = SimConfig::default().combining_block(128); // > 64B line
        assert!(matches!(
            Simulator::new(cfg, program),
            Err(SimError::Config(SimConfigError::BlockExceedsLine { .. }))
        ));
    }

    /// One full-line CSB sequence with the §3.2 retry loop.
    fn csb_program() -> Program {
        assemble(|a| {
            let retry = a.new_label();
            a.movi(Reg::O1, COMBINING_BASE as i64);
            a.bind(retry).unwrap();
            a.movi(Reg::L4, 8);
            for i in 0..8 {
                a.movi(Reg::L0, 0x10 + i);
                a.std(Reg::L0, Reg::O1, 8 * i);
            }
            a.swap(Reg::L4, Reg::O1, 0);
            a.cmpi(Reg::L4, 8);
            a.bnz(retry);
            a.halt();
        })
    }

    #[test]
    fn zero_rate_fault_schedule_changes_nothing() {
        let mut plain = Simulator::new(SimConfig::default(), csb_program()).unwrap();
        let baseline = plain.run(100_000).unwrap();

        let mut faulted = Simulator::new(SimConfig::default(), csb_program()).unwrap();
        faulted.set_faults(Some(FaultConfig::new(42)));
        let s = faulted.run(100_000).unwrap();
        assert_eq!(s, baseline, "zero-rate schedule must be inert");
        let stats = faulted.fault_stats();
        assert_eq!(stats.total_injected(), 0);
        assert!(
            stats.checks(FaultKind::FlushDisturb) > 0,
            "hooks must still count ordinals"
        );
    }

    #[test]
    fn flush_disturbs_force_software_retries() {
        let mut sim = Simulator::new(SimConfig::default(), csb_program()).unwrap();
        sim.set_faults(Some(
            FaultConfig::new(9)
                .flush_disturb_rate(1.0)
                .max_consecutive(2),
        ));
        let s = sim.run(100_000).unwrap();
        assert_eq!(s.csb.flush_failures, 2, "two forced disturbances");
        assert_eq!(s.csb.flush_successes, 1, "third attempt forced clean");
        assert_eq!(sim.device().payload_bytes(), 64, "payload still delivered");
        assert_eq!(sim.fault_stats().injected(FaultKind::FlushDisturb), 2);
    }

    #[test]
    fn naive_and_fast_forward_agree_under_faults() {
        let schedule = FaultConfig::new(7)
            .flush_disturb_rate(0.5)
            .bus_error_rate(0.25)
            .device_nack_rate(0.25)
            .max_consecutive(8);
        let mut results = Vec::new();
        for ff in [false, true] {
            let mut sim = Simulator::new(SimConfig::default(), csb_program()).unwrap();
            sim.set_fast_forward(ff);
            sim.set_faults(Some(schedule));
            let s = sim.run(1_000_000).unwrap();
            results.push((s, sim.fault_stats(), sim.device().payload_bytes()));
        }
        assert_eq!(
            results[0], results[1],
            "fault schedule must be path-invariant"
        );
    }

    #[test]
    fn device_nack_livelock_detected_on_both_paths() {
        // A device NACKing every delivery: the store stays queued, every
        // bus slot is spent re-carrying it, nothing ever retires or
        // drains. Both execution paths must report a hard stall at the
        // same cycle — not hang until the cycle limit.
        let mut reports = Vec::new();
        for ff in [false, true] {
            let program = assemble(|a| {
                a.movi(Reg::O1, UNCACHED_BASE as i64);
                a.movi(Reg::L0, 1);
                a.std(Reg::L0, Reg::O1, 0);
                a.halt();
            });
            let mut sim = Simulator::new(SimConfig::default(), program).unwrap();
            sim.set_fast_forward(ff);
            sim.set_faults(Some(FaultConfig::new(1).device_nack_rate(1.0)));
            match sim.run(1_000_000) {
                Err(SimError::Livelock(r)) => {
                    assert_eq!(r.trigger, LivelockTrigger::HardStall);
                    assert_eq!(r.no_progress_for, sim.watchdog().stall_cycles);
                    assert!(r.injected_faults > 0, "NACKs must be on record");
                    assert!(r.bus_transactions > 0, "slots were spent re-carrying");
                    assert_eq!(r.actors.len(), 1);
                    reports.push((r.cycle, r.retired, r.bus_transactions));
                }
                other => panic!("expected livelock (ff={ff}), got {other:?}"),
            }
        }
        assert_eq!(reports[0], reports[1], "livelock must be cycle-exact");
    }

    #[test]
    fn disabled_watchdog_falls_back_to_cycle_limit() {
        let program = assemble(|a| {
            a.movi(Reg::O1, UNCACHED_BASE as i64);
            a.movi(Reg::L0, 1);
            a.std(Reg::L0, Reg::O1, 0);
            a.halt();
        });
        let mut sim = Simulator::new(SimConfig::default(), program).unwrap();
        sim.set_faults(Some(FaultConfig::new(1).device_nack_rate(1.0)));
        sim.set_watchdog(WatchdogConfig::disabled());
        assert!(matches!(
            sim.run(50_000),
            Err(SimError::CycleLimit { limit: 50_000 })
        ));
    }

    #[test]
    fn bus_errors_retry_transparently() {
        // Bounded hardware retry: with a consecutive-fault bound the
        // program needs no software involvement and still completes.
        let program = assemble(|a| {
            a.movi(Reg::O1, UNCACHED_BASE as i64);
            a.movi(Reg::L0, 1);
            a.std(Reg::L0, Reg::O1, 0);
            a.halt();
        });
        let mut sim = Simulator::new(SimConfig::default(), program).unwrap();
        sim.set_faults(Some(
            FaultConfig::new(5).bus_error_rate(1.0).max_consecutive(3),
        ));
        let s = sim.run(100_000).unwrap();
        assert_eq!(sim.device().payload_bytes(), 8);
        assert_eq!(sim.fault_stats().injected(FaultKind::BusError), 3);
        assert_eq!(s.bus.transactions, 1, "errored carries are not recorded");
    }
}
