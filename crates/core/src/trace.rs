//! Bus-activity tracing and ASCII timeline rendering.
//!
//! Enable logging with [`crate::Simulator::enable_bus_log`], run a
//! workload, and render what the bus actually did cycle by cycle — the
//! fastest way to *see* why combining schemes differ:
//!
//! ```text
//! bus cycle 0        1         2         3
//!           AD.AD.AD.AD.                      <- non-combining, turnaround
//!           ADDDDDDDD                         <- one CSB line burst
//! ```
//!
//! Legend: `A` address cycle, `D` data cycle, `a`/`d` the same for a read,
//! `F` foreign-master occupancy, `.` idle.

use csb_bus::{BusLogEntry, TxnKind};
use serde::{Deserialize, Serialize};

/// A rendered timeline plus its bounds.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Timeline {
    /// First bus cycle rendered.
    pub from: u64,
    /// Last bus cycle rendered (inclusive).
    pub to: u64,
    /// One character per bus cycle (see module docs for the legend).
    pub lane: String,
}

impl Timeline {
    /// Renders the timeline with a cycle ruler: the window start is always
    /// labeled, then every multiple of ten, each label sitting directly
    /// above the cycle it names. A label whose column is still covered by
    /// the previous label is skipped rather than shifted, so the ones that
    /// do appear are never misaligned — windows starting off a multiple of
    /// ten (or too short to contain one) stay readable.
    pub fn render(&self) -> String {
        let offset = |cycle: u64| (cycle - self.from) as usize;
        let mut anchors = vec![self.from];
        let mut next = (self.from / 10 + 1) * 10;
        while next <= self.to {
            anchors.push(next);
            next += 10;
        }
        let mut ruler = String::new();
        for anchor in anchors {
            if offset(anchor) < ruler.len() {
                // The previous label spills over this column; skipping
                // keeps every printed label on its own cycle.
                continue;
            }
            while ruler.len() < offset(anchor) {
                ruler.push(' ');
            }
            ruler.push_str(&anchor.to_string());
        }
        format!("bus cycle {ruler}\n          {}", self.lane)
    }
}

/// Builds a bus-occupancy [`Timeline`] from a transaction log over
/// `[from, to]` bus cycles.
///
/// Overlapping entries (impossible on a correct single bus) are rendered
/// with `X` so model bugs become visible rather than silently masked.
///
/// # Examples
///
/// ```
/// use csb_bus::{BusConfig, SystemBus, Transaction};
/// use csb_core::trace;
/// use csb_isa::Addr;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut bus = SystemBus::new(BusConfig::multiplexed(8).build()?);
/// bus.enable_log();
/// bus.try_issue(0, Transaction::write(Addr::new(0), 8))?;
/// bus.try_issue(2, Transaction::write(Addr::new(64), 64))?;
/// let t = trace::timeline(bus.log(), 0, 10);
/// assert_eq!(t.lane, "ADADDDDDDDD");
/// # Ok(())
/// # }
/// ```
pub fn timeline(log: &[BusLogEntry], from: u64, to: u64) -> Timeline {
    assert!(from <= to, "empty timeline range");
    let mut lane: Vec<char> = vec!['.'; (to - from + 1) as usize];
    let mut put = |cycle: u64, ch: char| {
        if cycle < from || cycle > to {
            return;
        }
        let slot = &mut lane[(cycle - from) as usize];
        *slot = if *slot == '.' { ch } else { 'X' };
    };
    for e in log {
        let (addr_ch, data_ch) = if e.foreign {
            ('F', 'F')
        } else {
            match e.kind {
                TxnKind::Write => ('A', 'D'),
                TxnKind::Read => ('a', 'd'),
            }
        };
        // On a multiplexed bus the first occupied cycle is the address; on
        // a split bus the address rides its own path, so every cycle here
        // is data. The log does not carry the bus kind, so we follow the
        // multiplexed convention: first cycle = address when the entry
        // spans more than its data beats is not derivable — mark the first
        // cycle as the address cycle regardless, which is also where the
        // arbitration decision lands on a split bus.
        put(e.addr_cycle, addr_ch);
        for c in e.addr_cycle + 1..=e.completes_at {
            put(c, data_ch);
        }
    }
    Timeline {
        from,
        to,
        lane: lane.into_iter().collect(),
    }
}

/// Occupancy fraction of `[from, to]`: cycles carrying any transaction
/// divided by the window length.
pub fn occupancy(log: &[BusLogEntry], from: u64, to: u64) -> f64 {
    let t = timeline(log, from, to);
    let busy = t.lane.chars().filter(|&c| c != '.').count();
    busy as f64 / t.lane.len() as f64
}

/// Builds a bus-occupancy [`Timeline`] from a [`csb_obs`] trace stream —
/// the [`crate::Simulator::enable_tracing`] successor to the
/// [`timeline`]/`enable_bus_log` path.
///
/// Trace events are stamped in *CPU* cycles (the bus sink is pre-scaled by
/// the CPU:bus frequency ratio), so `ratio` converts them back to the bus
/// cycles the lane is drawn in. Only bus-master and foreign-traffic spans
/// contribute; everything else in the stream is ignored.
///
/// # Panics
///
/// Panics if `from > to` or `ratio == 0`.
pub fn timeline_from_events(
    events: &[csb_obs::TraceEvent],
    from: u64,
    to: u64,
    ratio: u64,
) -> Timeline {
    assert!(ratio > 0, "CPU:bus ratio must be positive");
    let log: Vec<BusLogEntry> = events
        .iter()
        .filter_map(|e| {
            let addr_cycle = e.cycle / ratio;
            let beats = (e.dur / ratio).max(1);
            match e.kind {
                csb_obs::EventKind::BusTxn {
                    size, write, tag, ..
                } => Some(BusLogEntry {
                    addr_cycle,
                    completes_at: addr_cycle + beats - 1,
                    size,
                    kind: if write { TxnKind::Write } else { TxnKind::Read },
                    foreign: false,
                    tag,
                }),
                csb_obs::EventKind::ForeignTxn { size } => Some(BusLogEntry {
                    addr_cycle,
                    completes_at: addr_cycle + beats - 1,
                    size,
                    kind: TxnKind::Write,
                    foreign: true,
                    tag: 0,
                }),
                _ => None,
            }
        })
        .collect();
    timeline(&log, from, to)
}

#[cfg(test)]
mod tests {
    use super::*;
    use csb_bus::{BusConfig, SystemBus, Transaction};
    use csb_isa::Addr;

    fn log_of(turnaround: u64) -> Vec<BusLogEntry> {
        let cfg = BusConfig::multiplexed(8)
            .turnaround(turnaround)
            .max_burst(64)
            .build()
            .unwrap();
        let mut bus = SystemBus::new(cfg);
        bus.enable_log();
        let mut now = 0;
        for i in 0..3u64 {
            now = bus.earliest_start(now);
            let issued = bus
                .try_issue(now, Transaction::write(Addr::new(i * 8), 8))
                .unwrap()
                .unwrap();
            now = issued.completes_at + 1;
        }
        bus.log().to_vec()
    }

    #[test]
    fn back_to_back_lane() {
        let t = timeline(&log_of(0), 0, 5);
        assert_eq!(t.lane, "ADADAD");
    }

    #[test]
    fn turnaround_leaves_idle_cycles() {
        let t = timeline(&log_of(1), 0, 7);
        assert_eq!(t.lane, "AD.AD.AD");
    }

    #[test]
    fn reads_render_lowercase() {
        let cfg = BusConfig::multiplexed(8).build().unwrap();
        let mut bus = SystemBus::new(cfg);
        bus.enable_log();
        bus.try_issue(0, Transaction::read(Addr::new(0), 8))
            .unwrap()
            .unwrap();
        let t = timeline(bus.log(), 0, 2);
        assert_eq!(t.lane, "ad.");
    }

    #[test]
    fn foreign_traffic_renders_f() {
        let cfg = BusConfig::multiplexed(8)
            .background(0.5, 8)
            .build()
            .unwrap();
        let mut bus = SystemBus::new(cfg);
        bus.enable_log();
        bus.try_issue(0, Transaction::write(Addr::new(0), 8))
            .unwrap()
            .unwrap();
        let t = timeline(bus.log(), 0, 3);
        assert_eq!(t.lane, "ADFF");
    }

    #[test]
    fn occupancy_fraction() {
        let occ = occupancy(&log_of(1), 0, 7);
        assert!((occ - 6.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn ruler_renders() {
        let t = timeline(&log_of(0), 0, 15);
        let s = t.render();
        assert!(s.contains("bus cycle"));
        assert!(s.contains("0"));
        assert!(s.lines().count() == 2);
    }

    fn ruler_of(from: u64, to: u64) -> String {
        let t = Timeline {
            from,
            to,
            lane: ".".repeat((to - from + 1) as usize),
        };
        let s = t.render();
        let line = s.lines().next().unwrap();
        line.strip_prefix("bus cycle ").unwrap().to_string()
    }

    #[test]
    fn ruler_from_zero_labels_every_ten() {
        assert_eq!(ruler_of(0, 25), "0         10        20");
    }

    #[test]
    fn ruler_offset_window_labels_its_start() {
        // A window starting off a multiple of ten is anchored at `from`,
        // with each later label above the cycle it names.
        assert_eq!(ruler_of(13, 34), "13     20        30");
    }

    #[test]
    fn ruler_short_window_without_decade_still_labeled() {
        // 5..=9 contains no multiple of ten; the old renderer printed
        // nothing but spaces here.
        assert_eq!(ruler_of(5, 9), "5");
    }

    #[test]
    fn ruler_skips_overlapping_labels() {
        // "99" covers the column where "100" would start.
        assert_eq!(ruler_of(99, 112), "99         110");
    }

    #[test]
    fn ruler_single_cycle_window() {
        assert_eq!(ruler_of(7, 7), "7");
        assert_eq!(ruler_of(10, 10), "10");
    }

    #[test]
    fn timeline_from_trace_events_matches_bus_log() {
        // Drive the same machine through both observability paths: the
        // legacy bus log and the TraceSink stream must draw the same lane.
        use crate::config::COMBINING_BASE;
        use crate::{SimConfig, Simulator};
        use csb_isa::{Assembler, Reg};

        let mut a = Assembler::new();
        a.movi(Reg::O1, COMBINING_BASE as i64);
        for i in 0..8 {
            a.movi(Reg::L0, i);
            a.std(Reg::L0, Reg::O1, 8 * i);
        }
        a.movi(Reg::L4, 8);
        a.swap(Reg::L4, Reg::O1, 0);
        a.halt();
        let program = a.assemble().unwrap();
        let cfg = SimConfig::default();
        let ratio = cfg.ratio;
        let mut logged = Simulator::new(cfg.clone(), program.clone()).unwrap();
        logged.enable_bus_log();
        logged.run(100_000).unwrap();
        let mut traced = Simulator::new(cfg, program).unwrap();
        traced.enable_tracing();
        traced.run(100_000).unwrap();

        let from_log = timeline(logged.bus_log(), 0, 40);
        let from_events = timeline_from_events(&traced.trace_events(), 0, 40, ratio);
        assert_eq!(from_log, from_events);
        assert!(
            from_log.lane.contains('A'),
            "burst rendered: {}",
            from_log.lane
        );
    }

    #[test]
    fn window_clips() {
        let t = timeline(&log_of(0), 2, 3);
        assert_eq!(t.lane, "AD");
    }

    #[test]
    #[should_panic(expected = "empty timeline")]
    fn bad_range_panics() {
        timeline(&[], 5, 4);
    }
}
