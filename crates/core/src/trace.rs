//! Bus-activity tracing and ASCII timeline rendering.
//!
//! Enable logging with [`crate::Simulator::enable_bus_log`], run a
//! workload, and render what the bus actually did cycle by cycle — the
//! fastest way to *see* why combining schemes differ:
//!
//! ```text
//! bus cycle 0        1         2         3
//!           AD.AD.AD.AD.                      <- non-combining, turnaround
//!           ADDDDDDDD                         <- one CSB line burst
//! ```
//!
//! Legend: `A` address cycle, `D` data cycle, `a`/`d` the same for a read,
//! `F` foreign-master occupancy, `.` idle.

use csb_bus::{BusLogEntry, TxnKind};
use serde::{Deserialize, Serialize};

/// A rendered timeline plus its bounds.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Timeline {
    /// First bus cycle rendered.
    pub from: u64,
    /// Last bus cycle rendered (inclusive).
    pub to: u64,
    /// One character per bus cycle (see module docs for the legend).
    pub lane: String,
}

impl Timeline {
    /// Renders the timeline with a cycle ruler every ten cycles.
    pub fn render(&self) -> String {
        let mut ruler = String::new();
        let mut i = self.from;
        while i <= self.to {
            if i.is_multiple_of(10) {
                let label = i.to_string();
                ruler.push_str(&label);
                let skip = label.len() as u64;
                i += skip.max(1);
                // Pad to the next multiple of ten.
                while !i.is_multiple_of(10) && i <= self.to {
                    ruler.push(' ');
                    i += 1;
                }
            } else {
                ruler.push(' ');
                i += 1;
            }
        }
        format!("bus cycle {ruler}\n          {}", self.lane)
    }
}

/// Builds a bus-occupancy [`Timeline`] from a transaction log over
/// `[from, to]` bus cycles.
///
/// Overlapping entries (impossible on a correct single bus) are rendered
/// with `X` so model bugs become visible rather than silently masked.
///
/// # Examples
///
/// ```
/// use csb_bus::{BusConfig, SystemBus, Transaction};
/// use csb_core::trace;
/// use csb_isa::Addr;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut bus = SystemBus::new(BusConfig::multiplexed(8).build()?);
/// bus.enable_log();
/// bus.try_issue(0, Transaction::write(Addr::new(0), 8))?;
/// bus.try_issue(2, Transaction::write(Addr::new(64), 64))?;
/// let t = trace::timeline(bus.log(), 0, 10);
/// assert_eq!(t.lane, "ADADDDDDDDD");
/// # Ok(())
/// # }
/// ```
pub fn timeline(log: &[BusLogEntry], from: u64, to: u64) -> Timeline {
    assert!(from <= to, "empty timeline range");
    let mut lane: Vec<char> = vec!['.'; (to - from + 1) as usize];
    let mut put = |cycle: u64, ch: char| {
        if cycle < from || cycle > to {
            return;
        }
        let slot = &mut lane[(cycle - from) as usize];
        *slot = if *slot == '.' { ch } else { 'X' };
    };
    for e in log {
        let (addr_ch, data_ch) = if e.foreign {
            ('F', 'F')
        } else {
            match e.kind {
                TxnKind::Write => ('A', 'D'),
                TxnKind::Read => ('a', 'd'),
            }
        };
        // On a multiplexed bus the first occupied cycle is the address; on
        // a split bus the address rides its own path, so every cycle here
        // is data. The log does not carry the bus kind, so we follow the
        // multiplexed convention: first cycle = address when the entry
        // spans more than its data beats is not derivable — mark the first
        // cycle as the address cycle regardless, which is also where the
        // arbitration decision lands on a split bus.
        put(e.addr_cycle, addr_ch);
        for c in e.addr_cycle + 1..=e.completes_at {
            put(c, data_ch);
        }
    }
    Timeline {
        from,
        to,
        lane: lane.into_iter().collect(),
    }
}

/// Occupancy fraction of `[from, to]`: cycles carrying any transaction
/// divided by the window length.
pub fn occupancy(log: &[BusLogEntry], from: u64, to: u64) -> f64 {
    let t = timeline(log, from, to);
    let busy = t.lane.chars().filter(|&c| c != '.').count();
    busy as f64 / t.lane.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use csb_bus::{BusConfig, SystemBus, Transaction};
    use csb_isa::Addr;

    fn log_of(turnaround: u64) -> Vec<BusLogEntry> {
        let cfg = BusConfig::multiplexed(8)
            .turnaround(turnaround)
            .max_burst(64)
            .build()
            .unwrap();
        let mut bus = SystemBus::new(cfg);
        bus.enable_log();
        let mut now = 0;
        for i in 0..3u64 {
            now = bus.earliest_start(now);
            let issued = bus
                .try_issue(now, Transaction::write(Addr::new(i * 8), 8))
                .unwrap()
                .unwrap();
            now = issued.completes_at + 1;
        }
        bus.log().to_vec()
    }

    #[test]
    fn back_to_back_lane() {
        let t = timeline(&log_of(0), 0, 5);
        assert_eq!(t.lane, "ADADAD");
    }

    #[test]
    fn turnaround_leaves_idle_cycles() {
        let t = timeline(&log_of(1), 0, 7);
        assert_eq!(t.lane, "AD.AD.AD");
    }

    #[test]
    fn reads_render_lowercase() {
        let cfg = BusConfig::multiplexed(8).build().unwrap();
        let mut bus = SystemBus::new(cfg);
        bus.enable_log();
        bus.try_issue(0, Transaction::read(Addr::new(0), 8))
            .unwrap()
            .unwrap();
        let t = timeline(bus.log(), 0, 2);
        assert_eq!(t.lane, "ad.");
    }

    #[test]
    fn foreign_traffic_renders_f() {
        let cfg = BusConfig::multiplexed(8)
            .background(0.5, 8)
            .build()
            .unwrap();
        let mut bus = SystemBus::new(cfg);
        bus.enable_log();
        bus.try_issue(0, Transaction::write(Addr::new(0), 8))
            .unwrap()
            .unwrap();
        let t = timeline(bus.log(), 0, 3);
        assert_eq!(t.lane, "ADFF");
    }

    #[test]
    fn occupancy_fraction() {
        let occ = occupancy(&log_of(1), 0, 7);
        assert!((occ - 6.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn ruler_renders() {
        let t = timeline(&log_of(0), 0, 15);
        let s = t.render();
        assert!(s.contains("bus cycle"));
        assert!(s.contains("0"));
        assert!(s.lines().count() == 2);
    }

    #[test]
    fn window_clips() {
        let t = timeline(&log_of(0), 2, 3);
        assert_eq!(t.lane, "AD");
    }

    #[test]
    #[should_panic(expected = "empty timeline")]
    fn bad_range_panics() {
        timeline(&[], 5, 4);
    }
}
