//! The I/O device sink observing every transaction the bus delivers.

use csb_isa::Addr;
use csb_uncached::PayloadBuf;
use serde::{Deserialize, Serialize};

/// One write transaction as delivered to the device.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeliveredWrite {
    /// Start address of the transfer.
    pub addr: Addr,
    /// The full transferred data (padding included). Serializes as the
    /// same JSON byte array the earlier `Vec<u8>` field produced.
    pub data: PayloadBuf,
    /// How many of the bytes were program payload.
    pub payload: usize,
    /// Bus cycle of the transaction's address phase.
    pub bus_cycle: u64,
}

/// A passive I/O device: records every write the bus delivers, in order.
///
/// The paper's microbenchmarks target an abstract device (a network
/// interface's transmit window); what matters architecturally is *which bus
/// transactions arrive, when, and with what data* — which is exactly what
/// this sink captures. Integration tests use it to check exactly-once and
/// atomicity properties; the examples use it as a toy NI.
///
/// The device also answers uncached reads from the simulator's functional
/// memory, so device "registers" can be pre-loaded by tests.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoDevice {
    writes: Vec<DeliveredWrite>,
}

impl IoDevice {
    /// Creates an empty device with room for a typical run's deliveries
    /// pre-reserved, so steady-state recording does not reallocate.
    pub fn new() -> Self {
        IoDevice {
            writes: Vec::with_capacity(256),
        }
    }

    /// Discards all recorded deliveries, keeping the reserved storage (the
    /// simulator's warm-reset path).
    pub(crate) fn clear(&mut self) {
        self.writes.clear();
    }

    /// Records a delivered write.
    pub(crate) fn deliver(&mut self, addr: Addr, data: PayloadBuf, payload: usize, bus_cycle: u64) {
        self.writes.push(DeliveredWrite {
            addr,
            data,
            payload,
            bus_cycle,
        });
    }

    /// Serializes the delivery log.
    pub(crate) fn save_state(&self, w: &mut csb_snap::SnapshotWriter) {
        w.put_tag("dev");
        w.put_usize(self.writes.len());
        for d in &self.writes {
            w.put_u64(d.addr.raw());
            w.put_bytes(&d.data);
            w.put_usize(d.payload);
            w.put_u64(d.bus_cycle);
        }
    }

    /// Restores a log written by [`IoDevice::save_state`].
    pub(crate) fn restore_state(
        &mut self,
        r: &mut csb_snap::SnapshotReader<'_>,
    ) -> Result<(), csb_snap::SnapshotError> {
        r.take_tag("dev")?;
        self.writes.clear();
        let n = r.take_usize()?;
        for _ in 0..n {
            let addr = Addr::new(r.take_u64()?);
            let bytes = r.take_bytes()?;
            if bytes.len() > csb_uncached::MAX_BLOCK {
                return Err(csb_snap::SnapshotError::Corrupt(format!(
                    "device delivery of {} bytes exceeds {}",
                    bytes.len(),
                    csb_uncached::MAX_BLOCK
                )));
            }
            let data = PayloadBuf::from_slice(bytes);
            let payload = r.take_usize()?;
            let bus_cycle = r.take_u64()?;
            self.writes.push(DeliveredWrite {
                addr,
                data,
                payload,
                bus_cycle,
            });
        }
        Ok(())
    }

    /// All deliveries, in bus order.
    pub fn writes(&self) -> &[DeliveredWrite] {
        &self.writes
    }

    /// Number of deliveries.
    pub fn len(&self) -> usize {
        self.writes.len()
    }

    /// Returns `true` if nothing has been delivered.
    pub fn is_empty(&self) -> bool {
        self.writes.is_empty()
    }

    /// Total payload bytes delivered.
    pub fn payload_bytes(&self) -> u64 {
        self.writes.iter().map(|w| w.payload as u64).sum()
    }

    /// Reconstructs the byte at `addr` from the deliveries (last write
    /// wins), or `None` if it was never written.
    pub fn byte_at(&self, addr: Addr) -> Option<u8> {
        let a = addr.raw();
        self.writes.iter().rev().find_map(|w| {
            let start = w.addr.raw();
            let end = start + w.data.len() as u64;
            (a >= start && a < end).then(|| w.data[(a - start) as usize])
        })
    }

    /// Reconstructs `len` bytes starting at `addr` (unwritten bytes read 0).
    pub fn bytes_at(&self, addr: Addr, len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| self.byte_at(addr.offset(i as i64)).unwrap_or(0))
            .collect()
    }

    /// Replays every write landing at or above `window_base` into a
    /// [`csb_nic::Nic`], translating bus addresses to window offsets.
    /// Writes below the base are ignored (they belong to other devices).
    ///
    /// # Examples
    ///
    /// ```
    /// use csb_core::{workloads, SimConfig, Simulator, COMBINING_BASE};
    /// use csb_isa::Addr;
    /// use csb_nic::{Nic, NicConfig};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let cfg = SimConfig::default();
    /// let program = workloads::store_bandwidth(64, &cfg, workloads::StorePath::Csb)?;
    /// let mut sim = Simulator::new(cfg, program)?;
    /// sim.run(1_000_000)?;
    ///
    /// let mut nic = Nic::new(NicConfig::default())?;
    /// sim.device().feed_nic(&mut nic, Addr::new(COMBINING_BASE));
    /// // The bandwidth kernel's fill pattern is not a valid message header.
    /// assert_eq!(nic.stats().invalid_headers, 1);
    /// # Ok(())
    /// # }
    /// ```
    pub fn feed_nic(&self, nic: &mut csb_nic::Nic, window_base: Addr) {
        for w in &self.writes {
            if w.addr.raw() < window_base.raw() {
                continue;
            }
            nic.ingest(&csb_nic::WindowWrite {
                offset: w.addr.raw() - window_base.raw(),
                data: w.data.to_vec(),
                bus_cycle: w.bus_cycle,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_and_reconstructs() {
        let mut d = IoDevice::new();
        d.deliver(
            Addr::new(0x100),
            PayloadBuf::from_slice(&[1, 2, 3, 4]),
            4,
            10,
        );
        d.deliver(Addr::new(0x102), PayloadBuf::from_slice(&[9, 9]), 2, 12);
        assert_eq!(d.len(), 2);
        assert_eq!(d.payload_bytes(), 6);
        assert_eq!(d.byte_at(Addr::new(0x100)), Some(1));
        assert_eq!(d.byte_at(Addr::new(0x102)), Some(9)); // overwritten
        assert_eq!(d.byte_at(Addr::new(0x105)), None);
        assert_eq!(d.bytes_at(Addr::new(0x100), 5), vec![1, 2, 9, 9, 0]);
        assert!(!d.is_empty());
    }
}
