//! Deterministic snapshot/resume for the full machine.
//!
//! A snapshot captures **every** stateful component [`Simulator::reset_with`]
//! enumerates — pipeline, caches, functional memory, uncached buffer, CSB,
//! bus, device log, pending completions, fault-schedule counters, watchdog
//! bookkeeping — in a versioned binary frame, so that a restored simulator
//! continues **byte-identically** to one that never stopped: same
//! [`RunSummary`](crate::RunSummary), same statistics, same device bytes,
//! same fault schedule, under both the naive and fast-forward loops.
//!
//! The frame is `magic | version | cfg fingerprint | program fingerprint |
//! payload | FNV-1a checksum` (see `csb-snap`). The configuration and
//! program are *not* stored — a snapshot is a delta against the `(cfg,
//! program)` pair the caller supplies to [`Simulator::restore`], and the
//! fingerprints reject a mismatched pair up front instead of producing a
//! silently wrong machine.
//!
//! **Version bump rule:** any change to the byte layout written by a
//! `save_state` method anywhere in the workspace — a new field, a
//! reordering, a widened integer — must bump [`SNAPSHOT_FORMAT_VERSION`].
//! Old snapshots (and cached sweep points, which embed the version in
//! their keys) are then rejected/invalidated rather than misread.
//!
//! # Examples
//!
//! ```
//! use csb_core::{SimConfig, Simulator, workloads};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = SimConfig::default();
//! let program = workloads::store_bandwidth(256, &cfg, workloads::StorePath::Csb)?;
//!
//! // Uninterrupted run.
//! let mut whole = Simulator::new(cfg.clone(), program.clone())?;
//! let expected = whole.run(1_000_000)?;
//!
//! // Run to an arbitrary mid-run cycle, snapshot, restore, continue.
//! let mut first = Simulator::new(cfg.clone(), program.clone())?;
//! first.run_to(150)?;
//! let bytes = first.snapshot();
//! let mut resumed = Simulator::restore(cfg, program, &bytes)?;
//! let got = resumed.run(1_000_000)?;
//! assert_eq!(
//!     serde_json::to_string(&got)?,
//!     serde_json::to_string(&expected)?
//! );
//! # Ok(())
//! # }
//! ```

use std::fmt;
use std::path::PathBuf;
use std::sync::Mutex;

use csb_isa::Program;
use csb_snap::{fnv1a, SnapshotError, SnapshotReader, SnapshotWriter};

use crate::config::SimConfig;
use crate::sim::{SimError, Simulator};

/// Leading magic of every simulator snapshot frame.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"CSBSNAP\0";

/// Version of the snapshot byte layout. Bump on **any** layout change in
/// any component's `save_state` (see the module docs); the sweep cache
/// keys on it, so stale cached points self-invalidate.
pub const SNAPSHOT_FORMAT_VERSION: u32 = 3;

/// FNV-1a fingerprint of a machine configuration, as embedded in
/// snapshot frames and sweep-cache keys.
pub fn config_fingerprint(cfg: &SimConfig) -> u64 {
    fnv1a(format!("{cfg:?}").as_bytes())
}

/// FNV-1a fingerprint of a program, as embedded in snapshot frames.
pub fn program_fingerprint(program: &Program) -> u64 {
    fnv1a(format!("{program:?}").as_bytes())
}

/// Why [`Simulator::restore`] refused a snapshot.
#[derive(Debug)]
pub enum RestoreError {
    /// The `(cfg, program)` pair failed machine validation.
    Sim(SimError),
    /// The frame is malformed: bad magic, wrong format version, failed
    /// checksum, or a structurally impossible payload.
    Snapshot(SnapshotError),
    /// The frame was taken under a different machine configuration.
    ConfigMismatch,
    /// The frame was taken under a different program.
    ProgramMismatch,
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreError::Sim(e) => write!(f, "restore rejected: {e}"),
            RestoreError::Snapshot(e) => write!(f, "malformed snapshot: {e}"),
            RestoreError::ConfigMismatch => {
                f.write_str("snapshot was taken under a different machine configuration")
            }
            RestoreError::ProgramMismatch => {
                f.write_str("snapshot was taken under a different program")
            }
        }
    }
}

impl std::error::Error for RestoreError {}

impl From<SimError> for RestoreError {
    fn from(e: SimError) -> Self {
        RestoreError::Sim(e)
    }
}

impl From<SnapshotError> for RestoreError {
    fn from(e: SnapshotError) -> Self {
        RestoreError::Snapshot(e)
    }
}

impl Simulator {
    /// Serializes the complete machine state into a versioned,
    /// checksummed frame. Valid at **any** CPU cycle — mid-flush,
    /// mid-bus-transaction, under an active fault schedule.
    ///
    /// The configuration and program are fingerprinted, not stored;
    /// [`Simulator::restore`] needs the same pair again.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::framed(SNAPSHOT_MAGIC, SNAPSHOT_FORMAT_VERSION);
        w.put_u64(config_fingerprint(self.config()));
        w.put_u64(program_fingerprint(self.cpu().program()));
        self.save_state(&mut w);
        w.finish()
    }

    /// Builds a simulator that continues byte-identically from `bytes`
    /// (a frame produced by [`Simulator::snapshot`] under the same
    /// `(cfg, program)` pair).
    ///
    /// # Errors
    ///
    /// [`RestoreError`] when the pair fails validation, the frame is
    /// malformed (truncated, bad checksum, wrong version), or the
    /// fingerprints reveal a different configuration or program.
    pub fn restore(cfg: SimConfig, program: Program, bytes: &[u8]) -> Result<Self, RestoreError> {
        let mut sim = Simulator::new(cfg, program)?;
        sim.restore_from(bytes)?;
        Ok(sim)
    }

    /// Restores `self` in place from `bytes`, reusing this simulator's
    /// allocations (the warm path for worker threads). The snapshot must
    /// have been taken under this simulator's current configuration and
    /// program.
    ///
    /// # Errors
    ///
    /// As for [`Simulator::restore`]. On error `self` may be partially
    /// restored — warm-reset it before running anything.
    pub fn restore_from(&mut self, bytes: &[u8]) -> Result<(), RestoreError> {
        let mut r = SnapshotReader::framed(bytes, SNAPSHOT_MAGIC, SNAPSHOT_FORMAT_VERSION)?;
        if r.take_u64()? != config_fingerprint(self.config()) {
            return Err(RestoreError::ConfigMismatch);
        }
        if r.take_u64()? != program_fingerprint(self.cpu().program()) {
            return Err(RestoreError::ProgramMismatch);
        }
        self.restore_state(&mut r)?;
        r.expect_end("simulator snapshot")?;
        Ok(())
    }

    /// Advances until the CPU clock reaches `cycle` (or the run
    /// completes first), respecting fast-forward: an idle gap is jumped
    /// but never past `cycle`, so a snapshot taken afterwards is
    /// cycle-exact.
    ///
    /// # Errors
    ///
    /// [`SimError::Livelock`] if the progress watchdog fires first.
    pub fn run_to(&mut self, cycle: u64) -> Result<(), SimError> {
        while !self.complete() && self.cpu().now() < cycle {
            self.advance_checked(cycle)?;
        }
        Ok(())
    }

    /// The [`Simulator::run`] loop with periodic snapshot dumps, used
    /// when an [`AutosnapConfig`] is installed: every `every` CPU cycles
    /// the full machine state is written to
    /// `dir/snap-<cfg fp><program fp>-<cycle>.bin`. Write failures are
    /// swallowed — autosnap is a forensic aid, never a correctness
    /// dependency — and results are byte-identical to a plain run.
    pub(crate) fn run_autosnap(
        &mut self,
        limit: u64,
        auto: &AutosnapConfig,
    ) -> Result<crate::RunSummary, SimError> {
        let cfg_fp = config_fingerprint(self.config());
        let prog_fp = program_fingerprint(self.cpu().program());
        let every = auto.every.max(1);
        while !self.complete() {
            if self.cpu().now() >= limit {
                return Err(SimError::CycleLimit { limit });
            }
            let next = self.cpu().now().saturating_add(every).min(limit);
            while !self.complete() && self.cpu().now() < next {
                self.advance_checked(limit)?;
            }
            if !self.complete() {
                let path = auto.dir.join(format!(
                    "snap-{cfg_fp:016x}{prog_fp:016x}-{:012}.bin",
                    self.cpu().now()
                ));
                let _ = std::fs::write(path, self.snapshot());
            }
        }
        Ok(self.summary())
    }
}

/// Periodic snapshot dumping for every [`Simulator::run`] in the
/// process (see [`set_autosnap`]).
#[derive(Debug, Clone)]
pub struct AutosnapConfig {
    /// CPU cycles between dumps.
    pub every: u64,
    /// Directory the `snap-*.bin` files go to.
    pub dir: PathBuf,
}

static AUTOSNAP: Mutex<Option<AutosnapConfig>> = Mutex::new(None);

/// Installs (or with `None` removes) process-wide periodic snapshotting:
/// every subsequent [`Simulator::run`] dumps a restorable snapshot every
/// `every` CPU cycles into `dir`, named by the machine's configuration
/// and program fingerprints plus the cycle. The bench binaries wire this
/// to `--snapshot-every` so a long or misbehaving point can be resumed
/// and dissected from the nearest dump instead of re-simulated from
/// cycle zero.
pub fn set_autosnap(cfg: Option<AutosnapConfig>) {
    *AUTOSNAP.lock().expect("autosnap registry poisoned") = cfg;
}

/// The installed autosnap configuration, if any.
pub fn autosnap() -> Option<AutosnapConfig> {
    AUTOSNAP.lock().expect("autosnap registry poisoned").clone()
}
