//! PIO vs. DMA: the qualitative evaluation of §5, made quantitative.
//!
//! Short messages are sent with programmed I/O because DMA pays a fixed
//! setup cost (building and posting a descriptor, starting the engine, and
//! fielding the completion); long messages amortize that cost over a
//! line-burst transfer the engine performs autonomously. The paper argues
//! the CSB moves the PIO/DMA break-even point toward *larger* messages —
//! potentially eliminating send-side DMA for fine-grain communication.
//!
//! The PIO side here is fully simulated (the same kernels as Figure 3/5);
//! the DMA engine is an analytic-but-cycle-accurate model built on the same
//! bus timing: the paper had no DMA microbenchmark, so this module models
//! the engine the way its NI references (Atoll, Medusa) describe — setup
//! stores, a start delay, cache-line bursts on the same bus, and a
//! completion overhead.

use serde::{Deserialize, Serialize};

use crate::config::SimConfig;
use crate::experiments::ExpError;
use crate::sim::Simulator;
use crate::workloads::{self, StorePath, MARK_END, MARK_START};

/// DMA engine cost model (CPU cycles unless noted).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DmaModel {
    /// Descriptor doublewords posted to the device to start a transfer
    /// (source address, length, flags, doorbell — 4 is typical).
    pub setup_dwords: usize,
    /// Bus cycles between the doorbell and the engine's first burst.
    pub start_delay_bus_cycles: u64,
    /// CPU cycles of completion handling (interrupt or completion-queue
    /// poll) charged to the message.
    pub completion_overhead: u64,
}

impl Default for DmaModel {
    fn default() -> Self {
        DmaModel {
            setup_dwords: 4,
            start_delay_bus_cycles: 10,
            completion_overhead: 150,
        }
    }
}

/// How the processor performs programmed I/O.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PioMethod {
    /// Lock, uncached stores, membar, unlock (the conventional path).
    Locked,
    /// CSB combining stores + conditional flush per line.
    Csb,
}

/// One message size's send latencies in CPU cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BreakEvenRow {
    /// Message size in bytes.
    pub bytes: usize,
    /// Simulated PIO latency.
    pub pio_cycles: u64,
    /// Modeled DMA latency.
    pub dma_cycles: u64,
}

impl DmaModel {
    /// Latency of a DMA send of `bytes`: simulated descriptor post (via the
    /// given PIO method), start delay, line bursts on the bus, completion
    /// overhead.
    ///
    /// # Errors
    ///
    /// Returns [`ExpError`] if the setup simulation fails.
    pub fn dma_latency(
        &self,
        cfg: &SimConfig,
        method: PioMethod,
        bytes: usize,
    ) -> Result<u64, ExpError> {
        let setup = pio_latency(cfg, method, self.setup_dwords * 8)?;
        let line = cfg.line();
        let lines = bytes.div_ceil(line) as u64;
        let burst = cfg.bus.transaction_cycles(line);
        let turnaround = cfg.bus.turnaround();
        let spacing = burst.max(cfg.bus.min_addr_delay()) + turnaround;
        // Last transaction's trailing turnaround is not part of the message.
        let transfer_bus = if lines == 0 {
            0
        } else {
            spacing * (lines - 1) + burst
        };
        Ok(setup
            + (self.start_delay_bus_cycles + transfer_bus) * cfg.ratio
            + self.completion_overhead)
    }

    /// Sweeps message sizes and returns `(rows, break_even)`: the smallest
    /// swept size at which DMA is at least as fast as PIO (`None` if PIO
    /// wins everywhere swept).
    ///
    /// # Errors
    ///
    /// Propagates the first failing simulation.
    pub fn break_even(
        &self,
        cfg: &SimConfig,
        method: PioMethod,
        sizes: &[usize],
    ) -> Result<(Vec<BreakEvenRow>, Option<usize>), ExpError> {
        let mut rows = Vec::new();
        let mut crossover = None;
        for &bytes in sizes {
            let pio_cycles = pio_latency(cfg, method, bytes)?;
            let dma_cycles = self.dma_latency(cfg, method, bytes)?;
            if crossover.is_none() && dma_cycles <= pio_cycles {
                crossover = Some(bytes);
            }
            rows.push(BreakEvenRow {
                bytes,
                pio_cycles,
                dma_cycles,
            });
        }
        Ok((rows, crossover))
    }
}

/// Simulated latency of a PIO send of `bytes` using the given method,
/// measured between the workload's timing marks.
///
/// # Errors
///
/// Returns [`ExpError`] for invalid sizes or failed simulations.
pub fn pio_latency(cfg: &SimConfig, method: PioMethod, bytes: usize) -> Result<u64, ExpError> {
    let program = match method {
        PioMethod::Locked => workloads::lock_sequence(bytes / 8)?,
        PioMethod::Csb => workloads::store_bandwidth(bytes, cfg, StorePath::Csb)?,
    };
    let mut sim = Simulator::new(cfg.clone(), program)?;
    sim.warm_line(csb_isa::Addr::new(crate::config::LOCK_ADDR));
    let summary = sim.run(100_000_000)?;
    summary
        .cpu
        .mark_interval(MARK_START, MARK_END)
        .ok_or(ExpError::MissingMark)
}

/// Message sizes swept by the break-even analysis (bytes).
pub const MESSAGE_SIZES: [usize; 9] = [16, 32, 64, 128, 256, 512, 1024, 2048, 4096];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pio_csb_beats_pio_locked_for_small_messages() {
        let cfg = SimConfig::default();
        let locked = pio_latency(&cfg, PioMethod::Locked, 64).unwrap();
        let csb = pio_latency(&cfg, PioMethod::Csb, 64).unwrap();
        assert!(csb < locked, "CSB PIO {csb} vs locked PIO {locked}");
    }

    #[test]
    fn dma_latency_grows_with_size() {
        let cfg = SimConfig::default();
        let m = DmaModel::default();
        let small = m.dma_latency(&cfg, PioMethod::Csb, 64).unwrap();
        let large = m.dma_latency(&cfg, PioMethod::Csb, 4096).unwrap();
        assert!(large > small);
    }

    #[test]
    fn csb_moves_break_even_to_larger_messages() {
        // The paper's §5 claim, quantified.
        let cfg = SimConfig::default();
        let m = DmaModel::default();
        let (_, be_locked) = m
            .break_even(&cfg, PioMethod::Locked, &MESSAGE_SIZES)
            .unwrap();
        let (_, be_csb) = m.break_even(&cfg, PioMethod::Csb, &MESSAGE_SIZES).unwrap();
        let locked = be_locked.expect("DMA must eventually beat locked PIO");
        // None means CSB PIO wins across the whole sweep: even stronger.
        if let Some(csb) = be_csb {
            assert!(
                csb > locked,
                "CSB break-even {csb} should exceed locked break-even {locked}"
            );
        }
    }

    #[test]
    fn rows_are_monotone_in_size() {
        let cfg = SimConfig::default();
        let m = DmaModel::default();
        let (rows, _) = m
            .break_even(&cfg, PioMethod::Csb, &[64, 256, 1024])
            .unwrap();
        assert!(rows.windows(2).all(|w| w[0].pio_cycles <= w[1].pio_cycles));
        assert!(rows.windows(2).all(|w| w[0].dma_cycles <= w[1].dma_cycles));
    }
}
