//! Architectural equivalence: the out-of-order pipeline must compute
//! exactly what the sequential reference interpreter computes, on random
//! programs. This pins down register renaming, operand forwarding, memory
//! disambiguation, branch squashing, and in-order uncached issue.

use csb_cpu::{Cpu, CpuConfig, Interpreter, MemPort, SimpleMemPort};
use csb_isa::{Addr, AddressMap, AddressSpace, AluOp, Assembler, MemWidth, Program, Reg};
use proptest::prelude::*;

const SCRATCH: i64 = 0x4000;
const UNCACHED_BASE: u64 = 0x1000_0000;

fn io_map() -> AddressMap {
    let mut map = AddressMap::new();
    map.add_region(Addr::new(UNCACHED_BASE), 0x1000, AddressSpace::Uncached)
        .unwrap();
    map
}

/// One randomly generated operation.
#[derive(Debug, Clone)]
enum Op {
    Alu {
        op: AluOp,
        dst: u8,
        a: u8,
        imm: Option<i64>,
        b: u8,
    },
    Cmp {
        a: u8,
        imm: i64,
    },
    SkipIfEq {
        body: Vec<Op>,
    },
    Loop {
        count: i64,
        body: Vec<Op>,
    },
    CachedStore {
        slot: i64,
        width: MemWidth,
        src: u8,
    },
    CachedLoad {
        slot: i64,
        width: MemWidth,
        dst: u8,
    },
    UncachedStore {
        slot: i64,
        src: u8,
    },
    Swap {
        slot: i64,
        reg: u8,
    },
}

fn alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Sll),
        Just(AluOp::Srl),
    ]
}

fn width() -> impl Strategy<Value = MemWidth> {
    prop_oneof![
        Just(MemWidth::B1),
        Just(MemWidth::B2),
        Just(MemWidth::B4),
        Just(MemWidth::B8)
    ]
}

/// Registers L0..=L7 plus %g0 (index 8 encodes g0).
fn reg(idx: u8) -> Reg {
    if idx >= 8 {
        Reg::G0
    } else {
        Reg::new(16 + idx)
    }
}

/// Destination registers exclude L7, which bounded loops use as their
/// counter — a body write to it could make a loop effectively unbounded.
fn dst_reg() -> impl Strategy<Value = u8> {
    (0..8u8).prop_map(|d| if d == 7 { 8 } else { d })
}

fn simple_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (
            alu_op(),
            dst_reg(),
            0..9u8,
            proptest::option::of(-64i64..64),
            0..9u8
        )
            .prop_map(|(op, dst, a, imm, b)| Op::Alu { op, dst, a, imm, b }),
        (0..9u8, -4i64..8).prop_map(|(a, imm)| Op::Cmp { a, imm }),
        (0..32i64, width(), 0..9u8).prop_map(|(slot, width, src)| Op::CachedStore {
            slot,
            width,
            src
        }),
        (0..32i64, width(), dst_reg()).prop_map(|(slot, width, dst)| Op::CachedLoad {
            slot,
            width,
            dst
        }),
        (0..16i64, 0..9u8).prop_map(|(slot, src)| Op::UncachedStore { slot, src }),
        (0..8i64, dst_reg()).prop_map(|(slot, reg)| Op::Swap { slot, reg }),
    ]
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => simple_op(),
        1 => proptest::collection::vec(simple_op(), 1..4)
            .prop_map(|body| Op::SkipIfEq { body }),
        1 => (1i64..5, proptest::collection::vec(simple_op(), 1..4))
            .prop_map(|(count, body)| Op::Loop { count, body }),
    ]
}

fn emit(a: &mut Assembler, op: &Op) {
    match op {
        Op::Alu {
            op,
            dst,
            a: ra,
            imm,
            b,
        } => match imm {
            Some(i) => {
                a.alui(*op, reg(*dst), reg(*ra), *i);
            }
            None => {
                a.alu(*op, reg(*dst), reg(*ra), reg(*b));
            }
        },
        Op::Cmp { a: ra, imm } => {
            a.cmpi(reg(*ra), *imm);
        }
        Op::SkipIfEq { body } => {
            let skip = a.new_label();
            a.bz(skip);
            for o in body {
                emit(a, o);
            }
            a.bind(skip).expect("fresh label");
        }
        Op::Loop { count, body } => {
            // A dedicated counter register (L7) bounds the loop.
            a.movi(Reg::L7, *count);
            let top = a.new_label();
            a.bind(top).expect("fresh label");
            for o in body {
                emit(a, o);
            }
            a.alui(AluOp::Sub, Reg::L7, Reg::L7, 1);
            a.cmpi(Reg::L7, 0);
            a.bnz(top);
        }
        Op::CachedStore { slot, width, src } => {
            let w = width.bytes() as i64;
            a.st(reg(*src), Reg::O0, slot * w, *width);
        }
        Op::CachedLoad { slot, width, dst } => {
            let w = width.bytes() as i64;
            a.ld(reg(*dst), Reg::O0, slot * w, *width);
        }
        Op::UncachedStore { slot, src } => {
            a.std(reg(*src), Reg::O1, slot * 8);
        }
        Op::Swap { slot, reg: r } => {
            a.swap(reg(*r), Reg::O0, slot * 8);
        }
    }
}

fn build(ops: &[Op], seeds: &[i64]) -> Program {
    let mut a = Assembler::new();
    a.movi(Reg::O0, SCRATCH);
    a.movi(Reg::O1, UNCACHED_BASE as i64);
    for (i, &v) in seeds.iter().enumerate() {
        a.movi(reg(i as u8 % 8), v);
    }
    for op in ops {
        // A loop's body must not contain nested Loop (flat by strategy
        // construction), so L7 usage cannot collide.
        emit(&mut a, op);
    }
    a.halt();
    a.assemble().expect("generated programs assemble")
}

fn compare_state(cpu: &Cpu, interp: &Interpreter, oo: &mut SimpleMemPort, seq: &mut SimpleMemPort) {
    for i in 0..32 {
        let r = Reg::new(i);
        assert_eq!(
            cpu.context().int_reg(r),
            interp.context().int_reg(r),
            "register {r} diverged"
        );
    }
    assert_eq!(
        cpu.context().cc(),
        interp.context().cc(),
        "condition codes diverged"
    );
    for slot in 0..64u64 {
        let addr = Addr::new(SCRATCH as u64 + slot * 8);
        assert_eq!(
            oo.read(addr, 8),
            seq.read(addr, 8),
            "cached memory diverged at {addr}"
        );
    }
    for slot in 0..16u64 {
        let addr = Addr::new(UNCACHED_BASE + slot * 8);
        assert_eq!(
            oo.read(addr, 8),
            seq.read(addr, 8),
            "uncached memory diverged at {addr}"
        );
    }
    assert_eq!(
        oo.uncached_log(),
        seq.uncached_log(),
        "uncached order diverged"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn pipeline_matches_reference(
        ops in proptest::collection::vec(op(), 1..30),
        seeds in proptest::collection::vec(-1000i64..1000, 8),
    ) {
        let program = build(&ops, &seeds);

        let mut cpu = Cpu::new(CpuConfig::default(), program.clone());
        let mut oo_port = SimpleMemPort::with_map(io_map(), 2);
        cpu.run(&mut oo_port, 200_000).expect("pipeline halts");

        let mut interp = Interpreter::new(program);
        let mut seq_port = SimpleMemPort::with_map(io_map(), 2);
        interp.run(&mut seq_port, 200_000).expect("reference halts");

        compare_state(&cpu, &interp, &mut oo_port, &mut seq_port);
    }

    #[test]
    fn pipeline_matches_reference_on_narrow_and_wide_machines(
        ops in proptest::collection::vec(simple_op(), 1..20),
        seeds in proptest::collection::vec(-100i64..100, 8),
        width in prop_oneof![Just(1usize), Just(2), Just(8)],
    ) {
        let program = build(&ops, &seeds);

        let mut cpu = Cpu::new(CpuConfig::superscalar(width), program.clone());
        let mut oo_port = SimpleMemPort::with_map(io_map(), 2);
        cpu.run(&mut oo_port, 200_000).expect("pipeline halts");

        let mut interp = Interpreter::new(program);
        let mut seq_port = SimpleMemPort::with_map(io_map(), 2);
        interp.run(&mut seq_port, 200_000).expect("reference halts");

        compare_state(&cpu, &interp, &mut oo_port, &mut seq_port);
    }
}
