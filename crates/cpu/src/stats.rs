//! Pipeline statistics and timing markers.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// Counters and timing markers accumulated over a run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpuStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Instructions retired (committed).
    pub retired: u64,
    /// Instructions squashed by branch misprediction or context switch.
    pub squashed: u64,
    /// Mispredicted branches.
    pub mispredicts: u64,
    /// Retired loads (cached + uncached).
    pub loads: u64,
    /// Retired stores (cached + uncached + combining).
    pub stores: u64,
    /// Retired uncached operations (loads, stores, swaps, flushes).
    pub uncached_ops: u64,
    /// Retired combining stores (subset of `stores`).
    pub combining_stores: u64,
    /// Conditional flushes that succeeded.
    pub flush_successes: u64,
    /// Conditional flushes that failed (software must retry).
    pub flush_failures: u64,
    /// Cycles the head of the ROB stalled on uncached flow control (buffer
    /// full or CSB busy).
    pub uncached_stall_cycles: u64,
    /// Cycles retirement stalled waiting for a `membar` to drain.
    pub membar_stall_cycles: u64,
    /// Retirement cycles of each `mark` pseudo-instruction, keyed by id,
    /// in retirement order.
    pub marks: HashMap<u32, Vec<u64>>,
}

impl CpuStats {
    /// Retirement cycle of the most recent `mark #id`, if any.
    pub fn last_mark(&self, id: u32) -> Option<u64> {
        self.marks.get(&id).and_then(|v| v.last().copied())
    }

    /// Cycles between the latest `mark #from` and the latest `mark #to`.
    ///
    /// Returns `None` if either marker has not retired or the interval is
    /// negative.
    pub fn mark_interval(&self, from: u32, to: u32) -> Option<u64> {
        let a = self.last_mark(from)?;
        let b = self.last_mark(to)?;
        b.checked_sub(a)
    }

    /// Instructions per cycle over the run (0.0 for an empty run).
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marks_and_intervals() {
        let mut s = CpuStats::default();
        s.marks.entry(0).or_default().push(10);
        s.marks.entry(1).or_default().push(25);
        s.marks.entry(1).or_default().push(40);
        assert_eq!(s.last_mark(0), Some(10));
        assert_eq!(s.last_mark(1), Some(40));
        assert_eq!(s.mark_interval(0, 1), Some(30));
        assert_eq!(s.mark_interval(1, 0), None);
        assert_eq!(s.mark_interval(0, 2), None);
    }

    #[test]
    fn ipc() {
        let s = CpuStats {
            cycles: 100,
            retired: 250,
            ..CpuStats::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        assert_eq!(CpuStats::default().ipc(), 0.0);
    }
}
