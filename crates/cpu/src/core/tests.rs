use std::cell::Cell;

use csb_isa::{Addr, AddressMap, AddressSpace, AluOp, Assembler, FReg, MemWidth, Reg};
use csb_mem::AccessKind;

use super::*;
use crate::port::SimpleMemPort;
use crate::{CpuConfig, Pid};

const UNCACHED_BASE: u64 = 0x1000_0000;
const COMBINING_BASE: u64 = 0x2000_0000;

fn io_map() -> AddressMap {
    let mut map = AddressMap::new();
    map.add_region(Addr::new(UNCACHED_BASE), 0x10000, AddressSpace::Uncached)
        .unwrap();
    map.add_region(
        Addr::new(COMBINING_BASE),
        0x10000,
        AddressSpace::UncachedCombining,
    )
    .unwrap();
    map
}

fn run_program(a: Assembler) -> (Cpu, SimpleMemPort) {
    let program = a.assemble().unwrap();
    let mut cpu = Cpu::new(CpuConfig::default(), program);
    let mut port = SimpleMemPort::with_map(io_map(), 2);
    cpu.run(&mut port, 100_000).unwrap();
    (cpu, port)
}

#[test]
fn trace_sink_records_retires_squashes_and_stall_runs() {
    let mut a = Assembler::new();
    let skip = a.new_label();
    a.movi(Reg::L0, 1);
    a.cmpi(Reg::L0, 1);
    a.bz(skip); // forward taken: mispredict squashes the next inst
    a.movi(Reg::L1, 99);
    a.bind(skip).unwrap();
    a.halt();
    let program = a.assemble().unwrap();
    let mut cpu = Cpu::new(CpuConfig::default(), program);
    let sink = TraceSink::enabled();
    let metrics = MetricsRegistry::enabled();
    cpu.set_trace_sink(sink.clone());
    cpu.set_metrics(metrics.clone());
    let mut port = SimpleMemPort::with_map(io_map(), 2);
    cpu.run(&mut port, 100_000).unwrap();

    let events = sink.snapshot();
    let retires = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Retire { .. }))
        .count() as u64;
    assert_eq!(retires, cpu.stats().retired);
    assert!(events.iter().any(|e| matches!(
        e.kind,
        EventKind::Squash {
            reason: "mispredict",
            ..
        }
    )));
    // Every event sits on the CPU track, stamped within the run.
    assert!(events
        .iter()
        .all(|e| e.track == Track::Cpu && e.cycle < cpu.now()));
    // The retire payload carries the instruction text.
    assert!(events.iter().any(|e| matches!(
        &e.kind,
        EventKind::Retire { inst, .. } if inst == "halt"
    )));
}

#[test]
fn stall_runs_emit_spans_and_histogram_observations() {
    // A refused combining store (uncached stall run) followed by a membar
    // held by a slow-draining port (membar stall run).
    let mut a = Assembler::new();
    a.movi(Reg::O1, COMBINING_BASE as i64);
    a.movi(Reg::L0, 5);
    a.std(Reg::L0, Reg::O1, 0);
    a.membar();
    a.halt();
    let program = a.assemble().unwrap();
    let mut cpu = Cpu::new(CpuConfig::default(), program);
    let sink = TraceSink::enabled();
    let metrics = MetricsRegistry::enabled();
    cpu.set_trace_sink(sink.clone());
    cpu.set_metrics(metrics.clone());
    let mut inner = SimpleMemPort::with_map(io_map(), 2);
    inner.refuse_csb = 3;
    let mut port = DrainPort {
        inner,
        drain_polls: Cell::new(0),
        polls_needed: 20,
    };
    cpu.run(&mut port, 10_000).unwrap();

    assert!(cpu.stats().uncached_stall_cycles >= 3);
    assert!(cpu.stats().membar_stall_cycles > 0);
    let events = sink.snapshot();
    let stall_span_cycles: u64 = events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::UncachedStallRun { cycles } => Some(cycles),
            _ => None,
        })
        .sum();
    assert_eq!(stall_span_cycles, cpu.stats().uncached_stall_cycles);
    let membar_span_cycles: u64 = events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::MembarStallRun { cycles } => Some(cycles),
            _ => None,
        })
        .sum();
    assert_eq!(membar_span_cycles, cpu.stats().membar_stall_cycles);
    let h = metrics.histogram("membar_stall_run").unwrap();
    assert_eq!(h.sum(), cpu.stats().membar_stall_cycles);
    assert_eq!(
        metrics.histogram("rob_uncached_stall_run").unwrap().sum(),
        cpu.stats().uncached_stall_cycles
    );
}

#[test]
fn alu_dataflow_chain() {
    let mut a = Assembler::new();
    a.movi(Reg::L0, 5);
    a.alui(AluOp::Add, Reg::L1, Reg::L0, 10); // 15
    a.alu(AluOp::Add, Reg::L2, Reg::L1, Reg::L1); // 30
    a.alui(AluOp::Sll, Reg::L3, Reg::L2, 1); // 60
    a.alui(AluOp::Xor, Reg::L4, Reg::L3, 0xf); // 51
    a.halt();
    let (cpu, _) = run_program(a);
    assert_eq!(cpu.context().int_reg(Reg::L4), 51);
    assert_eq!(cpu.stats().retired, 6);
}

#[test]
fn countdown_loop_executes_correct_trip_count() {
    let mut a = Assembler::new();
    let top = a.new_label();
    a.movi(Reg::L0, 10);
    a.movi(Reg::L1, 0);
    a.bind(top).unwrap();
    a.addi(Reg::L1, 3);
    a.alui(AluOp::Sub, Reg::L0, Reg::L0, 1);
    a.cmpi(Reg::L0, 0);
    a.bnz(top);
    a.halt();
    let (cpu, _) = run_program(a);
    assert_eq!(cpu.context().int_reg(Reg::L1), 30);
    assert_eq!(cpu.context().int_reg(Reg::L0), 0);
    // Backward branch is predicted taken: exactly one mispredict (the exit).
    assert_eq!(cpu.stats().mispredicts, 1);
}

#[test]
fn forward_branch_taken_mispredicts_once() {
    let mut a = Assembler::new();
    let skip = a.new_label();
    a.movi(Reg::L0, 1);
    a.cmpi(Reg::L0, 1);
    a.bz(skip); // forward, predicted not-taken, actually taken
    a.movi(Reg::L1, 99); // must be squashed
    a.bind(skip).unwrap();
    a.halt();
    let (cpu, _) = run_program(a);
    assert_eq!(cpu.context().int_reg(Reg::L1), 0);
    assert_eq!(cpu.stats().mispredicts, 1);
    assert!(cpu.stats().squashed >= 1);
}

#[test]
fn unconditional_branch_never_mispredicts() {
    let mut a = Assembler::new();
    let out = a.new_label();
    a.ba(out);
    a.movi(Reg::L1, 99);
    a.bind(out).unwrap();
    a.halt();
    let (cpu, _) = run_program(a);
    assert_eq!(cpu.context().int_reg(Reg::L1), 0);
    assert_eq!(cpu.stats().mispredicts, 0);
}

#[test]
fn cached_store_load_forwarding_through_memory() {
    let mut a = Assembler::new();
    a.movi(Reg::O0, 0x4000);
    a.movi(Reg::L0, 1234);
    a.st(Reg::L0, Reg::O0, 0, MemWidth::B8);
    a.ld(Reg::L1, Reg::O0, 0, MemWidth::B8); // must observe the store
    a.alui(AluOp::Add, Reg::L2, Reg::L1, 1);
    a.halt();
    let (cpu, port) = run_program(a);
    assert_eq!(cpu.context().int_reg(Reg::L2), 1235);
    let mut p = port;
    assert_eq!(p.read(Addr::new(0x4000), 8), 1234);
}

#[test]
fn cached_load_reads_preinitialized_memory() {
    let mut a = Assembler::new();
    a.movi(Reg::O0, 0x4000);
    a.ld(Reg::L1, Reg::O0, 8, MemWidth::B4);
    a.halt();
    let program = a.assemble().unwrap();
    let mut cpu = Cpu::new(CpuConfig::default(), program);
    let mut port = SimpleMemPort::with_map(io_map(), 2);
    port.write(Addr::new(0x4008), 4, 0xabcd);
    cpu.run(&mut port, 10_000).unwrap();
    assert_eq!(cpu.context().int_reg(Reg::L1), 0xabcd);
}

#[test]
fn cached_swap_is_atomic_exchange() {
    let mut a = Assembler::new();
    a.movi(Reg::O0, 0x5000);
    a.movi(Reg::L0, 7);
    a.swap(Reg::L0, Reg::O0, 0);
    a.halt();
    let program = a.assemble().unwrap();
    let mut cpu = Cpu::new(CpuConfig::default(), program);
    let mut port = SimpleMemPort::with_map(io_map(), 2);
    port.write(Addr::new(0x5000), 8, 42);
    cpu.run(&mut port, 10_000).unwrap();
    assert_eq!(cpu.context().int_reg(Reg::L0), 42); // old value returned
    assert_eq!(port.read(Addr::new(0x5000), 8), 7); // new value stored
}

#[test]
fn spin_lock_acquire_releases() {
    // swap-based lock: spins while the lock reads 1; memory holds 0 so the
    // first attempt wins.
    let mut a = Assembler::new();
    let retry = a.new_label();
    a.movi(Reg::O0, 0x5000);
    a.bind(retry).unwrap();
    a.movi(Reg::L0, 1);
    a.swap(Reg::L0, Reg::O0, 0);
    a.cmpi(Reg::L0, 0);
    a.bnz(retry);
    a.movi(Reg::L5, 77); // critical section
    a.st(Reg::G0, Reg::O0, 0, MemWidth::B8); // release
    a.halt();
    let (cpu, port) = run_program(a);
    assert_eq!(cpu.context().int_reg(Reg::L5), 77);
    let mut p = port;
    assert_eq!(p.read(Addr::new(0x5000), 8), 0);
}

#[test]
fn uncached_stores_issue_in_program_order() {
    let mut a = Assembler::new();
    a.movi(Reg::O1, UNCACHED_BASE as i64);
    for i in 0..6 {
        a.movi(Reg::L0, 100 + i);
        a.std(Reg::L0, Reg::O1, 8 * i);
    }
    a.halt();
    let (_, port) = run_program(a);
    let log = port.uncached_log();
    assert_eq!(log.len(), 6);
    for (i, (addr, width, val)) in log.iter().enumerate() {
        assert_eq!(addr.raw(), UNCACHED_BASE + 8 * i as u64);
        assert_eq!(*width, 8);
        assert_eq!(*val, 100 + i as u64);
    }
}

#[test]
fn uncached_stores_rate_limited_to_one_per_cycle() {
    let mut a = Assembler::new();
    a.movi(Reg::O1, UNCACHED_BASE as i64);
    a.movi(Reg::L0, 1);
    a.mark(0);
    for i in 0..8 {
        a.std(Reg::L0, Reg::O1, 8 * i);
    }
    a.mark(1);
    a.halt();
    let (cpu, _) = run_program(a);
    let dt = cpu.stats().mark_interval(0, 1).unwrap();
    assert!(dt >= 7, "8 uncached stores need >= 7 cycles, got {dt}");
    assert!(dt <= 12, "should be near 1/cycle, got {dt}");
}

#[test]
fn uncached_load_round_trip() {
    let mut a = Assembler::new();
    a.movi(Reg::O1, UNCACHED_BASE as i64);
    a.ld(Reg::L1, Reg::O1, 0, MemWidth::B8);
    a.halt();
    let program = a.assemble().unwrap();
    let mut cpu = Cpu::new(CpuConfig::default(), program);
    let mut port = SimpleMemPort::with_map(io_map(), 5);
    port.write(Addr::new(UNCACHED_BASE), 8, 0x55aa);
    cpu.run(&mut port, 10_000).unwrap();
    assert_eq!(cpu.context().int_reg(Reg::L1), 0x55aa);
    assert_eq!(cpu.stats().uncached_ops, 1);
}

#[test]
fn uncached_swap_round_trip() {
    let mut a = Assembler::new();
    a.movi(Reg::O1, UNCACHED_BASE as i64);
    a.movi(Reg::L0, 9);
    a.swap(Reg::L0, Reg::O1, 0);
    a.halt();
    let program = a.assemble().unwrap();
    let mut cpu = Cpu::new(CpuConfig::default(), program);
    let mut port = SimpleMemPort::with_map(io_map(), 3);
    port.write(Addr::new(UNCACHED_BASE), 8, 4);
    cpu.run(&mut port, 10_000).unwrap();
    assert_eq!(cpu.context().int_reg(Reg::L0), 4);
    assert_eq!(port.read(Addr::new(UNCACHED_BASE), 8), 9);
}

#[test]
fn csb_sequence_success_sets_register() {
    // The paper's §3.2 kernel: 8 combining stores, conditional flush, check.
    let mut a = Assembler::new();
    let retry = a.new_label();
    a.movi(Reg::O1, COMBINING_BASE as i64);
    a.bind(retry).unwrap();
    a.movi(Reg::L4, 8);
    a.movi(Reg::L0, 0xbeef);
    for i in 0..8 {
        a.std(Reg::L0, Reg::O1, 8 * i);
    }
    a.swap(Reg::L4, Reg::O1, 0);
    a.cmpi(Reg::L4, 8);
    a.bnz(retry);
    a.halt();
    let (cpu, _) = run_program(a);
    assert_eq!(cpu.context().int_reg(Reg::L4), 8);
    assert_eq!(cpu.stats().flush_successes, 1);
    assert_eq!(cpu.stats().flush_failures, 0);
    assert_eq!(cpu.stats().combining_stores, 8);
}

#[test]
fn csb_flush_failure_returns_zero() {
    let mut a = Assembler::new();
    a.movi(Reg::O1, COMBINING_BASE as i64);
    a.movi(Reg::L4, 3); // expect 3, but only store 2
    a.movi(Reg::L0, 1);
    a.std(Reg::L0, Reg::O1, 0);
    a.std(Reg::L0, Reg::O1, 8);
    a.swap(Reg::L4, Reg::O1, 0);
    a.halt();
    let (cpu, _) = run_program(a);
    assert_eq!(cpu.context().int_reg(Reg::L4), 0);
    assert_eq!(cpu.stats().flush_failures, 1);
}

#[test]
fn csb_busy_stall_retries_until_accepted() {
    let mut a = Assembler::new();
    a.movi(Reg::O1, COMBINING_BASE as i64);
    a.movi(Reg::L0, 5);
    a.std(Reg::L0, Reg::O1, 0);
    a.halt();
    let program = a.assemble().unwrap();
    let mut cpu = Cpu::new(CpuConfig::default(), program);
    let mut port = SimpleMemPort::with_map(io_map(), 2);
    port.refuse_csb = 3; // refuse the store three times
    cpu.run(&mut port, 10_000).unwrap();
    assert_eq!(port.uncached_log().len(), 1);
    assert!(cpu.stats().uncached_stall_cycles >= 3);
}

struct DrainPort {
    inner: SimpleMemPort,
    drain_polls: Cell<u64>,
    polls_needed: u64,
}

impl MemPort for DrainPort {
    fn space_of(&self, addr: Addr) -> AddressSpace {
        self.inner.space_of(addr)
    }
    fn cached_access(&mut self, a: Addr, k: AccessKind, n: u64) -> u64 {
        self.inner.cached_access(a, k, n)
    }
    fn read(&mut self, a: Addr, w: usize) -> u64 {
        self.inner.read(a, w)
    }
    fn write(&mut self, a: Addr, w: usize, v: u64) {
        self.inner.write(a, w, v)
    }
    fn swap_value(&mut self, a: Addr, v: u64) -> u64 {
        self.inner.swap_value(a, v)
    }
    fn uncached_store(&mut self, a: Addr, w: usize, v: u64) -> bool {
        self.inner.uncached_store(a, w, v)
    }
    fn uncached_load(&mut self, a: Addr, w: usize, t: u64) -> bool {
        self.inner.uncached_load(a, w, t)
    }
    fn uncached_load_poll(&mut self, t: u64) -> Option<u64> {
        self.inner.uncached_load_poll(t)
    }
    fn uncached_swap(&mut self, a: Addr, w: usize, v: u64, t: u64) -> bool {
        self.inner.uncached_swap(a, w, v, t)
    }
    fn uncached_swap_poll(&mut self, t: u64) -> Option<u64> {
        self.inner.uncached_swap_poll(t)
    }
    fn uncached_drained(&self) -> bool {
        let n = self.drain_polls.get() + 1;
        self.drain_polls.set(n);
        n > self.polls_needed
    }
    fn csb_store(&mut self, p: Pid, a: Addr, w: usize, v: u64) -> bool {
        self.inner.csb_store(p, a, w, v)
    }
    fn csb_can_flush(&self) -> bool {
        self.inner.csb_can_flush()
    }
    fn csb_flush(&mut self, p: Pid, a: Addr, e: u64) -> u64 {
        self.inner.csb_flush(p, a, e)
    }
}

#[test]
fn membar_stalls_retirement_until_drained() {
    let mut a = Assembler::new();
    a.movi(Reg::O1, UNCACHED_BASE as i64);
    a.movi(Reg::L0, 1);
    a.std(Reg::L0, Reg::O1, 0);
    a.mark(0);
    a.membar();
    a.mark(1);
    a.halt();
    let program = a.assemble().unwrap();
    let mut cpu = Cpu::new(CpuConfig::default(), program);
    let mut port = DrainPort {
        inner: SimpleMemPort::with_map(io_map(), 2),
        drain_polls: Cell::new(0),
        polls_needed: 20,
    };
    cpu.run(&mut port, 10_000).unwrap();
    let dt = cpu.stats().mark_interval(0, 1).unwrap();
    assert!(dt >= 20, "membar must wait ~20 drain polls, got {dt}");
    assert!(cpu.stats().membar_stall_cycles >= 20);
}

#[test]
fn fp_path_and_stdf() {
    let mut a = Assembler::new();
    a.movi(Reg::O1, UNCACHED_BASE as i64);
    a.fmovi(FReg::new(0), 1.5f64.to_bits());
    a.fmovi(FReg::new(1), 2.25f64.to_bits());
    a.fpu(
        csb_isa::FpuOp::FAdd,
        FReg::new(2),
        FReg::new(0),
        FReg::new(1),
    );
    a.stdf(FReg::new(2), Reg::O1, 0);
    a.halt();
    let (cpu, port) = run_program(a);
    assert_eq!(f64::from_bits(cpu.context().fp_reg(FReg::new(2))), 3.75);
    assert_eq!(port.uncached_log()[0].2, 3.75f64.to_bits());
}

#[test]
fn independent_ops_exploit_superscalar_width() {
    // 16 independent int ops on a 4-wide machine: far fewer than 16 cycles
    // of pure execution between first and last retire.
    let mut a = Assembler::new();
    a.mark(0);
    for i in 0..16 {
        a.movi(Reg::new((8 + (i % 16)) as u8), i as i64);
    }
    a.mark(1);
    a.halt();
    let (cpu, _) = run_program(a);
    let dt = cpu.stats().mark_interval(0, 1).unwrap();
    assert!(
        dt <= 8,
        "4-wide machine should retire 16 indep ops fast, got {dt}"
    );
}

#[test]
fn narrow_machine_is_slower() {
    let build = || {
        let mut a = Assembler::new();
        a.mark(0);
        for i in 0..32 {
            a.movi(Reg::new((8 + (i % 16)) as u8), i as i64);
        }
        a.mark(1);
        a.halt();
        a.assemble().unwrap()
    };
    let mut wide = Cpu::new(CpuConfig::superscalar(8), build());
    let mut narrow = Cpu::new(CpuConfig::superscalar(1), build());
    let mut p1 = SimpleMemPort::new();
    let mut p2 = SimpleMemPort::new();
    wide.run(&mut p1, 10_000).unwrap();
    narrow.run(&mut p2, 10_000).unwrap();
    let dw = wide.stats().mark_interval(0, 1).unwrap();
    let dn = narrow.stats().mark_interval(0, 1).unwrap();
    assert!(dn > dw, "1-wide ({dn}) must be slower than 8-wide ({dw})");
}

#[test]
fn g0_writes_discarded_in_pipeline() {
    let mut a = Assembler::new();
    a.movi(Reg::G0, 55);
    a.alui(AluOp::Add, Reg::L0, Reg::G0, 1);
    a.halt();
    let (cpu, _) = run_program(a);
    assert_eq!(cpu.context().int_reg(Reg::L0), 1);
}

#[test]
fn cycle_limit_guards_infinite_loops() {
    let mut a = Assembler::new();
    let spin = a.new_label();
    a.bind(spin).unwrap();
    a.ba(spin);
    a.halt();
    let program = a.assemble().unwrap();
    let mut cpu = Cpu::new(CpuConfig::default(), program);
    let mut port = SimpleMemPort::new();
    assert_eq!(
        cpu.run(&mut port, 500),
        Err(RunError::CycleLimit { limit: 500 })
    );
    assert!(!RunError::CycleLimit { limit: 500 }.to_string().is_empty());
}

#[test]
fn context_switch_preserves_both_processes() {
    let build = |n: i64| {
        let mut a = Assembler::new();
        let top = a.new_label();
        a.movi(Reg::L0, n);
        a.movi(Reg::L1, 0);
        a.bind(top).unwrap();
        a.addi(Reg::L1, 1);
        a.alui(AluOp::Sub, Reg::L0, Reg::L0, 1);
        a.cmpi(Reg::L0, 0);
        a.bnz(top);
        a.halt();
        a.assemble().unwrap()
    };
    let prog_a = build(50);
    let prog_b = build(5);

    let mut cpu = Cpu::new(CpuConfig::default(), prog_a.clone());
    let mut port = SimpleMemPort::new();
    // Run A for a while (not to completion).
    for _ in 0..40 {
        cpu.tick(&mut port);
    }
    assert!(!cpu.halted());
    // Switch to B, run it to completion.
    let ctx_a = cpu.switch_context(CpuContext::new(2), Some(prog_b));
    while !cpu.halted() {
        cpu.tick(&mut port);
    }
    assert_eq!(cpu.context().int_reg(Reg::L1), 5);
    // Switch back to A and finish it.
    cpu.switch_context(ctx_a, Some(prog_a));
    while !cpu.halted() {
        cpu.tick(&mut port);
    }
    assert_eq!(cpu.context().int_reg(Reg::L1), 50);
    assert_eq!(cpu.context().pid(), 0);
}

#[test]
fn marks_record_retirement_cycles_in_order() {
    let mut a = Assembler::new();
    a.mark(5);
    a.nop();
    a.mark(5);
    a.halt();
    let (cpu, _) = run_program(a);
    let marks = &cpu.stats().marks[&5];
    assert_eq!(marks.len(), 2);
    assert!(marks[0] <= marks[1]);
}

#[test]
fn ipc_is_bounded_by_width() {
    let mut a = Assembler::new();
    for i in 0..200 {
        a.movi(Reg::new((8 + (i % 16)) as u8), i as i64);
    }
    a.halt();
    let (cpu, _) = run_program(a);
    assert!(cpu.stats().ipc() <= 4.0 + 1e-9);
    assert!(cpu.stats().ipc() > 1.0, "should sustain >1 IPC");
}

#[test]
fn pipeline_empty_reports() {
    let mut a = Assembler::new();
    a.halt();
    let program = a.assemble().unwrap();
    let mut cpu = Cpu::new(CpuConfig::default(), program);
    assert!(cpu.pipeline_empty());
    let mut port = SimpleMemPort::new();
    cpu.run(&mut port, 100).unwrap();
    assert!(cpu.halted());
}

#[test]
fn flags_and_conditions() {
    assert_eq!(flags_of(1, 1), FLAG_EQ);
    assert_eq!(flags_of(u64::MAX, 0), FLAG_LT); // -1 < 0
    assert_eq!(flags_of(5, 3), 0);
    assert!(cond_holds(Cond::Eq, FLAG_EQ));
    assert!(cond_holds(Cond::Ne, 0));
    assert!(cond_holds(Cond::Lt, FLAG_LT));
    assert!(cond_holds(Cond::Ge, FLAG_EQ));
    assert!(cond_holds(Cond::Always, 0));
}

#[test]
fn store_to_load_disambiguation_blocks_stale_reads() {
    // A younger load to the same address must not read memory before the
    // older store commits, even though loads are speculative.
    let mut a = Assembler::new();
    a.movi(Reg::O0, 0x6000);
    a.movi(Reg::L0, 111);
    // A long dependency chain delaying the store's data.
    for _ in 0..6 {
        a.alui(AluOp::Add, Reg::L0, Reg::L0, 1);
    }
    a.st(Reg::L0, Reg::O0, 0, MemWidth::B8);
    a.ld(Reg::L1, Reg::O0, 0, MemWidth::B8);
    a.halt();
    let program = a.assemble().unwrap();
    let mut cpu = Cpu::new(CpuConfig::default(), program);
    let mut port = SimpleMemPort::new();
    port.write(Addr::new(0x6000), 8, 0xdead); // stale value
    cpu.run(&mut port, 10_000).unwrap();
    assert_eq!(cpu.context().int_reg(Reg::L1), 117);
}

#[test]
fn loads_to_different_addresses_proceed_past_stores() {
    let mut a = Assembler::new();
    a.movi(Reg::O0, 0x6000);
    a.movi(Reg::L0, 1);
    a.st(Reg::L0, Reg::O0, 0, MemWidth::B8);
    a.ld(Reg::L1, Reg::O0, 64, MemWidth::B8); // disjoint: may bypass
    a.halt();
    let program = a.assemble().unwrap();
    let mut cpu = Cpu::new(CpuConfig::default(), program);
    let mut port = SimpleMemPort::new();
    port.write(Addr::new(0x6040), 8, 7);
    cpu.run(&mut port, 10_000).unwrap();
    assert_eq!(cpu.context().int_reg(Reg::L1), 7);
}
