//! A reference in-order interpreter for the ISA.
//!
//! [`Interpreter`] executes programs sequentially with no pipeline, no
//! speculation, and no timing — one instruction at a time against the same
//! [`MemPort`] the out-of-order core uses. Its purpose is to be *obviously
//! correct*: the property suite runs random programs through both engines
//! and requires identical architectural results, which pins down the
//! pipeline's renaming, forwarding, disambiguation, and squash logic.
//!
//! # Examples
//!
//! ```
//! use csb_cpu::{Interpreter, SimpleMemPort};
//! use csb_isa::{AluOp, Assembler, Reg};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut a = Assembler::new();
//! a.movi(Reg::L0, 40);
//! a.alui(AluOp::Add, Reg::L0, Reg::L0, 2);
//! a.halt();
//!
//! let mut interp = Interpreter::new(a.assemble()?);
//! let mut port = SimpleMemPort::new();
//! interp.run(&mut port, 1_000)?;
//! assert_eq!(interp.context().int_reg(Reg::L0), 42);
//! # Ok(())
//! # }
//! ```

use csb_isa::{AddressSpace, Cond, Inst, Operand, Program};

use crate::context::CpuContext;
use crate::core::RunError;
use crate::port::MemPort;

const FLAG_EQ: u64 = 1;
const FLAG_LT: u64 = 2;

/// The sequential reference engine. See the module docs.
#[derive(Debug)]
pub struct Interpreter {
    program: Program,
    ctx: CpuContext,
    halted: bool,
    executed: u64,
    next_tag: u64,
}

impl Interpreter {
    /// Creates an interpreter for `program` as process 0.
    pub fn new(program: Program) -> Self {
        Self::with_context(program, CpuContext::new(0))
    }

    /// Creates an interpreter with an explicit initial context.
    pub fn with_context(program: Program, ctx: CpuContext) -> Self {
        Interpreter {
            program,
            ctx,
            halted: false,
            executed: 0,
            next_tag: 1 << 62,
        }
    }

    /// The architectural state.
    pub fn context(&self) -> &CpuContext {
        &self.ctx
    }

    /// `true` once `halt` executed.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Instructions executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Runs until `halt` or `max_steps` instructions.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::CycleLimit`] if the program does not halt within
    /// the step budget (the interpreter's "cycles" are instructions).
    ///
    /// # Panics
    ///
    /// Panics if the program counter runs off the end of the program (the
    /// assembler's mandatory `halt` prevents this for generated programs).
    pub fn run<P: MemPort>(&mut self, port: &mut P, max_steps: u64) -> Result<u64, RunError> {
        while !self.halted {
            if self.executed >= max_steps {
                return Err(RunError::CycleLimit { limit: max_steps });
            }
            self.step(port);
        }
        Ok(self.executed)
    }

    /// Executes one instruction.
    ///
    /// # Panics
    ///
    /// Panics on a pc past the end of the program.
    pub fn step<P: MemPort>(&mut self, port: &mut P) {
        let pc = self.ctx.pc();
        let inst = self
            .program
            .fetch(pc)
            .unwrap_or_else(|| panic!("pc {pc} past end of program"));
        self.executed += 1;
        let mut next = pc + 1;
        match inst {
            Inst::Alu { op, dst, a, b } => {
                let bv = self.operand(b);
                let av = self.ctx.int_reg(a);
                self.ctx.set_int_reg(dst, op.apply(av, bv));
            }
            Inst::Movi { dst, imm } => self.ctx.set_int_reg(dst, imm as u64),
            Inst::Fpu { op, dst, a, b } => {
                let r = op.apply(self.ctx.fp_reg(a), self.ctx.fp_reg(b));
                self.ctx.set_fp_reg(dst, r);
            }
            Inst::FMovi { dst, bits } => self.ctx.set_fp_reg(dst, bits),
            Inst::Cmp { a, b } => {
                let (av, bv) = (self.ctx.int_reg(a), self.operand(b));
                let mut f = 0;
                if av == bv {
                    f |= FLAG_EQ;
                }
                if (av as i64) < (bv as i64) {
                    f |= FLAG_LT;
                }
                self.ctx.set_cc(f);
            }
            Inst::Branch { cond, .. } => {
                let taken = match cond {
                    Cond::Eq => self.ctx.cc() & FLAG_EQ != 0,
                    Cond::Ne => self.ctx.cc() & FLAG_EQ == 0,
                    Cond::Lt => self.ctx.cc() & FLAG_LT != 0,
                    Cond::Ge => self.ctx.cc() & FLAG_LT == 0,
                    Cond::Always => true,
                };
                if taken {
                    next = self.program.branch_target(&inst);
                }
            }
            Inst::Load {
                dst,
                base,
                offset,
                width,
            } => {
                let addr = csb_isa::Addr::new(self.ctx.int_reg(base)).offset(offset);
                let v = match port.space_of(addr) {
                    AddressSpace::Cached => port.read(addr, width.bytes()),
                    _ => {
                        let tag = self.fresh_tag();
                        assert!(port.uncached_load(addr, width.bytes(), tag));
                        self.spin_poll(|p| p.uncached_load_poll(tag), port)
                    }
                };
                self.ctx.set_int_reg(dst, v);
            }
            Inst::Store {
                src,
                base,
                offset,
                width,
            } => {
                let addr = csb_isa::Addr::new(self.ctx.int_reg(base)).offset(offset);
                let v = self.ctx.int_reg(src);
                self.store(port, addr, width.bytes(), v);
            }
            Inst::StoreF { src, base, offset } => {
                let addr = csb_isa::Addr::new(self.ctx.int_reg(base)).offset(offset);
                let v = self.ctx.fp_reg(src);
                self.store(port, addr, 8, v);
            }
            Inst::Swap { reg, base, offset } => {
                let addr = csb_isa::Addr::new(self.ctx.int_reg(base)).offset(offset);
                let v = self.ctx.int_reg(reg);
                let old = match port.space_of(addr) {
                    AddressSpace::Cached => port.swap_value(addr, v),
                    AddressSpace::UncachedCombining => {
                        // The conditional flush.
                        while !port.csb_can_flush() {}
                        port.csb_flush(self.ctx.pid(), addr, v)
                    }
                    AddressSpace::Uncached => {
                        let tag = self.fresh_tag();
                        assert!(port.uncached_swap(addr, 8, v, tag));
                        self.spin_poll(|p| p.uncached_swap_poll(tag), port)
                    }
                };
                self.ctx.set_int_reg(reg, old);
            }
            Inst::Membar => {
                // Sequential execution drains implicitly; nothing to wait on
                // for ports with synchronous completion.
            }
            Inst::Nop | Inst::Mark { .. } => {}
            Inst::Halt => self.halted = true,
        }
        self.ctx.set_pc(next);
    }

    fn operand(&self, b: Operand) -> u64 {
        match b {
            Operand::Reg(r) => self.ctx.int_reg(r),
            Operand::Imm(i) => i as u64,
        }
    }

    fn fresh_tag(&mut self) -> u64 {
        let t = self.next_tag;
        self.next_tag += 1;
        t
    }

    fn store<P: MemPort>(&mut self, port: &mut P, addr: csb_isa::Addr, width: usize, v: u64) {
        match port.space_of(addr) {
            AddressSpace::Cached => port.write(addr, width, v),
            AddressSpace::Uncached => while !port.uncached_store(addr, width, v) {},
            AddressSpace::UncachedCombining => {
                while !port.csb_store(self.ctx.pid(), addr, width, v) {}
            }
        }
    }

    fn spin_poll<P: MemPort>(
        &mut self,
        mut poll: impl FnMut(&mut P) -> Option<u64>,
        port: &mut P,
    ) -> u64 {
        loop {
            if let Some(v) = poll(port) {
                return v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::port::SimpleMemPort;
    use csb_isa::{Addr, AluOp, Assembler, MemWidth, Reg};

    fn run(f: impl FnOnce(&mut Assembler)) -> (Interpreter, SimpleMemPort) {
        let mut a = Assembler::new();
        f(&mut a);
        let mut interp = Interpreter::new(a.assemble().unwrap());
        let mut port = SimpleMemPort::new();
        interp.run(&mut port, 100_000).unwrap();
        (interp, port)
    }

    #[test]
    fn alu_and_branches() {
        let (i, _) = run(|a| {
            let top = a.new_label();
            a.movi(Reg::L0, 5);
            a.movi(Reg::L1, 0);
            a.bind(top).unwrap();
            a.addi(Reg::L1, 7);
            a.alui(AluOp::Sub, Reg::L0, Reg::L0, 1);
            a.cmpi(Reg::L0, 0);
            a.bnz(top);
            a.halt();
        });
        assert_eq!(i.context().int_reg(Reg::L1), 35);
        assert!(i.halted());
        assert!(i.executed() > 20);
    }

    #[test]
    fn memory_and_swap() {
        let (i, mut port) = run(|a| {
            a.movi(Reg::O0, 0x4000);
            a.movi(Reg::L0, 99);
            a.st(Reg::L0, Reg::O0, 0, MemWidth::B8);
            a.ld(Reg::L1, Reg::O0, 0, MemWidth::B8);
            a.movi(Reg::L2, 7);
            a.swap(Reg::L2, Reg::O0, 0);
            a.halt();
        });
        assert_eq!(i.context().int_reg(Reg::L1), 99);
        assert_eq!(i.context().int_reg(Reg::L2), 99);
        assert_eq!(port.read(Addr::new(0x4000), 8), 7);
    }

    #[test]
    fn step_budget_enforced() {
        let mut a = Assembler::new();
        let spin = a.new_label();
        a.bind(spin).unwrap();
        a.ba(spin);
        a.halt();
        let mut interp = Interpreter::new(a.assemble().unwrap());
        let mut port = SimpleMemPort::new();
        assert_eq!(
            interp.run(&mut port, 100),
            Err(RunError::CycleLimit { limit: 100 })
        );
    }
}
