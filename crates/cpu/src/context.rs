//! Architectural (commit-level) processor context.

use csb_isa::{FReg, Reg};
use serde::{Deserialize, Serialize};

use crate::Pid;

/// The architectural state of one process: program counter, register files,
/// condition codes, and the supervisor-held process ID visible to the CSB.
///
/// Context switching in the multi-process experiments saves and restores
/// this structure; everything else in the pipeline is squashed, which is
/// precisely what makes a competing process's first combining store able to
/// disturb an interrupted CSB sequence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpuContext {
    pc: usize,
    int: [u64; 32],
    fp: [u64; 32],
    cc: u64,
    pid: Pid,
}

impl CpuContext {
    /// A fresh context for process `pid` starting at instruction 0.
    pub fn new(pid: Pid) -> Self {
        CpuContext {
            pc: 0,
            int: [0; 32],
            fp: [0; 32],
            cc: 0,
            pid,
        }
    }

    /// The committed program counter (instruction index).
    pub fn pc(&self) -> usize {
        self.pc
    }

    /// Sets the committed program counter.
    pub fn set_pc(&mut self, pc: usize) {
        self.pc = pc;
    }

    /// The process ID.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Reads an integer register (`%g0` reads zero).
    pub fn int_reg(&self, r: Reg) -> u64 {
        if r.is_zero() {
            0
        } else {
            self.int[r.index()]
        }
    }

    /// Writes an integer register (writes to `%g0` are discarded).
    pub fn set_int_reg(&mut self, r: Reg, v: u64) {
        if !r.is_zero() {
            self.int[r.index()] = v;
        }
    }

    /// Reads a floating-point register (raw bits).
    pub fn fp_reg(&self, r: FReg) -> u64 {
        self.fp[r.index()]
    }

    /// Writes a floating-point register (raw bits).
    pub fn set_fp_reg(&mut self, r: FReg, v: u64) {
        self.fp[r.index()] = v;
    }

    /// The committed condition-code flags (bit 0 = equal, bit 1 = signed
    /// less-than, as produced by `cmp`).
    pub fn cc(&self) -> u64 {
        self.cc
    }

    /// Sets the condition-code flags.
    pub fn set_cc(&mut self, flags: u64) {
        self.cc = flags;
    }

    /// Serializes the full architectural state.
    pub fn save_state(&self, w: &mut csb_snap::SnapshotWriter) {
        w.put_tag("ctx");
        w.put_usize(self.pc);
        for v in &self.int {
            w.put_u64(*v);
        }
        for v in &self.fp {
            w.put_u64(*v);
        }
        w.put_u64(self.cc);
        w.put_u32(self.pid);
    }

    /// Restores state written by [`CpuContext::save_state`].
    ///
    /// # Errors
    ///
    /// [`csb_snap::SnapshotError`] on a malformed stream.
    pub fn restore_state(
        &mut self,
        r: &mut csb_snap::SnapshotReader<'_>,
    ) -> Result<(), csb_snap::SnapshotError> {
        r.take_tag("ctx")?;
        self.pc = r.take_usize()?;
        for v in &mut self.int {
            *v = r.take_u64()?;
        }
        for v in &mut self.fp {
            *v = r.take_u64()?;
        }
        self.cc = r.take_u64()?;
        self.pid = r.take_u32()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn g0_is_hardwired() {
        let mut c = CpuContext::new(1);
        c.set_int_reg(Reg::G0, 42);
        assert_eq!(c.int_reg(Reg::G0), 0);
        c.set_int_reg(Reg::L3, 42);
        assert_eq!(c.int_reg(Reg::L3), 42);
    }

    #[test]
    fn fp_and_cc_round_trip() {
        let mut c = CpuContext::new(7);
        c.set_fp_reg(FReg::new(5), 3.5f64.to_bits());
        assert_eq!(f64::from_bits(c.fp_reg(FReg::new(5))), 3.5);
        c.set_cc(0b10);
        assert_eq!(c.cc(), 0b10);
        assert_eq!(c.pid(), 7);
        c.set_pc(12);
        assert_eq!(c.pc(), 12);
    }
}
