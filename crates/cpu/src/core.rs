//! The out-of-order pipeline: fetch, dispatch, issue, execute, retire.
//!
//! Stage processing runs in reverse order each cycle (writeback, retire,
//! issue, dispatch, fetch) so an instruction advances at most one stage per
//! cycle. Register renaming is implicit through the reorder buffer: each
//! architectural register maps to the sequence number of its youngest
//! in-flight writer, and consumers capture either a committed value or that
//! producer reference at dispatch.
//!
//! Non-speculative semantics for uncached operations (§4.1 of the paper) are
//! enforced in the retire stage: an uncached load, store, combining store,
//! or `swap` only touches the [`MemPort`] once it is the oldest instruction
//! in the machine, in program order, at most `uncached_per_cycle` per cycle,
//! and is never replayed — a failed flow-control offer stalls retirement and
//! is retried the next cycle, which is exactly the back-pressure that lets
//! the uncached buffer combine stores while the bus is busy.

use std::collections::VecDeque;
use std::fmt;
use std::ops::{Index, IndexMut};

use csb_isa::{Addr, AddressSpace, Cond, Inst, InstKind, Operand, Program, RegRef};
use csb_mem::AccessKind;
use csb_obs::{EventKind, MetricsRegistry, TimelineEvent, TraceSink, Track};

use crate::config::CpuConfig;
use crate::context::CpuContext;
use crate::port::MemPort;
use crate::stats::CpuStats;
use crate::trace::InstTrace;

/// Condition-code flag: operands compared equal.
const FLAG_EQ: u64 = 1;
/// Condition-code flag: first operand signed-less-than the second.
const FLAG_LT: u64 = 2;

fn flags_of(a: u64, b: u64) -> u64 {
    let mut f = 0;
    if a == b {
        f |= FLAG_EQ;
    }
    if (a as i64) < (b as i64) {
        f |= FLAG_LT;
    }
    f
}

fn cond_holds(cond: Cond, flags: u64) -> bool {
    match cond {
        Cond::Eq => flags & FLAG_EQ != 0,
        Cond::Ne => flags & FLAG_EQ == 0,
        Cond::Lt => flags & FLAG_LT != 0,
        Cond::Ge => flags & FLAG_LT == 0,
        Cond::Always => true,
    }
}

/// Error returned by [`Cpu::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunError {
    /// The cycle limit elapsed before the program halted (livelock guard).
    CycleLimit {
        /// The limit that was hit.
        limit: u64,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::CycleLimit { limit } => {
                write!(f, "program did not halt within {limit} cycles")
            }
        }
    }
}

impl std::error::Error for RunError {}

/// Why the pipeline is blocked at an idle horizon (see
/// [`Cpu::next_event`]). Distinguishing the cause lets the fast-forward
/// path bulk-update the matching stall counter for the skipped cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallCause {
    /// Head uncached store refused: the uncached buffer is full.
    UncachedStoreFull,
    /// Head uncached load or swap refused: the uncached buffer is full.
    UncachedLoadFull,
    /// Head combining store refused: the CSB is busy.
    CsbStoreBusy,
    /// Head conditional flush blocked: the CSB cannot accept a flush.
    CsbFlushWait,
    /// Head `membar` blocked: the uncached buffer has not drained.
    Membar,
}

/// The core's activity horizon, computed by [`Cpu::next_event`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuHorizon {
    /// The next [`Cpu::tick`] can change pipeline state; do not skip it.
    Active,
    /// No pipeline state can change before external input arrives.
    Idle {
        /// Earliest future cycle at which an in-flight operation
        /// completes on its own (`None`: only external events — bus
        /// deliveries, buffer drains — can wake the core).
        wake: Option<u64>,
        /// The stall counter every skipped cycle would have incremented
        /// (`None`: the idle cycles are not accounted as stalls).
        stall: Option<StallCause>,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Src {
    Ready(u64),
    Wait(u64), // producer sequence number
}

#[derive(Debug, Clone, Copy)]
struct OperandSlot {
    reg: RegRef,
    src: Src,
}

/// Inline operand list: an instruction reads at most three registers, so
/// the slots live directly in the ROB entry instead of a per-dispatch
/// `Vec` allocation.
#[derive(Debug, Clone, Copy)]
struct Ops {
    slots: [OperandSlot; 3],
    len: u8,
}

impl Ops {
    const NONE: OperandSlot = OperandSlot {
        reg: RegRef::Cc,
        src: Src::Ready(0),
    };
    const EMPTY: Ops = Ops {
        slots: [Self::NONE; 3],
        len: 0,
    };

    #[inline]
    fn push(&mut self, slot: OperandSlot) {
        self.slots[self.len as usize] = slot;
        self.len += 1;
    }

    #[inline]
    fn iter(&self) -> std::slice::Iter<'_, OperandSlot> {
        self.slots[..self.len as usize].iter()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum St {
    /// Waiting for operands / a functional unit.
    Waiting,
    /// Address generation in flight.
    Agen { done_at: u64 },
    /// Effective address known; memory action not yet started.
    AddrReady,
    /// Cached access (load or atomic) in flight.
    MemAccess { done_at: u64 },
    /// Uncached split transaction in flight; poll the port.
    UncachedWait,
    /// Functional-unit execution in flight.
    Exec { done_at: u64 },
    /// Result available; eligible for in-order retirement.
    Done,
}

#[derive(Debug, Clone, Copy)]
struct RobEntry {
    seq: u64,
    pc: usize,
    inst: Inst,
    st: St,
    ops: Ops,
    /// Result value: ALU result, condition flags, load value, swap result,
    /// or (for branches) the resolved next pc.
    value: u64,
    addr: Option<Addr>,
    space: Option<AddressSpace>,
    predicted_next: usize,
    /// Head-triggered memory action already started (never replay).
    mem_started: bool,
    /// Stage timestamps for the optional pipeline trace.
    t_fetch: u64,
    t_dispatch: u64,
    t_issue: Option<u64>,
    t_complete: Option<u64>,
}

impl RobEntry {
    /// Placeholder filling unused ring slots; never observed by the
    /// pipeline (the ring's length bounds every access).
    const EMPTY: RobEntry = RobEntry {
        seq: 0,
        pc: 0,
        inst: Inst::Nop,
        st: St::Done,
        ops: Ops::EMPTY,
        value: 0,
        addr: None,
        space: None,
        predicted_next: 0,
        mem_started: false,
        t_fetch: 0,
        t_dispatch: 0,
        t_issue: None,
        t_complete: None,
    };

    #[inline]
    fn op_val(&self, i: usize) -> u64 {
        match self.ops.slots[i].src {
            Src::Ready(v) => v,
            Src::Wait(_) => panic!("operand {i} of {} not ready", self.inst),
        }
    }
}

/// The reorder buffer as a fixed-capacity ring indexed by position from
/// the head, upholding the invariant `rob[i].seq == front_seq + i`. Every
/// slot is allocated once at construction; push/pop/truncate only move
/// indices, so the steady-state pipeline neither touches the heap nor
/// clones an entry.
#[derive(Debug)]
struct Rob {
    slots: Box<[RobEntry]>,
    head: usize,
    len: usize,
}

impl Rob {
    fn with_capacity(cap: usize) -> Self {
        Rob {
            slots: vec![RobEntry::EMPTY; cap.max(1)].into_boxed_slice(),
            head: 0,
            len: 0,
        }
    }

    #[inline]
    fn wrap(&self, i: usize) -> usize {
        let p = self.head + i;
        if p >= self.slots.len() {
            p - self.slots.len()
        } else {
            p
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.len
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn front(&self) -> Option<&RobEntry> {
        (self.len > 0).then(|| &self.slots[self.head])
    }

    #[inline]
    fn push_back(&mut self, e: RobEntry) {
        debug_assert!(self.len < self.slots.len(), "ROB ring overflow");
        let p = self.wrap(self.len);
        self.slots[p] = e;
        self.len += 1;
    }

    /// Pops the head entry by value (a plain `Copy`, not a heap clone).
    #[inline]
    fn pop_front(&mut self) -> RobEntry {
        debug_assert!(self.len > 0, "pop on empty ROB");
        let e = self.slots[self.head];
        self.head = self.wrap(1);
        self.len -= 1;
        e
    }

    /// Drops every entry at position `n` and beyond (squash).
    #[inline]
    fn truncate(&mut self, n: usize) {
        if n < self.len {
            self.len = n;
        }
    }

    #[inline]
    fn clear(&mut self) {
        self.len = 0;
    }

    #[inline]
    fn iter(&self) -> impl Iterator<Item = &RobEntry> {
        (0..self.len).map(move |i| &self.slots[self.wrap(i)])
    }
}

impl Index<usize> for Rob {
    type Output = RobEntry;

    #[inline]
    fn index(&self, i: usize) -> &RobEntry {
        debug_assert!(i < self.len, "ROB index {i} out of {}", self.len);
        &self.slots[self.wrap(i)]
    }
}

impl IndexMut<usize> for Rob {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut RobEntry {
        debug_assert!(i < self.len, "ROB index {i} out of {}", self.len);
        let p = self.wrap(i);
        &mut self.slots[p]
    }
}

/// Register rename map as a dense array (32 int + 32 fp + condition
/// codes): each slot holds the sequence number of the youngest in-flight
/// writer. Replaces the former `HashMap<RegRef, u64>` so dispatch, commit,
/// and squash never hash or allocate.
#[derive(Debug)]
struct RenameTable {
    slots: [Option<u64>; RENAME_SLOTS],
}

const RENAME_SLOTS: usize = csb_isa::reg::NUM_INT_REGS + csb_isa::reg::NUM_FP_REGS + 1;

#[inline]
fn rename_slot(r: RegRef) -> usize {
    match r {
        RegRef::Int(reg) => reg.index(),
        RegRef::Fp(f) => csb_isa::reg::NUM_INT_REGS + f.index(),
        RegRef::Cc => RENAME_SLOTS - 1,
    }
}

impl RenameTable {
    fn new() -> Self {
        RenameTable {
            slots: [None; RENAME_SLOTS],
        }
    }

    #[inline]
    fn get(&self, r: RegRef) -> Option<u64> {
        self.slots[rename_slot(r)]
    }

    #[inline]
    fn insert(&mut self, r: RegRef, seq: u64) {
        self.slots[rename_slot(r)] = Some(seq);
    }

    /// Clears the mapping only if it still names `seq` (commit of the
    /// youngest writer).
    #[inline]
    fn remove_if(&mut self, r: RegRef, seq: u64) {
        let s = &mut self.slots[rename_slot(r)];
        if *s == Some(seq) {
            *s = None;
        }
    }

    #[inline]
    fn clear(&mut self) {
        self.slots = [None; RENAME_SLOTS];
    }
}

#[derive(Debug, Clone, Copy)]
struct Fetched {
    pc: usize,
    inst: Inst,
    predicted_next: usize,
    t_fetch: u64,
}

fn save_st(w: &mut csb_snap::SnapshotWriter, st: St) {
    match st {
        St::Waiting => w.put_u8(0),
        St::Agen { done_at } => {
            w.put_u8(1);
            w.put_u64(done_at);
        }
        St::AddrReady => w.put_u8(2),
        St::MemAccess { done_at } => {
            w.put_u8(3);
            w.put_u64(done_at);
        }
        St::UncachedWait => w.put_u8(4),
        St::Exec { done_at } => {
            w.put_u8(5);
            w.put_u64(done_at);
        }
        St::Done => w.put_u8(6),
    }
}

fn take_st(r: &mut csb_snap::SnapshotReader<'_>) -> Result<St, csb_snap::SnapshotError> {
    Ok(match r.take_u8()? {
        0 => St::Waiting,
        1 => St::Agen {
            done_at: r.take_u64()?,
        },
        2 => St::AddrReady,
        3 => St::MemAccess {
            done_at: r.take_u64()?,
        },
        4 => St::UncachedWait,
        5 => St::Exec {
            done_at: r.take_u64()?,
        },
        6 => St::Done,
        k => {
            return Err(csb_snap::SnapshotError::Corrupt(format!(
                "unknown ROB entry state {k}"
            )))
        }
    })
}

fn save_reg_ref(w: &mut csb_snap::SnapshotWriter, reg: RegRef) {
    match reg {
        RegRef::Int(r) => {
            w.put_u8(0);
            w.put_u8(r.index() as u8);
        }
        RegRef::Fp(f) => {
            w.put_u8(1);
            w.put_u8(f.index() as u8);
        }
        RegRef::Cc => {
            w.put_u8(2);
            w.put_u8(0);
        }
    }
}

fn take_reg_ref(r: &mut csb_snap::SnapshotReader<'_>) -> Result<RegRef, csb_snap::SnapshotError> {
    let kind = r.take_u8()?;
    let idx = r.take_u8()?;
    let bad = |what: &str| {
        csb_snap::SnapshotError::Corrupt(format!("register index {idx} out of range for {what}"))
    };
    Ok(match kind {
        0 => {
            if (idx as usize) >= csb_isa::reg::NUM_INT_REGS {
                return Err(bad("int"));
            }
            RegRef::Int(csb_isa::Reg::new(idx))
        }
        1 => {
            if (idx as usize) >= csb_isa::reg::NUM_FP_REGS {
                return Err(bad("fp"));
            }
            RegRef::Fp(csb_isa::FReg::new(idx))
        }
        2 => RegRef::Cc,
        k => {
            return Err(csb_snap::SnapshotError::Corrupt(format!(
                "unknown register kind {k}"
            )))
        }
    })
}

fn mem_width(inst: &Inst) -> usize {
    match inst {
        Inst::Load { width, .. } | Inst::Store { width, .. } => width.bytes(),
        Inst::StoreF { .. } | Inst::Swap { .. } => 8,
        other => panic!("mem_width on non-memory {other}"),
    }
}

/// The out-of-order core.
///
/// See the crate-level docs for the machine model and an end-to-end
/// example. Drive it either cycle by cycle with [`Cpu::tick`] (the
/// simulator facade does this, interleaving bus ticks) or to completion
/// with [`Cpu::run`].
#[derive(Debug)]
pub struct Cpu {
    cfg: CpuConfig,
    program: Program,
    ctx: CpuContext,
    fetch_pc: usize,
    fetch_stopped: bool,
    fetch_q: VecDeque<Fetched>,
    rob: Rob,
    front_seq: u64,
    next_seq: u64,
    rename: RenameTable,
    halted: bool,
    now: u64,
    stats: CpuStats,
    trace: Option<Vec<InstTrace>>,
    /// Structured trace sink (disabled by default; see
    /// [`Cpu::set_trace_sink`]).
    obs: TraceSink,
    /// Metrics registry for stall-run histograms (disabled by default).
    metrics: MetricsRegistry,
    /// First cycle of the uncached-stall run currently in progress.
    uncached_stall_start: Option<u64>,
    /// First cycle of the membar-stall run currently in progress.
    membar_stall_start: Option<u64>,
    /// `true` if the most recent tick moved any instruction through the
    /// pipeline (see [`Cpu::last_tick_worked`]).
    worked: bool,
}

impl Cpu {
    /// Creates a core about to execute `program` as process 0.
    pub fn new(cfg: CpuConfig, program: Program) -> Self {
        Self::with_context(cfg, program, CpuContext::new(0))
    }

    /// Creates a core with an explicit initial context (PID, registers, pc).
    pub fn with_context(cfg: CpuConfig, program: Program, ctx: CpuContext) -> Self {
        let fetch_pc = ctx.pc();
        let fetch_q = VecDeque::with_capacity(cfg.fetch_queue.max(1));
        let rob = Rob::with_capacity(cfg.rob_size);
        Cpu {
            cfg,
            program,
            ctx,
            fetch_pc,
            fetch_stopped: false,
            fetch_q,
            rob,
            front_seq: 0,
            next_seq: 0,
            rename: RenameTable::new(),
            halted: false,
            now: 0,
            stats: CpuStats::default(),
            trace: None,
            obs: TraceSink::disabled(),
            metrics: MetricsRegistry::disabled(),
            uncached_stall_start: None,
            membar_stall_start: None,
            worked: false,
        }
    }

    /// Warm-resets the core in place to the state [`Cpu::with_context`]
    /// would construct, reusing the ROB ring and fetch-queue storage when
    /// the new configuration permits. Behaviorally indistinguishable from
    /// a fresh core; observability sinks revert to disabled.
    pub fn reset_with(&mut self, cfg: CpuConfig, program: Program, ctx: CpuContext) {
        if cfg.rob_size != self.cfg.rob_size {
            self.rob = Rob::with_capacity(cfg.rob_size);
        } else {
            self.rob.clear();
            self.rob.head = 0;
        }
        self.fetch_q.clear();
        self.fetch_q.reserve(cfg.fetch_queue.max(1));
        self.cfg = cfg;
        self.program = program;
        self.ctx = ctx;
        self.fetch_pc = self.ctx.pc();
        self.fetch_stopped = false;
        self.front_seq = 0;
        self.next_seq = 0;
        self.rename.clear();
        self.halted = false;
        self.now = 0;
        self.stats = CpuStats::default();
        self.trace = None;
        self.obs = TraceSink::disabled();
        self.metrics = MetricsRegistry::disabled();
        self.uncached_stall_start = None;
        self.membar_stall_start = None;
        self.worked = false;
    }

    /// Serializes the core's complete microarchitectural state: committed
    /// context, fetch queue, ROB (with in-flight operand and timing
    /// state), rename table, counters, and stall-run bookkeeping.
    /// Instructions are not stored — each entry's `pc` re-derives its
    /// `Inst` from the program the restoring side supplies. The trace
    /// sink and metrics registry are wiring the restoring side re-installs.
    pub fn save_state(&self, w: &mut csb_snap::SnapshotWriter) {
        w.put_tag("cpu");
        self.ctx.save_state(w);
        w.put_usize(self.fetch_pc);
        w.put_bool(self.fetch_stopped);
        w.put_usize(self.fetch_q.len());
        for f in &self.fetch_q {
            w.put_usize(f.pc);
            w.put_usize(f.predicted_next);
            w.put_u64(f.t_fetch);
        }
        w.put_usize(self.rob.len());
        for e in self.rob.iter() {
            w.put_u64(e.seq);
            w.put_usize(e.pc);
            save_st(w, e.st);
            w.put_u8(e.ops.len);
            for op in e.ops.iter() {
                save_reg_ref(w, op.reg);
                match op.src {
                    Src::Ready(v) => {
                        w.put_u8(0);
                        w.put_u64(v);
                    }
                    Src::Wait(seq) => {
                        w.put_u8(1);
                        w.put_u64(seq);
                    }
                }
            }
            w.put_u64(e.value);
            w.put_opt_u64(e.addr.map(Addr::raw));
            w.put_u8(match e.space {
                None => 0,
                Some(AddressSpace::Cached) => 1,
                Some(AddressSpace::Uncached) => 2,
                Some(AddressSpace::UncachedCombining) => 3,
            });
            w.put_usize(e.predicted_next);
            w.put_bool(e.mem_started);
            w.put_u64(e.t_fetch);
            w.put_u64(e.t_dispatch);
            w.put_opt_u64(e.t_issue);
            w.put_opt_u64(e.t_complete);
        }
        w.put_u64(self.front_seq);
        w.put_u64(self.next_seq);
        for slot in &self.rename.slots {
            w.put_opt_u64(*slot);
        }
        w.put_bool(self.halted);
        w.put_u64(self.now);
        w.put_u64(self.stats.cycles);
        w.put_u64(self.stats.retired);
        w.put_u64(self.stats.squashed);
        w.put_u64(self.stats.mispredicts);
        w.put_u64(self.stats.loads);
        w.put_u64(self.stats.stores);
        w.put_u64(self.stats.uncached_ops);
        w.put_u64(self.stats.combining_stores);
        w.put_u64(self.stats.flush_successes);
        w.put_u64(self.stats.flush_failures);
        w.put_u64(self.stats.uncached_stall_cycles);
        w.put_u64(self.stats.membar_stall_cycles);
        let mut mark_ids: Vec<u32> = self.stats.marks.keys().copied().collect();
        mark_ids.sort_unstable();
        w.put_usize(mark_ids.len());
        for id in mark_ids {
            w.put_u32(id);
            let cycles = &self.stats.marks[&id];
            w.put_usize(cycles.len());
            for c in cycles {
                w.put_u64(*c);
            }
        }
        w.put_bool(self.trace.is_some());
        w.put_opt_u64(self.uncached_stall_start);
        w.put_opt_u64(self.membar_stall_start);
        w.put_bool(self.worked);
    }

    /// Restores state written by [`Cpu::save_state`] into a core already
    /// holding the same configuration and program. Pipeline-trace
    /// recording resumes empty if it was enabled at save time (records
    /// retired before the snapshot are not carried over).
    ///
    /// # Errors
    ///
    /// [`csb_snap::SnapshotError`] on a malformed stream or an entry `pc`
    /// the current program cannot fetch.
    pub fn restore_state(
        &mut self,
        r: &mut csb_snap::SnapshotReader<'_>,
    ) -> Result<(), csb_snap::SnapshotError> {
        r.take_tag("cpu")?;
        self.ctx.restore_state(r)?;
        self.fetch_pc = r.take_usize()?;
        self.fetch_stopped = r.take_bool()?;
        self.fetch_q.clear();
        let nq = r.take_usize()?;
        if nq > self.cfg.fetch_queue.max(1) {
            return Err(csb_snap::SnapshotError::Corrupt(format!(
                "{nq} fetched instructions exceed queue depth {}",
                self.cfg.fetch_queue
            )));
        }
        for _ in 0..nq {
            let pc = r.take_usize()?;
            let inst = self.fetch_inst(pc)?;
            self.fetch_q.push_back(Fetched {
                pc,
                inst,
                predicted_next: r.take_usize()?,
                t_fetch: r.take_u64()?,
            });
        }
        let nrob = r.take_usize()?;
        if nrob > self.cfg.rob_size {
            return Err(csb_snap::SnapshotError::Corrupt(format!(
                "{nrob} ROB entries exceed capacity {}",
                self.cfg.rob_size
            )));
        }
        self.rob.clear();
        self.rob.head = 0;
        for _ in 0..nrob {
            let seq = r.take_u64()?;
            let pc = r.take_usize()?;
            let inst = self.fetch_inst(pc)?;
            let st = take_st(r)?;
            let mut ops = Ops::EMPTY;
            let nops = r.take_u8()?;
            if nops > 3 {
                return Err(csb_snap::SnapshotError::Corrupt(format!(
                    "{nops} operand slots exceed 3"
                )));
            }
            for _ in 0..nops {
                let reg = take_reg_ref(r)?;
                let src = match r.take_u8()? {
                    0 => Src::Ready(r.take_u64()?),
                    1 => Src::Wait(r.take_u64()?),
                    k => {
                        return Err(csb_snap::SnapshotError::Corrupt(format!(
                            "unknown operand source {k}"
                        )))
                    }
                };
                ops.push(OperandSlot { reg, src });
            }
            let value = r.take_u64()?;
            let addr = r.take_opt_u64()?.map(Addr::new);
            let space = match r.take_u8()? {
                0 => None,
                1 => Some(AddressSpace::Cached),
                2 => Some(AddressSpace::Uncached),
                3 => Some(AddressSpace::UncachedCombining),
                k => {
                    return Err(csb_snap::SnapshotError::Corrupt(format!(
                        "unknown address space {k}"
                    )))
                }
            };
            self.rob.push_back(RobEntry {
                seq,
                pc,
                inst,
                st,
                ops,
                value,
                addr,
                space,
                predicted_next: r.take_usize()?,
                mem_started: r.take_bool()?,
                t_fetch: r.take_u64()?,
                t_dispatch: r.take_u64()?,
                t_issue: r.take_opt_u64()?,
                t_complete: r.take_opt_u64()?,
            });
        }
        self.front_seq = r.take_u64()?;
        self.next_seq = r.take_u64()?;
        for slot in 0..RENAME_SLOTS {
            self.rename.slots[slot] = r.take_opt_u64()?;
        }
        self.halted = r.take_bool()?;
        self.now = r.take_u64()?;
        self.stats.cycles = r.take_u64()?;
        self.stats.retired = r.take_u64()?;
        self.stats.squashed = r.take_u64()?;
        self.stats.mispredicts = r.take_u64()?;
        self.stats.loads = r.take_u64()?;
        self.stats.stores = r.take_u64()?;
        self.stats.uncached_ops = r.take_u64()?;
        self.stats.combining_stores = r.take_u64()?;
        self.stats.flush_successes = r.take_u64()?;
        self.stats.flush_failures = r.take_u64()?;
        self.stats.uncached_stall_cycles = r.take_u64()?;
        self.stats.membar_stall_cycles = r.take_u64()?;
        self.stats.marks.clear();
        let nmarks = r.take_usize()?;
        for _ in 0..nmarks {
            let id = r.take_u32()?;
            let len = r.take_usize()?;
            let mut cycles = Vec::with_capacity(len);
            for _ in 0..len {
                cycles.push(r.take_u64()?);
            }
            self.stats.marks.insert(id, cycles);
        }
        self.trace = if r.take_bool()? {
            Some(Vec::new())
        } else {
            None
        };
        self.uncached_stall_start = r.take_opt_u64()?;
        self.membar_stall_start = r.take_opt_u64()?;
        self.worked = r.take_bool()?;
        Ok(())
    }

    /// Re-derives the `Inst` at `pc` for snapshot restore.
    fn fetch_inst(&self, pc: usize) -> Result<Inst, csb_snap::SnapshotError> {
        self.program.fetch(pc).ok_or_else(|| {
            csb_snap::SnapshotError::Corrupt(format!("pc {pc} is outside the restored program"))
        })
    }

    /// Installs a structured trace sink: retires and squashes emit instants
    /// and stall runs emit spans on the CPU track. The core advances the
    /// sink's shared clock each [`Cpu::tick`].
    pub fn set_trace_sink(&mut self, sink: TraceSink) {
        self.obs = sink;
    }

    /// Installs a metrics registry: completed stall runs are observed into
    /// the `rob_uncached_stall_run` and `membar_stall_run` histograms.
    pub fn set_metrics(&mut self, metrics: MetricsRegistry) {
        self.metrics = metrics;
    }

    /// Starts recording one [`InstTrace`] per instruction that leaves the
    /// pipeline (retired or squashed), for [`Cpu::trace`] /
    /// [`crate::trace::render`]. Costs memory per instruction; intended
    /// for short diagnostic runs.
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Vec::new());
        }
    }

    /// The recorded pipeline trace (empty unless enabled).
    pub fn trace(&self) -> &[InstTrace] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// Appends one trace record. Callers guard on `self.trace.is_some()`
    /// so the disabled hot path pays a single branch and never formats.
    #[inline]
    fn record_trace(&mut self, e: &RobEntry, retired: Option<u64>) {
        if let Some(t) = &mut self.trace {
            t.push(InstTrace {
                seq: e.seq,
                pc: e.pc,
                text: e.inst.to_string(),
                fetched: e.t_fetch,
                dispatched: e.t_dispatch,
                issued: e.t_issue,
                completed: e.t_complete,
                retired,
                squashed: retired.is_none(),
            });
        }
    }

    /// The committed architectural context.
    pub fn context(&self) -> &CpuContext {
        &self.ctx
    }

    /// Mutable access to the committed context (test setup; mutating
    /// registers with instructions in flight is not meaningful).
    pub fn context_mut(&mut self) -> &mut CpuContext {
        &mut self.ctx
    }

    /// The program being executed.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CpuStats {
        &self.stats
    }

    /// `true` once a `halt` instruction has retired.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// `true` when a context switch would not replay a side effect: the
    /// ROB head has not started a non-restartable memory action (atomic
    /// swap, conditional flush, uncached load/swap round trip).
    ///
    /// A precise-interrupt machine drains such an instruction before taking
    /// the interrupt; schedulers should poll this and delay
    /// [`Cpu::switch_context`] for the few cycles it takes to retire —
    /// otherwise the resumed process would re-execute an I/O operation that
    /// already reached the device, violating exactly-once semantics.
    pub fn switch_safe(&self) -> bool {
        self.rob.front().is_none_or(|e| !e.mem_started)
    }

    /// Performs a context switch: squashes all in-flight work (a precise
    /// interrupt), installs `new` (and its program, if given), and returns
    /// the outgoing context.
    ///
    /// The outgoing context's pc is its committed pc, so resuming it re-runs
    /// exactly the unretired instructions — which is how an interrupted CSB
    /// store sequence comes back and finds its conditional flush failing.
    /// Callers must respect [`Cpu::switch_safe`]; switching past it replays
    /// a side-effecting instruction.
    pub fn switch_context(&mut self, new: CpuContext, program: Option<Program>) -> CpuContext {
        self.stats.squashed += self.rob.len() as u64;
        if !self.rob.is_empty() {
            self.obs.emit(
                Track::Cpu,
                EventKind::Squash {
                    count: self.rob.len() as u64,
                    reason: "context-switch",
                },
            );
        }
        self.rob.clear();
        self.front_seq = self.next_seq;
        self.rename.clear();
        self.fetch_q.clear();
        let old = std::mem::replace(&mut self.ctx, new);
        if let Some(p) = program {
            self.program = p;
        }
        self.fetch_pc = self.ctx.pc();
        self.fetch_stopped = false;
        self.halted = false;
        old
    }

    /// Runs until `halt` retires or `limit` cycles elapse.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::CycleLimit`] if the program does not halt in
    /// time.
    pub fn run<P: MemPort>(&mut self, port: &mut P, limit: u64) -> Result<CpuStats, RunError> {
        while !self.halted {
            if self.now >= limit {
                return Err(RunError::CycleLimit { limit });
            }
            self.tick(port);
        }
        Ok(self.stats.clone())
    }

    /// Advances the core by one cycle.
    pub fn tick<P: MemPort>(&mut self, port: &mut P) {
        let watching = self.obs.is_enabled() || self.metrics.is_enabled();
        let (u0, m0) = (
            self.stats.uncached_stall_cycles,
            self.stats.membar_stall_cycles,
        );
        if watching {
            self.obs.set_now(self.now);
        }
        self.worked = false;
        if !self.halted {
            self.writeback(port);
            self.retire(port);
            self.issue(port);
            self.dispatch(port);
            self.fetch();
        }
        if watching {
            self.track_stall_runs(u0, m0);
        }
        self.now += 1;
        self.stats.cycles = self.now;
    }

    /// `true` if the most recent [`Cpu::tick`] moved any instruction
    /// through the pipeline — fetched, dispatched, issued, completed,
    /// redirected, or retired something, or started a memory action. A
    /// quiet tick means the core only spun on a stall (or is drained),
    /// which is the precondition for the much costlier [`Cpu::next_event`]
    /// ROB scan to have any chance of reporting an idle horizon; drivers
    /// use this to skip the scan while the pipeline is demonstrably busy.
    /// Conservative in the safe direction: stall-counter increments alone
    /// do not count as work.
    pub fn last_tick_worked(&self) -> bool {
        self.worked
    }

    /// Opens/extends/closes stall-run bookkeeping by comparing the stall
    /// counters against their values at the start of this cycle. A run that
    /// ends emits one span and one histogram observation.
    fn track_stall_runs(&mut self, u0: u64, m0: u64) {
        let now = self.now;
        if self.stats.uncached_stall_cycles > u0 {
            self.uncached_stall_start.get_or_insert(now);
        } else if let Some(start) = self.uncached_stall_start.take() {
            let cycles = now - start;
            self.obs.emit_span(
                start,
                cycles,
                Track::Cpu,
                EventKind::UncachedStallRun { cycles },
            );
            self.metrics.observe("rob_uncached_stall_run", cycles);
        }
        if self.stats.membar_stall_cycles > m0 {
            self.membar_stall_start.get_or_insert(now);
        } else if let Some(start) = self.membar_stall_start.take() {
            let cycles = now - start;
            self.obs.emit_span(
                start,
                cycles,
                Track::Cpu,
                EventKind::MembarStallRun { cycles },
            );
            self.metrics.observe("membar_stall_run", cycles);
        }
    }

    /// Pure mirror of [`Cpu::ops_ready`]: `true` when every operand of
    /// `rob[idx]` is ready or resolvable without waiting. Deferring the
    /// lazy `Src::Ready` rewrite is invisible: retired producers' values
    /// are architectural (frozen while retirement is idle) and `Done`
    /// producers' values no longer change.
    fn ops_would_be_ready(&self, idx: usize) -> bool {
        self.rob[idx].ops.iter().all(|op| match op.src {
            Src::Ready(_) => true,
            Src::Wait(seq) => {
                seq < self.front_seq || self.rob[(seq - self.front_seq) as usize].st == St::Done
            }
        })
    }

    /// Computes the core's activity horizon without mutating anything: if
    /// the next tick would change pipeline state, returns
    /// [`CpuHorizon::Active`]; otherwise the pipeline is provably inert
    /// until either the returned wake cycle or an external event (tracked
    /// by the memory system's own horizon), and every skipped cycle would
    /// have behaved identically — including incrementing the returned
    /// stall counter.
    ///
    /// Over-claiming `Active` is always safe (it costs one real tick);
    /// the implementation errs that way on every uncertain case.
    pub fn next_event<P: MemPort>(&self, port: &P) -> CpuHorizon {
        if self.halted {
            // `tick` does nothing once halted; no run can still be open
            // (stalls only accrue at the head, and the halting tick
            // committed the head).
            return CpuHorizon::Idle {
                wake: None,
                stall: None,
            };
        }
        if self.cfg.uncached_per_cycle == 0 {
            // Degenerate config: the budget check precedes every stall
            // counter, so an uncached op at the head spins silently
            // forever. Claim Active so the naive loop's livelock-to-limit
            // behavior (and cycle accounting) is reproduced exactly.
            return CpuHorizon::Active;
        }
        if !self.fetch_stopped
            && self.fetch_q.len() < self.cfg.fetch_queue
            && self.program.fetch(self.fetch_pc).is_some()
        {
            return CpuHorizon::Active;
        }
        if !self.fetch_q.is_empty() && self.rob.len() < self.cfg.rob_size {
            return CpuHorizon::Active;
        }
        // Head first: during busy phases the head is almost always about
        // to commit, complete, or have its memory op accepted, so the
        // common `Active` verdicts resolve in O(1) and the O(rob) tail
        // scan below only runs once the head is provably stalled. This is
        // what lets `advance` afford a horizon scan after *every* tick:
        // short (sub-2-transaction) bus-idle gaps used to hide behind the
        // quiet-tick gate and tick cycle-by-cycle; now the walk engages on
        // the first stalled cycle.
        let mut wake: Option<u64> = None;
        let stall = match self.rob.front() {
            None => {
                // Nothing in flight, nothing to fetch: quiescent (either
                // about to sit at a drained non-halt end-of-program
                // forever, exactly like the naive loop, or mid-drain
                // waiting on the fetch path handled above).
                None
            }
            Some(head) => match head.st {
                St::Done => {
                    if head.inst.kind() == InstKind::Membar && !port.uncached_drained() {
                        Some(StallCause::Membar)
                    } else {
                        // Commit makes progress.
                        return CpuHorizon::Active;
                    }
                }
                St::Agen { done_at } | St::Exec { done_at } | St::MemAccess { done_at } => {
                    if done_at <= self.now {
                        return CpuHorizon::Active;
                    }
                    wake = Some(done_at);
                    None
                }
                St::UncachedWait => {
                    let ready = if matches!(head.inst, Inst::Swap { .. }) {
                        port.uncached_swap_ready(head.seq)
                    } else {
                        port.uncached_load_ready(head.seq)
                    };
                    if ready {
                        return CpuHorizon::Active;
                    }
                    // The completion cycle lives in the memory system's
                    // horizon, not ours.
                    None
                }
                St::Waiting => {
                    // Unit budgets reset every tick, so operand readiness
                    // is the only cross-cycle blocker. (A zero-unit config
                    // never leaves Waiting; claiming Active then matches
                    // the naive loop's livelock.)
                    if self.ops_would_be_ready(0) {
                        return CpuHorizon::Active;
                    }
                    None
                }
                St::AddrReady => {
                    if !self.ops_would_be_ready(0) {
                        // Producers of head operands are always retired in
                        // practice; be conservative if not.
                        return CpuHorizon::Active;
                    }
                    let addr = head.addr.expect("AddrReady implies address");
                    let space = head.space.expect("AddrReady implies space");
                    match (&head.inst, space) {
                        (Inst::Swap { .. }, AddressSpace::UncachedCombining) => {
                            if port.csb_can_flush() {
                                return CpuHorizon::Active;
                            }
                            Some(StallCause::CsbFlushWait)
                        }
                        (Inst::Swap { .. }, AddressSpace::Uncached)
                        | (
                            Inst::Load { .. },
                            AddressSpace::Uncached | AddressSpace::UncachedCombining,
                        ) => {
                            if port.uncached_load_would_accept() {
                                return CpuHorizon::Active;
                            }
                            Some(StallCause::UncachedLoadFull)
                        }
                        (Inst::Store { .. } | Inst::StoreF { .. }, AddressSpace::Uncached) => {
                            if port.uncached_store_would_accept(addr, mem_width(&head.inst)) {
                                return CpuHorizon::Active;
                            }
                            Some(StallCause::UncachedStoreFull)
                        }
                        (
                            Inst::Store { .. } | Inst::StoreF { .. },
                            AddressSpace::UncachedCombining,
                        ) => {
                            if port.csb_store_would_accept() {
                                return CpuHorizon::Active;
                            }
                            Some(StallCause::CsbStoreBusy)
                        }
                        // Cached swap executes at the head next tick; cached
                        // loads/stores at the head always advance via issue.
                        _ => return CpuHorizon::Active,
                    }
                }
            },
        };
        for (idx, e) in self.rob.iter().enumerate().skip(1) {
            match e.st {
                St::Agen { done_at } | St::Exec { done_at } | St::MemAccess { done_at } => {
                    if done_at <= self.now {
                        return CpuHorizon::Active;
                    }
                    wake = Some(wake.map_or(done_at, |w| w.min(done_at)));
                }
                St::UncachedWait => {
                    let ready = if matches!(e.inst, Inst::Swap { .. }) {
                        port.uncached_swap_ready(e.seq)
                    } else {
                        port.uncached_load_ready(e.seq)
                    };
                    if ready {
                        return CpuHorizon::Active;
                    }
                }
                St::Waiting => {
                    if self.ops_would_be_ready(idx) {
                        return CpuHorizon::Active;
                    }
                }
                St::AddrReady => match (e.inst.kind(), e.space) {
                    // A blocked load (older store in the way) stays
                    // blocked until the head retires, which the head
                    // checks cover.
                    (InstKind::Load, Some(AddressSpace::Cached)) if self.load_may_proceed(idx) => {
                        return CpuHorizon::Active;
                    }
                    (InstKind::Store, Some(AddressSpace::Cached)) => {
                        return CpuHorizon::Active;
                    }
                    // Uncached ops and atomics wait for the head.
                    _ => {}
                },
                // Done entries are inert until the in-order head reaches
                // them.
                St::Done => {}
            }
        }
        CpuHorizon::Idle { wake, stall }
    }

    /// Bulk-advances the core's clock to `to` across a gap that
    /// [`Cpu::next_event`] proved inert, applying exactly the per-cycle
    /// effects the skipped ticks would have had: the matching stall
    /// counter grows by the gap length, and stall-run bookkeeping is
    /// opened/closed as the first skipped tick would have done.
    pub fn fast_forward(&mut self, to: u64, stall: Option<StallCause>) {
        let k = to.saturating_sub(self.now);
        if k == 0 {
            return;
        }
        if self.obs.is_enabled() || self.metrics.is_enabled() {
            // Mirror `track_stall_runs` for the first skipped cycle: the
            // run matching `stall` opens (or stays open) at `now`; any
            // other open run closes at `now`. Later skipped cycles only
            // extend the open run, which the next close will account for.
            let now = self.now;
            let extends_uncached = matches!(
                stall,
                Some(
                    StallCause::UncachedStoreFull
                        | StallCause::UncachedLoadFull
                        | StallCause::CsbStoreBusy
                        | StallCause::CsbFlushWait
                )
            );
            if extends_uncached {
                self.uncached_stall_start.get_or_insert(now);
            } else if let Some(start) = self.uncached_stall_start.take() {
                let cycles = now - start;
                self.obs.emit_span(
                    start,
                    cycles,
                    Track::Cpu,
                    EventKind::UncachedStallRun { cycles },
                );
                self.metrics.observe("rob_uncached_stall_run", cycles);
            }
            if stall == Some(StallCause::Membar) {
                self.membar_stall_start.get_or_insert(now);
            } else if let Some(start) = self.membar_stall_start.take() {
                let cycles = now - start;
                self.obs.emit_span(
                    start,
                    cycles,
                    Track::Cpu,
                    EventKind::MembarStallRun { cycles },
                );
                self.metrics.observe("membar_stall_run", cycles);
            }
        }
        match stall {
            Some(StallCause::Membar) => self.stats.membar_stall_cycles += k,
            Some(_) => self.stats.uncached_stall_cycles += k,
            None => {}
        }
        self.now = to;
        self.stats.cycles = to;
    }

    fn arch_value(&self, r: RegRef) -> u64 {
        match r {
            RegRef::Int(reg) => self.ctx.int_reg(reg),
            RegRef::Fp(f) => self.ctx.fp_reg(f),
            RegRef::Cc => self.ctx.cc(),
        }
    }

    /// Resolves pending operand references; returns `true` when all ready.
    /// The update scratch is a stack array — an instruction has at most
    /// three operands — so the per-tick wakeup scan never allocates.
    #[inline]
    fn ops_ready(&mut self, idx: usize) -> bool {
        let front = self.front_seq;
        let mut updates = [(0usize, 0u64); 3];
        let mut n = 0;
        let mut all = true;
        for (i, op) in self.rob[idx].ops.iter().enumerate() {
            if let Src::Wait(seq) = op.src {
                if seq < front {
                    // Producer already retired; its value is architectural.
                    updates[n] = (i, self.arch_value(op.reg));
                    n += 1;
                } else {
                    let p = &self.rob[(seq - front) as usize];
                    if p.st == St::Done {
                        updates[n] = (i, p.value);
                        n += 1;
                    } else {
                        all = false;
                    }
                }
            }
        }
        let e = &mut self.rob[idx];
        for &(i, v) in &updates[..n] {
            e.ops.slots[i].src = Src::Ready(v);
        }
        all
    }

    // ------------------------------------------------------------------
    // Writeback: complete in-flight operations, resolve branches.
    // ------------------------------------------------------------------
    fn writeback<P: MemPort>(&mut self, port: &mut P) {
        let now = self.now;
        let mut redirect: Option<(usize, usize)> = None; // (rob idx, next pc)
        for idx in 0..self.rob.len() {
            let e = &mut self.rob[idx];
            match e.st {
                St::Agen { done_at } if done_at <= now => {
                    e.st = St::AddrReady;
                    self.worked = true;
                }
                St::Exec { done_at } if done_at <= now => {
                    e.st = St::Done;
                    e.t_complete = Some(now);
                    self.worked = true;
                    if e.inst.kind() == InstKind::Branch && e.value as usize != e.predicted_next {
                        redirect = Some((idx, e.value as usize));
                        break;
                    }
                }
                St::MemAccess { done_at } if done_at <= now => {
                    e.st = St::Done;
                    e.t_complete = Some(now);
                    self.worked = true;
                }
                St::UncachedWait => {
                    let seq = e.seq;
                    let is_swap = matches!(e.inst, Inst::Swap { .. });
                    let polled = if is_swap {
                        port.uncached_swap_poll(seq)
                    } else {
                        port.uncached_load_poll(seq)
                    };
                    if let Some(v) = polled {
                        let e = &mut self.rob[idx];
                        e.value = v;
                        e.st = St::Done;
                        e.t_complete = Some(now);
                        self.worked = true;
                    }
                }
                _ => {}
            }
        }
        if let Some((idx, next)) = redirect {
            self.stats.mispredicts += 1;
            self.squash_after(idx);
            self.fetch_q.clear();
            self.fetch_pc = next;
            self.fetch_stopped = false;
        }
    }

    /// Removes every entry younger than `idx` and rebuilds the rename map.
    fn squash_after(&mut self, idx: usize) {
        let removed = self.rob.len() - (idx + 1);
        self.stats.squashed += removed as u64;
        if removed > 0 {
            self.obs.emit(
                Track::Cpu,
                EventKind::Squash {
                    count: removed as u64,
                    reason: "mispredict",
                },
            );
        }
        if let Some(t) = self.trace.as_mut() {
            for i in idx + 1..self.rob.len {
                let e = &self.rob[i];
                t.push(InstTrace {
                    seq: e.seq,
                    pc: e.pc,
                    text: e.inst.to_string(),
                    fetched: e.t_fetch,
                    dispatched: e.t_dispatch,
                    issued: e.t_issue,
                    completed: e.t_complete,
                    retired: None,
                    squashed: true,
                });
            }
        }
        self.rob.truncate(idx + 1);
        // Recycle the squashed sequence numbers so the ROB invariant
        // `rob[i].seq == front_seq + i` keeps holding for new dispatches.
        // Squashed entries never issued uncached transactions (only the ROB
        // head does), so their tags cannot be in flight.
        self.next_seq = self.front_seq + self.rob.len() as u64;
        self.rename.clear();
        for e in self.rob.iter() {
            if let Some(d) = e.inst.def() {
                self.rename.insert(d, e.seq);
            }
        }
    }

    // ------------------------------------------------------------------
    // Retire: in-order commit; non-speculative uncached issue at the head.
    // ------------------------------------------------------------------
    fn retire<P: MemPort>(&mut self, port: &mut P) {
        let mut budget = self.cfg.retire_width;
        let mut uncached_budget = self.cfg.uncached_per_cycle;
        while budget > 0 && !self.halted {
            let Some(head) = self.rob.front() else { break };
            match head.st {
                St::Done => {
                    if self.membar_blocked(port) {
                        break;
                    }
                    self.commit_head(port);
                    budget -= 1;
                }
                St::AddrReady => {
                    // Head-triggered, non-speculative memory action.
                    if !self.head_mem_action(port, &mut uncached_budget, &mut budget) {
                        break;
                    }
                }
                _ => break,
            }
        }
    }

    /// Attempts the head's non-speculative memory action. Returns `false`
    /// when retirement must stall this cycle. `budget`/`uncached_budget`
    /// are decremented for ops that complete instantly (uncached stores).
    fn head_mem_action<P: MemPort>(
        &mut self,
        port: &mut P,
        uncached_budget: &mut usize,
        budget: &mut usize,
    ) -> bool {
        if !self.ops_ready(0) {
            return false;
        }
        let e = &self.rob[0];
        let addr = e.addr.expect("AddrReady implies address");
        let space = e.space.expect("AddrReady implies space");
        let now = self.now;
        let pid = self.ctx.pid();
        match (&e.inst, space) {
            // Cached stores complete in issue; cached loads in MemAccess.
            // The only cached op handled here is the atomic swap, which must
            // execute non-speculatively at the head.
            (Inst::Swap { .. }, AddressSpace::Cached) => {
                if e.mem_started {
                    return false; // access in flight; wait for writeback
                }
                let new = e.op_val(0);
                let done_at = port.cached_access(addr, AccessKind::Atomic, now);
                let old = port.swap_value(addr, new);
                let e = &mut self.rob[0];
                e.value = old;
                e.mem_started = true;
                e.st = St::MemAccess { done_at };
                self.worked = true;
                false
            }
            (Inst::Swap { .. }, AddressSpace::UncachedCombining) => {
                // The conditional flush (§3.2).
                if e.mem_started {
                    return false;
                }
                if *uncached_budget == 0 {
                    return false;
                }
                if !port.csb_can_flush() {
                    self.stats.uncached_stall_cycles += 1;
                    return false;
                }
                let expected = e.op_val(0);
                let result = port.csb_flush(pid, addr, expected);
                if result == expected {
                    self.stats.flush_successes += 1;
                } else {
                    self.stats.flush_failures += 1;
                }
                *uncached_budget -= 1;
                let done_at = now + self.cfg.flush_latency;
                let e = &mut self.rob[0];
                e.value = result;
                e.mem_started = true;
                e.st = St::Exec { done_at };
                self.worked = true;
                false
            }
            (Inst::Swap { .. }, AddressSpace::Uncached) => {
                if e.mem_started {
                    return false;
                }
                if *uncached_budget == 0 {
                    return false;
                }
                let (seq, new) = (e.seq, e.op_val(0));
                if !port.uncached_swap(addr, 8, new, seq) {
                    self.stats.uncached_stall_cycles += 1;
                    return false;
                }
                *uncached_budget -= 1;
                let e = &mut self.rob[0];
                e.mem_started = true;
                e.st = St::UncachedWait;
                self.worked = true;
                false
            }
            (Inst::Store { .. } | Inst::StoreF { .. }, AddressSpace::Uncached) => {
                if *uncached_budget == 0 {
                    return false;
                }
                let (val, width) = (e.op_val(0), mem_width(&e.inst));
                if !port.uncached_store(addr, width, val) {
                    self.stats.uncached_stall_cycles += 1;
                    return false;
                }
                *uncached_budget -= 1;
                let e = &mut self.rob[0];
                e.st = St::Done;
                e.t_issue = Some(now);
                e.t_complete = Some(now);
                self.commit_head(port);
                *budget -= 1;
                true
            }
            (Inst::Store { .. } | Inst::StoreF { .. }, AddressSpace::UncachedCombining) => {
                if *uncached_budget == 0 {
                    return false;
                }
                let (val, width) = (e.op_val(0), mem_width(&e.inst));
                if !port.csb_store(pid, addr, width, val) {
                    self.stats.uncached_stall_cycles += 1;
                    return false;
                }
                *uncached_budget -= 1;
                self.stats.combining_stores += 1;
                let e = &mut self.rob[0];
                e.st = St::Done;
                e.t_issue = Some(now);
                e.t_complete = Some(now);
                self.commit_head(port);
                *budget -= 1;
                true
            }
            (Inst::Load { .. }, AddressSpace::Uncached | AddressSpace::UncachedCombining) => {
                // Uncached loads bypass combined stores (§3.2): both spaces
                // route through the uncached buffer.
                if e.mem_started {
                    return false;
                }
                if *uncached_budget == 0 {
                    return false;
                }
                let (seq, width) = (e.seq, mem_width(&e.inst));
                if !port.uncached_load(addr, width, seq) {
                    self.stats.uncached_stall_cycles += 1;
                    return false;
                }
                *uncached_budget -= 1;
                let e = &mut self.rob[0];
                e.mem_started = true;
                e.st = St::UncachedWait;
                self.worked = true;
                false
            }
            // Cached loads/stores never reach here in AddrReady at the
            // head for long: issue() advances them. Stall until it does.
            _ => false,
        }
    }

    /// Commits the head entry (which must be `Done`).
    fn commit_head<P: MemPort>(&mut self, port: &mut P) {
        let e = self.rob.pop_front();
        self.front_seq = e.seq + 1;
        self.worked = true;
        debug_assert_eq!(e.st, St::Done);
        let now = self.now;
        self.record_trace(&e, Some(now));
        self.obs.emit_with(Track::Cpu, || EventKind::Retire {
            pc: e.pc,
            inst: e.inst.to_string(),
        });

        // Cached stores write memory at commit (release semantics of the
        // store buffer); uncached stores were delivered at head-issue time.
        if let (Inst::Store { .. } | Inst::StoreF { .. }, Some(AddressSpace::Cached)) =
            (&e.inst, e.space)
        {
            let addr = e.addr.expect("store has address");
            port.cached_access(addr, AccessKind::Write, now);
            port.write(addr, mem_width(&e.inst), e.op_val(0));
        }

        // Architectural register update.
        if let Some(d) = e.inst.def() {
            match d {
                RegRef::Int(r) => self.ctx.set_int_reg(r, e.value),
                RegRef::Fp(r) => self.ctx.set_fp_reg(r, e.value),
                RegRef::Cc => self.ctx.set_cc(e.value),
            }
            self.rename.remove_if(d, e.seq);
        }

        // Committed pc.
        let next_pc = if e.inst.kind() == InstKind::Branch {
            e.value as usize
        } else {
            e.pc + 1
        };
        self.ctx.set_pc(next_pc);

        // Bookkeeping.
        self.stats.retired += 1;
        self.metrics.timeline_mark(now, TimelineEvent::Retired);
        match e.inst.kind() {
            InstKind::Load => {
                self.stats.loads += 1;
                if e.space.is_some_and(|s| s.is_uncached()) {
                    self.stats.uncached_ops += 1;
                }
            }
            InstKind::Store => {
                self.stats.stores += 1;
                if e.space.is_some_and(|s| s.is_uncached()) {
                    self.stats.uncached_ops += 1;
                }
            }
            InstKind::Swap if e.space.is_some_and(|s| s.is_uncached()) => {
                self.stats.uncached_ops += 1;
            }
            InstKind::Mark => {
                if let Inst::Mark { id } = e.inst {
                    self.stats.marks.entry(id).or_default().push(now);
                }
            }
            InstKind::Halt => {
                self.halted = true;
            }
            _ => {}
        }
    }

    // ------------------------------------------------------------------
    // Issue: out-of-order dispatch-queue scan, oldest first.
    // ------------------------------------------------------------------
    fn issue<P: MemPort>(&mut self, port: &mut P) {
        let now = self.now;
        let mut int_avail = self.cfg.int_units;
        let mut fp_avail = self.cfg.fp_units;
        let mut agen_avail = self.cfg.agen_units;

        for idx in 0..self.rob.len() {
            if int_avail == 0 && fp_avail == 0 && agen_avail == 0 {
                break;
            }
            match self.rob[idx].st {
                St::Waiting => {
                    let kind = self.rob[idx].inst.kind();
                    match kind {
                        InstKind::IntAlu | InstKind::Branch
                            if int_avail > 0 && self.ops_ready(idx) =>
                        {
                            int_avail -= 1;
                            let e = &self.rob[idx];
                            let value = self.compute(e);
                            let e = &mut self.rob[idx];
                            e.value = value;
                            e.t_issue = Some(now);
                            e.st = St::Exec {
                                done_at: now + self.cfg.int_latency,
                            };
                            self.worked = true;
                        }
                        InstKind::FpAlu if fp_avail > 0 && self.ops_ready(idx) => {
                            fp_avail -= 1;
                            let e = &self.rob[idx];
                            let value = self.compute(e);
                            let e = &mut self.rob[idx];
                            e.value = value;
                            e.t_issue = Some(now);
                            e.st = St::Exec {
                                done_at: now + self.cfg.fp_latency,
                            };
                            self.worked = true;
                        }
                        InstKind::Load | InstKind::Store | InstKind::Swap
                            if agen_avail > 0 && self.ops_ready(idx) =>
                        {
                            agen_avail -= 1;
                            let e = &self.rob[idx];
                            let base_idx = match e.inst {
                                Inst::Load { .. } => 0,
                                _ => 1, // Store/StoreF/Swap: [data, base]
                            };
                            let offset = match e.inst {
                                Inst::Load { offset, .. }
                                | Inst::Store { offset, .. }
                                | Inst::StoreF { offset, .. }
                                | Inst::Swap { offset, .. } => offset,
                                _ => unreachable!(),
                            };
                            let addr = Addr::new(e.op_val(base_idx)).offset(offset);
                            let space = port.space_of(addr);
                            let e = &mut self.rob[idx];
                            e.addr = Some(addr);
                            e.space = Some(space);
                            e.t_issue = Some(now);
                            e.st = St::Agen {
                                done_at: now + self.cfg.agen_latency,
                            };
                            self.worked = true;
                        }
                        // Nop/Mark/Halt/Membar were Done at dispatch.
                        _ => {}
                    }
                }
                St::AddrReady => {
                    let e = &self.rob[idx];
                    match (e.inst.kind(), e.space) {
                        (InstKind::Load, Some(AddressSpace::Cached))
                            if agen_avail > 0 && self.load_may_proceed(idx) =>
                        {
                            agen_avail -= 1;
                            let e = &self.rob[idx];
                            let (addr, width) = (e.addr.unwrap(), mem_width(&e.inst));
                            let done_at = port.cached_access(addr, AccessKind::Read, now);
                            let value = port.read(addr, width);
                            let e = &mut self.rob[idx];
                            e.value = value;
                            e.st = St::MemAccess { done_at };
                            self.worked = true;
                        }
                        (InstKind::Store, Some(AddressSpace::Cached)) => {
                            // Completes now; memory written at commit.
                            let e = &mut self.rob[idx];
                            e.st = St::Done;
                            e.t_complete = Some(now);
                            self.worked = true;
                        }
                        // Uncached ops and atomics wait for the head.
                        _ => {}
                    }
                }
                _ => {}
            }
        }
    }

    /// Conservative memory disambiguation: a cached load may start only when
    /// no older store/atomic might write an overlapping byte.
    fn load_may_proceed(&self, idx: usize) -> bool {
        let (l_addr, l_w) = {
            let e = &self.rob[idx];
            (
                e.addr.expect("load addr known").raw(),
                mem_width(&e.inst) as u64,
            )
        };
        for older in self.rob.iter().take(idx) {
            let is_write = matches!(older.inst.kind(), InstKind::Store | InstKind::Swap);
            if !is_write {
                continue;
            }
            match older.addr {
                None => return false, // unknown address: must wait
                Some(a) => {
                    let (s_addr, s_w) = (a.raw(), mem_width(&older.inst) as u64);
                    if l_addr < s_addr + s_w && s_addr < l_addr + l_w {
                        return false; // overlap: wait for the store to retire
                    }
                }
            }
        }
        true
    }

    /// Computes the result of a ready ALU/branch instruction.
    fn compute(&self, e: &RobEntry) -> u64 {
        match e.inst {
            Inst::Alu { op, a: _, b, .. } => {
                let av = e.op_val(0);
                let bv = match b {
                    Operand::Imm(i) => i as u64,
                    Operand::Reg(_) => e.op_val(1),
                };
                op.apply(av, bv)
            }
            Inst::Movi { imm, .. } => imm as u64,
            Inst::Fpu { op, .. } => op.apply(e.op_val(0), e.op_val(1)),
            Inst::FMovi { bits, .. } => bits,
            Inst::Cmp { b, .. } => {
                let av = e.op_val(0);
                let bv = match b {
                    Operand::Imm(i) => i as u64,
                    Operand::Reg(_) => e.op_val(1),
                };
                flags_of(av, bv)
            }
            Inst::Branch { cond, .. } => {
                let flags = if cond == Cond::Always { 0 } else { e.op_val(0) };
                let taken = cond_holds(cond, flags);
                let next = if taken {
                    self.program.branch_target(&e.inst)
                } else {
                    e.pc + 1
                };
                next as u64
            }
            ref other => panic!("compute on {other}"),
        }
    }

    // ------------------------------------------------------------------
    // Dispatch: fetch queue -> ROB, with register renaming.
    // ------------------------------------------------------------------
    fn dispatch<P: MemPort>(&mut self, _port: &mut P) {
        for _ in 0..self.cfg.fetch_width {
            if self.rob.len() >= self.cfg.rob_size {
                break;
            }
            let Some(f) = self.fetch_q.pop_front() else {
                break;
            };
            let seq = self.next_seq;
            self.next_seq += 1;

            let mut ops = Ops::EMPTY;
            let mut regs = [RegRef::Cc; 3];
            let nregs = f.inst.uses_into(&mut regs);
            for &reg in &regs[..nregs] {
                let src = match self.rename.get(reg) {
                    Some(pseq) => {
                        let idx = (pseq - self.front_seq) as usize;
                        let p = &self.rob[idx];
                        if p.st == St::Done {
                            Src::Ready(p.value)
                        } else {
                            Src::Wait(pseq)
                        }
                    }
                    None => Src::Ready(self.arch_value(reg)),
                };
                ops.push(OperandSlot { reg, src });
            }
            if let Some(d) = f.inst.def() {
                self.rename.insert(d, seq);
            }

            let st = match f.inst.kind() {
                InstKind::Nop | InstKind::Mark | InstKind::Halt | InstKind::Membar => St::Done,
                _ => St::Waiting,
            };
            self.rob.push_back(RobEntry {
                seq,
                pc: f.pc,
                inst: f.inst,
                st,
                ops,
                value: 0,
                addr: None,
                space: None,
                predicted_next: f.predicted_next,
                mem_started: false,
                t_fetch: f.t_fetch,
                t_dispatch: self.now,
                t_issue: None,
                t_complete: None,
            });
            self.worked = true;
        }
    }

    // ------------------------------------------------------------------
    // Fetch: static backward-taken / forward-not-taken prediction.
    // ------------------------------------------------------------------
    fn fetch(&mut self) {
        if self.fetch_stopped {
            return;
        }
        for _ in 0..self.cfg.fetch_width {
            if self.fetch_q.len() >= self.cfg.fetch_queue {
                break;
            }
            let Some(inst) = self.program.fetch(self.fetch_pc) else {
                self.fetch_stopped = true;
                break;
            };
            let predicted_next = match inst {
                Inst::Branch { cond, .. } => {
                    let target = self.program.branch_target(&inst);
                    if cond == Cond::Always || target <= self.fetch_pc {
                        target
                    } else {
                        self.fetch_pc + 1
                    }
                }
                _ => self.fetch_pc + 1,
            };
            self.fetch_q.push_back(Fetched {
                pc: self.fetch_pc,
                inst,
                predicted_next,
                t_fetch: self.now,
            });
            self.worked = true;
            if matches!(inst, Inst::Halt) {
                self.fetch_stopped = true;
                break;
            }
            self.fetch_pc = predicted_next;
        }
    }

    /// `true` if the machine has no in-flight instructions (ROB and fetch
    /// queue empty) — a safe point for a context switch that must not
    /// replay committed work.
    pub fn pipeline_empty(&self) -> bool {
        self.rob.is_empty() && self.fetch_q.is_empty()
    }

    /// The resolved address of the ROB head's memory op, if any — the
    /// address the naive loop's per-cycle refusal events
    /// (`uncached.full` / `csb.busy`) carry, which the fast-forward walk
    /// needs to synthesize those events inside a jump.
    pub fn head_addr(&self) -> Option<Addr> {
        self.rob.front().and_then(|e| e.addr)
    }

    /// `true` when retirement is currently stalled on a membar waiting for
    /// the uncached buffer (diagnostic; used by the scheduler to avoid
    /// switching at unhelpful points in some experiments).
    pub fn head_is_membar(&self) -> bool {
        self.rob
            .front()
            .is_some_and(|e| e.inst.kind() == InstKind::Membar)
    }
}

// Membar retirement gating lives in `retire` via commit ordering: a membar
// is `Done` from dispatch but `commit_head` must not run until the uncached
// buffer drains. That check needs the port, so it is done here rather than
// in `commit_head`.
impl Cpu {
    fn membar_blocked<P: MemPort>(&mut self, port: &P) -> bool {
        if self
            .rob
            .front()
            .is_some_and(|e| e.inst.kind() == InstKind::Membar)
            && !port.uncached_drained()
        {
            self.stats.membar_stall_cycles += 1;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests;
