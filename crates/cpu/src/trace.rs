//! Per-instruction pipeline traces and ASCII pipeline-diagram rendering.
//!
//! Enable with [`crate::Cpu::enable_trace`]; every instruction that leaves
//! the pipeline (retired or squashed) contributes one [`InstTrace`].
//! [`render`] draws the classic pipeline diagram — one row per instruction,
//! one column per cycle:
//!
//! ```text
//! cycle           0         10
//! seq pc inst
//!   0  0 set 5..  FD-IC---R
//!   1  1 Add ...  FD--IC--R
//! ```
//!
//! Legend: `F` fetched, `D` dispatched, `I` issued, `C` completed,
//! `R` retired, `x` squashed (at its last known cycle), `-` in flight.

use serde::{Deserialize, Serialize};

/// Lifetime record of one instruction's trip through the pipeline.
///
/// All times are CPU cycles. `issued`/`completed` are `None` for
/// instructions with no execution stage (`nop`, `mark`, `membar`, `halt`)
/// or ones squashed before issuing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstTrace {
    /// Pipeline sequence number (unique per dispatch).
    pub seq: u64,
    /// Program counter (instruction index).
    pub pc: usize,
    /// Disassembly of the instruction.
    pub text: String,
    /// Fetch cycle.
    pub fetched: u64,
    /// Dispatch cycle (entered the ROB).
    pub dispatched: u64,
    /// Issue cycle (left the dispatch queue), if reached.
    pub issued: Option<u64>,
    /// Completion cycle (result available), if reached.
    pub completed: Option<u64>,
    /// Retirement cycle; `None` if squashed.
    pub retired: Option<u64>,
    /// `true` if the instruction was squashed (mispredict or context
    /// switch) instead of retiring.
    pub squashed: bool,
}

impl InstTrace {
    /// Cycles from fetch to retirement (`None` for squashed instructions).
    pub fn lifetime(&self) -> Option<u64> {
        self.retired.map(|r| r - self.fetched)
    }
}

/// Renders traces whose lifetime intersects `[from, to]` as an ASCII
/// pipeline diagram (see the module docs for the legend).
pub fn render(traces: &[InstTrace], from: u64, to: u64) -> String {
    use std::fmt::Write as _;
    assert!(from <= to, "empty cycle range");
    let width = (to - from + 1) as usize;
    let mut out = String::new();
    let mut ruler = String::new();
    let mut i = from;
    while i <= to {
        if i.is_multiple_of(10) {
            let label = i.to_string();
            ruler.push_str(&label);
            i += label.len() as u64;
        } else {
            ruler.push(' ');
            i += 1;
        }
    }
    let _ = writeln!(out, "cycle{:20}{}", "", ruler);
    let _ = writeln!(out, "{:>4} {:>4} {:14}", "seq", "pc", "inst");
    for t in traces {
        let last = t
            .retired
            .or(t.completed)
            .or(t.issued)
            .unwrap_or(t.dispatched);
        if last < from || t.fetched > to {
            continue;
        }
        let mut lane = vec![' '; width];
        let mut put = |cycle: u64, ch: char| {
            if cycle >= from && cycle <= to {
                let slot = &mut lane[(cycle - from) as usize];
                // Later stages override the in-flight filler only.
                if *slot == ' ' || *slot == '-' {
                    *slot = ch;
                }
            }
        };
        for c in t.fetched..=last {
            put(c, '-');
        }
        put(t.fetched, 'F');
        put(t.dispatched, 'D');
        if let Some(c) = t.issued {
            put(c, 'I');
        }
        if let Some(c) = t.completed {
            put(c, 'C');
        }
        // Retirement (or the squash point) always wins its cycle: for
        // head-issued uncached operations, issue/complete/retire coincide
        // and `R` is the interesting one.
        let mut put_final = |cycle: u64, ch: char| {
            if cycle >= from && cycle <= to {
                lane[(cycle - from) as usize] = ch;
            }
        };
        match t.retired {
            Some(c) => put_final(c, 'R'),
            None => put_final(last, 'x'),
        }
        let text: String = t.text.chars().take(14).collect();
        let _ = writeln!(
            out,
            "{:>4} {:>4} {:14} {}",
            t.seq,
            t.pc,
            text,
            lane.into_iter().collect::<String>().trim_end()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::port::SimpleMemPort;
    use crate::{Cpu, CpuConfig};
    use csb_isa::{AluOp, Assembler, Reg};

    fn traced_run(f: impl FnOnce(&mut Assembler)) -> Cpu {
        let mut a = Assembler::new();
        f(&mut a);
        let program = a.assemble().unwrap();
        let mut cpu = Cpu::new(CpuConfig::default(), program);
        cpu.enable_trace();
        let mut port = SimpleMemPort::new();
        cpu.run(&mut port, 100_000).unwrap();
        cpu
    }

    #[test]
    fn trace_records_every_retired_instruction_in_order() {
        let cpu = traced_run(|a| {
            a.movi(Reg::L0, 1);
            a.alui(AluOp::Add, Reg::L1, Reg::L0, 2);
            a.halt();
        });
        let t = cpu.trace();
        assert_eq!(t.len(), 3);
        assert!(t.windows(2).all(|w| w[0].retired <= w[1].retired));
        let add = &t[1];
        assert!(add.fetched <= add.dispatched);
        assert!(add.dispatched <= add.issued.unwrap());
        assert!(add.issued.unwrap() < add.completed.unwrap());
        assert!(add.completed.unwrap() <= add.retired.unwrap());
        assert!(add.lifetime().unwrap() > 0);
        assert!(!add.squashed);
    }

    #[test]
    fn dependent_chain_issues_in_dataflow_order() {
        let cpu = traced_run(|a| {
            a.movi(Reg::L0, 1);
            for _ in 0..4 {
                a.alui(AluOp::Add, Reg::L0, Reg::L0, 1);
            }
            a.halt();
        });
        let t = cpu.trace();
        let issues: Vec<u64> = t[1..5].iter().map(|x| x.issued.unwrap()).collect();
        assert!(
            issues.windows(2).all(|w| w[0] < w[1]),
            "serial chain: {issues:?}"
        );
    }

    #[test]
    fn squashed_instructions_are_marked() {
        let cpu = traced_run(|a| {
            let skip = a.new_label();
            a.movi(Reg::L0, 1);
            a.cmpi(Reg::L0, 1);
            a.bz(skip); // forward taken: mispredicted
            a.movi(Reg::L1, 99); // squashed
            a.bind(skip).unwrap();
            a.halt();
        });
        let t = cpu.trace();
        assert!(t.iter().any(|x| x.squashed), "wrong-path work must appear");
        assert!(t.iter().filter(|x| x.squashed).all(|x| x.retired.is_none()));
    }

    #[test]
    fn render_produces_diagram() {
        let cpu = traced_run(|a| {
            a.movi(Reg::L0, 7);
            a.halt();
        });
        let end = cpu.now();
        let s = render(cpu.trace(), 0, end);
        assert!(s.contains('F'));
        assert!(s.contains('R'));
        assert!(s.contains("set 7"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn render_clips_to_window() {
        let cpu = traced_run(|a| {
            a.movi(Reg::L0, 7);
            a.nop();
            a.halt();
        });
        let s = render(cpu.trace(), 1_000, 1_010);
        // Nothing retires that late: only headers remain.
        assert_eq!(s.lines().count(), 2);
    }

    #[test]
    #[should_panic(expected = "empty cycle range")]
    fn render_rejects_bad_range() {
        render(&[], 5, 4);
    }

    #[test]
    fn trace_off_by_default() {
        let mut a = Assembler::new();
        a.halt();
        let mut cpu = Cpu::new(CpuConfig::default(), a.assemble().unwrap());
        let mut port = SimpleMemPort::new();
        cpu.run(&mut port, 1_000).unwrap();
        assert!(cpu.trace().is_empty());
    }
}
