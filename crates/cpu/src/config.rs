//! Processor configuration.

use serde::{Deserialize, Serialize};

/// Microarchitectural parameters of the out-of-order core.
///
/// The default matches the paper's configuration (§4.1): 4-wide dispatch and
/// retire, two integer and two floating-point units, speculative address
/// calculation, and one non-speculative uncached operation per cycle.
///
/// # Examples
///
/// ```
/// use csb_cpu::CpuConfig;
///
/// let four = CpuConfig::default();
/// assert_eq!(four.fetch_width, 4);
///
/// // The paper's superscalar-width ablation (§4.3.2) uses 2- and 8-wide
/// // machines; the lock overhead is expected not to change.
/// let two = CpuConfig::superscalar(2);
/// assert_eq!(two.int_units, 1);
/// let eight = CpuConfig::superscalar(8);
/// assert_eq!(eight.retire_width, 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpuConfig {
    /// Instructions fetched (and dispatched) per cycle.
    pub fetch_width: usize,
    /// Instructions retired per cycle.
    pub retire_width: usize,
    /// Integer ALUs (branches also resolve on an integer unit).
    pub int_units: usize,
    /// Floating-point units.
    pub fp_units: usize,
    /// Address-generation slots per cycle in the memory queue.
    pub agen_units: usize,
    /// Reorder-buffer capacity.
    pub rob_size: usize,
    /// Fetch-queue capacity.
    pub fetch_queue: usize,
    /// Integer ALU latency in cycles.
    pub int_latency: u64,
    /// Floating-point latency in cycles.
    pub fp_latency: u64,
    /// Address-generation latency in cycles.
    pub agen_latency: u64,
    /// Non-speculative uncached operations issued per cycle at retirement.
    pub uncached_per_cycle: usize,
    /// Cycles the conditional-flush `swap` occupies before its result is
    /// available to dependent instructions.
    pub flush_latency: u64,
}

impl Default for CpuConfig {
    fn default() -> Self {
        Self::superscalar(4)
    }
}

impl CpuConfig {
    /// A `width`-wide machine with `width / 2` units of each kind (minimum
    /// one), scaled the way the paper's 2-way/4-way/8-way comparison implies.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn superscalar(width: usize) -> Self {
        assert!(width > 0, "width must be nonzero");
        let units = (width / 2).max(1);
        CpuConfig {
            fetch_width: width,
            retire_width: width,
            int_units: units,
            fp_units: units,
            agen_units: units,
            rob_size: 16 * width,
            fetch_queue: 4 * width,
            int_latency: 1,
            fp_latency: 2,
            agen_latency: 1,
            uncached_per_cycle: 1,
            flush_latency: 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_machine() {
        let c = CpuConfig::default();
        assert_eq!(c.fetch_width, 4);
        assert_eq!(c.retire_width, 4);
        assert_eq!(c.int_units, 2);
        assert_eq!(c.fp_units, 2);
        assert_eq!(c.uncached_per_cycle, 1);
    }

    #[test]
    fn superscalar_scaling() {
        assert_eq!(CpuConfig::superscalar(1).int_units, 1);
        assert_eq!(CpuConfig::superscalar(8).int_units, 4);
        assert_eq!(CpuConfig::superscalar(2).rob_size, 32);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_width_rejected() {
        CpuConfig::superscalar(0);
    }
}
