//! The processor's connection to the memory system, uncached buffer, and
//! conditional store buffer.

use std::collections::HashMap;

use csb_isa::{Addr, AddressMap, AddressSpace};
use csb_mem::AccessKind;

use crate::Pid;

/// Everything outside the core that the pipeline talks to.
///
/// `csb-core` implements this over the real bus/buffer/CSB models; tests use
/// [`SimpleMemPort`]. All `now` parameters and returned times are CPU
/// cycles.
///
/// The `bool`-returning uncached methods implement flow control: `false`
/// means "stall and retry next cycle" (buffer full, CSB busy). The `_poll`
/// methods complete split transactions: they return `Some(value)` once the
/// bus round trip identified by `tag` has finished.
pub trait MemPort {
    /// Page attribute of `addr` (the TLB lookup).
    fn space_of(&self, addr: Addr) -> AddressSpace;

    /// Starts a timed cached access; returns its completion cycle.
    fn cached_access(&mut self, addr: Addr, kind: AccessKind, now: u64) -> u64;

    /// Functional read of `width` bytes.
    fn read(&mut self, addr: Addr, width: usize) -> u64;

    /// Functional write of `width` bytes.
    fn write(&mut self, addr: Addr, width: usize, value: u64);

    /// Functional atomic swap of the 8-byte word at `addr`; returns the old
    /// value. (Timing comes from [`MemPort::cached_access`] with
    /// [`AccessKind::Atomic`].)
    fn swap_value(&mut self, addr: Addr, new: u64) -> u64;

    /// Offers an uncached store to the uncached buffer.
    fn uncached_store(&mut self, addr: Addr, width: usize, value: u64) -> bool;

    /// Issues an uncached load; the value arrives via
    /// [`MemPort::uncached_load_poll`] under `tag`.
    fn uncached_load(&mut self, addr: Addr, width: usize, tag: u64) -> bool;

    /// Polls for the completion of uncached load `tag`.
    fn uncached_load_poll(&mut self, tag: u64) -> Option<u64>;

    /// Issues an atomic swap to plain uncached space (a full bus round
    /// trip); the old value arrives via [`MemPort::uncached_swap_poll`].
    fn uncached_swap(&mut self, addr: Addr, width: usize, value: u64, tag: u64) -> bool;

    /// Polls for the completion of uncached swap `tag`.
    fn uncached_swap_poll(&mut self, tag: u64) -> Option<u64>;

    /// `true` when the uncached buffer has handed everything to the bus —
    /// the condition `membar` retirement waits for.
    fn uncached_drained(&self) -> bool;

    /// Offers a combining store to the CSB.
    fn csb_store(&mut self, pid: Pid, addr: Addr, width: usize, value: u64) -> bool;

    /// `true` if the CSB can accept a conditional flush this cycle.
    fn csb_can_flush(&self) -> bool;

    /// Executes a conditional flush; returns the value left in the `swap`
    /// register (`expected` on success, 0 on failure).
    fn csb_flush(&mut self, pid: Pid, addr: Addr, expected: u64) -> u64;

    // ------------------------------------------------------------------
    // Pure peeks for the fast-forward path. Each mirrors the acceptance
    // predicate of the corresponding mutating method without side effects
    // (no stall counters, no trace events, no state changes), so the
    // simulator can prove a stalled cycle would repeat and skip it.
    //
    // Defaults return `true` ("would make progress"), which is always
    // safe: over-claiming activity only costs a real tick, never
    // correctness.
    // ------------------------------------------------------------------

    /// `true` if [`MemPort::uncached_store`] would currently succeed.
    fn uncached_store_would_accept(&self, _addr: Addr, _width: usize) -> bool {
        true
    }

    /// `true` if [`MemPort::uncached_load`] (or an uncached swap issue,
    /// which shares the buffer-entry path) would currently succeed.
    fn uncached_load_would_accept(&self) -> bool {
        true
    }

    /// `true` if [`MemPort::csb_store`] would currently succeed.
    fn csb_store_would_accept(&self) -> bool {
        true
    }

    /// `true` if [`MemPort::uncached_load_poll`] for `tag` would return a
    /// value this cycle.
    fn uncached_load_ready(&self, _tag: u64) -> bool {
        true
    }

    /// `true` if [`MemPort::uncached_swap_poll`] for `tag` would return a
    /// value this cycle.
    fn uncached_swap_ready(&self, _tag: u64) -> bool {
        true
    }
}

/// A minimal, latency-one port for unit tests and examples.
///
/// Cached accesses complete in one cycle; uncached operations are accepted
/// unconditionally and complete `uncached_latency` cycles later; the CSB is
/// emulated as always-successful commits into flat memory. The order of all
/// uncached operations is recorded for assertions.
///
/// # Examples
///
/// ```
/// use csb_cpu::{MemPort, SimpleMemPort};
/// use csb_isa::Addr;
///
/// let mut p = SimpleMemPort::new();
/// p.write(Addr::new(0x100), 8, 77);
/// assert_eq!(p.read(Addr::new(0x100), 8), 77);
/// assert!(p.uncached_store(Addr::new(0x1000_0000), 8, 5));
/// assert_eq!(p.uncached_log().len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct SimpleMemPort {
    mem: HashMap<u64, u8>,
    map: AddressMap,
    uncached_latency: u64,
    pending_loads: HashMap<u64, (u64, u64)>, // tag -> (ready_at, value)
    pending_swaps: HashMap<u64, (u64, u64)>,
    now_hint: u64,
    log: Vec<(Addr, usize, u64)>,
    csb_count: u64,
    /// When set, combining stores and flushes are refused `refuse_csb` times
    /// (to exercise stall paths).
    pub refuse_csb: u32,
}

impl SimpleMemPort {
    /// Creates a port whose every address is cached.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a port using `map` for page attributes and the given
    /// uncached round-trip latency.
    pub fn with_map(map: AddressMap, uncached_latency: u64) -> Self {
        SimpleMemPort {
            map,
            uncached_latency,
            ..Self::default()
        }
    }

    /// The ordered log of uncached/combining operations `(addr, width,
    /// value)`.
    pub fn uncached_log(&self) -> &[(Addr, usize, u64)] {
        &self.log
    }

    fn read_raw(&self, addr: Addr, width: usize) -> u64 {
        let mut v = 0u64;
        for i in (0..width).rev() {
            v = (v << 8) | u64::from(*self.mem.get(&(addr.raw() + i as u64)).unwrap_or(&0));
        }
        v
    }

    fn write_raw(&mut self, addr: Addr, width: usize, value: u64) {
        for i in 0..width {
            self.mem
                .insert(addr.raw() + i as u64, (value >> (8 * i)) as u8);
        }
    }
}

impl MemPort for SimpleMemPort {
    fn space_of(&self, addr: Addr) -> AddressSpace {
        self.map.space_of(addr)
    }

    fn cached_access(&mut self, _addr: Addr, _kind: AccessKind, now: u64) -> u64 {
        self.now_hint = now;
        now + 1
    }

    fn read(&mut self, addr: Addr, width: usize) -> u64 {
        self.read_raw(addr, width)
    }

    fn write(&mut self, addr: Addr, width: usize, value: u64) {
        self.write_raw(addr, width, value);
    }

    fn swap_value(&mut self, addr: Addr, new: u64) -> u64 {
        let old = self.read_raw(addr, 8);
        self.write_raw(addr, 8, new);
        old
    }

    fn uncached_store(&mut self, addr: Addr, width: usize, value: u64) -> bool {
        self.write_raw(addr, width, value);
        self.log.push((addr, width, value));
        true
    }

    fn uncached_load(&mut self, addr: Addr, width: usize, tag: u64) -> bool {
        let v = self.read_raw(addr, width);
        self.pending_loads
            .insert(tag, (self.now_hint + self.uncached_latency, v));
        true
    }

    fn uncached_load_poll(&mut self, tag: u64) -> Option<u64> {
        // SimpleMemPort has no clock of its own; completions are immediate
        // unless a latency was configured, in which case they are released
        // on the first poll after `ready_at` (polls happen every cycle).
        let (ready_at, v) = *self.pending_loads.get(&tag)?;
        self.now_hint += 1;
        if self.now_hint >= ready_at {
            self.pending_loads.remove(&tag);
            Some(v)
        } else {
            None
        }
    }

    fn uncached_swap(&mut self, addr: Addr, width: usize, value: u64, tag: u64) -> bool {
        let old = self.read_raw(addr, width);
        self.write_raw(addr, width, value);
        self.log.push((addr, width, value));
        self.pending_swaps
            .insert(tag, (self.now_hint + self.uncached_latency, old));
        true
    }

    fn uncached_swap_poll(&mut self, tag: u64) -> Option<u64> {
        let (ready_at, v) = *self.pending_swaps.get(&tag)?;
        self.now_hint += 1;
        if self.now_hint >= ready_at {
            self.pending_swaps.remove(&tag);
            Some(v)
        } else {
            None
        }
    }

    fn uncached_drained(&self) -> bool {
        true
    }

    fn csb_store(&mut self, _pid: Pid, addr: Addr, width: usize, value: u64) -> bool {
        if self.refuse_csb > 0 {
            self.refuse_csb -= 1;
            return false;
        }
        self.write_raw(addr, width, value);
        self.log.push((addr, width, value));
        self.csb_count += 1;
        true
    }

    fn csb_can_flush(&self) -> bool {
        self.refuse_csb == 0
    }

    fn csb_flush(&mut self, _pid: Pid, _addr: Addr, expected: u64) -> u64 {
        let count = std::mem::take(&mut self.csb_count);
        if count == expected {
            expected
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn functional_memory() {
        let mut p = SimpleMemPort::new();
        p.write(Addr::new(0x10), 8, 0xdead_beef);
        assert_eq!(p.read(Addr::new(0x10), 8), 0xdead_beef);
        assert_eq!(p.swap_value(Addr::new(0x10), 7), 0xdead_beef);
        assert_eq!(p.read(Addr::new(0x10), 8), 7);
    }

    #[test]
    fn csb_emulation_counts_stores() {
        let mut p = SimpleMemPort::new();
        p.csb_store(1, Addr::new(0x100), 8, 1);
        p.csb_store(1, Addr::new(0x108), 8, 2);
        assert_eq!(p.csb_flush(1, Addr::new(0x100), 2), 2);
        // Counter reset by the flush.
        assert_eq!(p.csb_flush(1, Addr::new(0x100), 2), 0);
    }

    #[test]
    fn refusal_exercises_stall_path() {
        let mut p = SimpleMemPort {
            refuse_csb: 2,
            ..SimpleMemPort::default()
        };
        assert!(!p.csb_store(1, Addr::new(0), 8, 0));
        assert!(!p.csb_can_flush());
        assert!(!p.csb_store(1, Addr::new(0), 8, 0)); // second refusal
        assert!(p.csb_can_flush());
        assert!(p.csb_store(1, Addr::new(0), 8, 0));
    }

    #[test]
    fn uncached_round_trip() {
        let mut p = SimpleMemPort::new();
        p.write(Addr::new(0x20), 4, 0x55);
        assert!(p.uncached_load(Addr::new(0x20), 4, 9));
        assert_eq!(p.uncached_load_poll(9), Some(0x55));
        assert_eq!(p.uncached_load_poll(9), None);
    }
}
