//! The dynamically scheduled out-of-order processor model.
//!
//! This is the reproduction's stand-in for RSIM (Rice, 1997), configured as
//! in the paper's §4.1: a unified dispatch window tracking true data
//! dependences and structural hazards, out-of-order issue as operands become
//! ready, and strictly in-order retirement for precise interrupts. The
//! default machine dispatches and retires up to four instructions per cycle
//! into two integer units, two floating-point units, and an address-
//! generation/memory queue.
//!
//! The property the whole paper rests on is the split between the two
//! memory paths:
//!
//! * **cached** operations are speculative — loads execute as soon as their
//!   address is known and no older store might alias it;
//! * **uncached** operations (including combining stores and the
//!   conditional flush) are non-speculative, issued strictly in program
//!   order *at retirement*, at most one per cycle, and never forwarded —
//!   every one must reach the bus exactly once because I/O accesses can
//!   have side effects.
//!
//! The processor is connected to the rest of the machine through the
//! [`MemPort`] trait, implemented by the simulator facade in `csb-core` (and
//! by lightweight mocks in this crate's tests).
//!
//! # Examples
//!
//! Running a small program against the test port:
//!
//! ```
//! use csb_cpu::{Cpu, CpuConfig, SimpleMemPort};
//! use csb_isa::{Assembler, Reg};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut a = Assembler::new();
//! a.movi(Reg::L0, 6);
//! a.alui(csb_isa::AluOp::Add, Reg::L1, Reg::L0, 36);
//! a.halt();
//! let program = a.assemble()?;
//!
//! let mut cpu = Cpu::new(CpuConfig::default(), program);
//! let mut port = SimpleMemPort::new();
//! let stats = cpu.run(&mut port, 10_000)?;
//! assert_eq!(cpu.context().int_reg(Reg::L1), 42);
//! assert!(stats.cycles < 100);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod context;
mod core;
mod port;
mod stats;

pub mod reference;
pub mod trace;

pub use config::CpuConfig;
pub use context::CpuContext;
pub use core::{Cpu, CpuHorizon, RunError, StallCause};
pub use port::{MemPort, SimpleMemPort};
pub use reference::Interpreter;
pub use stats::CpuStats;
pub use trace::InstTrace;

/// Process identifier presented to the CSB (mirrors
/// `csb_uncached::Pid` without coupling the crates).
pub type Pid = u32;
