//! Cycle-level system bus models for the CSB reproduction.
//!
//! The paper evaluates the conditional store buffer on two bus
//! organizations (§4.1):
//!
//! * a **multiplexed** bus, where address and data share one set of wires —
//!   every transaction spends one extra cycle transferring the address;
//! * a **split** address/data bus (Sun UPA, PowerPC 60x style), where the
//!   address travels on its own path and a transaction occupies the data
//!   path only for its data beats.
//!
//! Both are fully pipelined with arbitration overlapped with the current
//! transaction. The configurable overheads studied in Figures 3(g–i) and
//! 4(c–e) are modeled directly:
//!
//! * `turnaround` — idle cycles inserted after every transaction (some buses
//!   require one even between transactions driven by the same master; also an
//!   approximation of a loaded bus),
//! * `min_addr_delay` — minimum spacing between address cycles. This models
//!   selective flow control: the target acknowledges a transaction a fixed
//!   number of cycles after its address cycle, and because uncached I/O
//!   accesses must remain *strongly ordered*, the interface cannot pipeline a
//!   transaction with the previous one's acknowledgment.
//!
//! Transfer sizes are powers of two from 1 byte up to one cache line, and
//! every transaction must be naturally aligned — the restriction that shapes
//! the combining results.
//!
//! All times in this crate are **bus cycles**. The simulator layer converts
//! between CPU and bus cycles with the processor:bus frequency ratio.
//!
//! # Examples
//!
//! ```
//! use csb_bus::{BusConfig, BusKind, SystemBus, Transaction, TxnKind};
//! use csb_isa::Addr;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = BusConfig::multiplexed(8).max_burst(64).build()?;
//! let mut bus = SystemBus::new(cfg);
//!
//! // A doubleword store: 1 address cycle + 1 data cycle.
//! let txn = Transaction::write(Addr::new(0x1000), 8).payload(8);
//! let issued = bus.try_issue(0, txn)?.expect("bus idle");
//! assert_eq!(issued.completes_at, 1);
//!
//! // A full-line burst: 1 address cycle + 8 data cycles.
//! let burst = Transaction::write(Addr::new(0x1040), 64).payload(64);
//! let issued = bus.try_issue(2, burst)?.expect("bus free again");
//! assert_eq!(issued.completes_at, 10);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod stats;
mod system;
mod transaction;

pub use config::{BackgroundTraffic, BusConfig, BusConfigBuilder, BusConfigError, BusKind};
pub use stats::{BusStats, SizeHistogram};
pub use system::{BusLogEntry, Issued, SystemBus};
pub use transaction::{Transaction, TxnError, TxnKind};
