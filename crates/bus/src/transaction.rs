//! Bus transactions.

use std::fmt;

use csb_isa::Addr;
use serde::{Deserialize, Serialize};

/// Direction/origin of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TxnKind {
    /// Uncached write (single-beat or burst) from the uncached buffer or CSB.
    Write,
    /// Uncached read.
    Read,
}

impl fmt::Display for TxnKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnKind::Write => f.write_str("write"),
            TxnKind::Read => f.write_str("read"),
        }
    }
}

/// A single bus transaction: a naturally aligned, power-of-two-sized
/// transfer.
///
/// `payload` tracks how many of the transferred bytes are program data (as
/// opposed to zero padding in a full-line CSB burst); effective-bandwidth
/// statistics count only payload bytes, which is how the paper penalizes the
/// CSB for transfers much smaller than a cache line.
///
/// # Examples
///
/// ```
/// use csb_bus::Transaction;
/// use csb_isa::Addr;
///
/// // A CSB line flush carrying only 16 bytes of program data.
/// let txn = Transaction::write(Addr::new(0x2000_0000), 64)
///     .payload(16)
///     .tag(7);
/// assert_eq!(txn.size, 64);
/// assert_eq!(txn.payload, 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transaction {
    /// Start address (must be aligned to `size`).
    pub addr: Addr,
    /// Transfer size in bytes (power of two, at most one cache line).
    pub size: usize,
    /// Read or write.
    pub kind: TxnKind,
    /// Program bytes carried (≤ `size`; the rest is padding).
    pub payload: usize,
    /// Caller-chosen identifier, reported back on completion.
    pub tag: u64,
}

impl Transaction {
    /// Creates a write transaction with payload equal to its size.
    pub fn write(addr: Addr, size: usize) -> Self {
        Transaction {
            addr,
            size,
            kind: TxnKind::Write,
            payload: size,
            tag: 0,
        }
    }

    /// Creates a read transaction.
    pub fn read(addr: Addr, size: usize) -> Self {
        Transaction {
            addr,
            size,
            kind: TxnKind::Read,
            payload: size,
            tag: 0,
        }
    }

    /// Sets the payload byte count (for padded bursts).
    pub fn payload(mut self, bytes: usize) -> Self {
        self.payload = bytes;
        self
    }

    /// Sets the completion tag.
    pub fn tag(mut self, tag: u64) -> Self {
        self.tag = tag;
        self
    }
}

impl fmt::Display for Transaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}B @ {} (payload {}B)",
            self.kind, self.size, self.addr, self.payload
        )
    }
}

/// A transaction rejected by the bus as architecturally illegal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnError {
    /// Size is zero, not a power of two, or exceeds the maximum burst.
    BadSize {
        /// Offending size.
        size: usize,
        /// The bus's maximum burst.
        max_burst: usize,
    },
    /// The address is not naturally aligned to the transfer size.
    Misaligned {
        /// Offending address.
        addr: Addr,
        /// Transfer size.
        size: usize,
    },
    /// Payload exceeds the transfer size.
    BadPayload {
        /// Offending payload.
        payload: usize,
        /// Transfer size.
        size: usize,
    },
}

impl fmt::Display for TxnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnError::BadSize { size, max_burst } => write!(
                f,
                "transfer size {size} is not a power of two in 1..={max_burst}"
            ),
            TxnError::Misaligned { addr, size } => {
                write!(f, "address {addr} is not naturally aligned to {size} bytes")
            }
            TxnError::BadPayload { payload, size } => {
                write!(f, "payload {payload} exceeds transfer size {size}")
            }
        }
    }
}

impl std::error::Error for TxnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders() {
        let t = Transaction::write(Addr::new(0x40), 64).payload(8).tag(3);
        assert_eq!(t.kind, TxnKind::Write);
        assert_eq!(t.payload, 8);
        assert_eq!(t.tag, 3);
        let r = Transaction::read(Addr::new(0x8), 8);
        assert_eq!(r.kind, TxnKind::Read);
        assert_eq!(r.payload, 8);
    }

    #[test]
    fn displays() {
        let t = Transaction::write(Addr::new(0x40), 64).payload(8);
        assert_eq!(t.to_string(), "write 64B @ 0x40 (payload 8B)");
        assert!(TxnError::BadSize {
            size: 3,
            max_burst: 64
        }
        .to_string()
        .contains('3'));
        assert!(!TxnKind::Read.to_string().is_empty());
    }
}
