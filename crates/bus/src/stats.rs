//! Bus statistics and the effective-bandwidth metric.

use serde::{Deserialize, Serialize};

/// Number of power-of-two size buckets: transfers are 1..=128 bytes.
const SIZE_BUCKETS: usize = 8;

/// Transactions per transfer size, held in a fixed array indexed by
/// `log2(size)` so recording a transaction never allocates (transfer sizes
/// are powers of two up to 128 bytes). Serializes as the same JSON object
/// of `"size": count` pairs, ascending, that the earlier
/// `BTreeMap<usize, u64>` field produced — checked-in artifacts are
/// unchanged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SizeHistogram {
    counts: [u64; SIZE_BUCKETS],
}

impl SizeHistogram {
    fn bucket(size: usize) -> usize {
        assert!(
            size.is_power_of_two() && size <= 1 << (SIZE_BUCKETS - 1),
            "transfer size {size} is not a power of two in 1..=128"
        );
        size.trailing_zeros() as usize
    }

    /// Counts one transaction of `size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not a power of two in `1..=128`.
    pub fn add(&mut self, size: usize) {
        self.counts[Self::bucket(size)] += 1;
    }

    /// Transactions recorded at `size` bytes (0 for sizes never seen).
    pub fn get(&self, size: usize) -> u64 {
        self.counts[Self::bucket(size)]
    }

    /// `(size, count)` pairs for every size with a nonzero count, in
    /// ascending size order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(b, &n)| (1usize << b, n))
    }

    /// Returns `true` if no transaction has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&n| n == 0)
    }
}

impl std::ops::Index<usize> for SizeHistogram {
    type Output = u64;

    fn index(&self, size: usize) -> &u64 {
        &self.counts[Self::bucket(size)]
    }
}

impl Serialize for SizeHistogram {
    fn to_value(&self) -> serde::value::Value {
        serde::value::Value::Object(
            self.iter()
                .map(|(size, n)| (size.to_string(), n.to_value()))
                .collect(),
        )
    }
}

impl Deserialize for SizeHistogram {
    fn from_value(v: &serde::value::Value) -> Result<Self, serde::de::Error> {
        let serde::value::Value::Object(entries) = v else {
            return Err(serde::de::Error::mismatch("SizeHistogram", v));
        };
        let mut h = SizeHistogram::default();
        for (k, count) in entries {
            let size: usize = k
                .parse()
                .map_err(|_| serde::de::Error::mismatch("SizeHistogram key", v))?;
            if !size.is_power_of_two() || size > 1 << (SIZE_BUCKETS - 1) {
                return Err(serde::de::Error::mismatch("SizeHistogram key", v));
            }
            h.counts[size.trailing_zeros() as usize] = u64::from_value(count)?;
        }
        Ok(h)
    }
}

/// Counters accumulated by [`crate::SystemBus`].
///
/// The effective-bandwidth metric matches the paper's definition: payload
/// bytes divided by the bus cycles from the first transaction's address
/// cycle through the last transaction's final data cycle, inclusive. A
/// turnaround cycle following the final transaction is *not* counted ("the
/// transfer is considered complete at the end of the last transaction",
/// §4.3.1).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BusStats {
    /// Transactions issued.
    pub transactions: u64,
    /// Raw bytes moved (including padding).
    pub bytes_on_bus: u64,
    /// Program bytes moved.
    pub payload_bytes: u64,
    /// Bus cycles spent occupied by transactions.
    pub busy_cycles: u64,
    /// Address cycle of the first transaction, if any.
    pub first_addr_cycle: Option<u64>,
    /// Final data cycle of the last transaction, if any.
    pub last_data_cycle: Option<u64>,
    /// Transactions per transfer size.
    pub size_histogram: SizeHistogram,
    /// Foreign-master transactions interleaved by the background-traffic
    /// model.
    pub foreign_transactions: u64,
    /// Bus cycles consumed by foreign masters.
    pub foreign_cycles: u64,
}

impl BusStats {
    /// Records one issued transaction.
    pub(crate) fn record(
        &mut self,
        addr_cycle: u64,
        completes_at: u64,
        size: usize,
        payload: usize,
    ) {
        self.transactions += 1;
        self.bytes_on_bus += size as u64;
        self.payload_bytes += payload as u64;
        self.busy_cycles += completes_at - addr_cycle + 1;
        if self.first_addr_cycle.is_none() {
            self.first_addr_cycle = Some(addr_cycle);
        }
        self.last_data_cycle = Some(self.last_data_cycle.unwrap_or(0).max(completes_at));
        self.size_histogram.add(size);
    }

    /// Records one foreign-master occupancy.
    pub(crate) fn record_foreign(&mut self, cycles: u64) {
        self.foreign_transactions += 1;
        self.foreign_cycles += cycles;
    }

    /// Serializes every counter.
    pub fn save_state(&self, w: &mut csb_snap::SnapshotWriter) {
        w.put_tag("bus_stats");
        w.put_u64(self.transactions);
        w.put_u64(self.bytes_on_bus);
        w.put_u64(self.payload_bytes);
        w.put_u64(self.busy_cycles);
        w.put_opt_u64(self.first_addr_cycle);
        w.put_opt_u64(self.last_data_cycle);
        for c in &self.size_histogram.counts {
            w.put_u64(*c);
        }
        w.put_u64(self.foreign_transactions);
        w.put_u64(self.foreign_cycles);
    }

    /// Restores counters written by [`BusStats::save_state`].
    ///
    /// # Errors
    ///
    /// [`csb_snap::SnapshotError`] on a malformed stream.
    pub fn restore_state(
        &mut self,
        r: &mut csb_snap::SnapshotReader<'_>,
    ) -> Result<(), csb_snap::SnapshotError> {
        r.take_tag("bus_stats")?;
        self.transactions = r.take_u64()?;
        self.bytes_on_bus = r.take_u64()?;
        self.payload_bytes = r.take_u64()?;
        self.busy_cycles = r.take_u64()?;
        self.first_addr_cycle = r.take_opt_u64()?;
        self.last_data_cycle = r.take_opt_u64()?;
        for c in &mut self.size_histogram.counts {
            *c = r.take_u64()?;
        }
        self.foreign_transactions = r.take_u64()?;
        self.foreign_cycles = r.take_u64()?;
        Ok(())
    }

    /// Bus cycles from the first address cycle through the last data cycle,
    /// inclusive. Zero if no transaction was issued.
    pub fn window_cycles(&self) -> u64 {
        match (self.first_addr_cycle, self.last_data_cycle) {
            (Some(f), Some(l)) => l - f + 1,
            _ => 0,
        }
    }

    /// Effective bandwidth in payload bytes per bus cycle over the window.
    ///
    /// Returns 0.0 if no transaction was issued.
    pub fn effective_bandwidth(&self) -> f64 {
        let w = self.window_cycles();
        if w == 0 {
            0.0
        } else {
            self.payload_bytes as f64 / w as f64
        }
    }

    /// Fraction of transferred bytes that were padding (0.0 when nothing
    /// was transferred).
    pub fn padding_fraction(&self) -> f64 {
        if self.bytes_on_bus == 0 {
            0.0
        } else {
            1.0 - self.payload_bytes as f64 / self.bytes_on_bus as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats() {
        let s = BusStats::default();
        assert_eq!(s.window_cycles(), 0);
        assert_eq!(s.effective_bandwidth(), 0.0);
        assert_eq!(s.padding_fraction(), 0.0);
    }

    #[test]
    fn window_and_bandwidth() {
        let mut s = BusStats::default();
        // Two back-to-back 2-cycle doubleword transactions: cycles 0-1, 2-3.
        s.record(0, 1, 8, 8);
        s.record(2, 3, 8, 8);
        assert_eq!(s.window_cycles(), 4);
        assert_eq!(s.effective_bandwidth(), 4.0); // the paper's 4 B/cycle
        assert_eq!(s.transactions, 2);
        assert_eq!(s.busy_cycles, 4);
        assert_eq!(s.size_histogram[8], 2);
    }

    #[test]
    fn padding_counted() {
        let mut s = BusStats::default();
        // A CSB full-line burst carrying two doublewords of payload.
        s.record(0, 8, 64, 16);
        assert_eq!(s.bytes_on_bus, 64);
        assert_eq!(s.payload_bytes, 16);
        assert!((s.padding_fraction() - 0.75).abs() < 1e-12);
        assert!((s.effective_bandwidth() - 16.0 / 9.0).abs() < 1e-12);
    }
}
