//! The system bus: occupancy, ordering, and completion tracking.

use csb_faults::{FaultInjector, FaultKind};
use csb_obs::{EventKind, TraceSink, Track};
use serde::{Deserialize, Serialize};

use crate::config::BusConfig;
use crate::stats::BusStats;
use crate::transaction::{Transaction, TxnError};

/// Issue receipt returned by [`SystemBus::try_issue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Issued {
    /// The transaction's address cycle (= the issue cycle).
    pub addr_cycle: u64,
    /// The transaction's final data cycle (inclusive).
    pub completes_at: u64,
    /// Tag copied from the transaction.
    pub tag: u64,
}

impl Issued {
    /// The bus cycle the destination observes the transfer: the cycle
    /// after the final data cycle. For reads this is when the returned
    /// value is available to the master; for writes, when the device has
    /// the payload. Together with [`Issued::addr_cycle`] and
    /// [`Issued::completes_at`] this is the transaction's complete
    /// timeline, frozen at [`SystemBus::try_issue`] time.
    pub fn delivery_cycle(&self) -> u64 {
        self.completes_at + 1
    }
}

/// One entry of the optional per-transaction log (see
/// [`SystemBus::enable_log`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BusLogEntry {
    /// Address cycle.
    pub addr_cycle: u64,
    /// Final data cycle (inclusive).
    pub completes_at: u64,
    /// Transfer size in bytes.
    pub size: usize,
    /// Read or write (always write for foreign traffic).
    pub kind: crate::transaction::TxnKind,
    /// `true` for a foreign-master occupancy from the background-traffic
    /// model.
    pub foreign: bool,
    /// The transaction's tag (0 for foreign traffic).
    pub tag: u64,
}

/// A cycle-level system bus shared by memory and I/O traffic.
///
/// The model enforces the paper's ordering rules for uncached traffic:
/// transactions never overlap, a configurable turnaround separates them, and
/// consecutive address cycles are at least `min_addr_delay` apart (the
/// unpipelined-acknowledgment penalty for strongly ordered I/O accesses).
///
/// Drive it by polling: call [`SystemBus::can_accept`] each bus cycle and
/// [`SystemBus::try_issue`] when there is a transaction to send.
///
/// # Examples
///
/// ```
/// use csb_bus::{BusConfig, SystemBus, Transaction};
/// use csb_isa::Addr;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Figure 3(h): minimum 4 cycles between address cycles.
/// let cfg = BusConfig::multiplexed(8).min_addr_delay(4).build()?;
/// let mut bus = SystemBus::new(cfg);
///
/// let a = bus.try_issue(0, Transaction::write(Addr::new(0x0), 8))?.unwrap();
/// assert_eq!(a.completes_at, 1);
/// // The bus itself is free at cycle 2, but the next address cycle must
/// // wait for the acknowledgment window.
/// assert!(!bus.can_accept(2));
/// assert!(bus.can_accept(4));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SystemBus {
    cfg: BusConfig,
    /// Earliest cycle the next transaction may start (occupancy+turnaround).
    next_free: u64,
    /// Address cycle of the most recent transaction.
    last_addr: Option<u64>,
    /// Final data cycle of the most recent occupancy (faulted issues
    /// included — their occupancy is real), for
    /// [`SystemBus::next_completion`].
    last_completes: Option<u64>,
    /// Fair-share accumulator for the background-traffic model: bus cycles
    /// owed to foreign masters.
    foreign_debt: f64,
    stats: BusStats,
    /// Per-transaction log, populated when enabled.
    log: Option<Vec<BusLogEntry>>,
    /// Structured trace sink (disabled by default; see
    /// [`SystemBus::set_trace_sink`]).
    sink: TraceSink,
    /// Fault-injection hook (disabled by default; see
    /// [`SystemBus::set_fault_hook`]).
    faults: FaultInjector,
    /// Bus transactions errored by the fault hook since construction or
    /// the last [`SystemBus::reset`].
    fault_errors: u64,
}

impl SystemBus {
    /// Creates an idle bus.
    pub fn new(cfg: BusConfig) -> Self {
        SystemBus {
            cfg,
            next_free: 0,
            last_addr: None,
            last_completes: None,
            foreign_debt: 0.0,
            stats: BusStats::default(),
            log: None,
            sink: TraceSink::disabled(),
            faults: FaultInjector::disabled(),
            fault_errors: 0,
        }
    }

    /// Installs a fault-injection hook. Each accepted issue asks the
    /// schedule whether the transaction errors ([`FaultKind::BusError`]):
    /// an errored transaction consumes its occupancy (address + data
    /// cycles, turnaround, address-delay window, and any foreign-debt
    /// accrual) exactly like a successful one, but delivers nothing and
    /// is *not* recorded in [`SystemBus::stats`] — the master sees
    /// [`SystemBus::try_issue`] return `Ok(None)` and must re-arbitrate.
    /// Bounded hardware retry comes from the schedule's
    /// `max_consecutive` parameter, which forces an eventual clean slot.
    pub fn set_fault_hook(&mut self, faults: FaultInjector) {
        self.faults = faults;
    }

    /// Transactions errored by the fault hook (0 when no hook is set).
    pub fn fault_errors(&self) -> u64 {
        self.fault_errors
    }

    /// Installs a structured trace sink; every local transaction emits a
    /// [`EventKind::BusTxn`] span and every foreign occupancy a
    /// [`EventKind::ForeignTxn`] span. Timestamps passed to the bus are in
    /// bus cycles, so callers should hand in a handle pre-scaled by the
    /// CPU:bus frequency ratio (see [`TraceSink::scaled`]).
    pub fn set_trace_sink(&mut self, sink: TraceSink) {
        self.sink = sink;
    }

    /// Starts recording every transaction (including foreign occupancies)
    /// into a log readable with [`SystemBus::log`]. Costs memory per
    /// transaction; intended for traces and visualization, not for long
    /// sweeps.
    pub fn enable_log(&mut self) {
        self.log.get_or_insert_with(Vec::new);
    }

    /// The recorded transaction log (empty slice when logging is off).
    pub fn log(&self) -> &[BusLogEntry] {
        self.log.as_deref().unwrap_or(&[])
    }

    /// The bus configuration.
    pub fn config(&self) -> &BusConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &BusStats {
        &self.stats
    }

    /// Earliest cycle at or after `now` at which a new transaction may
    /// present its address.
    pub fn earliest_start(&self, now: u64) -> u64 {
        let mut t = now.max(self.next_free);
        if let Some(last) = self.last_addr {
            t = t.max(last + self.cfg.min_addr_delay());
        }
        t
    }

    /// Returns `true` if a transaction presented at `now` would be accepted
    /// immediately.
    pub fn can_accept(&self, now: u64) -> bool {
        self.earliest_start(now) == now
    }

    /// The next transaction-granular event on the frozen timeline, strictly
    /// after `now`: the earlier of the in-flight occupancy's delivery cycle
    /// (final data cycle + 1 — when the destination observes the transfer)
    /// and the next possible grant ([`SystemBus::earliest_start`], which
    /// folds in turnaround, the address-delay window, and foreign-master
    /// debt). `None` when both are already behind `now` — the bus is
    /// quiescent and only a new issue can create an event.
    ///
    /// The whole timeline of every accepted transaction (grant, occupancy
    /// end, delivery) is fixed at [`SystemBus::try_issue`] time — nothing
    /// else mutates bus state — so between issues this horizon is exact,
    /// not an estimate: callers may jump the clock straight to it.
    pub fn next_completion(&self, now: u64) -> Option<u64> {
        let mut horizon: Option<u64> = None;
        let mut note = |t: u64| {
            if t > now {
                horizon = Some(horizon.map_or(t, |h: u64| h.min(t)));
            }
        };
        if let Some(c) = self.last_completes {
            note(c + 1);
        }
        note(self.earliest_start(now));
        horizon
    }

    /// Validates a transaction against the bus's architectural rules without
    /// issuing it.
    ///
    /// # Errors
    ///
    /// Returns [`TxnError`] if the size is not a power of two within the
    /// maximum burst, the address is not naturally aligned, or the payload
    /// exceeds the size.
    pub fn validate(&self, txn: &Transaction) -> Result<(), TxnError> {
        if txn.size == 0 || !txn.size.is_power_of_two() || txn.size > self.cfg.max_burst() {
            return Err(TxnError::BadSize {
                size: txn.size,
                max_burst: self.cfg.max_burst(),
            });
        }
        if !txn.addr.is_aligned(txn.size as u64) {
            return Err(TxnError::Misaligned {
                addr: txn.addr,
                size: txn.size,
            });
        }
        if txn.payload > txn.size {
            return Err(TxnError::BadPayload {
                payload: txn.payload,
                size: txn.size,
            });
        }
        Ok(())
    }

    /// Attempts to issue `txn` at bus cycle `now`.
    ///
    /// Returns `Ok(None)` if the bus cannot accept a transaction this cycle
    /// (occupied, in turnaround, or within the address-delay window).
    ///
    /// # Errors
    ///
    /// Returns [`TxnError`] for architecturally illegal transactions (see
    /// [`SystemBus::validate`]); illegal transactions are rejected even when
    /// the bus is busy.
    pub fn try_issue(&mut self, now: u64, txn: Transaction) -> Result<Option<Issued>, TxnError> {
        self.validate(&txn)?;
        if !self.can_accept(now) {
            return Ok(None);
        }
        let duration = self.cfg.transaction_cycles(txn.size);
        let completes_at = now + duration - 1;
        self.next_free = completes_at + 1 + self.cfg.turnaround();
        self.last_addr = Some(now);
        self.last_completes = Some(completes_at);
        // An injected bus error consumes the occupancy just computed but
        // delivers nothing: the caller sees `Ok(None)` (the same signal as
        // a busy bus), keeps the transaction queued, and re-arbitrates.
        let faulted = self.faults.inject(FaultKind::BusError);
        if faulted {
            self.fault_errors += 1;
            self.sink.emit_span(
                now,
                duration,
                Track::Bus,
                EventKind::BusFault {
                    addr: txn.addr.raw(),
                    size: txn.size,
                },
            );
        } else {
            self.stats.record(now, completes_at, txn.size, txn.payload);
            self.sink.emit_span(
                now,
                duration,
                Track::Bus,
                EventKind::BusTxn {
                    addr: txn.addr.raw(),
                    size: txn.size,
                    payload: txn.payload,
                    write: matches!(txn.kind, crate::transaction::TxnKind::Write),
                    tag: txn.tag,
                },
            );
            if let Some(log) = &mut self.log {
                log.push(BusLogEntry {
                    addr_cycle: now,
                    completes_at,
                    size: txn.size,
                    kind: txn.kind,
                    foreign: false,
                    tag: txn.tag,
                });
            }
        }
        // Fair arbitration against foreign masters: every local transaction
        // accrues a proportional debt of foreign bus time, paid off as whole
        // foreign transactions before the local master may issue again.
        if let Some(bg) = self.cfg.background() {
            let foreign = self.cfg.transaction_cycles(bg.burst);
            self.foreign_debt += duration as f64 * bg.utilization / (1.0 - bg.utilization);
            while self.foreign_debt >= foreign as f64 {
                let start = self.next_free;
                self.next_free += foreign + self.cfg.turnaround();
                self.foreign_debt -= foreign as f64;
                self.stats.record_foreign(foreign);
                self.sink.emit_span(
                    start,
                    foreign,
                    Track::Foreign,
                    EventKind::ForeignTxn { size: bg.burst },
                );
                if let Some(log) = &mut self.log {
                    log.push(BusLogEntry {
                        addr_cycle: start,
                        completes_at: start + foreign - 1,
                        size: bg.burst,
                        kind: crate::transaction::TxnKind::Write,
                        foreign: true,
                        tag: 0,
                    });
                }
            }
        }
        if faulted {
            return Ok(None);
        }
        Ok(Some(Issued {
            addr_cycle: now,
            completes_at,
            tag: txn.tag,
        }))
    }

    /// Returns `true` if no transaction is occupying the bus at `now`
    /// (turnaround and address-delay windows count as not occupied).
    pub fn is_idle(&self, now: u64) -> bool {
        // next_free includes turnaround; occupancy ends turnaround cycles
        // earlier.
        now + self.cfg.turnaround() >= self.next_free
    }

    /// Resets occupancy and statistics (configuration retained).
    pub fn reset(&mut self) {
        self.next_free = 0;
        self.last_addr = None;
        self.last_completes = None;
        self.foreign_debt = 0.0;
        self.stats = BusStats::default();
        self.fault_errors = 0;
        if let Some(log) = &mut self.log {
            log.clear();
        }
    }

    /// Serializes the bus timing state, statistics, fault counter, and
    /// (when enabled) the transaction log. The trace sink and fault hook
    /// are wiring, not state — the restoring side re-installs them.
    pub fn save_state(&self, w: &mut csb_snap::SnapshotWriter) {
        w.put_tag("bus");
        w.put_u64(self.next_free);
        w.put_opt_u64(self.last_addr);
        w.put_opt_u64(self.last_completes);
        w.put_f64(self.foreign_debt);
        self.stats.save_state(w);
        w.put_u64(self.fault_errors);
        match &self.log {
            None => w.put_bool(false),
            Some(log) => {
                w.put_bool(true);
                w.put_usize(log.len());
                for e in log {
                    w.put_u64(e.addr_cycle);
                    w.put_u64(e.completes_at);
                    w.put_usize(e.size);
                    w.put_u8(match e.kind {
                        crate::transaction::TxnKind::Write => 0,
                        crate::transaction::TxnKind::Read => 1,
                    });
                    w.put_bool(e.foreign);
                    w.put_u64(e.tag);
                }
            }
        }
    }

    /// Restores state written by [`SystemBus::save_state`] into a bus
    /// with the same configuration.
    ///
    /// # Errors
    ///
    /// [`csb_snap::SnapshotError`] on a malformed stream.
    pub fn restore_state(
        &mut self,
        r: &mut csb_snap::SnapshotReader<'_>,
    ) -> Result<(), csb_snap::SnapshotError> {
        self.reset();
        r.take_tag("bus")?;
        self.next_free = r.take_u64()?;
        self.last_addr = r.take_opt_u64()?;
        self.last_completes = r.take_opt_u64()?;
        self.foreign_debt = r.take_f64()?;
        self.stats.restore_state(r)?;
        self.fault_errors = r.take_u64()?;
        if r.take_bool()? {
            let n = r.take_usize()?;
            let log = self.log.get_or_insert_with(Vec::new);
            log.clear();
            log.reserve(n);
            for _ in 0..n {
                let addr_cycle = r.take_u64()?;
                let completes_at = r.take_u64()?;
                let size = r.take_usize()?;
                let kind = match r.take_u8()? {
                    0 => crate::transaction::TxnKind::Write,
                    1 => crate::transaction::TxnKind::Read,
                    b => {
                        return Err(csb_snap::SnapshotError::Corrupt(format!(
                            "bus log kind byte {b}"
                        )))
                    }
                };
                let foreign = r.take_bool()?;
                let tag = r.take_u64()?;
                log.push(BusLogEntry {
                    addr_cycle,
                    completes_at,
                    size,
                    kind,
                    foreign,
                    tag,
                });
            }
        } else {
            self.log = None;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BusConfigError;
    use crate::transaction::TxnKind;
    use csb_isa::Addr;

    fn mux8() -> SystemBus {
        SystemBus::new(BusConfig::multiplexed(8).max_burst(64).build().unwrap())
    }

    #[test]
    fn back_to_back_singles_give_4_bytes_per_cycle() {
        // Paper §4.3.1: without combining, each store is a two-cycle
        // transaction and the effective bandwidth is 4 bytes per bus cycle.
        let mut bus = mux8();
        let mut now = 0;
        for i in 0..8u64 {
            let txn = Transaction::write(Addr::new(i * 8), 8);
            let issued = bus.try_issue(now, txn).unwrap().unwrap();
            now = issued.completes_at + 1;
        }
        assert_eq!(bus.stats().window_cycles(), 16);
        assert_eq!(bus.stats().effective_bandwidth(), 4.0);
    }

    #[test]
    fn turnaround_spacing_matches_paper_example() {
        // Paper: with a turnaround cycle, one doubleword transaction takes 2
        // cycles, two take 5, three take 8 (the trailing turnaround is not
        // counted).
        for n in 1..=5u64 {
            let cfg = BusConfig::multiplexed(8).turnaround(1).build().unwrap();
            let mut bus = SystemBus::new(cfg);
            let mut now = 0;
            for i in 0..n {
                now = bus.earliest_start(now);
                let issued = bus
                    .try_issue(now, Transaction::write(Addr::new(i * 8), 8))
                    .unwrap()
                    .unwrap();
                now = issued.completes_at + 1;
            }
            assert_eq!(bus.stats().window_cycles(), 3 * n - 1);
        }
    }

    #[test]
    fn min_addr_delay_blocks_early_reissue() {
        let cfg = BusConfig::multiplexed(8).min_addr_delay(8).build().unwrap();
        let mut bus = SystemBus::new(cfg);
        bus.try_issue(0, Transaction::write(Addr::new(0), 8))
            .unwrap()
            .unwrap();
        for c in 1..8 {
            assert!(!bus.can_accept(c), "cycle {c} should be blocked");
        }
        assert!(bus.can_accept(8));
        // An 8-cycle burst (9 cycles on a multiplexed bus) completely hides
        // a 4-cycle acknowledgment window (paper, Figure 3(h) discussion).
        let cfg = BusConfig::multiplexed(8).min_addr_delay(4).build().unwrap();
        let mut bus = SystemBus::new(cfg);
        let issued = bus
            .try_issue(0, Transaction::write(Addr::new(0), 64))
            .unwrap()
            .unwrap();
        assert_eq!(issued.completes_at, 8);
        assert!(bus.can_accept(9));
    }

    #[test]
    fn rejects_illegal_transactions() {
        let mut bus = mux8();
        assert!(matches!(
            bus.try_issue(0, Transaction::write(Addr::new(0), 24)),
            Err(TxnError::BadSize { .. })
        ));
        assert!(matches!(
            bus.try_issue(0, Transaction::write(Addr::new(8), 16)),
            Err(TxnError::Misaligned { .. })
        ));
        assert!(matches!(
            bus.try_issue(0, Transaction::write(Addr::new(0), 128)),
            Err(TxnError::BadSize { .. })
        ));
        assert!(matches!(
            bus.try_issue(0, Transaction::write(Addr::new(0), 8).payload(16)),
            Err(TxnError::BadPayload { .. })
        ));
        // Reads validate the same way.
        assert!(bus.try_issue(0, Transaction::read(Addr::new(0), 8)).is_ok());
    }

    #[test]
    fn busy_bus_returns_none() {
        let mut bus = mux8();
        bus.try_issue(0, Transaction::write(Addr::new(0), 64))
            .unwrap()
            .unwrap();
        assert_eq!(
            bus.try_issue(4, Transaction::write(Addr::new(64), 8))
                .unwrap(),
            None
        );
        assert!(bus
            .try_issue(9, Transaction::write(Addr::new(64), 8))
            .unwrap()
            .is_some());
    }

    #[test]
    fn fault_hook_consumes_slot_without_recording() {
        use csb_faults::FaultConfig;
        let mut bus = mux8();
        // Every issue faults until the consecutive bound forces a clean
        // slot: bounded hardware retry.
        bus.set_fault_hook(FaultInjector::enabled(
            FaultConfig::new(1).bus_error_rate(1.0).max_consecutive(2),
        ));
        let txn = Transaction::write(Addr::new(0), 8);
        assert_eq!(bus.try_issue(0, txn).unwrap(), None); // fault 1
        assert!(!bus.can_accept(1)); // slot was consumed anyway
        let mut now = bus.earliest_start(1);
        assert_eq!(bus.try_issue(now, txn).unwrap(), None); // fault 2
        now = bus.earliest_start(now);
        let issued = bus.try_issue(now, txn).unwrap();
        assert!(issued.is_some(), "third attempt must be forced clean");
        assert_eq!(bus.fault_errors(), 2);
        // Errored transactions never enter the architectural statistics.
        assert_eq!(bus.stats().transactions, 1);
    }

    #[test]
    fn fault_hook_emits_bus_fault_spans() {
        use csb_faults::FaultConfig;
        let mut bus = mux8();
        let sink = TraceSink::enabled();
        bus.set_trace_sink(sink.scaled(6));
        bus.set_fault_hook(FaultInjector::enabled(
            FaultConfig::new(1).bus_error_rate(1.0).max_consecutive(1),
        ));
        assert_eq!(
            bus.try_issue(0, Transaction::write(Addr::new(0x40), 8))
                .unwrap(),
            None
        );
        let events = sink.snapshot();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].track, Track::Bus);
        assert!(matches!(
            events[0].kind,
            EventKind::BusFault {
                addr: 0x40,
                size: 8
            }
        ));
        assert_eq!(events[0].kind.name(), "fault.bus");
    }

    #[test]
    fn split_bus_sub_width_wastes_bandwidth() {
        // Paper Figure 4(a): a doubleword uses half of a 128-bit bus.
        let cfg = BusConfig::split(16).max_burst(64).build().unwrap();
        let mut bus = SystemBus::new(cfg);
        let mut now = 0;
        for i in 0..8u64 {
            let issued = bus
                .try_issue(now, Transaction::write(Addr::new(i * 8), 8))
                .unwrap()
                .unwrap();
            now = issued.completes_at + 1;
        }
        assert_eq!(bus.stats().effective_bandwidth(), 8.0); // half of 16 B/c
    }

    #[test]
    fn idle_and_reset() {
        let mut bus = mux8();
        assert!(bus.is_idle(0));
        bus.try_issue(0, Transaction::write(Addr::new(0), 64))
            .unwrap()
            .unwrap();
        assert!(!bus.is_idle(5));
        assert!(bus.is_idle(9));
        bus.reset();
        assert_eq!(bus.stats().transactions, 0);
        assert!(bus.can_accept(0));
    }

    #[test]
    fn tag_round_trips() {
        let mut bus = mux8();
        let issued = bus
            .try_issue(0, Transaction::write(Addr::new(0), 8).tag(42))
            .unwrap()
            .unwrap();
        assert_eq!(issued.tag, 42);
        assert_eq!(issued.addr_cycle, 0);
    }

    #[test]
    fn next_completion_tracks_the_frozen_timeline() {
        let mut bus = mux8();
        // Quiescent bus: a grant is possible right now, so there is no
        // future event to jump to.
        assert_eq!(bus.next_completion(0), None);
        let issued = bus
            .try_issue(0, Transaction::write(Addr::new(0), 64))
            .unwrap()
            .unwrap();
        assert_eq!(issued.completes_at, 8);
        assert_eq!(issued.delivery_cycle(), 9);
        // Mid-occupancy the next event is the grant/delivery cycle.
        assert_eq!(bus.next_completion(3), Some(9));
        // At the delivery cycle itself, nothing is left in the future.
        assert_eq!(bus.next_completion(9), None);
        // With turnaround, the next grant trails the delivery.
        let cfg = BusConfig::multiplexed(8).turnaround(2).build().unwrap();
        let mut bus = SystemBus::new(cfg);
        let issued = bus
            .try_issue(0, Transaction::write(Addr::new(0), 8))
            .unwrap()
            .unwrap();
        assert_eq!(bus.next_completion(0), Some(issued.delivery_cycle()));
        assert_eq!(bus.next_completion(issued.delivery_cycle()), Some(4));
        assert!(bus.can_accept(4));
    }

    #[test]
    fn next_completion_covers_faulted_occupancy_and_addr_delay() {
        use csb_faults::FaultConfig;
        let cfg = BusConfig::multiplexed(8).min_addr_delay(8).build().unwrap();
        let mut bus = SystemBus::new(cfg);
        bus.set_fault_hook(FaultInjector::enabled(
            FaultConfig::new(1).bus_error_rate(1.0).max_consecutive(1),
        ));
        // The errored issue delivers nothing but its occupancy is real:
        // the timeline still reports the delivery cycle, and the
        // address-delay window governs the retry grant.
        assert_eq!(
            bus.try_issue(0, Transaction::write(Addr::new(0), 8))
                .unwrap(),
            None
        );
        assert_eq!(bus.next_completion(0), Some(2));
        assert_eq!(bus.next_completion(2), Some(8));
        assert!(bus.can_accept(8));
        bus.reset();
        assert_eq!(bus.next_completion(0), None);
    }

    #[test]
    fn config_error_display() {
        let e = BusConfig::multiplexed(7).build().unwrap_err();
        assert!(matches!(e, BusConfigError::BadWidth(7)));
        let _ = TxnKind::Write;
    }

    #[test]
    fn background_traffic_shares_the_bus_fairly() {
        // 50% utilization with equal burst sizes: every local transaction
        // is followed by one foreign transaction of the same length, so the
        // local master gets exactly half the raw bandwidth.
        let cfg = BusConfig::multiplexed(8)
            .max_burst(64)
            .background(0.5, 8)
            .build()
            .unwrap();
        let mut bus = SystemBus::new(cfg);
        let mut now = 0;
        for i in 0..10u64 {
            now = bus.earliest_start(now);
            let issued = bus
                .try_issue(now, Transaction::write(Addr::new(i * 8), 8))
                .unwrap()
                .unwrap();
            now = issued.completes_at + 1;
        }
        let s = bus.stats();
        assert_eq!(s.transactions, 10);
        assert_eq!(s.foreign_transactions, 10);
        assert_eq!(s.foreign_cycles, 20);
        // Window: 10 local + 10 foreign 2-cycle txns, minus the trailing
        // foreign one that falls outside the last local data cycle.
        assert!((s.effective_bandwidth() - 80.0 / 38.0).abs() < 1e-9);
    }

    #[test]
    fn background_matches_turnaround_approximation_at_one_third() {
        // The paper reads a turnaround cycle as "an approximation of a
        // heavily loaded bus". For 2-cycle doubleword transactions, one
        // idle cycle per transaction equals a foreign utilization of 1/3:
        // both settle at 8 bytes per 3 bus cycles.
        let approx = BusConfig::multiplexed(8).turnaround(1).build().unwrap();
        let real = BusConfig::multiplexed(8)
            .background(1.0 / 3.0, 16)
            .build()
            .unwrap();
        let run = |cfg: BusConfig| {
            let mut bus = SystemBus::new(cfg);
            let mut now = 0;
            for i in 0..64u64 {
                now = bus.earliest_start(now);
                let issued = bus
                    .try_issue(now, Transaction::write(Addr::new(i * 8), 8))
                    .unwrap()
                    .unwrap();
                now = issued.completes_at + 1;
            }
            bus.stats().effective_bandwidth()
        };
        let (a, r) = (run(approx), run(real));
        assert!(
            (a - r).abs() < 0.2,
            "turnaround approx {a} vs real contention {r}"
        );
    }

    #[test]
    fn background_config_validation() {
        assert!(matches!(
            BusConfig::multiplexed(8).background(1.5, 8).build(),
            Err(BusConfigError::BadBackground(_))
        ));
        assert!(matches!(
            BusConfig::multiplexed(8).background(0.5, 24).build(),
            Err(BusConfigError::BadBackground(_))
        ));
        assert!(matches!(
            BusConfig::multiplexed(8)
                .max_burst(64)
                .background(0.5, 128)
                .build(),
            Err(BusConfigError::BadBackground(_))
        ));
        let e = BusConfig::multiplexed(8)
            .background(1.5, 8)
            .build()
            .unwrap_err();
        assert!(e.to_string().contains("1.5"));
    }

    #[test]
    fn trace_sink_records_local_and_foreign_spans() {
        let cfg = BusConfig::multiplexed(8)
            .background(0.5, 8)
            .build()
            .unwrap();
        let mut bus = SystemBus::new(cfg);
        let sink = TraceSink::enabled();
        // Pretend a 6:1 CPU:bus ratio, as the full simulator does.
        bus.set_trace_sink(sink.scaled(6));
        bus.try_issue(0, Transaction::write(Addr::new(0x40), 8).tag(9))
            .unwrap()
            .unwrap();
        let events = sink.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].track, Track::Bus);
        assert_eq!(events[0].dur, 12); // 2 bus cycles × 6
        assert!(matches!(
            events[0].kind,
            EventKind::BusTxn {
                addr: 0x40,
                write: true,
                tag: 9,
                ..
            }
        ));
        assert_eq!(events[1].track, Track::Foreign);
        assert_eq!(events[1].cycle, 12); // foreign txn starts at bus cycle 2
    }

    #[test]
    fn zero_utilization_is_harmless() {
        let cfg = BusConfig::multiplexed(8)
            .background(0.0, 8)
            .build()
            .unwrap();
        let mut bus = SystemBus::new(cfg);
        bus.try_issue(0, Transaction::write(Addr::new(0), 8))
            .unwrap()
            .unwrap();
        assert_eq!(bus.stats().foreign_transactions, 0);
        assert!(bus.can_accept(2));
    }
}
