//! Bus configuration and validation.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Bus organization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BusKind {
    /// Address and data share the wires; every transaction pays one address
    /// cycle before its data beats (paper §4.3.1, Figure 3).
    Multiplexed,
    /// Separate address and data paths; a transaction occupies the data path
    /// only for its data beats (paper §4.3.1, Figure 4).
    Split,
}

impl fmt::Display for BusKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusKind::Multiplexed => f.write_str("multiplexed"),
            BusKind::Split => f.write_str("split"),
        }
    }
}

/// Deterministic foreign-master (background) traffic model.
///
/// The paper approximates "a heavily loaded bus with multiple masters" with
/// a turnaround cycle (§4.3.1, Figure 3(g)). This model does it directly: a
/// fair arbiter grants foreign masters `utilization` of the bus cycles, as
/// whole transactions of `burst` bytes interleaved with the local master's.
/// The schedule is deterministic (a debt accumulator, not a random draw) so
/// simulations stay reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BackgroundTraffic {
    /// Long-run fraction of bus cycles held by foreign masters, `0.0..1.0`.
    pub utilization: f64,
    /// Foreign transaction size in bytes (power of two within the burst
    /// limit).
    pub burst: usize,
}

/// Invalid [`BusConfig`] parameter.
#[derive(Debug, Clone, PartialEq)]
pub enum BusConfigError {
    /// Data-path width must be a nonzero power of two.
    BadWidth(usize),
    /// Maximum burst must be a nonzero power of two and at least the width.
    BadMaxBurst(usize),
    /// Background utilization must be in `0.0..1.0` and its burst a power
    /// of two within the burst limit.
    BadBackground(BackgroundTraffic),
}

impl fmt::Display for BusConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusConfigError::BadWidth(w) => {
                write!(f, "bus width {w} is not a nonzero power of two")
            }
            BusConfigError::BadMaxBurst(b) => write!(
                f,
                "max burst {b} is not a nonzero power of two at least the bus width"
            ),
            BusConfigError::BadBackground(bg) => write!(
                f,
                "background traffic utilization {} / burst {} invalid",
                bg.utilization, bg.burst
            ),
        }
    }
}

impl std::error::Error for BusConfigError {}

/// Validated bus parameters.
///
/// Construct with [`BusConfig::multiplexed`] or [`BusConfig::split`], which
/// return a [`BusConfigBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BusConfig {
    kind: BusKind,
    width: usize,
    turnaround: u64,
    min_addr_delay: u64,
    max_burst: usize,
    background: Option<BackgroundTraffic>,
}

impl BusConfig {
    /// Starts building a multiplexed bus of the given data width in bytes.
    pub fn multiplexed(width: usize) -> BusConfigBuilder {
        BusConfigBuilder::new(BusKind::Multiplexed, width)
    }

    /// Starts building a split address/data bus of the given data width.
    pub fn split(width: usize) -> BusConfigBuilder {
        BusConfigBuilder::new(BusKind::Split, width)
    }

    /// Bus organization.
    pub fn kind(&self) -> BusKind {
        self.kind
    }

    /// Data-path width in bytes.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Idle cycles inserted after every transaction.
    pub fn turnaround(&self) -> u64 {
        self.turnaround
    }

    /// Minimum bus cycles between consecutive address cycles.
    pub fn min_addr_delay(&self) -> u64 {
        self.min_addr_delay
    }

    /// Largest legal transfer (one cache line).
    pub fn max_burst(&self) -> usize {
        self.max_burst
    }

    /// Foreign-master traffic sharing the bus, if configured.
    pub fn background(&self) -> Option<BackgroundTraffic> {
        self.background
    }

    /// Number of bus cycles a transaction of `size` bytes occupies the bus.
    ///
    /// Multiplexed: one address cycle plus `ceil(size / width)` data cycles.
    /// Split: `max(1, ceil(size / width))` data cycles (address in parallel).
    pub fn transaction_cycles(&self, size: usize) -> u64 {
        let data = size.div_ceil(self.width).max(1) as u64;
        match self.kind {
            BusKind::Multiplexed => 1 + data,
            BusKind::Split => data,
        }
    }

    /// Peak data bandwidth in bytes per bus cycle for max-burst transfers,
    /// ignoring turnaround and flow control.
    pub fn peak_bandwidth(&self) -> f64 {
        self.max_burst as f64 / self.transaction_cycles(self.max_burst) as f64
    }
}

/// Builder for [`BusConfig`] (see [`BusConfig::multiplexed`]).
///
/// # Examples
///
/// ```
/// use csb_bus::BusConfig;
///
/// # fn main() -> Result<(), csb_bus::BusConfigError> {
/// let cfg = BusConfig::split(16)
///     .turnaround(1)
///     .min_addr_delay(4)
///     .max_burst(64)
///     .build()?;
/// assert_eq!(cfg.transaction_cycles(64), 4);
/// assert_eq!(cfg.transaction_cycles(8), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BusConfigBuilder {
    kind: BusKind,
    width: usize,
    turnaround: u64,
    min_addr_delay: u64,
    max_burst: usize,
    background: Option<BackgroundTraffic>,
}

impl BusConfigBuilder {
    fn new(kind: BusKind, width: usize) -> Self {
        BusConfigBuilder {
            kind,
            width,
            turnaround: 0,
            min_addr_delay: 0,
            max_burst: 64,
            background: None,
        }
    }

    /// Sets idle cycles inserted after every transaction (default 0).
    pub fn turnaround(mut self, cycles: u64) -> Self {
        self.turnaround = cycles;
        self
    }

    /// Sets the minimum spacing between address cycles (default 0).
    pub fn min_addr_delay(mut self, cycles: u64) -> Self {
        self.min_addr_delay = cycles;
        self
    }

    /// Sets the largest legal transfer, i.e. the cache-line size (default 64).
    pub fn max_burst(mut self, bytes: usize) -> Self {
        self.max_burst = bytes;
        self
    }

    /// Adds deterministic foreign-master traffic (see
    /// [`BackgroundTraffic`]).
    pub fn background(mut self, utilization: f64, burst: usize) -> Self {
        self.background = Some(BackgroundTraffic { utilization, burst });
        self
    }

    /// Validates and builds the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`BusConfigError`] if the width or max burst is not a nonzero
    /// power of two, or the max burst is smaller than the width.
    pub fn build(self) -> Result<BusConfig, BusConfigError> {
        if self.width == 0 || !self.width.is_power_of_two() {
            return Err(BusConfigError::BadWidth(self.width));
        }
        if self.max_burst == 0 || !self.max_burst.is_power_of_two() || self.max_burst < self.width {
            return Err(BusConfigError::BadMaxBurst(self.max_burst));
        }
        if let Some(bg) = self.background {
            let ok = (0.0..1.0).contains(&bg.utilization)
                && bg.burst.is_power_of_two()
                && bg.burst <= self.max_burst
                && bg.burst > 0;
            if !ok {
                return Err(BusConfigError::BadBackground(bg));
            }
        }
        Ok(BusConfig {
            kind: self.kind,
            width: self.width,
            turnaround: self.turnaround,
            min_addr_delay: self.min_addr_delay,
            max_burst: self.max_burst,
            background: self.background,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplexed_timing() {
        let cfg = BusConfig::multiplexed(8).max_burst(64).build().unwrap();
        assert_eq!(cfg.transaction_cycles(8), 2); // addr + 1 beat
        assert_eq!(cfg.transaction_cycles(16), 3);
        assert_eq!(cfg.transaction_cycles(64), 9);
        assert_eq!(cfg.transaction_cycles(1), 2);
        assert!((cfg.peak_bandwidth() - 64.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn split_timing() {
        let cfg = BusConfig::split(16).max_burst(64).build().unwrap();
        assert_eq!(cfg.transaction_cycles(8), 1); // sub-width still one beat
        assert_eq!(cfg.transaction_cycles(16), 1);
        assert_eq!(cfg.transaction_cycles(64), 4);
        let wide = BusConfig::split(32).max_burst(64).build().unwrap();
        // Paper: on a 256-bit bus a line burst takes two cycles, the same as
        // two individual doubleword stores.
        assert_eq!(wide.transaction_cycles(64), 2);
        assert_eq!(wide.transaction_cycles(8) * 2, 2);
    }

    #[test]
    fn validation() {
        assert!(matches!(
            BusConfig::multiplexed(0).build(),
            Err(BusConfigError::BadWidth(0))
        ));
        assert!(matches!(
            BusConfig::multiplexed(12).build(),
            Err(BusConfigError::BadWidth(12))
        ));
        assert!(matches!(
            BusConfig::multiplexed(8).max_burst(48).build(),
            Err(BusConfigError::BadMaxBurst(48))
        ));
        assert!(matches!(
            BusConfig::split(32).max_burst(16).build(),
            Err(BusConfigError::BadMaxBurst(16))
        ));
        let err = BusConfig::multiplexed(12).build().unwrap_err();
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn accessors() {
        let cfg = BusConfig::split(16)
            .turnaround(1)
            .min_addr_delay(4)
            .max_burst(128)
            .build()
            .unwrap();
        assert_eq!(cfg.kind(), BusKind::Split);
        assert_eq!(cfg.width(), 16);
        assert_eq!(cfg.turnaround(), 1);
        assert_eq!(cfg.min_addr_delay(), 4);
        assert_eq!(cfg.max_burst(), 128);
        assert_eq!(BusKind::Multiplexed.to_string(), "multiplexed");
        assert_eq!(BusKind::Split.to_string(), "split");
    }
}
