//! Addresses, alignment, and the page-attribute address map.
//!
//! The paper (§3.1) avoids adding a `store combine` instruction by encoding
//! the combining property in page-table entries, the same way the MIPS R10000
//! enables its uncached-accelerated buffer. [`AddressMap`] models exactly
//! that: page-granular regions carrying an [`AddressSpace`] attribute.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Page granularity of [`AddressMap`] regions (4 KiB, a typical 1998 page).
pub const PAGE_SIZE: u64 = 4096;

/// A physical/virtual address in the simulated machine.
///
/// A thin newtype over `u64` so that addresses cannot be confused with data
/// values, cycle counts, or sizes.
///
/// # Examples
///
/// ```
/// use csb_isa::Addr;
///
/// let a = Addr::new(0x1_0038);
/// assert_eq!(a.align_down(64), Addr::new(0x1_0000));
/// assert_eq!(a.offset_in(64), 0x38);
/// assert!(a.is_aligned(8));
/// assert!(!a.is_aligned(16));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw value.
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw address value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Rounds the address down to a multiple of `align`.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn align_down(self, align: u64) -> Self {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        Addr(self.0 & !(align - 1))
    }

    /// Returns the byte offset of the address within its `align`-sized block.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn offset_in(self, align: u64) -> u64 {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        self.0 & (align - 1)
    }

    /// Returns `true` if the address is a multiple of `align`.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn is_aligned(self, align: u64) -> bool {
        self.offset_in(align) == 0
    }

    /// Returns the address advanced by `delta` bytes.
    pub fn offset(self, delta: i64) -> Self {
        Addr(self.0.wrapping_add(delta as u64))
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

impl From<Addr> for u64 {
    fn from(a: Addr) -> Self {
        a.0
    }
}

/// Memory attribute of a page, per the paper's TLB-extension scheme (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AddressSpace {
    /// Ordinary cacheable memory: speculative loads allowed, handled by the
    /// cache hierarchy.
    Cached,
    /// Uncached I/O space: accesses are strictly ordered, non-speculative,
    /// issued exactly once, and handled by the uncached buffer.
    Uncached,
    /// Uncached *combining* space: stores are accumulated in the conditional
    /// store buffer; an atomic `swap` to this space is the conditional flush.
    UncachedCombining,
}

impl AddressSpace {
    /// Returns `true` for both uncached variants.
    pub fn is_uncached(self) -> bool {
        !matches!(self, AddressSpace::Cached)
    }
}

impl fmt::Display for AddressSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AddressSpace::Cached => "cached",
            AddressSpace::Uncached => "uncached",
            AddressSpace::UncachedCombining => "uncached-combining",
        };
        f.write_str(s)
    }
}

/// Error returned when constructing an invalid [`AddressMap`] region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// Region start or length was not page aligned.
    Unaligned {
        /// Offending region start.
        start: Addr,
        /// Offending region length.
        len: u64,
    },
    /// Region overlaps one already in the map.
    Overlap {
        /// Offending region start.
        start: Addr,
    },
    /// Region length was zero.
    Empty,
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::Unaligned { start, len } => {
                write!(f, "region {start}+{len:#x} is not page aligned")
            }
            MapError::Overlap { start } => {
                write!(f, "region starting at {start} overlaps an existing region")
            }
            MapError::Empty => f.write_str("region length is zero"),
        }
    }
}

impl std::error::Error for MapError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Region {
    start: u64,
    end: u64, // exclusive
    space: AddressSpace,
}

/// Page-granular map from address ranges to [`AddressSpace`] attributes.
///
/// Addresses not covered by any region default to [`AddressSpace::Cached`],
/// matching the conventional "everything is memory unless mapped otherwise"
/// behaviour.
///
/// # Examples
///
/// ```
/// use csb_isa::{Addr, AddressMap, AddressSpace};
///
/// # fn main() -> Result<(), csb_isa::MapError> {
/// let mut map = AddressMap::new();
/// map.add_region(Addr::new(0x1000_0000), 0x1000, AddressSpace::Uncached)?;
/// map.add_region(Addr::new(0x2000_0000), 0x1000, AddressSpace::UncachedCombining)?;
///
/// assert_eq!(map.space_of(Addr::new(0x42)), AddressSpace::Cached);
/// assert_eq!(map.space_of(Addr::new(0x1000_0008)), AddressSpace::Uncached);
/// assert_eq!(
///     map.space_of(Addr::new(0x2000_0FF8)),
///     AddressSpace::UncachedCombining
/// );
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressMap {
    regions: Vec<Region>,
}

impl AddressMap {
    /// Creates an empty map (every address is cached).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a page-aligned region with the given attribute.
    ///
    /// # Errors
    ///
    /// Returns [`MapError`] if `start`/`len` are not multiples of
    /// [`PAGE_SIZE`], `len` is zero, or the region overlaps an existing one.
    pub fn add_region(
        &mut self,
        start: Addr,
        len: u64,
        space: AddressSpace,
    ) -> Result<(), MapError> {
        if len == 0 {
            return Err(MapError::Empty);
        }
        if !start.is_aligned(PAGE_SIZE) || !len.is_multiple_of(PAGE_SIZE) {
            return Err(MapError::Unaligned { start, len });
        }
        let (s, e) = (start.raw(), start.raw() + len);
        if self.regions.iter().any(|r| s < r.end && r.start < e) {
            return Err(MapError::Overlap { start });
        }
        self.regions.push(Region {
            start: s,
            end: e,
            space,
        });
        self.regions.sort_by_key(|r| r.start);
        Ok(())
    }

    /// Returns the attribute of the page containing `addr`.
    pub fn space_of(&self, addr: Addr) -> AddressSpace {
        let a = addr.raw();
        match self.regions.binary_search_by(|r| {
            if a < r.start {
                std::cmp::Ordering::Greater
            } else if a >= r.end {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Equal
            }
        }) {
            Ok(i) => self.regions[i].space,
            Err(_) => AddressSpace::Cached,
        }
    }

    /// Iterates over `(start, len, space)` for each mapped region, in
    /// ascending address order.
    pub fn iter(&self) -> impl Iterator<Item = (Addr, u64, AddressSpace)> + '_ {
        self.regions
            .iter()
            .map(|r| (Addr::new(r.start), r.end - r.start, r.space))
    }

    /// Number of mapped regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Returns `true` if no regions are mapped.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn align_helpers() {
        let a = Addr::new(0x1234);
        assert_eq!(a.align_down(16).raw(), 0x1230);
        assert_eq!(a.offset_in(16), 4);
        assert!(Addr::new(0x40).is_aligned(64));
        assert!(!Addr::new(0x48).is_aligned(64));
        assert_eq!(a.offset(-4).raw(), 0x1230);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn align_down_rejects_non_power_of_two() {
        Addr::new(8).align_down(3);
    }

    #[test]
    fn default_space_is_cached() {
        let map = AddressMap::new();
        assert_eq!(map.space_of(Addr::new(0)), AddressSpace::Cached);
        assert_eq!(map.space_of(Addr::new(u64::MAX)), AddressSpace::Cached);
        assert!(map.is_empty());
    }

    #[test]
    fn regions_resolve() {
        let mut map = AddressMap::new();
        map.add_region(Addr::new(0x1000), 0x1000, AddressSpace::Uncached)
            .unwrap();
        map.add_region(Addr::new(0x3000), 0x2000, AddressSpace::UncachedCombining)
            .unwrap();
        assert_eq!(map.space_of(Addr::new(0x0fff)), AddressSpace::Cached);
        assert_eq!(map.space_of(Addr::new(0x1000)), AddressSpace::Uncached);
        assert_eq!(map.space_of(Addr::new(0x1fff)), AddressSpace::Uncached);
        assert_eq!(map.space_of(Addr::new(0x2000)), AddressSpace::Cached);
        assert_eq!(
            map.space_of(Addr::new(0x4fff)),
            AddressSpace::UncachedCombining
        );
        assert_eq!(map.space_of(Addr::new(0x5000)), AddressSpace::Cached);
        assert_eq!(map.len(), 2);
    }

    #[test]
    fn rejects_unaligned() {
        let mut map = AddressMap::new();
        assert!(matches!(
            map.add_region(Addr::new(0x100), 0x1000, AddressSpace::Uncached),
            Err(MapError::Unaligned { .. })
        ));
        assert!(matches!(
            map.add_region(Addr::new(0x1000), 0x100, AddressSpace::Uncached),
            Err(MapError::Unaligned { .. })
        ));
        assert_eq!(
            map.add_region(Addr::new(0x1000), 0, AddressSpace::Uncached),
            Err(MapError::Empty)
        );
    }

    #[test]
    fn rejects_overlap() {
        let mut map = AddressMap::new();
        map.add_region(Addr::new(0x1000), 0x2000, AddressSpace::Uncached)
            .unwrap();
        assert!(matches!(
            map.add_region(Addr::new(0x2000), 0x1000, AddressSpace::Cached),
            Err(MapError::Overlap { .. })
        ));
        // Adjacent is fine.
        map.add_region(Addr::new(0x3000), 0x1000, AddressSpace::Cached)
            .unwrap();
    }

    #[test]
    fn display_formats() {
        assert_eq!(Addr::new(0x40).to_string(), "0x40");
        assert_eq!(
            AddressSpace::UncachedCombining.to_string(),
            "uncached-combining"
        );
        let err = MapError::Empty;
        assert!(!err.to_string().is_empty());
    }
}
