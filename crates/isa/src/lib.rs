//! SPARC-flavored instruction set, program representation, and address-space
//! attribute model for the conditional-store-buffer (CSB) simulator.
//!
//! This crate is the lowest layer of the reproduction of Schaelicke & Davis,
//! *"Improving I/O Performance with a Conditional Store Buffer"* (MICRO 1998).
//! It provides:
//!
//! * [`Addr`] and alignment helpers used by every other crate,
//! * [`AddressSpace`] / [`AddressMap`] — the paper's page-table-attribute
//!   extension that marks pages as cached, uncached, or *uncached combining*
//!   (the CSB-controlled region, §3.1 of the paper),
//! * [`Inst`] — the semantic instruction set executed by the out-of-order
//!   core (integer/FP ALU, branches, cached/uncached loads and stores,
//!   doubleword `std`, the atomic `swap` used both for locks and for the
//!   CSB *conditional flush*, and `membar`),
//! * [`Assembler`] / [`Program`] — a builder for the microbenchmark kernels.
//!
//! # Examples
//!
//! Building the paper's CSB access sequence (§3.2) — store eight doublewords
//! and conditionally flush them as one atomic burst:
//!
//! ```
//! use csb_isa::{Assembler, Reg};
//!
//! # fn main() -> Result<(), csb_isa::ProgramError> {
//! let mut a = Assembler::new();
//! let retry = a.new_label();
//! a.bind(retry)?;
//! a.movi(Reg::L4, 8); // expected hit count
//! for i in 0..8 {
//!     a.std(Reg::G1, Reg::O1, 8 * i); // eight combining stores
//! }
//! a.swap(Reg::L4, Reg::O1, 0); // conditional flush
//! a.cmpi(Reg::L4, 8);
//! a.bnz(retry); // retry on conflict
//! a.halt();
//! let program = a.assemble()?;
//! assert_eq!(program.len(), 13);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod inst;
pub mod parse;
pub mod program;
pub mod reg;

pub use addr::{Addr, AddressMap, AddressSpace, MapError, PAGE_SIZE};
pub use inst::{AluOp, Cond, FpuOp, Inst, InstKind, MemWidth, Operand, RegRef};
pub use parse::{parse_asm, ParseError};
pub use program::{Assembler, Label, Program, ProgramError};
pub use reg::{FReg, Reg};
