//! Programs and the assembler-style builder used to write microbenchmarks.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::inst::{AluOp, Cond, FpuOp, Inst, LabelId, MemWidth, Operand};
use crate::reg::{FReg, Reg};

/// A forward-declarable branch target.
///
/// Created with [`Assembler::new_label`] and bound to a position with
/// [`Assembler::bind`]; may be referenced by branches before or after
/// binding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(LabelId);

/// Error produced while assembling a [`Program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// A label was referenced by a branch but never bound.
    UnboundLabel {
        /// The unbound label's id.
        label: u32,
    },
    /// A label was bound twice.
    Rebound {
        /// The rebound label's id.
        label: u32,
    },
    /// The program contains no `halt`, so the simulator would never stop.
    MissingHalt,
    /// The program is empty.
    Empty,
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::UnboundLabel { label } => {
                write!(f, "label L{label} referenced but never bound")
            }
            ProgramError::Rebound { label } => write!(f, "label L{label} bound twice"),
            ProgramError::MissingHalt => f.write_str("program contains no halt instruction"),
            ProgramError::Empty => f.write_str("program is empty"),
        }
    }
}

impl std::error::Error for ProgramError {}

/// An assembled, immutable program: instructions plus resolved branch targets.
///
/// Branch targets are resolved to instruction indices at assembly time; the
/// CPU asks for them with [`Program::branch_target`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Program {
    insts: Vec<Inst>,
    targets: HashMap<u32, usize>,
}

impl Program {
    /// Returns the instruction at `pc`, or `None` past the end.
    pub fn fetch(&self, pc: usize) -> Option<Inst> {
        self.insts.get(pc).copied()
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Returns `true` if the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Resolves a branch's target to an instruction index.
    ///
    /// # Panics
    ///
    /// Panics if `inst` is not a branch of this program (assembly guarantees
    /// every branch target resolves).
    pub fn branch_target(&self, inst: &Inst) -> usize {
        match inst {
            Inst::Branch { target, .. } => self.targets[&target.0],
            other => panic!("branch_target called on non-branch {other}"),
        }
    }

    /// Iterates over the instructions in program order.
    pub fn iter(&self) -> std::slice::Iter<'_, Inst> {
        self.insts.iter()
    }

    /// Renders the program as human-readable assembly listing.
    pub fn listing(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, inst) in self.insts.iter().enumerate() {
            let _ = writeln!(out, "{i:4}: {inst}");
        }
        out
    }
}

/// Builder that assembles microbenchmark kernels instruction by instruction.
///
/// All emit methods append one instruction and return `&mut self` for
/// chaining. See the crate-level example for the paper's CSB sequence.
///
/// # Examples
///
/// ```
/// use csb_isa::{Assembler, Reg, MemWidth};
///
/// # fn main() -> Result<(), csb_isa::ProgramError> {
/// let mut a = Assembler::new();
/// a.movi(Reg::O1, 0x2000_0000);
/// a.st(Reg::G0, Reg::O1, 0, MemWidth::B8);
/// a.halt();
/// let p = a.assemble()?;
/// assert_eq!(p.len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct Assembler {
    insts: Vec<Inst>,
    next_label: u32,
    bound: HashMap<u32, usize>,
}

impl Assembler {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        let id = self.next_label;
        self.next_label += 1;
        Label(LabelId(id))
    }

    /// Binds `label` to the current position.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError::Rebound`] if the label was already bound.
    pub fn bind(&mut self, label: Label) -> Result<&mut Self, ProgramError> {
        let id = label.0 .0;
        if self.bound.insert(id, self.insts.len()).is_some() {
            return Err(ProgramError::Rebound { label: id });
        }
        Ok(self)
    }

    /// Current instruction count (the position the next emit lands at).
    pub fn here(&self) -> usize {
        self.insts.len()
    }

    /// Emits a raw instruction.
    pub fn emit(&mut self, inst: Inst) -> &mut Self {
        self.insts.push(inst);
        self
    }

    /// Emits `dst = a op b` with a register operand.
    pub fn alu(&mut self, op: AluOp, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.emit(Inst::Alu {
            op,
            dst,
            a,
            b: Operand::Reg(b),
        })
    }

    /// Emits `dst = a op imm`.
    pub fn alui(&mut self, op: AluOp, dst: Reg, a: Reg, imm: i64) -> &mut Self {
        self.emit(Inst::Alu {
            op,
            dst,
            a,
            b: Operand::Imm(imm),
        })
    }

    /// Emits `dst = dst + imm`.
    pub fn addi(&mut self, dst: Reg, imm: i64) -> &mut Self {
        self.alui(AluOp::Add, dst, dst, imm)
    }

    /// Emits `set imm, dst`.
    pub fn movi(&mut self, dst: Reg, imm: i64) -> &mut Self {
        self.emit(Inst::Movi { dst, imm })
    }

    /// Emits an FP operation `dst = a op b`.
    pub fn fpu(&mut self, op: FpuOp, dst: FReg, a: FReg, b: FReg) -> &mut Self {
        self.emit(Inst::Fpu { op, dst, a, b })
    }

    /// Emits an FP immediate load (raw bit pattern).
    pub fn fmovi(&mut self, dst: FReg, bits: u64) -> &mut Self {
        self.emit(Inst::FMovi { dst, bits })
    }

    /// Emits `cmp a, b` (register).
    pub fn cmp(&mut self, a: Reg, b: Reg) -> &mut Self {
        self.emit(Inst::Cmp {
            a,
            b: Operand::Reg(b),
        })
    }

    /// Emits `cmp a, imm`.
    pub fn cmpi(&mut self, a: Reg, imm: i64) -> &mut Self {
        self.emit(Inst::Cmp {
            a,
            b: Operand::Imm(imm),
        })
    }

    /// Emits a conditional branch.
    pub fn branch(&mut self, cond: Cond, target: Label) -> &mut Self {
        self.emit(Inst::Branch {
            cond,
            target: target.0,
        })
    }

    /// Emits `bnz target` (branch if not equal).
    pub fn bnz(&mut self, target: Label) -> &mut Self {
        self.branch(Cond::Ne, target)
    }

    /// Emits `bz target` (branch if equal).
    pub fn bz(&mut self, target: Label) -> &mut Self {
        self.branch(Cond::Eq, target)
    }

    /// Emits `ba target` (branch always).
    pub fn ba(&mut self, target: Label) -> &mut Self {
        self.branch(Cond::Always, target)
    }

    /// Emits a load of the given width.
    pub fn ld(&mut self, dst: Reg, base: Reg, offset: i64, width: MemWidth) -> &mut Self {
        self.emit(Inst::Load {
            dst,
            base,
            offset,
            width,
        })
    }

    /// Emits a store of the given width.
    pub fn st(&mut self, src: Reg, base: Reg, offset: i64, width: MemWidth) -> &mut Self {
        self.emit(Inst::Store {
            src,
            base,
            offset,
            width,
        })
    }

    /// Emits a doubleword store from an integer register.
    pub fn std(&mut self, src: Reg, base: Reg, offset: i64) -> &mut Self {
        self.st(src, base, offset, MemWidth::B8)
    }

    /// Emits a doubleword store from an FP register (`std %f`).
    pub fn stdf(&mut self, src: FReg, base: Reg, offset: i64) -> &mut Self {
        self.emit(Inst::StoreF { src, base, offset })
    }

    /// Emits an atomic swap (lock primitive / conditional flush).
    pub fn swap(&mut self, reg: Reg, base: Reg, offset: i64) -> &mut Self {
        self.emit(Inst::Swap { reg, base, offset })
    }

    /// Emits a memory barrier.
    pub fn membar(&mut self) -> &mut Self {
        self.emit(Inst::Membar)
    }

    /// Emits a no-op.
    pub fn nop(&mut self) -> &mut Self {
        self.emit(Inst::Nop)
    }

    /// Emits a timing marker (see [`Inst::Mark`]).
    pub fn mark(&mut self, id: u32) -> &mut Self {
        self.emit(Inst::Mark { id })
    }

    /// Emits `halt`.
    pub fn halt(&mut self) -> &mut Self {
        self.emit(Inst::Halt)
    }

    /// Finalizes the program, resolving all labels.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError`] if the program is empty, lacks a `halt`, or
    /// references an unbound label.
    pub fn assemble(self) -> Result<Program, ProgramError> {
        if self.insts.is_empty() {
            return Err(ProgramError::Empty);
        }
        if !self.insts.iter().any(|i| matches!(i, Inst::Halt)) {
            return Err(ProgramError::MissingHalt);
        }
        for inst in &self.insts {
            if let Inst::Branch { target, .. } = inst {
                if !self.bound.contains_key(&target.0) {
                    return Err(ProgramError::UnboundLabel { label: target.0 });
                }
            }
        }
        Ok(Program {
            insts: self.insts,
            targets: self.bound,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_and_resolves_labels() {
        let mut a = Assembler::new();
        let top = a.new_label();
        a.movi(Reg::L0, 4);
        a.bind(top).unwrap();
        a.alui(AluOp::Sub, Reg::L0, Reg::L0, 1);
        a.cmpi(Reg::L0, 0);
        a.bnz(top);
        a.halt();
        let p = a.assemble().unwrap();
        assert_eq!(p.len(), 5);
        let br = p.fetch(3).unwrap();
        assert_eq!(p.branch_target(&br), 1);
        assert!(p.listing().contains("halt"));
    }

    #[test]
    fn forward_labels_work() {
        let mut a = Assembler::new();
        let out = a.new_label();
        a.ba(out);
        a.nop();
        a.bind(out).unwrap();
        a.halt();
        let p = a.assemble().unwrap();
        let br = p.fetch(0).unwrap();
        assert_eq!(p.branch_target(&br), 2);
    }

    #[test]
    fn unbound_label_rejected() {
        let mut a = Assembler::new();
        let l = a.new_label();
        a.ba(l);
        a.halt();
        assert!(matches!(
            a.assemble(),
            Err(ProgramError::UnboundLabel { .. })
        ));
    }

    #[test]
    fn rebinding_rejected() {
        let mut a = Assembler::new();
        let l = a.new_label();
        a.bind(l).unwrap();
        assert!(matches!(a.bind(l), Err(ProgramError::Rebound { .. })));
    }

    #[test]
    fn empty_and_missing_halt_rejected() {
        assert_eq!(
            Assembler::new().assemble().unwrap_err(),
            ProgramError::Empty
        );
        let mut a = Assembler::new();
        a.nop();
        assert_eq!(a.assemble().unwrap_err(), ProgramError::MissingHalt);
    }

    #[test]
    #[should_panic(expected = "non-branch")]
    fn branch_target_panics_on_non_branch() {
        let mut a = Assembler::new();
        a.halt();
        let p = a.assemble().unwrap();
        p.branch_target(&Inst::Nop);
    }

    #[test]
    fn fetch_past_end_is_none() {
        let mut a = Assembler::new();
        a.halt();
        let p = a.assemble().unwrap();
        assert!(p.fetch(0).is_some());
        assert!(p.fetch(1).is_none());
        assert!(!p.is_empty());
    }
}
