//! The semantic instruction set executed by the out-of-order core.
//!
//! Instructions are represented at the semantic level (no binary encoding):
//! the simulator models timing and dataflow, not instruction fetch bytes.
//! Whether a memory operation is cached, uncached, or combining is *not*
//! encoded in the opcode — it is determined by the page attribute of the
//! effective address, exactly as in the paper's TLB-based scheme (§3.1).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::reg::{FReg, Reg};

/// Width of a memory access in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemWidth {
    /// 1 byte.
    B1,
    /// 2 bytes (halfword).
    B2,
    /// 4 bytes (word).
    B4,
    /// 8 bytes (doubleword) — the width used by `std` in the paper's kernels.
    B8,
}

impl MemWidth {
    /// Access size in bytes.
    pub const fn bytes(self) -> usize {
        match self {
            MemWidth::B1 => 1,
            MemWidth::B2 => 2,
            MemWidth::B4 => 4,
            MemWidth::B8 => 8,
        }
    }
}

impl fmt::Display for MemWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}B", self.bytes())
    }
}

/// Integer ALU operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AluOp {
    /// Addition (wrapping).
    Add,
    /// Subtraction (wrapping).
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (by `b & 63`).
    Sll,
    /// Logical shift right (by `b & 63`).
    Srl,
}

impl AluOp {
    /// Applies the operation to two 64-bit operands.
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Sll => a.wrapping_shl((b & 63) as u32),
            AluOp::Srl => a.wrapping_shr((b & 63) as u32),
        }
    }
}

/// Floating-point operation (operands interpreted as `f64` bit patterns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FpuOp {
    /// Addition.
    FAdd,
    /// Subtraction.
    FSub,
    /// Multiplication.
    FMul,
}

impl FpuOp {
    /// Applies the operation to two `f64` values carried as raw bits.
    pub fn apply(self, a: u64, b: u64) -> u64 {
        let (x, y) = (f64::from_bits(a), f64::from_bits(b));
        let r = match self {
            FpuOp::FAdd => x + y,
            FpuOp::FSub => x - y,
            FpuOp::FMul => x * y,
        };
        r.to_bits()
    }
}

/// Branch condition, evaluated against the condition codes set by `cmp`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Cond {
    /// Branch if equal (`bz`).
    Eq,
    /// Branch if not equal (`bnz`).
    Ne,
    /// Branch if signed less-than (`bl`).
    Lt,
    /// Branch if signed greater-or-equal (`bge`).
    Ge,
    /// Unconditional branch (`ba`).
    Always,
}

impl Cond {
    /// Evaluates the condition against a `cmp a, b` result.
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => (a as i64) < (b as i64),
            Cond::Ge => (a as i64) >= (b as i64),
            Cond::Always => true,
        }
    }
}

/// Second ALU operand: a register or a sign-extended immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operand {
    /// Register operand.
    Reg(Reg),
    /// Immediate operand.
    Imm(i64),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(i) => write!(f, "{i}"),
        }
    }
}

/// A label identifier produced by [`crate::Assembler::new_label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LabelId(pub(crate) u32);

/// A reference to an architectural register for dependence tracking,
/// including the condition-code pseudo-register written by `cmp`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RegRef {
    /// Integer register.
    Int(Reg),
    /// Floating-point register.
    Fp(FReg),
    /// The condition-code register.
    Cc,
}

/// Coarse instruction class used by the pipeline to pick a functional unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstKind {
    /// Integer ALU (including `cmp` and immediate moves).
    IntAlu,
    /// Floating-point ALU.
    FpAlu,
    /// Branch.
    Branch,
    /// Load (cached or uncached, per the address map).
    Load,
    /// Store (cached, uncached, or combining, per the address map).
    Store,
    /// Atomic swap: lock primitive in cached space, conditional flush in
    /// combining space.
    Swap,
    /// Memory barrier: retirement blocks until the uncached buffer drains.
    Membar,
    /// No operation.
    Nop,
    /// Marker pseudo-instruction recording its retirement cycle.
    Mark,
    /// Stops the processor.
    Halt,
}

/// One semantic instruction.
///
/// # Examples
///
/// ```
/// use csb_isa::{AluOp, Inst, InstKind, Operand, Reg};
///
/// let add = Inst::Alu {
///     op: AluOp::Add,
///     dst: Reg::O1,
///     a: Reg::O1,
///     b: Operand::Imm(64),
/// };
/// assert_eq!(add.kind(), InstKind::IntAlu);
/// assert!(add.to_string().contains("%o1"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Inst {
    /// Integer ALU operation `dst = a op b`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        dst: Reg,
        /// First source register.
        a: Reg,
        /// Second operand.
        b: Operand,
    },
    /// Load immediate `dst = imm` (models `set`/`mov`).
    Movi {
        /// Destination register.
        dst: Reg,
        /// Immediate value.
        imm: i64,
    },
    /// Floating-point operation `dst = a op b`.
    Fpu {
        /// Operation.
        op: FpuOp,
        /// Destination register.
        dst: FReg,
        /// First source register.
        a: FReg,
        /// Second source register.
        b: FReg,
    },
    /// Load an immediate bit pattern into an FP register.
    FMovi {
        /// Destination register.
        dst: FReg,
        /// Raw 64-bit pattern.
        bits: u64,
    },
    /// Compare `a` with `b`, setting the condition codes.
    Cmp {
        /// First operand.
        a: Reg,
        /// Second operand.
        b: Operand,
    },
    /// Conditional branch to a label.
    Branch {
        /// Condition evaluated against the condition codes.
        cond: Cond,
        /// Branch target.
        target: LabelId,
    },
    /// Integer load `dst = mem[base + offset]`.
    Load {
        /// Destination register.
        dst: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        offset: i64,
        /// Access width.
        width: MemWidth,
    },
    /// Integer store `mem[base + offset] = src`.
    Store {
        /// Source register.
        src: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        offset: i64,
        /// Access width.
        width: MemWidth,
    },
    /// Doubleword store from an FP register (`std %f, [base + offset]`).
    StoreF {
        /// Source FP register.
        src: FReg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        offset: i64,
    },
    /// Atomic swap `tmp = mem[base+offset]; mem[...] = reg; reg = tmp`.
    ///
    /// To combining space this is the *conditional flush*: `reg` carries the
    /// expected hit count in and receives the success/failure indication out
    /// (unchanged on success, 0 on failure — §3.2 of the paper).
    Swap {
        /// Register swapped with memory.
        reg: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        offset: i64,
    },
    /// Memory barrier.
    Membar,
    /// No operation.
    Nop,
    /// Marker pseudo-instruction: records the cycle at which it retires,
    /// keyed by `id`. Used by the experiment harness to time sequences.
    Mark {
        /// Marker key.
        id: u32,
    },
    /// Halt the processor.
    Halt,
}

impl Inst {
    /// Returns the pipeline class of the instruction.
    pub fn kind(&self) -> InstKind {
        match self {
            Inst::Alu { .. } | Inst::Movi { .. } | Inst::Cmp { .. } => InstKind::IntAlu,
            Inst::Fpu { .. } | Inst::FMovi { .. } => InstKind::FpAlu,
            Inst::Branch { .. } => InstKind::Branch,
            Inst::Load { .. } => InstKind::Load,
            Inst::Store { .. } | Inst::StoreF { .. } => InstKind::Store,
            Inst::Swap { .. } => InstKind::Swap,
            Inst::Membar => InstKind::Membar,
            Inst::Nop => InstKind::Nop,
            Inst::Mark { .. } => InstKind::Mark,
            Inst::Halt => InstKind::Halt,
        }
    }

    /// Returns `true` if the instruction accesses memory.
    pub fn is_mem(&self) -> bool {
        matches!(
            self.kind(),
            InstKind::Load | InstKind::Store | InstKind::Swap
        )
    }

    /// Registers read by the instruction (up to three).
    pub fn uses(&self) -> Vec<RegRef> {
        let mut buf = [RegRef::Cc; 3];
        let n = self.uses_into(&mut buf);
        buf[..n].to_vec()
    }

    /// Writes the registers read by the instruction into `out` and returns
    /// how many were written (at most three). The allocation-free form of
    /// [`Inst::uses`], for per-instruction hot paths like dispatch.
    pub fn uses_into(&self, out: &mut [RegRef; 3]) -> usize {
        let mut n = 0;
        let mut push = |r: RegRef| {
            out[n] = r;
            n += 1;
        };
        match *self {
            Inst::Alu { a, b, .. } => {
                push(RegRef::Int(a));
                if let Operand::Reg(r) = b {
                    push(RegRef::Int(r));
                }
            }
            Inst::Movi { .. } | Inst::FMovi { .. } => {}
            Inst::Fpu { a, b, .. } => {
                push(RegRef::Fp(a));
                push(RegRef::Fp(b));
            }
            Inst::Cmp { a, b } => {
                push(RegRef::Int(a));
                if let Operand::Reg(r) = b {
                    push(RegRef::Int(r));
                }
            }
            Inst::Branch { cond, .. } => {
                if cond != Cond::Always {
                    push(RegRef::Cc);
                }
            }
            Inst::Load { base, .. } => push(RegRef::Int(base)),
            Inst::Store { src, base, .. } => {
                push(RegRef::Int(src));
                push(RegRef::Int(base));
            }
            Inst::StoreF { src, base, .. } => {
                push(RegRef::Fp(src));
                push(RegRef::Int(base));
            }
            Inst::Swap { reg, base, .. } => {
                push(RegRef::Int(reg));
                push(RegRef::Int(base));
            }
            Inst::Membar | Inst::Nop | Inst::Mark { .. } | Inst::Halt => {}
        }
        n
    }

    /// Register written by the instruction, if any.
    pub fn def(&self) -> Option<RegRef> {
        match *self {
            Inst::Alu { dst, .. } | Inst::Movi { dst, .. } => {
                (!dst.is_zero()).then_some(RegRef::Int(dst))
            }
            Inst::Fpu { dst, .. } | Inst::FMovi { dst, .. } => Some(RegRef::Fp(dst)),
            Inst::Cmp { .. } => Some(RegRef::Cc),
            Inst::Load { dst, .. } => (!dst.is_zero()).then_some(RegRef::Int(dst)),
            Inst::Swap { reg, .. } => (!reg.is_zero()).then_some(RegRef::Int(reg)),
            _ => None,
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Alu { op, dst, a, b } => write!(f, "{op:?} {dst}, {a}, {b}"),
            Inst::Movi { dst, imm } => write!(f, "set {imm}, {dst}"),
            Inst::Fpu { op, dst, a, b } => write!(f, "{op:?} {dst}, {a}, {b}"),
            Inst::FMovi { dst, bits } => write!(f, "fset {bits:#x}, {dst}"),
            Inst::Cmp { a, b } => write!(f, "cmp {a}, {b}"),
            Inst::Branch { cond, target } => write!(f, "b{cond:?} L{}", target.0),
            Inst::Load {
                dst,
                base,
                offset,
                width,
            } => {
                write!(f, "ld{width} {dst}, [{base}+{offset}]")
            }
            Inst::Store {
                src,
                base,
                offset,
                width,
            } => {
                write!(f, "st{width} {src}, [{base}+{offset}]")
            }
            Inst::StoreF { src, base, offset } => write!(f, "std {src}, [{base}+{offset}]"),
            Inst::Swap { reg, base, offset } => write!(f, "swap [{base}+{offset}], {reg}"),
            Inst::Membar => f.write_str("membar"),
            Inst::Nop => f.write_str("nop"),
            Inst::Mark { id } => write!(f, "mark #{id}"),
            Inst::Halt => f.write_str("halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_ops_apply() {
        assert_eq!(AluOp::Add.apply(2, 3), 5);
        assert_eq!(AluOp::Sub.apply(2, 3), u64::MAX);
        assert_eq!(AluOp::And.apply(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Or.apply(0b1100, 0b1010), 0b1110);
        assert_eq!(AluOp::Xor.apply(0b1100, 0b1010), 0b0110);
        assert_eq!(AluOp::Sll.apply(1, 8), 256);
        assert_eq!(AluOp::Srl.apply(256, 8), 1);
        // Shift amounts are taken modulo 64.
        assert_eq!(AluOp::Sll.apply(1, 64), 1);
    }

    #[test]
    fn fpu_ops_apply() {
        let a = 1.5f64.to_bits();
        let b = 2.0f64.to_bits();
        assert_eq!(f64::from_bits(FpuOp::FAdd.apply(a, b)), 3.5);
        assert_eq!(f64::from_bits(FpuOp::FSub.apply(a, b)), -0.5);
        assert_eq!(f64::from_bits(FpuOp::FMul.apply(a, b)), 3.0);
    }

    #[test]
    fn cond_eval() {
        assert!(Cond::Eq.eval(4, 4));
        assert!(Cond::Ne.eval(4, 5));
        assert!(Cond::Lt.eval(u64::MAX, 0)); // -1 < 0 signed
        assert!(Cond::Ge.eval(0, u64::MAX));
        assert!(Cond::Always.eval(0, 0));
        assert!(!Cond::Eq.eval(1, 2));
    }

    #[test]
    fn defs_and_uses() {
        let st = Inst::Store {
            src: Reg::G1,
            base: Reg::O1,
            offset: 8,
            width: MemWidth::B8,
        };
        assert_eq!(st.def(), None);
        assert_eq!(st.uses(), vec![RegRef::Int(Reg::G1), RegRef::Int(Reg::O1)]);

        let swap = Inst::Swap {
            reg: Reg::L4,
            base: Reg::O1,
            offset: 0,
        };
        assert_eq!(swap.def(), Some(RegRef::Int(Reg::L4)));
        assert!(swap.is_mem());

        let cmp = Inst::Cmp {
            a: Reg::L4,
            b: Operand::Imm(8),
        };
        assert_eq!(cmp.def(), Some(RegRef::Cc));

        let bnz = Inst::Branch {
            cond: Cond::Ne,
            target: LabelId(0),
        };
        assert_eq!(bnz.uses(), vec![RegRef::Cc]);
        let ba = Inst::Branch {
            cond: Cond::Always,
            target: LabelId(0),
        };
        assert!(ba.uses().is_empty());
    }

    #[test]
    fn writes_to_g0_are_discarded() {
        let mv = Inst::Movi {
            dst: Reg::G0,
            imm: 7,
        };
        assert_eq!(mv.def(), None);
    }

    #[test]
    fn kinds() {
        assert_eq!(Inst::Membar.kind(), InstKind::Membar);
        assert_eq!(Inst::Halt.kind(), InstKind::Halt);
        assert_eq!(Inst::Nop.kind(), InstKind::Nop);
        assert_eq!(Inst::Mark { id: 3 }.kind(), InstKind::Mark);
        assert_eq!(
            Inst::StoreF {
                src: FReg::new(0),
                base: Reg::O1,
                offset: 0
            }
            .kind(),
            InstKind::Store
        );
    }

    #[test]
    fn display_is_nonempty() {
        let insts = [
            Inst::Movi {
                dst: Reg::L4,
                imm: 8,
            },
            Inst::Membar,
            Inst::Swap {
                reg: Reg::L4,
                base: Reg::O1,
                offset: 0,
            },
        ];
        for i in insts {
            assert!(!i.to_string().is_empty());
        }
    }
}
