//! Architectural registers.
//!
//! The simulated machine has 32 64-bit integer registers (with SPARC-style
//! naming aliases: `%g`, `%o`, `%l`, `%i`) and 32 64-bit floating-point
//! registers. Integer register 0 (`%g0`) is hardwired to zero, as on SPARC.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Number of integer registers.
pub const NUM_INT_REGS: usize = 32;
/// Number of floating-point registers.
pub const NUM_FP_REGS: usize = 32;

/// An integer register.
///
/// `Reg::G0` is hardwired to zero: reads return 0 and writes are discarded.
///
/// # Examples
///
/// ```
/// use csb_isa::Reg;
///
/// assert_eq!(Reg::G0.index(), 0);
/// assert_eq!(Reg::O1.to_string(), "%o1");
/// assert!(Reg::G0.is_zero());
/// assert!(!Reg::L4.is_zero());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Reg(u8);

macro_rules! reg_consts {
    ($($name:ident = $idx:expr;)*) => {
        impl Reg {
            $(
                #[doc = concat!("SPARC register `%", stringify!($name), "` (lowercased).")]
                pub const $name: Reg = Reg($idx);
            )*
        }
    };
}

reg_consts! {
    G0 = 0; G1 = 1; G2 = 2; G3 = 3; G4 = 4; G5 = 5; G6 = 6; G7 = 7;
    O0 = 8; O1 = 9; O2 = 10; O3 = 11; O4 = 12; O5 = 13; O6 = 14; O7 = 15;
    L0 = 16; L1 = 17; L2 = 18; L3 = 19; L4 = 20; L5 = 21; L6 = 22; L7 = 23;
    I0 = 24; I1 = 25; I2 = 26; I3 = 27; I4 = 28; I5 = 29; I6 = 30; I7 = 31;
}

impl Reg {
    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub fn new(index: u8) -> Self {
        assert!(
            (index as usize) < NUM_INT_REGS,
            "integer register index {index} out of range"
        );
        Reg(index)
    }

    /// Returns the register index (0–31).
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns `true` for the hardwired-zero register `%g0`.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (group, n) = match self.0 / 8 {
            0 => ('g', self.0),
            1 => ('o', self.0 - 8),
            2 => ('l', self.0 - 16),
            _ => ('i', self.0 - 24),
        };
        write!(f, "%{group}{n}")
    }
}

/// A floating-point register (`%f0`–`%f31`), 64 bits wide.
///
/// The paper's bandwidth microbenchmark uses `std %f`, doubleword stores
/// from FP registers, mirroring the SPARC assembly listing in §3.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FReg(u8);

impl FReg {
    /// Creates an FP register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub fn new(index: u8) -> Self {
        assert!(
            (index as usize) < NUM_FP_REGS,
            "fp register index {index} out of range"
        );
        FReg(index)
    }

    /// Returns the register index (0–31).
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%f{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naming_groups() {
        assert_eq!(Reg::G0.to_string(), "%g0");
        assert_eq!(Reg::O7.to_string(), "%o7");
        assert_eq!(Reg::L0.to_string(), "%l0");
        assert_eq!(Reg::I7.to_string(), "%i7");
        assert_eq!(FReg::new(12).to_string(), "%f12");
    }

    #[test]
    fn indices_round_trip() {
        for i in 0..32u8 {
            assert_eq!(Reg::new(i).index(), i as usize);
            assert_eq!(FReg::new(i).index(), i as usize);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn int_reg_bounds_checked() {
        Reg::new(32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fp_reg_bounds_checked() {
        FReg::new(32);
    }

    #[test]
    fn only_g0_is_zero() {
        assert!(Reg::G0.is_zero());
        for i in 1..32u8 {
            assert!(!Reg::new(i).is_zero());
        }
    }
}
