//! A text assembler for the SPARC-flavored assembly the paper writes its
//! kernels in.
//!
//! The accepted syntax mirrors the listing in the paper's §3.2:
//!
//! ```text
//! .RETRY:
//!     set 8, %l4          ! expected value
//!     std %f0, [%o1]
//!     std %f1, [%o1+40]
//!     swap [%o1], %l4     ! conditional flush
//!     cmp %l4, 8
//!     bnz .RETRY          ! retry on failure
//!     halt
//! ```
//!
//! * `! comment` to end of line; blank lines ignored;
//! * labels are identifiers (optionally starting with `.`) ending in `:`;
//! * registers: `%g0-7`, `%o0-7`, `%l0-7`, `%i0-7`, `%r0-31`, `%f0-31`;
//! * numbers: decimal or `0x…` hex, optionally negative;
//! * memory operands: `[%base]`, `[%base+off]`, `[%base-off]`.
//!
//! Mnemonics: `set`, `fset`, three-operand ALU `add/sub/and/or/xor/sll/srl
//! a, b, dst` (SPARC operand order), `fadd/fsub/fmul`, `cmp`, branches
//! `ba/bz/bnz/bl/bge`, loads `ldb/ldh/ldw/ldx`, stores `stb/sth/stw/stx`,
//! `std` (doubleword store from an integer or FP register), `swap`,
//! `membar`, `nop`, `mark N`, `halt`.

use std::collections::HashMap;
use std::fmt;

use crate::inst::{AluOp, Cond, FpuOp, MemWidth};
use crate::program::{Assembler, Label, Program, ProgramError};
use crate::reg::{FReg, Reg};

/// Assembly-text parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl ParseError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseError {
            line,
            message: message.into(),
        }
    }
}

fn parse_int(s: &str, line: usize) -> Result<i64, ParseError> {
    let s = s.trim();
    let (neg, body) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse::<i64>()
    }
    .map_err(|_| ParseError::new(line, format!("invalid number `{s}`")))?;
    Ok(if neg { -v } else { v })
}

fn parse_reg(s: &str, line: usize) -> Result<Reg, ParseError> {
    let err = || ParseError::new(line, format!("invalid integer register `{s}`"));
    let body = s.strip_prefix('%').ok_or_else(err)?;
    let (group, num) = body.split_at(1);
    let n: u8 = num.parse().map_err(|_| err())?;
    let idx = match group {
        "g" if n < 8 => n,
        "o" if n < 8 => 8 + n,
        "l" if n < 8 => 16 + n,
        "i" if n < 8 => 24 + n,
        "r" if (n as usize) < 32 => n,
        _ => return Err(err()),
    };
    Ok(Reg::new(idx))
}

fn parse_freg(s: &str, line: usize) -> Result<FReg, ParseError> {
    let err = || ParseError::new(line, format!("invalid FP register `{s}`"));
    let body = s.strip_prefix("%f").ok_or_else(err)?;
    let n: u8 = body.parse().map_err(|_| err())?;
    if n >= 32 {
        return Err(err());
    }
    Ok(FReg::new(n))
}

/// `[%base]` / `[%base+off]` / `[%base-off]`.
fn parse_mem(s: &str, line: usize) -> Result<(Reg, i64), ParseError> {
    let err = || ParseError::new(line, format!("invalid memory operand `{s}`"));
    let inner = s
        .strip_prefix('[')
        .and_then(|x| x.strip_suffix(']'))
        .ok_or_else(err)?
        .trim();
    if let Some(pos) = inner.find(['+', '-'].as_ref()) {
        if pos == 0 {
            return Err(err());
        }
        let (base, off) = inner.split_at(pos);
        let sign = if off.starts_with('-') { -1 } else { 1 };
        let off_val = parse_int(&off[1..], line)?;
        Ok((parse_reg(base.trim(), line)?, sign * off_val))
    } else {
        Ok((parse_reg(inner, line)?, 0))
    }
}

/// Splits operands on top-level commas (commas inside `[...]` don't occur,
/// but this keeps the splitter honest about bracket depth anyway).
fn split_operands(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut cur = String::new();
    for ch in s.chars() {
        match ch {
            '[' => {
                depth += 1;
                cur.push(ch);
            }
            ']' => {
                depth = depth.saturating_sub(1);
                cur.push(ch);
            }
            ',' if depth == 0 => {
                out.push(cur.trim().to_string());
                cur.clear();
            }
            _ => cur.push(ch),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_string());
    }
    out
}

/// Assembles SPARC-flavored source text into a [`Program`].
///
/// # Errors
///
/// Returns [`ParseError`] for syntax errors (with the offending line) and
/// for program-level failures (unbound labels, missing `halt`) mapped from
/// [`ProgramError`].
///
/// # Examples
///
/// ```
/// let program = csb_isa::parse_asm(
///     r"
///     .RETRY:
///         set 8, %l4
///         std %f0, [%o1]
///         swap [%o1], %l4
///         cmp %l4, 8
///         bnz .RETRY
///         halt
///     ",
/// )?;
/// assert_eq!(program.len(), 6);
/// # Ok::<(), csb_isa::ParseError>(())
/// ```
pub fn parse_asm(source: &str) -> Result<Program, ParseError> {
    let mut a = Assembler::new();
    let mut labels: HashMap<String, Label> = HashMap::new();
    let mut bound: Vec<String> = Vec::new();

    let mut get_label = |a: &mut Assembler, name: &str| -> Label {
        *labels
            .entry(name.to_string())
            .or_insert_with(|| a.new_label())
    };

    for (lineno, raw) in source.lines().enumerate() {
        let line = lineno + 1;
        let text = raw.split('!').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        // Leading label(s).
        let mut rest = text;
        while let Some(colon) = rest.find(':') {
            let (head, tail) = rest.split_at(colon);
            let name = head.trim();
            if name.is_empty()
                || !name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
            {
                break;
            }
            let label = get_label(&mut a, name);
            a.bind(label)
                .map_err(|_| ParseError::new(line, format!("label `{name}` bound twice")))?;
            bound.push(name.to_string());
            rest = tail[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }

        let (mnemonic, args) = match rest.split_once(char::is_whitespace) {
            Some((m, a)) => (m, a.trim()),
            None => (rest, ""),
        };
        let ops = split_operands(args);
        let argc = ops.len();
        let wrong_arity = |want: usize| {
            ParseError::new(
                line,
                format!("`{mnemonic}` expects {want} operands, got {argc}"),
            )
        };

        let alu = |m: &str| -> Option<AluOp> {
            Some(match m {
                "add" => AluOp::Add,
                "sub" => AluOp::Sub,
                "and" => AluOp::And,
                "or" => AluOp::Or,
                "xor" => AluOp::Xor,
                "sll" => AluOp::Sll,
                "srl" => AluOp::Srl,
                _ => return None,
            })
        };
        let fpu = |m: &str| -> Option<FpuOp> {
            Some(match m {
                "fadd" => FpuOp::FAdd,
                "fsub" => FpuOp::FSub,
                "fmul" => FpuOp::FMul,
                _ => return None,
            })
        };
        let cond = |m: &str| -> Option<Cond> {
            Some(match m {
                "ba" => Cond::Always,
                "bz" | "be" => Cond::Eq,
                "bnz" | "bne" => Cond::Ne,
                "bl" => Cond::Lt,
                "bge" => Cond::Ge,
                _ => return None,
            })
        };
        let load_width = |m: &str| -> Option<MemWidth> {
            Some(match m {
                "ldb" => MemWidth::B1,
                "ldh" => MemWidth::B2,
                "ldw" => MemWidth::B4,
                "ldx" | "ld" => MemWidth::B8,
                _ => return None,
            })
        };
        let store_width = |m: &str| -> Option<MemWidth> {
            Some(match m {
                "stb" => MemWidth::B1,
                "sth" => MemWidth::B2,
                "stw" => MemWidth::B4,
                "stx" => MemWidth::B8,
                _ => return None,
            })
        };

        match mnemonic {
            "set" => {
                if argc != 2 {
                    return Err(wrong_arity(2));
                }
                let imm = parse_int(&ops[0], line)?;
                if let Ok(f) = parse_freg(&ops[1], line) {
                    a.fmovi(f, imm as u64);
                } else {
                    a.movi(parse_reg(&ops[1], line)?, imm);
                }
            }
            "fset" => {
                if argc != 2 {
                    return Err(wrong_arity(2));
                }
                a.fmovi(parse_freg(&ops[1], line)?, parse_int(&ops[0], line)? as u64);
            }
            m if alu(m).is_some() => {
                if argc != 3 {
                    return Err(wrong_arity(3));
                }
                let op = alu(m).expect("checked");
                let ra = parse_reg(&ops[0], line)?;
                let rd = parse_reg(&ops[2], line)?;
                if let Ok(rb) = parse_reg(&ops[1], line) {
                    a.alu(op, rd, ra, rb);
                } else {
                    a.alui(op, rd, ra, parse_int(&ops[1], line)?);
                }
            }
            m if fpu(m).is_some() => {
                if argc != 3 {
                    return Err(wrong_arity(3));
                }
                let op = fpu(m).expect("checked");
                a.fpu(
                    op,
                    parse_freg(&ops[2], line)?,
                    parse_freg(&ops[0], line)?,
                    parse_freg(&ops[1], line)?,
                );
            }
            "cmp" => {
                if argc != 2 {
                    return Err(wrong_arity(2));
                }
                let ra = parse_reg(&ops[0], line)?;
                if let Ok(rb) = parse_reg(&ops[1], line) {
                    a.cmp(ra, rb);
                } else {
                    a.cmpi(ra, parse_int(&ops[1], line)?);
                }
            }
            m if cond(m).is_some() => {
                if argc != 1 {
                    return Err(wrong_arity(1));
                }
                let label = get_label(&mut a, &ops[0]);
                a.branch(cond(m).expect("checked"), label);
            }
            m if load_width(m).is_some() => {
                if argc != 2 {
                    return Err(wrong_arity(2));
                }
                let (base, off) = parse_mem(&ops[0], line)?;
                a.ld(
                    parse_reg(&ops[1], line)?,
                    base,
                    off,
                    load_width(m).expect("checked"),
                );
            }
            m if store_width(m).is_some() => {
                if argc != 2 {
                    return Err(wrong_arity(2));
                }
                let (base, off) = parse_mem(&ops[1], line)?;
                a.st(
                    parse_reg(&ops[0], line)?,
                    base,
                    off,
                    store_width(m).expect("checked"),
                );
            }
            "std" => {
                if argc != 2 {
                    return Err(wrong_arity(2));
                }
                let (base, off) = parse_mem(&ops[1], line)?;
                if let Ok(f) = parse_freg(&ops[0], line) {
                    a.stdf(f, base, off);
                } else {
                    a.std(parse_reg(&ops[0], line)?, base, off);
                }
            }
            "swap" => {
                if argc != 2 {
                    return Err(wrong_arity(2));
                }
                let (base, off) = parse_mem(&ops[0], line)?;
                a.swap(parse_reg(&ops[1], line)?, base, off);
            }
            "membar" => {
                a.membar();
            }
            "nop" => {
                a.nop();
            }
            "halt" => {
                a.halt();
            }
            "mark" => {
                if argc != 1 {
                    return Err(wrong_arity(1));
                }
                let id = parse_int(&ops[0], line)?;
                if !(0..=u32::MAX as i64).contains(&id) {
                    return Err(ParseError::new(line, format!("mark id {id} out of range")));
                }
                a.mark(id as u32);
            }
            other => {
                return Err(ParseError::new(line, format!("unknown mnemonic `{other}`")));
            }
        }
    }

    a.assemble().map_err(|e| match e {
        ProgramError::UnboundLabel { .. } => {
            let unbound: Vec<String> = labels
                .keys()
                .filter(|k| !bound.contains(k))
                .cloned()
                .collect();
            ParseError::new(0, format!("unbound label(s): {}", unbound.join(", ")))
        }
        other => ParseError::new(0, other.to_string()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Inst;

    #[test]
    fn parses_the_papers_kernel() {
        let p = parse_asm(
            r"
            .RETRY:
                set 8, %l4          ! expected value
                std %f0, [%o1]
                std %f10, [%o1+40]
                std %f12, [%o1+8]
                swap [%o1], %l4     ! conditional flush
                cmp %l4, 8          ! compare values
                bnz .RETRY          ! retry on failure
                halt
            ",
        )
        .unwrap();
        assert_eq!(p.len(), 8);
        assert!(matches!(p.fetch(0), Some(Inst::Movi { .. })));
        assert!(matches!(p.fetch(4), Some(Inst::Swap { .. })));
        let br = p.fetch(6).unwrap();
        assert_eq!(p.branch_target(&br), 0);
    }

    #[test]
    fn full_mnemonic_coverage() {
        let p = parse_asm(
            r"
            top:
                set 0x10, %o0
                fset 0x3ff0000000000000, %f1
                add %o0, 4, %l0
                add %o0, %l0, %l1
                sub %l1, 1, %l1
                and %l1, 0xf, %l2
                or %l2, %g1, %l2
                xor %l2, %l2, %l3
                sll %l0, 2, %l0
                srl %l0, 2, %l0
                fadd %f1, %f1, %f2
                fsub %f2, %f1, %f3
                fmul %f2, %f3, %f4
                ldb [%o0], %l4
                ldh [%o0+2], %l4
                ldw [%o0+4], %l4
                ldx [%o0+8], %l4
                stb %l4, [%o0]
                sth %l4, [%o0+2]
                stw %l4, [%o0+4]
                stx %l4, [%o0+8]
                std %l4, [%o0+16]
                std %f4, [%o0+24]
                swap [%o0], %l5
                cmp %l5, %l4
                bge done
                cmp %l5, 3
                bl done
                ba done
            done:
                membar
                nop
                mark 7
                halt
            ",
        )
        .unwrap();
        assert_eq!(p.len(), 33);
    }

    #[test]
    fn negative_offsets_and_registers() {
        let p = parse_asm(
            r"
            set -8, %r20
            ldx [%i3-16], %g7
            halt
            ",
        )
        .unwrap();
        assert!(matches!(p.fetch(1), Some(Inst::Load { offset: -16, .. })));
        assert!(matches!(p.fetch(0), Some(Inst::Movi { imm: -8, .. })));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_asm("set 1, %l0\nfrobnicate %l0\nhalt").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("frobnicate"));
        assert!(e.to_string().contains("line 2"));

        let e = parse_asm("set 1\nhalt").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("expects 2"));

        let e = parse_asm("ldx [%q1], %l0\nhalt").unwrap_err();
        assert!(e.message.contains("%q1"));

        let e = parse_asm("set zzz, %l0\nhalt").unwrap_err();
        assert!(e.message.contains("zzz"));
    }

    #[test]
    fn unbound_label_reported_by_name() {
        let e = parse_asm("ba nowhere\nhalt").unwrap_err();
        assert!(e.message.contains("nowhere"));
    }

    #[test]
    fn duplicate_label_rejected() {
        let e = parse_asm("x:\nx:\nhalt").unwrap_err();
        assert!(e.message.contains("bound twice"));
    }

    #[test]
    fn missing_halt_rejected() {
        let e = parse_asm("nop").unwrap_err();
        assert!(e.message.contains("halt"));
    }

    #[test]
    fn forward_references_resolve() {
        let p = parse_asm("ba out\nnop\nout: halt").unwrap();
        let br = p.fetch(0).unwrap();
        assert_eq!(p.branch_target(&br), 2);
    }

    #[test]
    fn label_and_instruction_on_one_line() {
        let p = parse_asm("start: set 1, %l0\nba start\nhalt").unwrap();
        let br = p.fetch(1).unwrap();
        assert_eq!(p.branch_target(&br), 0);
    }
}
