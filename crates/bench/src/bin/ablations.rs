//! Regenerates the in-text ablation studies: superscalar width vs. lock
//! overhead (§4.3.2), the double-buffered CSB, the variable-burst CSB
//! (§3.2), and the PIO/DMA break-even sweep (§5).
//!
//! Usage: `cargo run -p csb-bench --bin ablations [--jobs N] [--json out.json]
//! [--trace-out trace.json] [--metrics-out metrics.json]
//! [--ledger ledger.jsonl] [--no-fast-forward]`
//!
//! The observability flags capture one artifact per ablation point across
//! every sweep (the PIO/DMA break-even model is analytic per message size
//! and contributes no runner points).

use csb_core::dma::{DmaModel, PioMethod, MESSAGE_SIZES};
use csb_core::experiments::{ablations, format_table};
use csb_core::SimConfig;

const USAGE: &str = "ablations [--jobs N] [--json out.json] [--trace-out trace.json] \
[--metrics-out metrics.json] [--ledger ledger.jsonl] [--no-fast-forward] \
[--cache-dir DIR] [--no-cache] [--snapshot-every N]";

fn main() {
    csb_bench::validate_standard_args(USAGE);
    csb_bench::apply_fast_forward_flag();
    csb_bench::apply_cache_flags();
    let jobs = csb_bench::jobs_from_args();
    let bo = csb_bench::obs_from_args();
    let mut all_artifacts = Vec::new();

    // --- Superscalar width vs. lock overhead --------------------------
    let (widths, arts, mut report) = ablations::superscalar_widths_jobs_observed(4, jobs, bo.obs)
        .expect("width ablation simulates");
    all_artifacts.extend(arts);
    let headers = vec![
        "width".to_string(),
        "lock cycles".to_string(),
        "CSB cycles".to_string(),
    ];
    let rows: Vec<Vec<String>> = widths
        .iter()
        .map(|r| {
            vec![
                format!("{}-way", r.width),
                r.lock_cycles.to_string(),
                r.csb_cycles.to_string(),
            ]
        })
        .collect();
    println!("Superscalar width vs. atomic-access latency (4 dwords, lock hits L1)");
    println!("{}", format_table(&headers, &rows));

    // --- CSB extensions ------------------------------------------------
    let headers = vec![
        "bytes".to_string(),
        "baseline B/c".to_string(),
        "variant B/c".to_string(),
    ];
    let render = |rows: &[ablations::CsbVariantRow]| -> Vec<Vec<String>> {
        rows.iter()
            .map(|r| {
                vec![
                    r.transfer.to_string(),
                    format!("{:.2}", r.baseline),
                    format!("{:.2}", r.variant),
                ]
            })
            .collect()
    };
    let (double, arts, r) = ablations::double_buffered_jobs_observed(jobs, bo.obs)
        .expect("double-buffer ablation simulates");
    all_artifacts.extend(arts);
    report.merge(&r);
    println!("Double-buffered CSB (second line buffer, §3.2)");
    println!("{}", format_table(&headers, &render(&double)));
    let (variable, arts, r) = ablations::variable_burst_jobs_observed(jobs, bo.obs)
        .expect("variable-burst ablation simulates");
    all_artifacts.extend(arts);
    report.merge(&r);
    println!("Variable-burst CSB (multiple burst sizes, §3.2)");
    println!("{}", format_table(&headers, &render(&variable)));

    // --- Related-work baselines under store-order pressure --------------
    let (rows, arts, r) = ablations::related_work_jobs_observed(jobs, bo.obs)
        .expect("related-work ablation simulates");
    all_artifacts.extend(arts);
    report.merge(&r);
    let headers = vec![
        "bytes".to_string(),
        "scheme".to_string(),
        "ascending B/c".to_string(),
        "shuffled B/c".to_string(),
    ];
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.transfer.to_string(),
                r.scheme.clone(),
                format!("{:.2}", r.ascending),
                format!("{:.2}", r.shuffled),
            ]
        })
        .collect();
    println!("Hardware pattern combining vs. store order (§2: R10000 / PowerPC 620)");
    println!("{}", format_table(&headers, &table));

    // --- Buffer depth and uncached issue rate ---------------------------
    let (rows, arts, r) = ablations::buffer_capacity_jobs_observed(jobs, bo.obs)
        .expect("capacity ablation simulates");
    all_artifacts.extend(arts);
    report.merge(&r);
    let headers = vec![
        "entries".to_string(),
        "none B/c".to_string(),
        "full-line B/c".to_string(),
    ];
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.capacity.to_string(),
                format!("{:.2}", r.none),
                format!("{:.2}", r.full_line),
            ]
        })
        .collect();
    println!("Uncached buffer depth vs. bandwidth (1 KiB)");
    println!("{}", format_table(&headers, &table));

    let (rows, arts, r) = ablations::uncached_issue_rate_jobs_observed(jobs, bo.obs)
        .expect("issue-rate ablation simulates");
    all_artifacts.extend(arts);
    report.merge(&r);
    let headers = vec![
        "uncached/cycle".to_string(),
        "CSB cycles (8 dwords)".to_string(),
    ];
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.per_cycle.to_string(), r.csb_cycles.to_string()])
        .collect();
    println!("Retirement-stage uncached issue rate vs. CSB latency");
    println!("{}", format_table(&headers, &table));

    // --- Loaded bus: turnaround approximation vs. real contention -------
    let (rows, arts, r) =
        ablations::loaded_bus_jobs_observed(jobs, bo.obs).expect("loaded-bus ablation simulates");
    all_artifacts.extend(arts);
    report.merge(&r);
    let headers = vec![
        "scheme".to_string(),
        "idle B/c".to_string(),
        "turnaround approx".to_string(),
        "1/3 contention".to_string(),
    ];
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scheme.clone(),
                format!("{:.2}", r.idle),
                format!("{:.2}", r.turnaround_approx),
                format!("{:.2}", r.contention),
            ]
        })
        .collect();
    println!(
        "Loaded bus: the paper's turnaround approximation vs. real multi-master contention (1 KiB)"
    );
    println!("{}", format_table(&headers, &table));

    // --- PIO vs. DMA break-even (§5) ------------------------------------
    let cfg = SimConfig::default();
    let model = DmaModel::default();
    for (method, name) in [
        (PioMethod::Locked, "locked PIO"),
        (PioMethod::Csb, "CSB PIO"),
    ] {
        let (rows, crossover) = model
            .break_even(&cfg, method, &MESSAGE_SIZES)
            .expect("break-even simulates");
        let headers = vec![
            "bytes".to_string(),
            "PIO cycles".to_string(),
            "DMA cycles".to_string(),
        ];
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.bytes.to_string(),
                    r.pio_cycles.to_string(),
                    r.dma_cycles.to_string(),
                ]
            })
            .collect();
        println!("PIO/DMA break-even, {name}");
        println!("{}", format_table(&headers, &table));
        match crossover {
            Some(b) => println!("DMA wins from {b} bytes\n"),
            None => println!("PIO wins across the sweep\n"),
        }
    }

    eprintln!("{}", report.render());
    bo.emit("ablations", &all_artifacts);
    if let Some(path) = csb_bench::json_path_from_args() {
        csb_bench::dump_json(&path, &(widths, double, variable));
    }
}
