//! End-to-end reliable NIC messaging sweep: exactly-once delivery
//! accounting and latency tails of sequence-numbered messages through the
//! Machine-attached NI, crossing send path (lock vs. CSB vs.
//! double-buffered CSB) × message size × fault rate × retry policy.
//!
//! Usage: `cargo run -p csb-bench --bin messaging [--jobs N]
//! [--json out.json] [--trace-out trace.json] [--metrics-out metrics.json]
//! [--ledger ledger.jsonl] [--no-fast-forward] [--cache-dir DIR]`
//!
//! Every cell merges a batch of seeded fault schedules shared across the
//! rate axis; the same seeds produce the same table on every run and
//! worker count, and `--cache-dir` reuses finished points across
//! invocations (cached cells carry their raw histogram buckets, so the
//! merged quantiles are identical either way). The process exits nonzero
//! if the hard reliability invariants fail: exactly-once delivery at
//! fault rate 0, and per-seed monotone degradation along the rate axis.

use std::io::{BufWriter, Write};

use csb_core::experiments::messaging;

const USAGE: &str = "messaging [--jobs N] [--json out.json] [--trace-out trace.json] \
[--metrics-out metrics.json] [--ledger ledger.jsonl] [--no-fast-forward] \
[--cache-dir DIR] [--no-cache] [--snapshot-every N]";

fn main() {
    csb_bench::validate_standard_args(USAGE);
    csb_bench::apply_fast_forward_flag();
    csb_bench::apply_cache_flags();
    let jobs = csb_bench::jobs_from_args();
    let bo = csb_bench::obs_from_args();
    let (sweep, artifacts, report) =
        messaging::run_jobs_observed(jobs, bo.obs).expect("messaging sweep simulates");
    let mut out = BufWriter::new(std::io::stdout().lock());
    writeln!(out, "{}", sweep.to_table()).expect("stdout writable");
    writeln!(
        out,
        "exactly-once at rate 0: {}; per-seed degradation monotone: {}",
        sweep.exactly_once_at_zero(),
        sweep.per_seed_monotone
    )
    .expect("stdout writable");
    out.flush().expect("stdout flushes");
    eprintln!("{}", report.render());
    bo.emit("messaging", &artifacts);
    if let Some(path) = csb_bench::json_path_from_args() {
        csb_bench::dump_json(&path, &sweep);
    }
    if !sweep.exactly_once_at_zero() {
        eprintln!("messaging: exactly-once invariant violated at fault rate 0");
        std::process::exit(1);
    }
    if !sweep.per_seed_monotone {
        eprintln!("messaging: per-seed degradation curve is not monotone");
        std::process::exit(1);
    }
}
