//! Regenerates Figure 3: uncached store bandwidth on a multiplexed bus,
//! panels (a)-(i).
//!
//! Usage: `cargo run -p csb-bench --bin fig3 [--jobs N] [--json out.json]`

use csb_core::experiments::fig3;

fn main() {
    let jobs = csb_bench::jobs_from_args();
    let (panels, report) = fig3::run_jobs(jobs).expect("Figure 3 panels simulate");
    for p in &panels {
        println!("{}", p.to_table());
    }
    eprintln!("{}", report.render());
    if let Some(path) = csb_bench::json_path_from_args() {
        csb_bench::dump_json(&path, &panels);
    }
}
