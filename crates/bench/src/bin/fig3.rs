//! Regenerates Figure 3: uncached store bandwidth on a multiplexed bus,
//! panels (a)-(i).
//!
//! Usage: `cargo run -p csb-bench --bin fig3 [--jobs N] [--json out.json]
//! [--trace-out trace.json] [--metrics-out metrics.json]`

use csb_core::experiments::fig3;

fn main() {
    let jobs = csb_bench::jobs_from_args();
    let (obs, trace_out, metrics_out) = csb_bench::obs_from_args();
    let (panels, artifacts, report) =
        fig3::run_jobs_observed(jobs, obs).expect("Figure 3 panels simulate");
    for p in &panels {
        println!("{}", p.to_table());
    }
    eprintln!("{}", report.render());
    csb_bench::write_artifacts(&artifacts, trace_out.as_ref(), metrics_out.as_ref());
    if let Some(path) = csb_bench::json_path_from_args() {
        csb_bench::dump_json(&path, &panels);
    }
}
