//! Regenerates Figure 3: uncached store bandwidth on a multiplexed bus,
//! panels (a)-(i).
//!
//! Usage: `cargo run -p csb-bench --bin fig3 [--jobs N] [--json out.json]
//! [--trace-out trace.json] [--metrics-out metrics.json]
//! [--ledger ledger.jsonl] [--no-fast-forward]`

use std::io::{BufWriter, Write};

use csb_core::experiments::fig3;

const USAGE: &str = "fig3 [--jobs N] [--json out.json] [--trace-out trace.json] \
[--metrics-out metrics.json] [--ledger ledger.jsonl] [--no-fast-forward] \
[--cache-dir DIR] [--no-cache] [--snapshot-every N]";

fn main() {
    csb_bench::validate_standard_args(USAGE);
    csb_bench::apply_fast_forward_flag();
    csb_bench::apply_cache_flags();
    let jobs = csb_bench::jobs_from_args();
    let bo = csb_bench::obs_from_args();
    let (panels, artifacts, report) =
        fig3::run_jobs_observed(jobs, bo.obs).expect("Figure 3 panels simulate");
    // Lock stdout once and buffer: the tables are thousands of short
    // lines, and a per-line lock/flush dominates the print path.
    let mut out = BufWriter::new(std::io::stdout().lock());
    for p in &panels {
        writeln!(out, "{}", p.to_table()).expect("stdout writable");
    }
    out.flush().expect("stdout flushes");
    eprintln!("{}", report.render());
    bo.emit("fig3", &artifacts);
    if let Some(path) = csb_bench::json_path_from_args() {
        csb_bench::dump_json(&path, &panels);
    }
}
