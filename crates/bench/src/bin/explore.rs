//! One-off configuration explorer: simulate a single bandwidth point and
//! show its bus timeline.
//!
//! ```text
//! cargo run -p csb-bench --bin explore -- \
//!     [--bus mux|split] [--width N] [--line N] [--ratio N] \
//!     [--turnaround N] [--delay N] [--scheme none|16|32|64|128|r10k|ppc620|csb] \
//!     [--bytes N[,N...]] [--jobs N] [--timeline N] [--asm FILE] \
//!     [--ledger ledger.jsonl] [--no-fast-forward]
//! ```
//!
//! `--bytes` accepts a comma-separated list, turning the explorer into a
//! transfer-size sweep executed on the parallel experiment runner
//! (`--jobs N` workers, default all cores); the timeline is only shown
//! for a single point.
//!
//! With `--asm FILE` the workload is assembled from a SPARC-flavored
//! source file (see `csb_isa::parse_asm`) instead of generated.
//!
//! Defaults reproduce the paper's baseline machine with the CSB at one
//! cache line.

use std::io::{BufWriter, Write};

use csb_bus::BusConfig;
use csb_core::experiments::runner::{
    run_values_observed, LabeledArtifacts, ObsConfig, PointArtifacts, PointSpec, PointValue,
    PointWork,
};
use csb_core::experiments::{format_table, Scheme};
use csb_core::workloads::StoreOrder;
use csb_core::{trace, workloads, SimConfig, Simulator};

#[derive(Debug)]
struct Args {
    bus: String,
    width: usize,
    line: usize,
    ratio: u64,
    turnaround: u64,
    delay: u64,
    scheme: String,
    bytes: Vec<usize>,
    jobs: usize,
    timeline: u64,
    asm: Option<String>,
    ledger: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            bus: "mux".into(),
            width: 8,
            line: 64,
            ratio: 6,
            turnaround: 0,
            delay: 0,
            scheme: "csb".into(),
            bytes: vec![64],
            jobs: 0,
            timeline: 40,
            asm: None,
            ledger: None,
        }
    }
}

const USAGE: &str = "explore [--bus mux|split] [--width N] [--line N] [--ratio N] \
[--turnaround N] [--delay N] [--scheme none|16|32|64|128|r10k|ppc620|csb] \
[--bytes N[,N...]] [--jobs N] [--timeline N] [--asm FILE] [--ledger FILE] \
[--no-fast-forward] [--cache-dir DIR] [--no-cache] [--snapshot-every N]";

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next().unwrap_or_else(|| {
                csb_bench::usage_error(USAGE, format!("{name} requires a value"))
            })
        };
        // Numeric flags share one error shape: `--flag` plus a value that
        // must parse as an integer.
        fn num<T: std::str::FromStr>(name: &str, v: String) -> T {
            v.parse().unwrap_or_else(|_| {
                csb_bench::usage_error(USAGE, format!("{name} requires an integer, got {v:?}"))
            })
        }
        match flag.as_str() {
            "--bus" => args.bus = val("--bus"),
            "--width" => args.width = num("--width", val("--width")),
            "--line" => args.line = num("--line", val("--line")),
            "--ratio" => args.ratio = num("--ratio", val("--ratio")),
            "--turnaround" => args.turnaround = num("--turnaround", val("--turnaround")),
            "--delay" => args.delay = num("--delay", val("--delay")),
            "--scheme" => args.scheme = val("--scheme"),
            "--bytes" => {
                let list = val("--bytes");
                args.bytes = list.split(',').map(|b| num("--bytes", b.into())).collect();
                if args.bytes.is_empty() {
                    csb_bench::usage_error(USAGE, "--bytes requires at least one size");
                }
            }
            "--jobs" => {
                args.jobs = num("--jobs", val("--jobs"));
                if args.jobs == 0 {
                    csb_bench::usage_error(USAGE, "--jobs requires a positive integer");
                }
            }
            "--timeline" => args.timeline = num("--timeline", val("--timeline")),
            "--asm" => args.asm = Some(val("--asm")),
            "--ledger" => args.ledger = Some(val("--ledger")),
            "--no-fast-forward" => csb_core::set_default_fast_forward(false),
            // Consumed by apply_cache_flags (which re-reads the raw
            // command line); only the values must be skipped here.
            "--cache-dir" | "--snapshot-every" => {
                val(&flag);
            }
            "--no-cache" => {}
            other => csb_bench::usage_error(USAGE, format!("unknown flag {other}")),
        }
    }
    args
}

/// Maps the `--scheme` flag to the experiment layer's scheme enum.
fn scheme_from_flag(flag: &str, line: usize) -> Scheme {
    match flag {
        "csb" => Scheme::Csb,
        "none" => Scheme::Uncached { block: 8 },
        "r10k" => Scheme::R10k,
        "ppc620" => Scheme::Ppc620,
        n => Scheme::Uncached {
            block: n.parse().unwrap_or_else(|_| {
                csb_bench::usage_error(
                    USAGE,
                    format!("--scheme none|16|32|64|128|r10k|ppc620|csb, got {n} (line {line}B)"),
                )
            }),
        },
    }
}

fn main() {
    let args = parse_args();
    csb_bench::apply_cache_flags();
    let bus = match args.bus.as_str() {
        "mux" => BusConfig::multiplexed(args.width),
        "split" => BusConfig::split(args.width),
        other => csb_bench::usage_error(USAGE, format!("--bus must be mux or split, got {other}")),
    }
    .max_burst(args.line)
    .turnaround(args.turnaround)
    .min_addr_delay(args.delay)
    .build()
    .unwrap_or_else(|e| csb_bench::die(e));
    let cfg = SimConfig::default()
        .line_size(args.line)
        .bus(bus)
        .frequency_ratio(args.ratio);
    if let Err(e) = cfg.validate() {
        csb_bench::die(e);
    }

    // A comma list of transfer sizes runs as a sweep on the parallel
    // experiment runner instead of the single-point timeline path.
    if args.bytes.len() > 1 {
        if args.asm.is_some() {
            csb_bench::usage_error(USAGE, "--asm is a single-point mode; drop the --bytes list");
        }
        let scheme = scheme_from_flag(&args.scheme, args.line);
        let specs: Vec<PointSpec> = args
            .bytes
            .iter()
            .map(|&transfer| PointSpec {
                label: format!("explore/{transfer}B/{scheme}"),
                cfg: cfg.clone(),
                work: PointWork::Bandwidth {
                    transfer,
                    scheme,
                    order: StoreOrder::Ascending,
                },
            })
            .collect();
        // Ledger records need the flush histograms, so --ledger turns on
        // metrics capture for the sweep.
        let obs = ObsConfig {
            trace: false,
            metrics: args.ledger.is_some(),
        };
        let (_, labeled, report) =
            run_values_observed(&specs, args.jobs, obs).unwrap_or_else(|e| csb_bench::die(e));
        // Lock stdout once and buffer the sweep output.
        let mut out = BufWriter::new(std::io::stdout().lock());
        writeln!(
            out,
            "machine : {} bus, {}B wide, {}B line, ratio {}, turnaround {}, delay {}",
            cfg.bus.kind(),
            cfg.bus.width(),
            cfg.line(),
            cfg.ratio,
            cfg.bus.turnaround(),
            cfg.bus.min_addr_delay()
        )
        .unwrap();
        writeln!(
            out,
            "sweep   : {} over {} transfer sizes\n",
            scheme,
            args.bytes.len()
        )
        .unwrap();
        let headers = vec![
            "bytes".to_string(),
            "B/bus-cycle".to_string(),
            "sim cycles".to_string(),
            "wall ms".to_string(),
        ];
        let rows: Vec<Vec<String>> = args
            .bytes
            .iter()
            .zip(&labeled)
            .map(|(&b, la)| {
                vec![
                    b.to_string(),
                    format!("{:.2}", la.value.bandwidth().expect("bandwidth point")),
                    la.sim_cycles.to_string(),
                    format!("{:.1}", la.wall.as_secs_f64() * 1e3),
                ]
            })
            .collect();
        writeln!(out, "{}", format_table(&headers, &rows)).unwrap();
        out.flush().expect("stdout flushes");
        eprintln!("{}", report.render());
        if let Some(ledger) = &args.ledger {
            csb_bench::append_ledger(std::path::Path::new(ledger), "explore", &labeled);
        }
        return;
    }
    let bytes = args.bytes[0];

    let (path, ucfg) = match args.scheme.as_str() {
        "csb" => (workloads::StorePath::Csb, None),
        "none" => (
            workloads::StorePath::Uncached,
            Some(csb_uncached::UncachedConfig::with_block(8)),
        ),
        "r10k" => (
            workloads::StorePath::Uncached,
            Some(csb_uncached::UncachedConfig::r10000(args.line)),
        ),
        "ppc620" => (
            workloads::StorePath::Uncached,
            Some(csb_uncached::UncachedConfig::ppc620()),
        ),
        n => {
            let block: usize = n.parse().unwrap_or_else(|_| {
                csb_bench::usage_error(
                    USAGE,
                    format!("--scheme none|16|32|64|128|r10k|ppc620|csb, got {n}"),
                )
            });
            (
                workloads::StorePath::Uncached,
                Some(csb_uncached::UncachedConfig::with_block(block)),
            )
        }
    };
    let mut cfg = cfg;
    if let Some(u) = ucfg {
        cfg.uncached = u;
    }

    let program = match &args.asm {
        Some(file) => {
            let source = std::fs::read_to_string(file)
                .unwrap_or_else(|e| csb_bench::die(format!("cannot read {file}: {e}")));
            csb_isa::parse_asm(&source).unwrap_or_else(|e| csb_bench::die(format!("{file}: {e}")))
        }
        None => workloads::store_bandwidth(bytes, &cfg, path)
            .unwrap_or_else(|e| csb_bench::die(format!("--bytes {bytes}: {e}"))),
    };
    let mut sim = Simulator::new(cfg.clone(), program).expect("valid machine");
    sim.enable_tracing();
    if args.ledger.is_some() {
        sim.enable_metrics();
    }
    let t0 = std::time::Instant::now();
    let s = sim.run(100_000_000).expect("run completes");
    let wall = t0.elapsed();

    // Lock stdout once and buffer the report + timeline.
    let mut out = BufWriter::new(std::io::stdout().lock());
    writeln!(
        out,
        "machine : {} bus, {}B wide, {}B line, ratio {}, turnaround {}, delay {}",
        cfg.bus.kind(),
        cfg.bus.width(),
        cfg.line(),
        cfg.ratio,
        cfg.bus.turnaround(),
        cfg.bus.min_addr_delay()
    )
    .unwrap();
    match &args.asm {
        Some(f) => writeln!(out, "workload: assembled from {f}").unwrap(),
        None => writeln!(out, "workload: {} bytes via {}", bytes, args.scheme).unwrap(),
    }
    writeln!(
        out,
        "result  : {:.2} bytes/bus-cycle over {} bus cycles, {} transactions, {} CPU cycles",
        s.bus.effective_bandwidth(),
        s.bus.window_cycles(),
        s.bus.transactions,
        s.cycles
    )
    .unwrap();
    let t = trace::timeline_from_events(&sim.trace_events(), 0, args.timeline, cfg.ratio);
    writeln!(out, "\n{}", t.render()).unwrap();
    out.flush().expect("stdout flushes");
    if let Some(ledger) = &args.ledger {
        let label = match &args.asm {
            Some(f) => format!("explore/asm/{f}"),
            None => format!("explore/{bytes}B/{}", args.scheme),
        };
        let la = LabeledArtifacts {
            label,
            value: PointValue::Bandwidth(s.bus.effective_bandwidth()),
            sim_cycles: s.cycles,
            wall,
            seed: 0,
            config_hash: csb_obs::hash_config(&format!("{cfg:?} {:?}", args.asm)),
            artifacts: PointArtifacts {
                trace_json: None,
                metrics: Some(sim.metrics_report()),
            },
        };
        csb_bench::append_ledger(std::path::Path::new(ledger), "explore", &[la]);
    }
}
