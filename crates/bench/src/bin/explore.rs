//! One-off configuration explorer: simulate a single bandwidth point and
//! show its bus timeline.
//!
//! ```text
//! cargo run -p csb-bench --bin explore -- \
//!     [--bus mux|split] [--width N] [--line N] [--ratio N] \
//!     [--turnaround N] [--delay N] [--scheme none|16|32|64|128|r10k|ppc620|csb] \
//!     [--bytes N] [--timeline N] [--asm FILE]
//! ```
//!
//! With `--asm FILE` the workload is assembled from a SPARC-flavored
//! source file (see `csb_isa::parse_asm`) instead of generated.
//!
//! Defaults reproduce the paper's baseline machine with the CSB at one
//! cache line.

use csb_bus::BusConfig;
use csb_core::{trace, workloads, SimConfig, Simulator};

#[derive(Debug)]
struct Args {
    bus: String,
    width: usize,
    line: usize,
    ratio: u64,
    turnaround: u64,
    delay: u64,
    scheme: String,
    bytes: usize,
    timeline: u64,
    asm: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            bus: "mux".into(),
            width: 8,
            line: 64,
            ratio: 6,
            turnaround: 0,
            delay: 0,
            scheme: "csb".into(),
            bytes: 64,
            timeline: 40,
            asm: None,
        }
    }
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--bus" => args.bus = val("--bus"),
            "--width" => args.width = val("--width").parse().expect("numeric --width"),
            "--line" => args.line = val("--line").parse().expect("numeric --line"),
            "--ratio" => args.ratio = val("--ratio").parse().expect("numeric --ratio"),
            "--turnaround" => {
                args.turnaround = val("--turnaround").parse().expect("numeric --turnaround")
            }
            "--delay" => args.delay = val("--delay").parse().expect("numeric --delay"),
            "--scheme" => args.scheme = val("--scheme"),
            "--bytes" => args.bytes = val("--bytes").parse().expect("numeric --bytes"),
            "--timeline" => args.timeline = val("--timeline").parse().expect("numeric --timeline"),
            "--asm" => args.asm = Some(val("--asm")),
            other => panic!("unknown flag {other}; see the binary's doc comment"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let bus = match args.bus.as_str() {
        "mux" => BusConfig::multiplexed(args.width),
        "split" => BusConfig::split(args.width),
        other => panic!("--bus must be mux or split, got {other}"),
    }
    .max_burst(args.line)
    .turnaround(args.turnaround)
    .min_addr_delay(args.delay)
    .build()
    .expect("valid bus configuration");
    let cfg = SimConfig::default()
        .line_size(args.line)
        .bus(bus)
        .frequency_ratio(args.ratio);
    cfg.validate().expect("consistent machine configuration");

    let (path, ucfg) = match args.scheme.as_str() {
        "csb" => (workloads::StorePath::Csb, None),
        "none" => (
            workloads::StorePath::Uncached,
            Some(csb_uncached::UncachedConfig::with_block(8)),
        ),
        "r10k" => (
            workloads::StorePath::Uncached,
            Some(csb_uncached::UncachedConfig::r10000(args.line)),
        ),
        "ppc620" => (
            workloads::StorePath::Uncached,
            Some(csb_uncached::UncachedConfig::ppc620()),
        ),
        n => {
            let block: usize = n
                .parse()
                .expect("--scheme none|16|32|64|128|r10k|ppc620|csb");
            (
                workloads::StorePath::Uncached,
                Some(csb_uncached::UncachedConfig::with_block(block)),
            )
        }
    };
    let mut cfg = cfg;
    if let Some(u) = ucfg {
        cfg.uncached = u;
    }

    let program = match &args.asm {
        Some(file) => {
            let source =
                std::fs::read_to_string(file).unwrap_or_else(|e| panic!("cannot read {file}: {e}"));
            csb_isa::parse_asm(&source).unwrap_or_else(|e| panic!("{file}: {e}"))
        }
        None => workloads::store_bandwidth(args.bytes, &cfg, path).expect("valid transfer size"),
    };
    let mut sim = Simulator::new(cfg.clone(), program).expect("valid machine");
    sim.enable_bus_log();
    let s = sim.run(100_000_000).expect("run completes");

    println!(
        "machine : {} bus, {}B wide, {}B line, ratio {}, turnaround {}, delay {}",
        cfg.bus.kind(),
        cfg.bus.width(),
        cfg.line(),
        cfg.ratio,
        cfg.bus.turnaround(),
        cfg.bus.min_addr_delay()
    );
    match &args.asm {
        Some(f) => println!("workload: assembled from {f}"),
        None => println!("workload: {} bytes via {}", args.bytes, args.scheme),
    }
    println!(
        "result  : {:.2} bytes/bus-cycle over {} bus cycles, {} transactions, {} CPU cycles",
        s.bus.effective_bandwidth(),
        s.bus.window_cycles(),
        s.bus.transactions,
        s.cycles
    );
    let t = trace::timeline(sim.bus_log(), 0, args.timeline);
    println!("\n{}", t.render());
}
