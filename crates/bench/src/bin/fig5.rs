//! Regenerates Figure 5: lock/access/unlock vs. CSB latency, panels (a)-(b).
//! Usage: `cargo run -p csb-bench --bin fig5 [--json out.json]`

use csb_core::experiments::fig5;

fn main() {
    let panels = fig5::run().expect("Figure 5 panels simulate");
    for p in &panels {
        println!("{}", p.to_table());
    }
    if let Some(path) = csb_bench::json_path_from_args() {
        csb_bench::dump_json(&path, &panels);
    }
}
