//! Regenerates Figure 5: lock/access/unlock vs. CSB latency, panels (a)-(b).
//!
//! Usage: `cargo run -p csb-bench --bin fig5 [--jobs N] [--json out.json]`

use csb_core::experiments::fig5;

fn main() {
    let jobs = csb_bench::jobs_from_args();
    let (panels, report) = fig5::run_jobs(jobs).expect("Figure 5 panels simulate");
    for p in &panels {
        println!("{}", p.to_table());
    }
    eprintln!("{}", report.render());
    if let Some(path) = csb_bench::json_path_from_args() {
        csb_bench::dump_json(&path, &panels);
    }
}
