//! Diffs two perf ledgers and fails on regressions — the cross-run
//! counterpart of the per-run `RunReport`.
//!
//! Usage: `cargo run -p csb-bench --bin ledger -- <baseline.jsonl>
//! <current.jsonl> [--threshold 0.10] [--json out.json]`
//!
//! Both inputs are JSONL ledgers written by the bench binaries' `--ledger`
//! flag. Every point in the baseline must reappear in the current ledger
//! (matched on `bench::label#seed`, newest record wins within a file) with
//! its simulated cycle count and flush-latency quantiles no more than
//! `--threshold` (relative, default 0.10 = 10%) above the baseline.
//! Missing coverage or any regressed gauge prints a report to stderr and
//! exits 1 — the contract CI's ledger-diff step enforces against the
//! checked-in baseline. `--json` additionally dumps the structured
//! [`csb_obs::LedgerDiff`].

use std::process::ExitCode;

const USAGE: &str = "ledger <baseline.jsonl> <current.jsonl> [--threshold 0.10] [--json out.json]";

fn main() -> ExitCode {
    csb_bench::validate_args(USAGE, &["--threshold", "--json"], &[], 2);
    let positional: Vec<String> = {
        let mut args = std::env::args().skip(1);
        let mut pos = Vec::new();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--threshold" | "--json" => {
                    args.next();
                }
                _ if a.starts_with("--threshold=") || a.starts_with("--json=") => {}
                _ => pos.push(a),
            }
        }
        pos
    };
    let [baseline_path, current_path] = positional.as_slice() else {
        csb_bench::usage_error(USAGE, "expected exactly two ledger paths");
    };
    let threshold = match csb_bench::flag_path_from_args("--threshold") {
        None => 0.10,
        Some(raw) => {
            let raw = raw.to_string_lossy();
            match raw.parse::<f64>() {
                Ok(t) if t.is_finite() && t >= 0.0 => t,
                _ => csb_bench::usage_error(
                    USAGE,
                    format!("--threshold requires a non-negative number, got {raw:?}"),
                ),
            }
        }
    };

    let read_ledger = |path: &str| {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| csb_bench::die(format!("cannot read {path}: {e}")));
        csb_obs::parse_ledger(&text).unwrap_or_else(|e| csb_bench::die(format!("{path}: {e}")))
    };
    let baseline = read_ledger(baseline_path);
    let current = read_ledger(current_path);

    let diff = csb_obs::diff_ledgers(&baseline, &current, threshold);
    eprint!("{}", diff.render());
    if let Some(path) = csb_bench::json_path_from_args() {
        csb_bench::dump_json(&path, &diff);
    }
    if diff.is_regression() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
