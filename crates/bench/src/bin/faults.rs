//! Fault-injection sweep: success rate and latency degradation of each
//! software retry policy (naive spin, bounded, exponential backoff) as the
//! deterministic fault schedule's rates rise.
//!
//! Usage: `cargo run -p csb-bench --bin faults [--jobs N] [--json out.json]
//! [--no-fast-forward]`
//!
//! Every cell averages a batch of seeded schedules; the same seeds produce
//! the same table on every run and worker count. Pass `--json` to dump the
//! raw sweep (per-cell success counts, livelocks, attempt and latency
//! means) for further processing.

use std::io::{BufWriter, Write};

use csb_core::experiments::faults;

const USAGE: &str = "faults [--jobs N] [--json out.json] [--no-fast-forward]";

fn main() {
    csb_bench::validate_args(
        USAGE,
        &["--jobs", "--json"],
        csb_bench::STANDARD_BARE_FLAGS,
        0,
    );
    csb_bench::apply_fast_forward_flag();
    let jobs = csb_bench::jobs_from_args();
    let (sweep, report) = faults::run_jobs(jobs).expect("fault sweep simulates");
    let mut out = BufWriter::new(std::io::stdout().lock());
    writeln!(out, "{}", sweep.to_table()).expect("stdout writable");
    out.flush().expect("stdout flushes");
    eprintln!("{}", report.render());
    if let Some(path) = csb_bench::json_path_from_args() {
        csb_bench::dump_json(&path, &sweep);
    }
}
