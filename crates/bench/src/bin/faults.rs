//! Fault-injection sweep: success rate and latency degradation of each
//! software retry policy (naive spin, bounded, exponential backoff) as the
//! deterministic fault schedule's rates rise.
//!
//! Usage: `cargo run -p csb-bench --bin faults [--jobs N] [--json out.json]
//! [--trace-out trace.json] [--metrics-out metrics.json]
//! [--ledger ledger.jsonl] [--no-fast-forward]`
//!
//! Every cell averages a batch of seeded schedules; the same seeds produce
//! the same table on every run and worker count. Pass `--json` to dump the
//! raw sweep (per-cell success counts, livelocks, attempt and latency
//! means) for further processing. The observability flags capture one
//! artifact per seeded point (labels like `faults/r50/backoff-12`),
//! exactly as fig3/fig4/fig5 do for figure points — fault traces stay
//! byte-identical between the naive and fast-forward loops.

use std::io::{BufWriter, Write};

use csb_core::experiments::faults;

const USAGE: &str = "faults [--jobs N] [--json out.json] [--trace-out trace.json] \
[--metrics-out metrics.json] [--ledger ledger.jsonl] [--no-fast-forward] \
[--cache-dir DIR] [--no-cache] [--snapshot-every N]";

fn main() {
    csb_bench::validate_standard_args(USAGE);
    csb_bench::apply_fast_forward_flag();
    csb_bench::apply_cache_flags();
    let jobs = csb_bench::jobs_from_args();
    let bo = csb_bench::obs_from_args();
    let (sweep, artifacts, report) =
        faults::run_jobs_observed(jobs, bo.obs).expect("fault sweep simulates");
    let mut out = BufWriter::new(std::io::stdout().lock());
    writeln!(out, "{}", sweep.to_table()).expect("stdout writable");
    out.flush().expect("stdout flushes");
    eprintln!("{}", report.render());
    bo.emit("faults", &artifacts);
    if let Some(path) = csb_bench::json_path_from_args() {
        csb_bench::dump_json(&path, &sweep);
    }
}
