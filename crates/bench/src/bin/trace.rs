//! Replays one named figure point with tracing and metrics enabled —
//! the quickest way from "that bar looks wrong" to a Perfetto timeline.
//!
//! Usage: `cargo run -p csb-bench --bin trace -- <point> [--trace-out
//! trace.json] [--metrics-out metrics.json] [--ledger ledger.jsonl]
//! [--no-fast-forward]`
//!
//! `<point>` is a runner label like `3e/256B/CSB` (figure 3/4 bandwidth
//! points) or `5a/4dw/CSB` (figure 5 latency points); run with `--list`
//! to print every label. The Chrome trace-event JSON (default
//! `trace.json`) loads directly into Perfetto (<https://ui.perfetto.dev>)
//! or `chrome://tracing`, with one track per agent: CPU pipeline, CSB,
//! uncached buffer, bus master, foreign traffic.

use std::path::PathBuf;
use std::process::ExitCode;

use csb_core::experiments::runner::{
    execute_point_observed, LabeledArtifacts, ObsConfig, PointSpec, PointValue,
};
use csb_core::experiments::{fig3, fig4, fig5};

/// Every point the figure harnesses enumerate, in figure order.
fn all_points() -> Vec<PointSpec> {
    let mut specs = Vec::new();
    for panel in fig3::panel_specs() {
        specs.extend(panel.enumerate());
    }
    for panel in fig4::panel_specs() {
        specs.extend(panel.enumerate());
    }
    for panel in fig5::panel_specs() {
        specs.extend(panel.enumerate());
    }
    specs
}

const USAGE: &str = "trace <point> [--trace-out trace.json] [--metrics-out metrics.json] \
[--ledger ledger.jsonl] [--no-fast-forward] [--cache-dir DIR] [--no-cache] \
[--snapshot-every N] | trace --list";

fn main() -> ExitCode {
    csb_bench::validate_args(
        USAGE,
        &[
            "--trace-out",
            "--metrics-out",
            "--ledger",
            "--cache-dir",
            "--snapshot-every",
        ],
        &["--no-fast-forward", "--list", "--no-cache"],
        1,
    );
    // Trace replays always capture artifacts, so the point itself is
    // never served from cache — but --snapshot-every still dumps
    // restorable mid-run snapshots under <cache-dir>/autosnap/.
    csb_bench::apply_cache_flags();
    let positional: Vec<String> = {
        let mut args = std::env::args().skip(1);
        let mut pos = Vec::new();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--trace-out" | "--metrics-out" | "--ledger" | "--cache-dir"
                | "--snapshot-every" => {
                    args.next();
                }
                "--no-cache" => {}
                // Tracing composes with fast-forward (the walk synthesizes
                // the per-cycle events), so this genuinely switches loops.
                "--no-fast-forward" => csb_core::set_default_fast_forward(false),
                _ if a.starts_with("--trace-out=")
                    || a.starts_with("--metrics-out=")
                    || a.starts_with("--ledger=")
                    || a.starts_with("--cache-dir=")
                    || a.starts_with("--snapshot-every=") => {}
                "--list" => {
                    for spec in all_points() {
                        println!("{}", spec.label);
                    }
                    return ExitCode::SUCCESS;
                }
                _ => pos.push(a),
            }
        }
        pos
    };
    let Some(label) = positional.first() else {
        eprintln!("usage: trace <point> [--trace-out trace.json] [--metrics-out metrics.json]");
        eprintln!("       trace --list");
        return ExitCode::FAILURE;
    };

    let specs = all_points();
    let Some(spec) = specs.iter().find(|s| &s.label == label) else {
        eprintln!("no figure point named {label:?}; run with --list to see every label");
        return ExitCode::FAILURE;
    };

    let obs = ObsConfig {
        trace: true,
        metrics: true,
    };
    let outcome = execute_point_observed(spec, obs).expect("figure point simulates");

    match outcome.value {
        PointValue::Bandwidth(bw) => println!("{}: {bw:.2} payload bytes/bus cycle", spec.label),
        PointValue::Latency(cycles) => println!("{}: {cycles} CPU cycles", spec.label),
    }
    let report = outcome
        .artifacts
        .metrics
        .as_ref()
        .expect("metrics were enabled");
    println!("{}", report.csb);
    if let Some(h) = report.metrics.histograms.get("csb_flush_retry_latency") {
        println!(
            "flush retry latency: p50 {} p95 {} p99 {} p99.9 {} max {} cycles over {} flush(es)",
            h.p50, h.p95, h.p99, h.p999, h.max, h.count
        );
    }

    let trace_out = csb_bench::flag_path_from_args("--trace-out")
        .unwrap_or_else(|| PathBuf::from("trace.json"));
    let trace = outcome
        .artifacts
        .trace_json
        .as_deref()
        .expect("tracing was enabled");
    std::fs::write(&trace_out, trace)
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", trace_out.display()));
    eprintln!(
        "wrote {} ({} events) — open in https://ui.perfetto.dev",
        trace_out.display(),
        trace.matches("\"ph\":").count()
    );
    if let Some(metrics_out) = csb_bench::flag_path_from_args("--metrics-out") {
        csb_bench::dump_json(&metrics_out, report);
    }
    if let Some(ledger) = csb_bench::flag_path_from_args("--ledger") {
        let la = LabeledArtifacts {
            label: spec.label.clone(),
            value: outcome.value,
            sim_cycles: outcome.sim_cycles,
            wall: outcome.wall,
            seed: 0,
            config_hash: csb_obs::hash_config(&format!("{:?} {:?}", spec.cfg, spec.work)),
            artifacts: outcome.artifacts.clone(),
        };
        csb_bench::append_ledger(&ledger, "trace", &[la]);
    }
    ExitCode::SUCCESS
}
