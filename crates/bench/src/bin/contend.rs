//! Many-core contention sweep: throughput and flush-latency tails at
//! 16/32/64 time-sliced processors, comparing the global-lock baseline
//! against per-process CSB lines (single- and double-buffered).
//!
//! Usage: `cargo run -p csb-bench --bin contend [--jobs N] [--json out.json]
//! [--trace-out trace.json] [--metrics-out metrics.json]
//! [--ledger ledger.jsonl] [--no-fast-forward] [--cache-dir DIR]`
//!
//! Every cell merges a batch of seeded open-loop arrival schedules; the
//! same seeds produce the same table on every run and worker count, and
//! `--cache-dir` reuses finished points across invocations (cached cells
//! carry their raw histogram buckets, so the merged quantiles are
//! identical either way). The observability flags capture one artifact per
//! seeded point (labels like `contend/c64/csb`), exactly as the figure
//! harnesses do.

use std::io::{BufWriter, Write};

use csb_core::experiments::contend;

const USAGE: &str = "contend [--jobs N] [--json out.json] [--trace-out trace.json] \
[--metrics-out metrics.json] [--ledger ledger.jsonl] [--no-fast-forward] \
[--cache-dir DIR] [--no-cache] [--snapshot-every N]";

fn main() {
    csb_bench::validate_standard_args(USAGE);
    csb_bench::apply_fast_forward_flag();
    csb_bench::apply_cache_flags();
    let jobs = csb_bench::jobs_from_args();
    let max_cores = contend::CORES.iter().copied().max().unwrap_or(1);
    csb_bench::warn_if_oversubscribed(jobs, max_cores);
    let bo = csb_bench::obs_from_args();
    let (sweep, artifacts, report) =
        contend::run_jobs_observed(jobs, bo.obs).expect("contention sweep simulates");
    let mut out = BufWriter::new(std::io::stdout().lock());
    writeln!(out, "{}", sweep.to_table()).expect("stdout writable");
    out.flush().expect("stdout flushes");
    eprintln!("{}", report.render());
    bo.emit("contend", &artifacts);
    if let Some(path) = csb_bench::json_path_from_args() {
        csb_bench::dump_json(&path, &sweep);
    }
}
