//! Regenerates Figure 4: uncached store bandwidth on a split address/data
//! bus, panels (a)-(e).
//!
//! Usage: `cargo run -p csb-bench --bin fig4 [--jobs N] [--json out.json]`

use csb_core::experiments::fig4;

fn main() {
    let jobs = csb_bench::jobs_from_args();
    let (panels, report) = fig4::run_jobs(jobs).expect("Figure 4 panels simulate");
    for p in &panels {
        println!("{}", p.to_table());
    }
    eprintln!("{}", report.render());
    if let Some(path) = csb_bench::json_path_from_args() {
        csb_bench::dump_json(&path, &panels);
    }
}
