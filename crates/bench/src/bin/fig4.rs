//! Regenerates Figure 4: uncached store bandwidth on a split address/data
//! bus, panels (a)-(e).
//!
//! Usage: `cargo run -p csb-bench --bin fig4 [--jobs N] [--json out.json]
//! [--trace-out trace.json] [--metrics-out metrics.json]
//! [--ledger ledger.jsonl] [--no-fast-forward]`

use std::io::{BufWriter, Write};

use csb_core::experiments::fig4;

const USAGE: &str = "fig4 [--jobs N] [--json out.json] [--trace-out trace.json] \
[--metrics-out metrics.json] [--ledger ledger.jsonl] [--no-fast-forward] \
[--cache-dir DIR] [--no-cache] [--snapshot-every N]";

fn main() {
    csb_bench::validate_standard_args(USAGE);
    csb_bench::apply_fast_forward_flag();
    csb_bench::apply_cache_flags();
    let jobs = csb_bench::jobs_from_args();
    let bo = csb_bench::obs_from_args();
    let (panels, artifacts, report) =
        fig4::run_jobs_observed(jobs, bo.obs).expect("Figure 4 panels simulate");
    // Lock stdout once and buffer: the tables are thousands of short
    // lines, and a per-line lock/flush dominates the print path.
    let mut out = BufWriter::new(std::io::stdout().lock());
    for p in &panels {
        writeln!(out, "{}", p.to_table()).expect("stdout writable");
    }
    out.flush().expect("stdout flushes");
    eprintln!("{}", report.render());
    bo.emit("fig4", &artifacts);
    if let Some(path) = csb_bench::json_path_from_args() {
        csb_bench::dump_json(&path, &panels);
    }
}
