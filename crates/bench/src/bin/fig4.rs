//! Regenerates Figure 4: uncached store bandwidth on a split address/data
//! bus, panels (a)-(e). Usage: `cargo run -p csb-bench --bin fig4 [--json out.json]`

use csb_core::experiments::fig4;

fn main() {
    let panels = fig4::run().expect("Figure 4 panels simulate");
    for p in &panels {
        println!("{}", p.to_table());
    }
    if let Some(path) = csb_bench::json_path_from_args() {
        csb_bench::dump_json(&path, &panels);
    }
}
