//! Runs every figure harness back to back — the one-shot reproduction of
//! the paper's whole evaluation section.
//!
//! Usage: `cargo run --release -p csb-bench --bin repro_all [--jobs N]
//! [--trace-out trace.json] [--metrics-out metrics.json]
//! [--ledger ledger.jsonl] [--no-fast-forward]`
//!
//! `--jobs N` fans the simulation points of each figure out over `N`
//! worker threads (default: all cores). The tables on stdout are
//! byte-identical for every worker count; the engine's aggregate
//! `RunReport` is printed to stderr at the end. The observability flags
//! capture one artifact per simulation point across all three figures.
//! `--no-fast-forward` forces the naive cycle-by-cycle simulation loop
//! (identical tables, slower wall clock).

use std::io::{BufWriter, Write};

use csb_core::experiments::{fig3, fig4, fig5};

const USAGE: &str = "repro_all [--jobs N] [--trace-out trace.json] \
[--metrics-out metrics.json] [--ledger ledger.jsonl] [--no-fast-forward] \
[--cache-dir DIR] [--no-cache] [--snapshot-every N]";

fn main() {
    csb_bench::validate_args(
        USAGE,
        &[
            "--jobs",
            "--trace-out",
            "--metrics-out",
            "--ledger",
            "--cache-dir",
            "--snapshot-every",
        ],
        csb_bench::STANDARD_BARE_FLAGS,
        0,
    );
    csb_bench::apply_fast_forward_flag();
    csb_bench::apply_cache_flags();
    let jobs = csb_bench::jobs_from_args();
    let bo = csb_bench::obs_from_args();
    // One stdout lock + buffer for the whole reproduction; per-line
    // println! costs a lock and flush each.
    let mut out = BufWriter::new(std::io::stdout().lock());

    writeln!(
        out,
        "=================================================================="
    )
    .unwrap();
    writeln!(
        out,
        "Figure 3: uncached store bandwidth, 8-byte multiplexed bus"
    )
    .unwrap();
    writeln!(
        out,
        "==================================================================\n"
    )
    .unwrap();
    let (panels, artifacts, mut report) =
        fig3::run_jobs_observed(jobs, bo.obs).expect("Figure 3 simulates");
    for p in panels {
        writeln!(out, "{}", p.to_table()).unwrap();
    }
    bo.emit("fig3", &artifacts);

    writeln!(
        out,
        "=================================================================="
    )
    .unwrap();
    writeln!(
        out,
        "Figure 4: uncached store bandwidth, split address/data bus"
    )
    .unwrap();
    writeln!(
        out,
        "==================================================================\n"
    )
    .unwrap();
    let (panels, artifacts, r4) =
        fig4::run_jobs_observed(jobs, bo.obs).expect("Figure 4 simulates");
    report.merge(&r4);
    for p in panels {
        writeln!(out, "{}", p.to_table()).unwrap();
    }
    bo.emit("fig4", &artifacts);

    writeln!(
        out,
        "=================================================================="
    )
    .unwrap();
    writeln!(
        out,
        "Figure 5: locking vs. conditional store buffer (CPU cycles)"
    )
    .unwrap();
    writeln!(
        out,
        "==================================================================\n"
    )
    .unwrap();
    let (panels, artifacts, r5) =
        fig5::run_jobs_observed(jobs, bo.obs).expect("Figure 5 simulates");
    report.merge(&r5);
    for p in panels {
        writeln!(out, "{}", p.to_table()).unwrap();
    }
    bo.emit("fig5", &artifacts);
    out.flush().expect("stdout flushes");

    eprintln!("{}", report.render());
}
