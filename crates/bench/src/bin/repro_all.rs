//! Runs every figure harness back to back — the one-shot reproduction of
//! the paper's whole evaluation section.
//!
//! Usage: `cargo run --release -p csb-bench --bin repro_all [--jobs N]`
//!
//! `--jobs N` fans the simulation points of each figure out over `N`
//! worker threads (default: all cores). The tables on stdout are
//! byte-identical for every worker count; the engine's aggregate
//! `RunReport` is printed to stderr at the end.

use csb_core::experiments::{fig3, fig4, fig5};

fn main() {
    let jobs = csb_bench::jobs_from_args();

    println!("==================================================================");
    println!("Figure 3: uncached store bandwidth, 8-byte multiplexed bus");
    println!("==================================================================\n");
    let (panels, mut report) = fig3::run_jobs(jobs).expect("Figure 3 simulates");
    for p in panels {
        println!("{}", p.to_table());
    }

    println!("==================================================================");
    println!("Figure 4: uncached store bandwidth, split address/data bus");
    println!("==================================================================\n");
    let (panels, r4) = fig4::run_jobs(jobs).expect("Figure 4 simulates");
    report.merge(&r4);
    for p in panels {
        println!("{}", p.to_table());
    }

    println!("==================================================================");
    println!("Figure 5: locking vs. conditional store buffer (CPU cycles)");
    println!("==================================================================\n");
    let (panels, r5) = fig5::run_jobs(jobs).expect("Figure 5 simulates");
    report.merge(&r5);
    for p in panels {
        println!("{}", p.to_table());
    }

    eprintln!("{}", report.render());
}
