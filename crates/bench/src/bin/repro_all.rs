//! Runs every figure harness back to back — the one-shot reproduction of
//! the paper's whole evaluation section.
//!
//! Usage: `cargo run --release -p csb-bench --bin repro_all`

use csb_core::experiments::{fig3, fig4, fig5};

fn main() {
    println!("==================================================================");
    println!("Figure 3: uncached store bandwidth, 8-byte multiplexed bus");
    println!("==================================================================\n");
    for p in fig3::run().expect("Figure 3 simulates") {
        println!("{}", p.to_table());
    }

    println!("==================================================================");
    println!("Figure 4: uncached store bandwidth, split address/data bus");
    println!("==================================================================\n");
    for p in fig4::run().expect("Figure 4 simulates") {
        println!("{}", p.to_table());
    }

    println!("==================================================================");
    println!("Figure 5: locking vs. conditional store buffer (CPU cycles)");
    println!("==================================================================\n");
    for p in fig5::run().expect("Figure 5 simulates") {
        println!("{}", p.to_table());
    }
}
