//! Shared plumbing for the figure-reproduction binaries.
//!
//! Each binary (`fig3`, `fig4`, `fig5`, `ablations`, `repro_all`) regenerates
//! the corresponding table/figure of the paper and prints it as fixed-width
//! text; pass `--json <path>` to also dump the raw panel data for further
//! processing (EXPERIMENTS.md is generated from these dumps). Pass
//! `--jobs N` to fan the simulation points out over `N` worker threads
//! (default: all cores; `--jobs 1` is the serial path) — the tables on
//! stdout are byte-identical either way, and the engine's `RunReport`
//! goes to stderr. Pass `--no-fast-forward` to force the naive
//! cycle-by-cycle simulation loop (results are identical; only wall
//! clock changes).
//!
//! Observability: `--trace-out <file>` captures a Chrome trace-event JSON
//! document per simulation point and `--metrics-out <file>` a metrics
//! report (counters + latency histograms). Both expand the given path per
//! point — `trace.json` becomes `trace-3e_256B_CSB.json` — so a sweep
//! leaves one artifact per point. The `trace` binary replays a single
//! named figure point with both captures on.
//!
//! Ledger: `--ledger <file>` appends one [`LedgerRecord`] JSON line per
//! executed point (config hash, seed, scheme, cycles, wall time, value,
//! flush-latency quantiles) to the given JSONL file — the cross-run perf
//! trajectory the `ledger` binary diffs for regressions. `--ledger`
//! implies metrics capture (the records need the flush histograms), but
//! writes no per-point metrics files unless `--metrics-out` is also
//! given.
//!
//! Caching: `--cache-dir <dir>` makes every sweep incremental — each
//! completed point is stored content-addressed by (configuration,
//! workload, seed, snapshot-format version), and a later run serves
//! unchanged points from the store instead of simulating them (the
//! `RunReport` on stderr counts hits/misses/invalidations). `--no-cache`
//! disables the store even when a script passes `--cache-dir`, and
//! `--snapshot-every N` additionally dumps a restorable machine snapshot
//! every N CPU cycles of every point into `<dir>/autosnap/`.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use csb_core::experiments::runner::{LabeledArtifacts, ObsConfig, PointValue};
use csb_obs::LedgerRecord;

/// The value-taking flags every figure binary accepts.
pub const STANDARD_VALUE_FLAGS: &[&str] = &[
    "--jobs",
    "--json",
    "--trace-out",
    "--metrics-out",
    "--ledger",
    "--cache-dir",
    "--snapshot-every",
];

/// The bare flags every figure binary accepts.
pub const STANDARD_BARE_FLAGS: &[&str] = &["--no-fast-forward", "--no-cache"];

/// Prints a one-line error and exits with status 2 (bad invocation).
/// These binaries are user-facing harnesses: a mistyped flag or an
/// inconsistent machine configuration is an input error, not a bug, and
/// must not produce a panic backtrace.
pub fn die(msg: impl std::fmt::Display) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// [`die`] plus a usage line.
pub fn usage_error(usage: &str, msg: impl std::fmt::Display) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: {usage}");
    std::process::exit(2);
}

/// Validates the raw command line against the binary's flag vocabulary:
/// every `--flag` must be a known value-taking flag (followed by a value,
/// or written `--flag=value`) or a known bare flag, and at most
/// `max_positional` non-flag arguments may appear. Anything else prints
/// the usage line and exits 2. Call this first in `main`, before the
/// flag-extraction helpers.
pub fn validate_args(
    usage: &str,
    value_flags: &[&str],
    bare_flags: &[&str],
    max_positional: usize,
) {
    let mut positional = 0usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if !a.starts_with("--") {
            positional += 1;
            if positional > max_positional {
                usage_error(usage, format!("unexpected argument {a:?}"));
            }
            continue;
        }
        let name = a.split_once('=').map_or(a.as_str(), |(n, _)| n);
        if value_flags.contains(&name) {
            if !a.contains('=') && args.next().is_none() {
                usage_error(usage, format!("{name} requires a value"));
            }
        } else if bare_flags.contains(&name) {
            if a.contains('=') {
                usage_error(usage, format!("{name} does not take a value"));
            }
        } else {
            usage_error(usage, format!("unknown flag {name}"));
        }
    }
}

/// [`validate_args`] with the standard figure-binary vocabulary
/// (`--jobs`, `--json`, `--trace-out`, `--metrics-out`, `--ledger`,
/// `--no-fast-forward`) and no positional arguments.
pub fn validate_standard_args(usage: &str) {
    validate_args(usage, STANDARD_VALUE_FLAGS, STANDARD_BARE_FLAGS, 0);
}

/// Parses an optional `--json <path>` argument from the command line.
///
/// Exits with status 2 if `--json` is given without a path.
pub fn json_path_from_args() -> Option<PathBuf> {
    flag_path_from_args("--json")
}

/// Parses an optional `<flag> <path>` (or `<flag>=<path>`) argument from
/// the command line.
///
/// Exits with status 2 if the flag is given without a path.
pub fn flag_path_from_args(flag: &str) -> Option<PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == flag {
            let Some(p) = args.next() else {
                die(format!("{flag} requires a path"));
            };
            return Some(PathBuf::from(p));
        }
        if let Some(p) = a.strip_prefix(&format!("{flag}=")) {
            return Some(PathBuf::from(p));
        }
    }
    None
}

/// The observability and ledger flags a bench binary parsed from its
/// command line, bundled with the capture switches they imply.
#[derive(Debug, Clone, Default)]
pub struct BenchObs {
    /// Capture switches for the runner (`--ledger` forces metrics on:
    /// ledger records need the flush-latency histograms).
    pub obs: ObsConfig,
    /// `--trace-out` base path for per-point Chrome traces.
    pub trace_out: Option<PathBuf>,
    /// `--metrics-out` base path for per-point metrics reports.
    pub metrics_out: Option<PathBuf>,
    /// `--ledger` JSONL path records are appended to.
    pub ledger: Option<PathBuf>,
}

impl BenchObs {
    /// Writes every requested artifact for one sweep: per-point trace and
    /// metrics files, plus one appended ledger record per point under the
    /// given bench name.
    pub fn emit(&self, bench: &str, artifacts: &[LabeledArtifacts]) {
        write_artifacts(
            artifacts,
            self.trace_out.as_ref(),
            self.metrics_out.as_ref(),
        );
        if let Some(path) = &self.ledger {
            append_ledger(path, bench, artifacts);
        }
    }
}

/// Parses the observability flags: `--trace-out <file>`,
/// `--metrics-out <file>`, and `--ledger <file>`. Returns the capture
/// switches for the runner plus the paths the artifacts go to.
///
/// # Panics
///
/// Panics if a flag is given without a path.
pub fn obs_from_args() -> BenchObs {
    let trace_out = flag_path_from_args("--trace-out");
    let metrics_out = flag_path_from_args("--metrics-out");
    let ledger = flag_path_from_args("--ledger");
    BenchObs {
        obs: ObsConfig {
            trace: trace_out.is_some(),
            metrics: metrics_out.is_some() || ledger.is_some(),
        },
        trace_out,
        metrics_out,
        ledger,
    }
}

/// Builds the ledger record for one executed point: identity from the
/// label/seed/config hash, gauges from the point's value, cycle count,
/// wall time, and (when metrics were captured) the flush-retry latency
/// histogram.
pub fn ledger_record(bench: &str, la: &LabeledArtifacts) -> LedgerRecord {
    let metrics = la.artifacts.metrics.as_ref();
    let flush = metrics.and_then(|m| m.metrics.histograms.get("csb_flush_retry_latency"));
    LedgerRecord {
        bench: bench.to_string(),
        label: la.label.clone(),
        scheme: la.label.rsplit('/').next().unwrap_or("").to_string(),
        config_hash: la.config_hash,
        seed: la.seed,
        cycles: la.sim_cycles,
        wall_us: u64::try_from(la.wall.as_micros()).unwrap_or(u64::MAX),
        value: match la.value {
            PointValue::Bandwidth(b) => b,
            PointValue::Latency(c) => c as f64,
        },
        flush_successes: metrics.map_or(0, |m| m.csb.flush_successes),
        bus_transactions: metrics.map_or(0, |m| m.bus.transactions),
        flush_p50: flush.map_or(0, |h| h.p50),
        flush_p95: flush.map_or(0, |h| h.p95),
        flush_p99: flush.map_or(0, |h| h.p99),
        flush_p999: flush.map_or(0, |h| h.p999),
    }
}

/// Appends one [`LedgerRecord`] JSONL line per point to `path`, creating
/// the file on first use. Appending (instead of rewriting) is what turns
/// the ledger into a cross-run trajectory; [`csb_obs::diff_ledgers`]
/// resolves duplicate keys newest-wins.
///
/// # Panics
///
/// Panics on I/O failure — a requested ledger that cannot be written
/// should abort loudly.
pub fn append_ledger(path: &Path, bench: &str, artifacts: &[LabeledArtifacts]) {
    let mut lines = String::new();
    for la in artifacts {
        lines.push_str(&ledger_record(bench, la).to_jsonl_line());
        lines.push('\n');
    }
    let mut file = fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .unwrap_or_else(|e| panic!("cannot open {}: {e}", path.display()));
    file.write_all(lines.as_bytes())
        .unwrap_or_else(|e| panic!("cannot append to {}: {e}", path.display()));
    eprintln!(
        "appended {} ledger record(s) to {}",
        artifacts.len(),
        path.display()
    );
}

/// Collapses a point label into a filename-safe token: every run of
/// non-alphanumeric characters becomes a single `_`, e.g. `"3e/256B/CSB"`
/// → `"3e_256B_CSB"`.
pub fn sanitize_label(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    for c in label.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else if !out.ends_with('_') {
            out.push('_');
        }
    }
    out.trim_matches('_').to_string()
}

/// Expands an artifact base path for one labeled point:
/// `trace.json` + `"3e/256B/CSB"` → `trace-3e_256B_CSB.json`.
pub fn artifact_path(base: &Path, label: &str) -> PathBuf {
    let stem = base
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("artifact");
    let ext = base.extension().and_then(|s| s.to_str()).unwrap_or("json");
    base.with_file_name(format!("{stem}-{}.{ext}", sanitize_label(label)))
}

/// Writes every captured artifact to disk: Chrome traces under the
/// `--trace-out` base path, metrics reports under the `--metrics-out`
/// base, one file per point keyed by its sanitized label.
///
/// # Panics
///
/// Panics on I/O failure — a requested artifact that cannot be written
/// should abort loudly.
pub fn write_artifacts(
    artifacts: &[LabeledArtifacts],
    trace_out: Option<&PathBuf>,
    metrics_out: Option<&PathBuf>,
) {
    for la in artifacts {
        if let (Some(base), Some(trace)) = (trace_out, la.artifacts.trace_json.as_deref()) {
            let path = artifact_path(base, &la.label);
            fs::write(&path, trace)
                .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
            eprintln!("wrote {}", path.display());
        }
        if let (Some(base), Some(metrics)) = (metrics_out, la.artifacts.metrics.as_ref()) {
            let path = artifact_path(base, &la.label);
            dump_json(&path, metrics);
        }
    }
}

/// Applies the caching and snapshot flags:
///
/// * `--cache-dir <dir>` opens (creating if needed) the content-addressed
///   point cache at `dir` and installs it process-wide — subsequent
///   sweeps serve unchanged points from the cache instead of simulating
///   them, so a warm re-run is pure replay and an edited configuration
///   re-runs only its own points. `--no-cache` wins over `--cache-dir`
///   (useful for scripts that pass a standard flag set).
/// * `--snapshot-every <cycles>` additionally dumps a restorable
///   full-machine snapshot every N CPU cycles of every simulated point
///   into `<dir>/autosnap/`, for post-mortem dissection of long or
///   misbehaving points. It requires `--cache-dir` (the snapshots need a
///   store to land in).
///
/// Exits with status 2 on an unusable directory or count.
pub fn apply_cache_flags() {
    let no_cache = std::env::args().skip(1).any(|a| a == "--no-cache");
    let cache_dir = flag_path_from_args("--cache-dir");
    let every = flag_path_from_args("--snapshot-every");
    if no_cache {
        return;
    }
    let Some(dir) = cache_dir else {
        if every.is_some() {
            die("--snapshot-every requires --cache-dir (snapshots are written under it)");
        }
        return;
    };
    let cache = csb_core::cache::PointCache::open(&dir)
        .unwrap_or_else(|e| die(format!("cannot open cache dir {}: {e}", dir.display())));
    csb_core::cache::set_active(Some(std::sync::Arc::new(cache)));
    if let Some(every) = every {
        let every: u64 = every
            .to_str()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| die("--snapshot-every requires a positive cycle count"));
        let snap_dir = dir.join("autosnap");
        fs::create_dir_all(&snap_dir)
            .unwrap_or_else(|e| die(format!("cannot create {}: {e}", snap_dir.display())));
        csb_core::snapshot::set_autosnap(Some(csb_core::snapshot::AutosnapConfig {
            every,
            dir: snap_dir,
        }));
    }
}

/// Applies the `--no-fast-forward` flag: when present, disables the
/// event-driven idle-cycle fast-forward for every simulator the process
/// creates, forcing the naive cycle-by-cycle loop. Results are identical
/// either way (that is enforced by differential tests); the flag exists
/// as an escape hatch and for before/after throughput measurements.
pub fn apply_fast_forward_flag() {
    if std::env::args().skip(1).any(|a| a == "--no-fast-forward") {
        csb_core::set_default_fast_forward(false);
    }
}

/// Parses an optional `--jobs <N>` (or `--jobs=N`) argument: the worker
/// count for the parallel experiment runner. Returns `0` ("all cores",
/// which the runner resolves via `available_parallelism`) when absent. A
/// request beyond the host's available parallelism is capped to it, with
/// a warning on stderr — oversubscribed simulator workers only fight each
/// other for cycles and skew per-point wall-clock numbers.
///
/// Exits with status 2 if `--jobs` is given without a positive integer.
pub fn jobs_from_args() -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let value = if a == "--jobs" {
            match args.next() {
                Some(v) => Some(v),
                None => die("--jobs requires a worker count"),
            }
        } else {
            a.strip_prefix("--jobs=").map(str::to_string)
        };
        if let Some(v) = value {
            match v.parse::<usize>() {
                Ok(n) if n > 0 => {
                    let avail = host_parallelism();
                    if n > avail {
                        eprintln!(
                            "warning: --jobs {n} exceeds the {avail} available host \
                             core(s); capping at {avail}"
                        );
                        return avail;
                    }
                    return n;
                }
                _ => die(format!("--jobs requires a positive integer, got {v:?}")),
            }
        }
    }
    0
}

/// The host's available parallelism (1 when it cannot be determined).
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Warns (stderr) when `jobs` workers × `simulated_cores` time-sliced
/// processes per worker outstrips the host: each worker single-threads its
/// whole MultiSim, so the product is memory pressure, not parallelism —
/// worth a note before a 64-process sweep fans out. `jobs == 0` means
/// "all cores" (the runner's convention) and is resolved before the check.
pub fn warn_if_oversubscribed(jobs: usize, simulated_cores: usize) {
    let avail = host_parallelism();
    let jobs = if jobs == 0 { avail } else { jobs };
    if jobs.saturating_mul(simulated_cores) > avail {
        eprintln!(
            "note: {jobs} worker(s) x {simulated_cores} simulated processor(s) \
             share {avail} host core(s); each worker time-slices its processes \
             on one thread"
        );
    }
}

/// Parses an optional `<flag> <N>` (or `<flag>=N`) argument holding a
/// positive count, e.g. the throughput bench's `--reps`/`--samples`.
/// Returns `default` when the flag is absent.
///
/// Exits with status 2 if the flag is given without a positive integer.
pub fn count_from_args(flag: &str, default: usize) -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let value = if a == flag {
            match args.next() {
                Some(v) => Some(v),
                None => die(format!("{flag} requires a positive integer")),
            }
        } else {
            a.strip_prefix(&format!("{flag}=")).map(str::to_string)
        };
        if let Some(v) = value {
            match v.parse::<usize>() {
                Ok(n) if n > 0 => return n,
                _ => die(format!("{flag} requires a positive integer, got {v:?}")),
            }
        }
    }
    default
}

/// Serializes `value` to `path` as pretty-printed JSON.
///
/// # Panics
///
/// Panics on serialization or I/O failure — these binaries are harnesses,
/// not library code, and a failed dump should abort loudly.
pub fn dump_json<T: serde::Serialize>(path: &PathBuf, value: &T) {
    let text = serde_json::to_string_pretty(value).expect("panel data serializes");
    fs::write(path, text).unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    eprintln!("wrote {}", path.display());
}

#[cfg(test)]
mod tests {
    use std::path::PathBuf;

    #[test]
    fn dump_json_round_trips() {
        let dir = std::env::temp_dir().join("csb-bench-test.json");
        super::dump_json(&dir, &vec![1, 2, 3]);
        let back: Vec<i32> = serde_json::from_str(&std::fs::read_to_string(&dir).unwrap()).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
        let _ = std::fs::remove_file(dir);
    }

    #[test]
    fn sanitize_label_collapses_punctuation() {
        assert_eq!(super::sanitize_label("3e/256B/CSB"), "3e_256B_CSB");
        assert_eq!(super::sanitize_label("5a/4dw/comb-64"), "5a_4dw_comb_64");
        assert_eq!(super::sanitize_label("//x//"), "x");
    }

    #[test]
    fn ledger_appends_one_parseable_record_per_point() {
        use csb_core::experiments::runner::{LabeledArtifacts, PointArtifacts, PointValue};
        let la = |label: &str, cycles: u64| LabeledArtifacts {
            label: label.into(),
            value: PointValue::Bandwidth(3.5),
            sim_cycles: cycles,
            wall: std::time::Duration::from_micros(250),
            seed: 0,
            config_hash: csb_obs::hash_config("cfg"),
            artifacts: PointArtifacts::default(),
        };
        let rec = super::ledger_record("fig4", &la("4a/256B/CSB", 900));
        assert_eq!(rec.scheme, "CSB");
        assert_eq!(rec.key(), "fig4::4a/256B/CSB#0");
        assert_eq!(rec.wall_us, 250);
        assert_eq!(rec.value, 3.5);

        let path = std::env::temp_dir().join("csb-bench-ledger-test.jsonl");
        let _ = std::fs::remove_file(&path);
        super::append_ledger(&path, "fig4", &[la("4a/256B/CSB", 900)]);
        super::append_ledger(&path, "fig4", &[la("4a/256B/CSB", 905)]);
        let records = csb_obs::parse_ledger(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(records.len(), 2, "appends accumulate, not overwrite");
        assert_eq!(records[1].cycles, 905);
        let diff = csb_obs::diff_ledgers(&records[..1], &records[1..], 0.10);
        assert!(!diff.is_regression());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn artifact_path_keys_on_label() {
        let base = PathBuf::from("/tmp/out/trace.json");
        assert_eq!(
            super::artifact_path(&base, "3e/256B/CSB"),
            PathBuf::from("/tmp/out/trace-3e_256B_CSB.json")
        );
        let bare = PathBuf::from("metrics");
        assert_eq!(
            super::artifact_path(&bare, "5a/2dw/CSB"),
            PathBuf::from("metrics-5a_2dw_CSB.json")
        );
    }
}
