//! Shared plumbing for the figure-reproduction binaries.
//!
//! Each binary (`fig3`, `fig4`, `fig5`, `ablations`, `repro_all`) regenerates
//! the corresponding table/figure of the paper and prints it as fixed-width
//! text; pass `--json <path>` to also dump the raw panel data for further
//! processing (EXPERIMENTS.md is generated from these dumps). Pass
//! `--jobs N` to fan the simulation points out over `N` worker threads
//! (default: all cores; `--jobs 1` is the serial path) — the tables on
//! stdout are byte-identical either way, and the engine's `RunReport`
//! goes to stderr. Pass `--no-fast-forward` to force the naive
//! cycle-by-cycle simulation loop (results are identical; only wall
//! clock changes).
//!
//! Observability: `--trace-out <file>` captures a Chrome trace-event JSON
//! document per simulation point and `--metrics-out <file>` a metrics
//! report (counters + latency histograms). Both expand the given path per
//! point — `trace.json` becomes `trace-3e_256B_CSB.json` — so a sweep
//! leaves one artifact per point. The `trace` binary replays a single
//! named figure point with both captures on.

use std::fs;
use std::path::{Path, PathBuf};

use csb_core::experiments::runner::{LabeledArtifacts, ObsConfig};

/// The value-taking flags every figure binary accepts.
pub const STANDARD_VALUE_FLAGS: &[&str] = &["--jobs", "--json", "--trace-out", "--metrics-out"];

/// The bare flags every figure binary accepts.
pub const STANDARD_BARE_FLAGS: &[&str] = &["--no-fast-forward"];

/// Prints a one-line error and exits with status 2 (bad invocation).
/// These binaries are user-facing harnesses: a mistyped flag or an
/// inconsistent machine configuration is an input error, not a bug, and
/// must not produce a panic backtrace.
pub fn die(msg: impl std::fmt::Display) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// [`die`] plus a usage line.
pub fn usage_error(usage: &str, msg: impl std::fmt::Display) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: {usage}");
    std::process::exit(2);
}

/// Validates the raw command line against the binary's flag vocabulary:
/// every `--flag` must be a known value-taking flag (followed by a value,
/// or written `--flag=value`) or a known bare flag, and at most
/// `max_positional` non-flag arguments may appear. Anything else prints
/// the usage line and exits 2. Call this first in `main`, before the
/// flag-extraction helpers.
pub fn validate_args(
    usage: &str,
    value_flags: &[&str],
    bare_flags: &[&str],
    max_positional: usize,
) {
    let mut positional = 0usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if !a.starts_with("--") {
            positional += 1;
            if positional > max_positional {
                usage_error(usage, format!("unexpected argument {a:?}"));
            }
            continue;
        }
        let name = a.split_once('=').map_or(a.as_str(), |(n, _)| n);
        if value_flags.contains(&name) {
            if !a.contains('=') && args.next().is_none() {
                usage_error(usage, format!("{name} requires a value"));
            }
        } else if bare_flags.contains(&name) {
            if a.contains('=') {
                usage_error(usage, format!("{name} does not take a value"));
            }
        } else {
            usage_error(usage, format!("unknown flag {name}"));
        }
    }
}

/// [`validate_args`] with the standard figure-binary vocabulary
/// (`--jobs`, `--json`, `--trace-out`, `--metrics-out`,
/// `--no-fast-forward`) and no positional arguments.
pub fn validate_standard_args(usage: &str) {
    validate_args(usage, STANDARD_VALUE_FLAGS, STANDARD_BARE_FLAGS, 0);
}

/// Parses an optional `--json <path>` argument from the command line.
///
/// Exits with status 2 if `--json` is given without a path.
pub fn json_path_from_args() -> Option<PathBuf> {
    flag_path_from_args("--json")
}

/// Parses an optional `<flag> <path>` (or `<flag>=<path>`) argument from
/// the command line.
///
/// Exits with status 2 if the flag is given without a path.
pub fn flag_path_from_args(flag: &str) -> Option<PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == flag {
            let Some(p) = args.next() else {
                die(format!("{flag} requires a path"));
            };
            return Some(PathBuf::from(p));
        }
        if let Some(p) = a.strip_prefix(&format!("{flag}=")) {
            return Some(PathBuf::from(p));
        }
    }
    None
}

/// Parses the observability flags: `--trace-out <file>` and
/// `--metrics-out <file>`. Returns the capture switches for the runner
/// plus the base paths the per-point artifacts expand from.
///
/// # Panics
///
/// Panics if either flag is given without a path.
pub fn obs_from_args() -> (ObsConfig, Option<PathBuf>, Option<PathBuf>) {
    let trace_out = flag_path_from_args("--trace-out");
    let metrics_out = flag_path_from_args("--metrics-out");
    let obs = ObsConfig {
        trace: trace_out.is_some(),
        metrics: metrics_out.is_some(),
    };
    (obs, trace_out, metrics_out)
}

/// Collapses a point label into a filename-safe token: every run of
/// non-alphanumeric characters becomes a single `_`, e.g. `"3e/256B/CSB"`
/// → `"3e_256B_CSB"`.
pub fn sanitize_label(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    for c in label.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else if !out.ends_with('_') {
            out.push('_');
        }
    }
    out.trim_matches('_').to_string()
}

/// Expands an artifact base path for one labeled point:
/// `trace.json` + `"3e/256B/CSB"` → `trace-3e_256B_CSB.json`.
pub fn artifact_path(base: &Path, label: &str) -> PathBuf {
    let stem = base
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("artifact");
    let ext = base.extension().and_then(|s| s.to_str()).unwrap_or("json");
    base.with_file_name(format!("{stem}-{}.{ext}", sanitize_label(label)))
}

/// Writes every captured artifact to disk: Chrome traces under the
/// `--trace-out` base path, metrics reports under the `--metrics-out`
/// base, one file per point keyed by its sanitized label.
///
/// # Panics
///
/// Panics on I/O failure — a requested artifact that cannot be written
/// should abort loudly.
pub fn write_artifacts(
    artifacts: &[LabeledArtifacts],
    trace_out: Option<&PathBuf>,
    metrics_out: Option<&PathBuf>,
) {
    for la in artifacts {
        if let (Some(base), Some(trace)) = (trace_out, la.artifacts.trace_json.as_deref()) {
            let path = artifact_path(base, &la.label);
            fs::write(&path, trace)
                .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
            eprintln!("wrote {}", path.display());
        }
        if let (Some(base), Some(metrics)) = (metrics_out, la.artifacts.metrics.as_ref()) {
            let path = artifact_path(base, &la.label);
            dump_json(&path, metrics);
        }
    }
}

/// Applies the `--no-fast-forward` flag: when present, disables the
/// event-driven idle-cycle fast-forward for every simulator the process
/// creates, forcing the naive cycle-by-cycle loop. Results are identical
/// either way (that is enforced by differential tests); the flag exists
/// as an escape hatch and for before/after throughput measurements.
pub fn apply_fast_forward_flag() {
    if std::env::args().skip(1).any(|a| a == "--no-fast-forward") {
        csb_core::set_default_fast_forward(false);
    }
}

/// Parses an optional `--jobs <N>` (or `--jobs=N`) argument: the worker
/// count for the parallel experiment runner. Returns `0` ("all cores",
/// which the runner resolves via `available_parallelism`) when absent.
///
/// Exits with status 2 if `--jobs` is given without a positive integer.
pub fn jobs_from_args() -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let value = if a == "--jobs" {
            match args.next() {
                Some(v) => Some(v),
                None => die("--jobs requires a worker count"),
            }
        } else {
            a.strip_prefix("--jobs=").map(str::to_string)
        };
        if let Some(v) = value {
            match v.parse::<usize>() {
                Ok(n) if n > 0 => return n,
                _ => die(format!("--jobs requires a positive integer, got {v:?}")),
            }
        }
    }
    0
}

/// Parses an optional `<flag> <N>` (or `<flag>=N`) argument holding a
/// positive count, e.g. the throughput bench's `--reps`/`--samples`.
/// Returns `default` when the flag is absent.
///
/// Exits with status 2 if the flag is given without a positive integer.
pub fn count_from_args(flag: &str, default: usize) -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let value = if a == flag {
            match args.next() {
                Some(v) => Some(v),
                None => die(format!("{flag} requires a positive integer")),
            }
        } else {
            a.strip_prefix(&format!("{flag}=")).map(str::to_string)
        };
        if let Some(v) = value {
            match v.parse::<usize>() {
                Ok(n) if n > 0 => return n,
                _ => die(format!("{flag} requires a positive integer, got {v:?}")),
            }
        }
    }
    default
}

/// Serializes `value` to `path` as pretty-printed JSON.
///
/// # Panics
///
/// Panics on serialization or I/O failure — these binaries are harnesses,
/// not library code, and a failed dump should abort loudly.
pub fn dump_json<T: serde::Serialize>(path: &PathBuf, value: &T) {
    let text = serde_json::to_string_pretty(value).expect("panel data serializes");
    fs::write(path, text).unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    eprintln!("wrote {}", path.display());
}

#[cfg(test)]
mod tests {
    use std::path::PathBuf;

    #[test]
    fn dump_json_round_trips() {
        let dir = std::env::temp_dir().join("csb-bench-test.json");
        super::dump_json(&dir, &vec![1, 2, 3]);
        let back: Vec<i32> = serde_json::from_str(&std::fs::read_to_string(&dir).unwrap()).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
        let _ = std::fs::remove_file(dir);
    }

    #[test]
    fn sanitize_label_collapses_punctuation() {
        assert_eq!(super::sanitize_label("3e/256B/CSB"), "3e_256B_CSB");
        assert_eq!(super::sanitize_label("5a/4dw/comb-64"), "5a_4dw_comb_64");
        assert_eq!(super::sanitize_label("//x//"), "x");
    }

    #[test]
    fn artifact_path_keys_on_label() {
        let base = PathBuf::from("/tmp/out/trace.json");
        assert_eq!(
            super::artifact_path(&base, "3e/256B/CSB"),
            PathBuf::from("/tmp/out/trace-3e_256B_CSB.json")
        );
        let bare = PathBuf::from("metrics");
        assert_eq!(
            super::artifact_path(&bare, "5a/2dw/CSB"),
            PathBuf::from("metrics-5a_2dw_CSB.json")
        );
    }
}
