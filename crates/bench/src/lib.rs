//! Shared plumbing for the figure-reproduction binaries.
//!
//! Each binary (`fig3`, `fig4`, `fig5`, `ablations`, `repro_all`) regenerates
//! the corresponding table/figure of the paper and prints it as fixed-width
//! text; pass `--json <path>` to also dump the raw panel data for further
//! processing (EXPERIMENTS.md is generated from these dumps). Pass
//! `--jobs N` to fan the simulation points out over `N` worker threads
//! (default: all cores; `--jobs 1` is the serial path) — the tables on
//! stdout are byte-identical either way, and the engine's `RunReport`
//! goes to stderr.

use std::fs;
use std::path::PathBuf;

/// Parses an optional `--json <path>` argument from the command line.
///
/// # Panics
///
/// Panics if `--json` is given without a path.
pub fn json_path_from_args() -> Option<PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--json" {
            let p = args.next().expect("--json requires a path");
            return Some(PathBuf::from(p));
        }
    }
    None
}

/// Parses an optional `--jobs <N>` (or `--jobs=N`) argument: the worker
/// count for the parallel experiment runner. Returns `0` ("all cores",
/// which the runner resolves via `available_parallelism`) when absent.
///
/// # Panics
///
/// Panics if `--jobs` is given without a positive integer.
pub fn jobs_from_args() -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let value = if a == "--jobs" {
            Some(args.next().expect("--jobs requires a worker count"))
        } else {
            a.strip_prefix("--jobs=").map(str::to_string)
        };
        if let Some(v) = value {
            let n: usize = v.parse().expect("--jobs requires a positive integer");
            assert!(n > 0, "--jobs requires a positive integer");
            return n;
        }
    }
    0
}

/// Serializes `value` to `path` as pretty-printed JSON.
///
/// # Panics
///
/// Panics on serialization or I/O failure — these binaries are harnesses,
/// not library code, and a failed dump should abort loudly.
pub fn dump_json<T: serde::Serialize>(path: &PathBuf, value: &T) {
    let text = serde_json::to_string_pretty(value).expect("panel data serializes");
    fs::write(path, text).unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    eprintln!("wrote {}", path.display());
}

#[cfg(test)]
mod tests {
    #[test]
    fn dump_json_round_trips() {
        let dir = std::env::temp_dir().join("csb-bench-test.json");
        super::dump_json(&dir, &vec![1, 2, 3]);
        let back: Vec<i32> = serde_json::from_str(&std::fs::read_to_string(&dir).unwrap()).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
        let _ = std::fs::remove_file(dir);
    }
}
