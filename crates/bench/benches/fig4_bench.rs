//! Criterion benchmarks for the Figure 4 workload points (split bus).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csb_bus::BusConfig;
use csb_core::experiments::{bandwidth_point, Scheme};
use csb_core::SimConfig;

fn bench_fig4_points(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);

    for width in [16usize, 32] {
        let cfg = SimConfig::default().bus(BusConfig::split(width).max_burst(64).build().unwrap());
        group.bench_with_input(BenchmarkId::new("width_csb_1k", width), &cfg, |b, cfg| {
            b.iter(|| bandwidth_point(cfg, 1024, Scheme::Csb).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("width_none_1k", width), &cfg, |b, cfg| {
            b.iter(|| bandwidth_point(cfg, 1024, Scheme::Uncached { block: 8 }).unwrap())
        });
    }

    for (name, turnaround, delay) in [
        ("turnaround", 1u64, 0u64),
        ("delay4", 0, 4),
        ("delay8", 0, 8),
    ] {
        let cfg = SimConfig::default().bus(
            BusConfig::split(16)
                .max_burst(64)
                .turnaround(turnaround)
                .min_addr_delay(delay)
                .build()
                .unwrap(),
        );
        group.bench_with_input(BenchmarkId::new("overhead_csb_1k", name), &cfg, |b, cfg| {
            b.iter(|| bandwidth_point(cfg, 1024, Scheme::Csb).unwrap())
        });
    }

    group.finish();
}

criterion_group!(benches, bench_fig4_points);
criterion_main!(benches);
