//! Criterion benchmarks for the Figure 5 workload points (atomic access).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csb_core::experiments::{fig5, Scheme};
use csb_core::SimConfig;

fn bench_fig5_points(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    let cfg = SimConfig::default();

    for dwords in [2usize, 8] {
        group.bench_with_input(BenchmarkId::new("lock_hit", dwords), &dwords, |b, &d| {
            b.iter(|| {
                fig5::latency_point(
                    &cfg,
                    d,
                    Scheme::Uncached { block: 8 },
                    fig5::LockResidency::Hit,
                )
                .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("lock_miss", dwords), &dwords, |b, &d| {
            b.iter(|| {
                fig5::latency_point(
                    &cfg,
                    d,
                    Scheme::Uncached { block: 8 },
                    fig5::LockResidency::Miss,
                )
                .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("csb", dwords), &dwords, |b, &d| {
            b.iter(|| fig5::latency_point(&cfg, d, Scheme::Csb, fig5::LockResidency::Hit).unwrap())
        });
    }

    group.finish();
}

criterion_group!(benches, bench_fig5_points);
criterion_main!(benches);
