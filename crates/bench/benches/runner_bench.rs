//! Engine throughput benchmarks: serial vs. parallel execution of one
//! Figure 3 panel through the experiment runner, plus the naive-loop vs.
//! fast-forward simulated-cycles-per-second sweep.
//!
//! Run with `cargo bench -p csb-bench --bench runner_bench`; the parallel
//! numbers are recorded in EXPERIMENTS.md, and the fast-forward sweep is
//! written to `BENCH_sim_throughput.json` in the workspace root (the
//! checked-in copy at the repo root is regenerated this way; CI's
//! perf-smoke job gates on the Figure 5(b) and long-CSB-point speedups in
//! it).
//!
//! `-- --samples N` overrides the wall-clock samples taken per sweep leg
//! and `-- --reps N` the executions batched inside each timed sample;
//! both default to the values the checked-in JSON was generated with.

use criterion::{BenchmarkId, Criterion};
use csb_core::experiments::runner::run_bandwidth_panels;
use csb_core::experiments::{fig3, throughput};

fn bench_runner(c: &mut Criterion) {
    let mut group = c.benchmark_group("runner");
    group.sample_size(10);

    // Panel 3e: the default machine (64-byte line, ratio 6) — 7 transfer
    // sizes × 5 schemes = 35 independent simulation points. `jobs1` is the
    // serial baseline; the speedup of the other legs tracks the host's
    // core count (on a single-core host they only measure pool overhead).
    let spec = fig3::PANELS[4].spec();
    let specs = std::slice::from_ref(&spec);

    for jobs in [1usize, 2, 4] {
        group.bench_function(BenchmarkId::new("fig3e", format!("jobs{jobs}")), |b| {
            b.iter(|| run_bandwidth_panels(specs, jobs).expect("panel simulates"))
        });
    }
    group.finish();
}

/// Runs the criterion group. A hand-rolled driver instead of
/// `criterion_group!`: the generated runner calls `configure_from_args`,
/// whose clap parser would reject this harness's own `--reps`/`--samples`
/// flags (the criterion defaults are what CI and the checked-in numbers
/// use anyway).
fn benches() {
    let mut criterion = Criterion::default();
    bench_runner(&mut criterion);
}

/// Wall-clock samples per leg of the fast-forward sweep; the best is
/// reported, so a handful suffices. Overridable with `--samples N`.
const THROUGHPUT_SAMPLES: usize = 5;

/// Executions batched inside each timed sample — the figure points are
/// short programs, so a single run is below timer resolution.
/// Overridable with `--reps N`.
const THROUGHPUT_REPS: usize = 64;

/// The harness's value flags. `--bench`/`--test` below are accepted bare
/// because cargo appends them when dispatching bench targets.
const VALUE_FLAGS: &[&str] = &["--reps", "--samples"];

/// Bare flags cargo itself passes to bench executables.
const BARE_FLAGS: &[&str] = &["--bench", "--test"];

const USAGE: &str = "cargo bench -p csb-bench --bench runner_bench [-- --samples N] [-- --reps N]";

fn main() {
    csb_bench::validate_args(USAGE, VALUE_FLAGS, BARE_FLAGS, 0);
    let samples = csb_bench::count_from_args("--samples", THROUGHPUT_SAMPLES);
    let reps = csb_bench::count_from_args("--reps", THROUGHPUT_REPS);

    benches();

    let report = throughput::measure(samples, reps).expect("throughput points simulate");
    eprint!("{}", report.render());
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    // Anchor to the workspace root: cargo-bench's CWD is the package dir.
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_sim_throughput.json"
    );
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    eprintln!("wrote {path}");
}
