//! Engine throughput benchmarks: serial vs. parallel execution of one
//! Figure 3 panel through the experiment runner, plus the naive-loop vs.
//! fast-forward simulated-cycles-per-second sweep.
//!
//! Run with `cargo bench -p csb-bench --bench runner_bench`; the parallel
//! numbers are recorded in EXPERIMENTS.md, and the fast-forward sweep is
//! written to `BENCH_sim_throughput.json` in the working directory (the
//! checked-in copy at the repo root is regenerated this way; CI's
//! perf-smoke job gates on the Figure 5(b) speedup in it).

use criterion::{criterion_group, BenchmarkId, Criterion};
use csb_core::experiments::runner::run_bandwidth_panels;
use csb_core::experiments::{fig3, throughput};

fn bench_runner(c: &mut Criterion) {
    let mut group = c.benchmark_group("runner");
    group.sample_size(10);

    // Panel 3e: the default machine (64-byte line, ratio 6) — 7 transfer
    // sizes × 5 schemes = 35 independent simulation points. `jobs1` is the
    // serial baseline; the speedup of the other legs tracks the host's
    // core count (on a single-core host they only measure pool overhead).
    let spec = fig3::PANELS[4].spec();
    let specs = std::slice::from_ref(&spec);

    for jobs in [1usize, 2, 4] {
        group.bench_function(BenchmarkId::new("fig3e", format!("jobs{jobs}")), |b| {
            b.iter(|| run_bandwidth_panels(specs, jobs).expect("panel simulates"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_runner);

/// Wall-clock samples per leg of the fast-forward sweep; the best is
/// reported, so a handful suffices.
const THROUGHPUT_SAMPLES: usize = 5;

/// Executions batched inside each timed sample — the figure points are
/// short programs, so a single run is below timer resolution.
const THROUGHPUT_REPS: usize = 64;

fn main() {
    benches();

    let report = throughput::measure(THROUGHPUT_SAMPLES, THROUGHPUT_REPS)
        .expect("throughput points simulate");
    eprint!("{}", report.render());
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    // Anchor to the workspace root: cargo-bench's CWD is the package dir.
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_sim_throughput.json"
    );
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    eprintln!("wrote {path}");
}
