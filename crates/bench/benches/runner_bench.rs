//! Serial vs. parallel execution of one Figure 3 panel through the
//! experiment runner — the speedup measurement for the engine itself.
//!
//! Run with `cargo bench -p csb-bench --bench runner_bench`; the numbers
//! are recorded in EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csb_core::experiments::fig3;
use csb_core::experiments::runner::run_bandwidth_panels;

fn bench_runner(c: &mut Criterion) {
    let mut group = c.benchmark_group("runner");
    group.sample_size(10);

    // Panel 3e: the default machine (64-byte line, ratio 6) — 7 transfer
    // sizes × 5 schemes = 35 independent simulation points. `jobs1` is the
    // serial baseline; the speedup of the other legs tracks the host's
    // core count (on a single-core host they only measure pool overhead).
    let spec = fig3::PANELS[4].spec();
    let specs = std::slice::from_ref(&spec);

    for jobs in [1usize, 2, 4] {
        group.bench_function(BenchmarkId::new("fig3e", format!("jobs{jobs}")), |b| {
            b.iter(|| run_bandwidth_panels(specs, jobs).expect("panel simulates"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_runner);
criterion_main!(benches);
