//! Criterion benchmarks for the Figure 3 workload points (multiplexed bus):
//! host-side cost of regenerating each panel's heaviest column.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csb_bus::BusConfig;
use csb_core::experiments::{bandwidth_point, Scheme};
use csb_core::SimConfig;

fn bench_fig3_points(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);

    // (a)-(c): frequency ratios on a 32-byte line.
    for ratio in [3u64, 6, 9] {
        let cfg = SimConfig::default()
            .line_size(32)
            .bus(BusConfig::multiplexed(8).max_burst(32).build().unwrap())
            .frequency_ratio(ratio);
        group.bench_with_input(BenchmarkId::new("ratio_csb_1k", ratio), &cfg, |b, cfg| {
            b.iter(|| bandwidth_point(cfg, 1024, Scheme::Csb).unwrap())
        });
    }

    // (d)-(f): line sizes at ratio 6.
    for line in [32usize, 64, 128] {
        let cfg = SimConfig::default()
            .line_size(line)
            .bus(BusConfig::multiplexed(8).max_burst(line).build().unwrap());
        group.bench_with_input(
            BenchmarkId::new("line_full_combine_1k", line),
            &cfg,
            |b, cfg| {
                b.iter(|| bandwidth_point(cfg, 1024, Scheme::Uncached { block: line }).unwrap())
            },
        );
    }

    // (g)-(i): bus overheads at ratio 6, 64-byte line.
    for (name, turnaround, delay) in [
        ("turnaround", 1u64, 0u64),
        ("delay4", 0, 4),
        ("delay8", 0, 8),
    ] {
        let cfg = SimConfig::default().bus(
            BusConfig::multiplexed(8)
                .max_burst(64)
                .turnaround(turnaround)
                .min_addr_delay(delay)
                .build()
                .unwrap(),
        );
        group.bench_with_input(
            BenchmarkId::new("overhead_none_1k", name),
            &cfg,
            |b, cfg| b.iter(|| bandwidth_point(cfg, 1024, Scheme::Uncached { block: 8 }).unwrap()),
        );
    }

    group.finish();
}

criterion_group!(benches, bench_fig3_points);
criterion_main!(benches);
