//! Criterion benchmarks for the design-choice ablations called out in
//! DESIGN.md: CSB extensions, related-work combining rules, loaded-bus
//! contention, and the multi-process scheduler.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csb_core::experiments::{bandwidth_point, fig5, Scheme};
use csb_core::multiproc::{MultiSim, SwitchPolicy};
use csb_core::{workloads, SimConfig};

fn bench_csb_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_csb_variants");
    group.sample_size(10);
    let variants: [(&str, SimConfig); 3] = [
        ("baseline", SimConfig::default()),
        (
            "double_buffered",
            SimConfig::default().csb_double_buffered(),
        ),
        ("variable_burst", SimConfig::default().csb_variable_burst()),
    ];
    for (name, cfg) in variants {
        group.bench_with_input(BenchmarkId::new("csb_1k", name), &cfg, |b, cfg| {
            b.iter(|| bandwidth_point(cfg, 1024, Scheme::Csb).unwrap())
        });
    }
    group.finish();
}

fn bench_related_work(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_related_work");
    group.sample_size(10);
    let cfg = SimConfig::default();
    for (name, scheme) in [("r10k", Scheme::R10k), ("ppc620", Scheme::Ppc620)] {
        group.bench_with_input(BenchmarkId::new("bw_1k", name), &scheme, |b, &s| {
            b.iter(|| bandwidth_point(&cfg, 1024, s).unwrap())
        });
    }
    group.finish();
}

fn bench_contention_and_width(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_machine");
    group.sample_size(10);

    let loaded = SimConfig::default().bus(
        csb_bus::BusConfig::multiplexed(8)
            .max_burst(64)
            .background(1.0 / 3.0, 64)
            .build()
            .unwrap(),
    );
    group.bench_function("loaded_bus_none_1k", |b| {
        b.iter(|| bandwidth_point(&loaded, 1024, Scheme::Uncached { block: 8 }).unwrap())
    });

    for width in [2usize, 8] {
        let cfg = SimConfig::default().cpu(csb_cpu::CpuConfig::superscalar(width));
        group.bench_with_input(BenchmarkId::new("lock_by_width", width), &cfg, |b, cfg| {
            b.iter(|| {
                fig5::latency_point(
                    cfg,
                    4,
                    Scheme::Uncached { block: 8 },
                    fig5::LockResidency::Hit,
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_multiproc(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_multiproc");
    group.sample_size(10);
    group.bench_function("two_workers_sliced", |b| {
        b.iter(|| {
            let cfg = SimConfig::default();
            let programs = vec![
                workloads::csb_worker(3, 8, 0, &cfg).unwrap(),
                workloads::csb_worker(3, 8, 1, &cfg).unwrap(),
            ];
            let mut ms = MultiSim::new(cfg, programs, SwitchPolicy::Fixed(60)).unwrap();
            ms.run(10_000_000).unwrap().cycles
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_csb_variants,
    bench_related_work,
    bench_contention_and_width,
    bench_multiproc
);
criterion_main!(benches);
