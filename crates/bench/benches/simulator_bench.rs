//! Microbenchmarks of the simulator kernel itself: simulated-cycles-per-
//! second throughput for the main machine activities (host performance, not
//! paper results).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use csb_core::{workloads, SimConfig, Simulator};
use csb_isa::{Assembler, Reg};

fn bench_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(20);

    // Pure ALU loop: front-end + issue + retire cost per simulated cycle.
    group.throughput(Throughput::Elements(1));
    group.bench_function("alu_loop", |b| {
        let mut a = Assembler::new();
        let top = a.new_label();
        a.movi(Reg::L0, 2000);
        a.bind(top).unwrap();
        a.alui(csb_isa::AluOp::Sub, Reg::L0, Reg::L0, 1);
        a.cmpi(Reg::L0, 0);
        a.bnz(top);
        a.halt();
        let program = a.assemble().unwrap();
        b.iter(|| {
            let mut sim = Simulator::new(SimConfig::default(), program.clone()).unwrap();
            sim.run(1_000_000).unwrap().cycles
        })
    });

    // Uncached store stream: buffer + bus machinery.
    group.bench_function("uncached_stream_1k", |b| {
        let cfg = SimConfig::default();
        let program =
            workloads::store_bandwidth(1024, &cfg, workloads::StorePath::Uncached).unwrap();
        b.iter(|| {
            let mut sim = Simulator::new(cfg.clone(), program.clone()).unwrap();
            sim.run(10_000_000).unwrap().cycles
        })
    });

    // CSB stream: combining + flush machinery.
    group.bench_function("csb_stream_1k", |b| {
        let cfg = SimConfig::default();
        let program = workloads::store_bandwidth(1024, &cfg, workloads::StorePath::Csb).unwrap();
        b.iter(|| {
            let mut sim = Simulator::new(cfg.clone(), program.clone()).unwrap();
            sim.run(10_000_000).unwrap().cycles
        })
    });

    group.finish();
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
