//! The two-level hierarchy: L1 → L2 → memory latency composition.

use std::fmt;

use csb_isa::Addr;
use serde::{Deserialize, Serialize};

use crate::cache::{Cache, CacheConfig, CacheConfigError, CacheStats};

/// Kind of cached access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// Load.
    Read,
    /// Store.
    Write,
    /// Atomic read-modify-write (`swap`): requires the line like a write.
    Atomic,
}

impl AccessKind {
    fn is_write(self) -> bool {
        !matches!(self, AccessKind::Read)
    }
}

/// Which level serviced an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HitLevel {
    /// Serviced by the L1.
    L1,
    /// Serviced by the L2.
    L2,
    /// Went to main memory.
    Memory,
}

impl fmt::Display for HitLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HitLevel::L1 => f.write_str("L1"),
            HitLevel::L2 => f.write_str("L2"),
            HitLevel::Memory => f.write_str("memory"),
        }
    }
}

/// Hierarchy configuration.
///
/// The default reproduces the paper's cache-miss anchor: an access that
/// misses both caches completes `mem_latency = 100` CPU cycles after it
/// starts — "the cache miss latency is 100 cycles, which corresponds to
/// 166 ns on a 600 MHz processor" (§4.3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryConfig {
    /// L1 geometry and hit latency.
    pub l1: CacheConfig,
    /// L2 geometry and hit latency.
    pub l2: CacheConfig,
    /// Total latency of an access serviced by main memory, in CPU cycles.
    pub mem_latency: u64,
}

impl MemoryConfig {
    /// Paper-style defaults for a given cache line size.
    pub fn with_line(line: usize) -> Self {
        MemoryConfig {
            l1: CacheConfig::l1_default(line),
            l2: CacheConfig::l2_default(line),
            mem_latency: 100,
        }
    }
}

impl Default for MemoryConfig {
    fn default() -> Self {
        Self::with_line(64)
    }
}

/// Aggregate statistics for the hierarchy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MemoryStats {
    /// L1 counters.
    pub l1: CacheStats,
    /// L2 counters.
    pub l2: CacheStats,
    /// Accesses serviced by main memory.
    pub mem_accesses: u64,
}

/// The two-level cache hierarchy (timing only).
///
/// # Examples
///
/// ```
/// use csb_isa::Addr;
/// use csb_mem::{AccessKind, HitLevel, MemoryConfig, MemoryHierarchy};
///
/// # fn main() -> Result<(), csb_mem::CacheConfigError> {
/// let mut mem = MemoryHierarchy::new(MemoryConfig::default())?;
/// let a = Addr::new(0x4000);
///
/// // Cold: goes to memory, costs the full 100-cycle miss latency.
/// let (ready, level) = mem.access(a, AccessKind::Read, 0);
/// assert_eq!(level, HitLevel::Memory);
/// assert_eq!(ready, 100);
///
/// // Warm: L1 hit at the L1 latency.
/// let (ready, level) = mem.access(a, AccessKind::Read, 200);
/// assert_eq!(level, HitLevel::L1);
/// assert_eq!(ready, 201);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    cfg: MemoryConfig,
    l1: Cache,
    l2: Cache,
    stats_mem: u64,
}

impl MemoryHierarchy {
    /// Creates an empty hierarchy.
    ///
    /// # Errors
    ///
    /// Returns [`CacheConfigError`] if either cache geometry is invalid.
    pub fn new(cfg: MemoryConfig) -> Result<Self, CacheConfigError> {
        Ok(MemoryHierarchy {
            cfg,
            l1: Cache::new(cfg.l1)?,
            l2: Cache::new(cfg.l2)?,
            stats_mem: 0,
        })
    }

    /// The hierarchy configuration.
    pub fn config(&self) -> &MemoryConfig {
        &self.cfg
    }

    /// Resets to the state [`MemoryHierarchy::new`]`(cfg)` would produce,
    /// reusing each level's set array when its geometry is unchanged — the
    /// common case across a sweep, where reallocating the caches would
    /// dominate the cost of re-preparing a short point.
    ///
    /// # Errors
    ///
    /// As for [`MemoryHierarchy::new`]. On error the hierarchy is
    /// unchanged.
    pub fn reset_with(&mut self, cfg: MemoryConfig) -> Result<(), CacheConfigError> {
        // Validate (and build) any changed geometry before mutating.
        let new_l1 = (cfg.l1 != self.cfg.l1)
            .then(|| Cache::new(cfg.l1))
            .transpose()?;
        let new_l2 = (cfg.l2 != self.cfg.l2)
            .then(|| Cache::new(cfg.l2))
            .transpose()?;
        match new_l1 {
            Some(c) => self.l1 = c,
            None => self.l1.clear(),
        }
        match new_l2 {
            Some(c) => self.l2 = c,
            None => self.l2.clear(),
        }
        self.cfg = cfg;
        self.stats_mem = 0;
        Ok(())
    }

    /// Serializes both cache levels and the memory-access counter (the
    /// geometry itself comes from the [`MemoryConfig`] the restoring side
    /// already holds).
    pub fn save_state(&self, w: &mut csb_snap::SnapshotWriter) {
        w.put_tag("hier");
        self.l1.save_state(w);
        self.l2.save_state(w);
        w.put_u64(self.stats_mem);
    }

    /// Restores state written by [`MemoryHierarchy::save_state`] into a
    /// hierarchy already configured with the same [`MemoryConfig`].
    ///
    /// # Errors
    ///
    /// [`csb_snap::SnapshotError`] on a malformed stream.
    pub fn restore_state(
        &mut self,
        r: &mut csb_snap::SnapshotReader<'_>,
    ) -> Result<(), csb_snap::SnapshotError> {
        r.take_tag("hier")?;
        self.l1.restore_state(r)?;
        self.l2.restore_state(r)?;
        self.stats_mem = r.take_u64()?;
        Ok(())
    }

    /// Performs a timed access starting at CPU cycle `now`.
    ///
    /// Returns `(ready_at, level)`: the cycle at which the access completes
    /// and which level serviced it. Lines are allocated in both levels on a
    /// miss (inclusive hierarchy).
    pub fn access(&mut self, addr: Addr, kind: AccessKind, now: u64) -> (u64, HitLevel) {
        let write = kind.is_write();
        if self.l1.lookup(addr, write) {
            return (now + self.cfg.l1.hit_latency, HitLevel::L1);
        }
        if self.l2.lookup(addr, write) {
            self.l1.fill(addr, write);
            return (now + self.cfg.l2.hit_latency, HitLevel::L2);
        }
        self.stats_mem += 1;
        self.l2.fill(addr, write);
        self.l1.fill(addr, write);
        (now + self.cfg.mem_latency, HitLevel::Memory)
    }

    /// Pre-loads the line containing `addr` into both levels (test/benchmark
    /// warm-up without timing side effects on the experiment).
    pub fn warm(&mut self, addr: Addr) {
        self.l2.fill(addr, false);
        self.l1.fill(addr, false);
    }

    /// Evicts the line containing `addr` from both levels, forcing the next
    /// access to miss to memory (used by the Figure 5(b) lock-miss setup).
    pub fn flush_line(&mut self, addr: Addr) {
        self.l1.invalidate(addr);
        self.l2.invalidate(addr);
    }

    /// Returns `true` if `addr` is present in the L1.
    pub fn in_l1(&self, addr: Addr) -> bool {
        self.l1.probe(addr)
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> MemoryStats {
        MemoryStats {
            l1: *self.l1.stats(),
            l2: *self.l2.stats(),
            mem_accesses: self.stats_mem,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hier() -> MemoryHierarchy {
        MemoryHierarchy::new(MemoryConfig::default()).unwrap()
    }

    #[test]
    fn miss_hit_l2_hit_l1() {
        let mut m = hier();
        let a = Addr::new(0x8000);
        let (t, lvl) = m.access(a, AccessKind::Read, 10);
        assert_eq!((t, lvl), (110, HitLevel::Memory));
        // Evict from L1 only: conflict lines in the same L1 set.
        // L1: 32KiB/2way/64B -> 256 sets -> set stride 16 KiB.
        m.access(Addr::new(0x8000 + 16 * 1024), AccessKind::Read, 0);
        m.access(Addr::new(0x8000 + 32 * 1024), AccessKind::Read, 0);
        assert!(!m.in_l1(a));
        let (t, lvl) = m.access(a, AccessKind::Read, 200);
        assert_eq!((t, lvl), (210, HitLevel::L2));
        let (t, lvl) = m.access(a, AccessKind::Read, 300);
        assert_eq!((t, lvl), (301, HitLevel::L1));
    }

    #[test]
    fn warm_and_flush() {
        let mut m = hier();
        let a = Addr::new(0x1234_0000);
        m.warm(a);
        let (t, lvl) = m.access(a, AccessKind::Atomic, 0);
        assert_eq!((t, lvl), (1, HitLevel::L1));
        m.flush_line(a);
        let (t, lvl) = m.access(a, AccessKind::Atomic, 0);
        assert_eq!((t, lvl), (100, HitLevel::Memory));
        assert_eq!(m.stats().mem_accesses, 1);
    }

    #[test]
    fn writes_allocate() {
        let mut m = hier();
        let a = Addr::new(0x9000);
        m.access(a, AccessKind::Write, 0);
        assert!(m.in_l1(a));
        let (t, lvl) = m.access(a, AccessKind::Write, 50);
        assert_eq!((t, lvl), (51, HitLevel::L1));
    }

    #[test]
    fn stats_accumulate() {
        let mut m = hier();
        m.access(Addr::new(0), AccessKind::Read, 0);
        m.access(Addr::new(0), AccessKind::Read, 0);
        let s = m.stats();
        assert_eq!(s.l1.hits, 1);
        assert_eq!(s.l1.misses, 1);
        assert_eq!(s.mem_accesses, 1);
        assert_eq!(HitLevel::Memory.to_string(), "memory");
    }
}
