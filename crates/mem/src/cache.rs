//! A set-associative tag-only cache timing model.

use std::fmt;

use csb_isa::Addr;
use serde::{Deserialize, Serialize};

/// Configuration of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Line size in bytes.
    pub line: usize,
    /// Access latency in CPU cycles charged on a hit at this level.
    pub hit_latency: u64,
}

impl CacheConfig {
    /// A 32 KiB, 2-way, 1-cycle L1 with the given line size.
    pub fn l1_default(line: usize) -> Self {
        CacheConfig {
            size: 32 * 1024,
            assoc: 2,
            line,
            hit_latency: 1,
        }
    }

    /// A 1 MiB, 4-way, 10-cycle L2 with the given line size.
    pub fn l2_default(line: usize) -> Self {
        CacheConfig {
            size: 1024 * 1024,
            assoc: 4,
            line,
            hit_latency: 10,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CacheConfigError`] unless size, associativity, and line are
    /// nonzero, line and set count are powers of two, and
    /// `size = sets * assoc * line` is satisfiable.
    pub fn validate(&self) -> Result<(), CacheConfigError> {
        if self.size == 0 || self.assoc == 0 || self.line == 0 {
            return Err(CacheConfigError::Zero);
        }
        if !self.line.is_power_of_two() {
            return Err(CacheConfigError::LineNotPow2(self.line));
        }
        if !self.size.is_multiple_of(self.assoc * self.line) {
            return Err(CacheConfigError::Indivisible {
                size: self.size,
                assoc: self.assoc,
                line: self.line,
            });
        }
        let sets = self.size / (self.assoc * self.line);
        if !sets.is_power_of_two() {
            return Err(CacheConfigError::SetsNotPow2(sets));
        }
        Ok(())
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.size / (self.assoc * self.line)
    }
}

/// Invalid [`CacheConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheConfigError {
    /// Size, associativity, or line size was zero.
    Zero,
    /// Line size is not a power of two.
    LineNotPow2(usize),
    /// Size is not divisible by `assoc * line`.
    Indivisible {
        /// Cache size.
        size: usize,
        /// Associativity.
        assoc: usize,
        /// Line size.
        line: usize,
    },
    /// The implied set count is not a power of two.
    SetsNotPow2(usize),
}

impl fmt::Display for CacheConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheConfigError::Zero => f.write_str("cache size, assoc, and line must be nonzero"),
            CacheConfigError::LineNotPow2(l) => write!(f, "line size {l} is not a power of two"),
            CacheConfigError::Indivisible { size, assoc, line } => {
                write!(
                    f,
                    "cache size {size} not divisible by assoc {assoc} * line {line}"
                )
            }
            CacheConfigError::SetsNotPow2(s) => write!(f, "set count {s} is not a power of two"),
        }
    }
}

impl std::error::Error for CacheConfigError {}

/// Per-cache hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Dirty lines evicted.
    pub writebacks: u64,
}

impl CacheStats {
    /// Hit rate in [0, 1]; 0 if no accesses.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Line {
    tag: u64,
    /// A line is valid iff its epoch matches the cache's current epoch
    /// (see [`Cache::clear`]); epoch 0 never matches a live cache.
    epoch: u64,
    dirty: bool,
    lru: u64,
}

/// One level of set-associative, write-allocate, write-back cache
/// (tags and timing only; data lives in [`crate::FlatMemory`]).
///
/// # Examples
///
/// ```
/// use csb_isa::Addr;
/// use csb_mem::{Cache, CacheConfig};
///
/// # fn main() -> Result<(), csb_mem::CacheConfigError> {
/// let mut l1 = Cache::new(CacheConfig::l1_default(64))?;
/// assert!(!l1.lookup(Addr::new(0x1000), false)); // cold miss
/// l1.fill(Addr::new(0x1000), false);
/// assert!(l1.lookup(Addr::new(0x1038), false)); // same line hits
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<Line>>,
    epoch: u64,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Errors
    ///
    /// Returns [`CacheConfigError`] for invalid geometry.
    pub fn new(cfg: CacheConfig) -> Result<Self, CacheConfigError> {
        cfg.validate()?;
        let sets = vec![
            vec![
                Line {
                    tag: 0,
                    epoch: 0,
                    dirty: false,
                    lru: 0
                };
                cfg.assoc
            ];
            cfg.sets()
        ];
        Ok(Cache {
            cfg,
            sets,
            epoch: 1,
            tick: 0,
            stats: CacheStats::default(),
        })
    }

    /// The cache configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Invalidates every line and zeroes the statistics in place, keeping
    /// the set storage — indistinguishable from a fresh cache without any
    /// allocator traffic (the simulator's warm-reset path).
    ///
    /// O(1): validity is epoch-tagged, so bumping the cache epoch retires
    /// every resident line at once instead of sweeping the set arrays
    /// (the L2's ~16K lines would otherwise dominate a short point's
    /// warm-reset cost).
    pub fn clear(&mut self) {
        self.epoch += 1;
        self.tick = 0;
        self.stats = CacheStats::default();
    }

    /// Hit/miss statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn index(&self, addr: Addr) -> (usize, u64) {
        let line_addr = addr.raw() / self.cfg.line as u64;
        let set = (line_addr % self.cfg.sets() as u64) as usize;
        let tag = line_addr / self.cfg.sets() as u64;
        (set, tag)
    }

    /// Looks up `addr`; on a hit updates LRU (and the dirty bit if `write`)
    /// and returns `true`. On a miss returns `false` without allocating.
    pub fn lookup(&mut self, addr: Addr, write: bool) -> bool {
        self.tick += 1;
        let (set, tag) = self.index(addr);
        for line in &mut self.sets[set] {
            if line.epoch == self.epoch && line.tag == tag {
                line.lru = self.tick;
                line.dirty |= write;
                self.stats.hits += 1;
                return true;
            }
        }
        self.stats.misses += 1;
        false
    }

    /// Fills the line containing `addr`, evicting the LRU way. Returns `true`
    /// if a dirty line was evicted (a writeback).
    pub fn fill(&mut self, addr: Addr, write: bool) -> bool {
        self.tick += 1;
        let tick = self.tick;
        let (set, tag) = self.index(addr);
        let epoch = self.epoch;
        let victim = self.sets[set]
            .iter_mut()
            .min_by_key(|l| if l.epoch == epoch { l.lru } else { 0 })
            .expect("associativity is nonzero");
        let wb = victim.epoch == epoch && victim.dirty;
        if wb {
            self.stats.writebacks += 1;
        }
        *victim = Line {
            tag,
            epoch,
            dirty: write,
            lru: tick,
        };
        wb
    }

    /// Serializes the resident lines, LRU clock, and statistics. Only
    /// lines valid in the current epoch are written (as explicit
    /// `(set, way)` coordinates), so the byte stream is independent of
    /// how many stale lines past epochs left behind — two caches with
    /// identical observable state snapshot identically.
    pub fn save_state(&self, w: &mut csb_snap::SnapshotWriter) {
        w.put_tag("cache");
        w.put_u64(self.tick);
        w.put_u64(self.stats.hits);
        w.put_u64(self.stats.misses);
        w.put_u64(self.stats.writebacks);
        let valid = self
            .sets
            .iter()
            .flatten()
            .filter(|l| l.epoch == self.epoch)
            .count();
        w.put_usize(valid);
        for (si, set) in self.sets.iter().enumerate() {
            for (wi, line) in set.iter().enumerate() {
                if line.epoch == self.epoch {
                    w.put_u32(si as u32);
                    w.put_u32(wi as u32);
                    w.put_u64(line.tag);
                    w.put_bool(line.dirty);
                    w.put_u64(line.lru);
                }
            }
        }
    }

    /// Restores state written by [`Cache::save_state`] into this cache
    /// (same geometry). Valid lines are reinstalled at their exact way
    /// indices; everything else is invalid, exactly as in the snapshotted
    /// cache (invalid ways tie-break victim selection by position, so
    /// their stale contents are behaviorally invisible).
    ///
    /// # Errors
    ///
    /// [`csb_snap::SnapshotError`] on a malformed stream or line
    /// coordinates outside this cache's geometry.
    pub fn restore_state(
        &mut self,
        r: &mut csb_snap::SnapshotReader<'_>,
    ) -> Result<(), csb_snap::SnapshotError> {
        self.clear();
        r.take_tag("cache")?;
        self.tick = r.take_u64()?;
        self.stats = CacheStats {
            hits: r.take_u64()?,
            misses: r.take_u64()?,
            writebacks: r.take_u64()?,
        };
        let valid = r.take_usize()?;
        for _ in 0..valid {
            let set = r.take_u32()? as usize;
            let way = r.take_u32()? as usize;
            let tag = r.take_u64()?;
            let dirty = r.take_bool()?;
            let lru = r.take_u64()?;
            if set >= self.sets.len() || way >= self.cfg.assoc {
                return Err(csb_snap::SnapshotError::Corrupt(format!(
                    "cache line at set {set} way {way} outside geometry"
                )));
            }
            self.sets[set][way] = Line {
                tag,
                epoch: self.epoch,
                dirty,
                lru,
            };
        }
        Ok(())
    }

    /// Returns `true` if the line containing `addr` is present (no LRU or
    /// stats side effects).
    pub fn probe(&self, addr: Addr) -> bool {
        let (set, tag) = self.index(addr);
        self.sets[set]
            .iter()
            .any(|l| l.epoch == self.epoch && l.tag == tag)
    }

    /// Invalidates the line containing `addr`, if present.
    pub fn invalidate(&mut self, addr: Addr) {
        let (set, tag) = self.index(addr);
        for line in &mut self.sets[set] {
            if line.epoch == self.epoch && line.tag == tag {
                line.epoch = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 16B lines = 128 B.
        Cache::new(CacheConfig {
            size: 128,
            assoc: 2,
            line: 16,
            hit_latency: 1,
        })
        .unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(CacheConfig::l1_default(64).validate().is_ok());
        assert!(matches!(
            CacheConfig {
                size: 0,
                assoc: 1,
                line: 16,
                hit_latency: 1
            }
            .validate(),
            Err(CacheConfigError::Zero)
        ));
        assert!(matches!(
            CacheConfig {
                size: 96,
                assoc: 1,
                line: 24,
                hit_latency: 1
            }
            .validate(),
            Err(CacheConfigError::LineNotPow2(24))
        ));
        assert!(matches!(
            CacheConfig {
                size: 100,
                assoc: 2,
                line: 16,
                hit_latency: 1
            }
            .validate(),
            Err(CacheConfigError::Indivisible { .. })
        ));
        assert!(matches!(
            CacheConfig {
                size: 96,
                assoc: 2,
                line: 16,
                hit_latency: 1
            }
            .validate(),
            Err(CacheConfigError::SetsNotPow2(3))
        ));
        assert_eq!(CacheConfig::l2_default(64).sets(), 4096);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        let a = Addr::new(0x100);
        assert!(!c.lookup(a, false));
        c.fill(a, false);
        assert!(c.lookup(a, false));
        assert!(c.lookup(Addr::new(0x10f), false)); // same 16B line
        assert!(!c.lookup(Addr::new(0x110), false)); // next line
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_eviction_and_writeback() {
        let mut c = tiny();
        // Three lines mapping to the same set (set stride = 4 * 16 = 64 B).
        let (a, b, d) = (Addr::new(0x000), Addr::new(0x040), Addr::new(0x080));
        c.fill(a, true); // dirty
        c.fill(b, false);
        assert!(c.probe(a) && c.probe(b));
        // Touch a so b becomes LRU.
        assert!(c.lookup(a, false));
        let wb = c.fill(d, false);
        assert!(!wb, "b was clean");
        assert!(c.probe(a) && !c.probe(b) && c.probe(d));
        // Now evict dirty a: touch d, fill b again.
        assert!(c.lookup(d, false));
        let wb = c.fill(b, false);
        assert!(wb, "a was dirty");
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_sets_dirty_via_lookup() {
        let mut c = tiny();
        c.fill(Addr::new(0), false);
        assert!(c.lookup(Addr::new(0), true));
        // Force eviction of set 0 line: fill two more lines in set 0.
        c.fill(Addr::new(0x40), false);
        c.fill(Addr::new(0x80), false);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn invalidate() {
        let mut c = tiny();
        c.fill(Addr::new(0x20), false);
        assert!(c.probe(Addr::new(0x20)));
        c.invalidate(Addr::new(0x20));
        assert!(!c.probe(Addr::new(0x20)));
        // Invalidate of an absent line is a no-op.
        c.invalidate(Addr::new(0x999));
    }

    #[test]
    fn hit_rate() {
        let mut c = tiny();
        assert_eq!(c.stats().hit_rate(), 0.0);
        c.lookup(Addr::new(0), false);
        c.fill(Addr::new(0), false);
        c.lookup(Addr::new(0), false);
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
    }
}
