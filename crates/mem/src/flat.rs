//! Sparse functional memory.

use std::collections::HashMap;

/// Size of each internally allocated memory chunk.
const CHUNK: u64 = 4096;

/// Sparse byte-addressable memory holding the simulated machine's data.
///
/// Unwritten locations read as zero. Values are little-endian.
///
/// # Examples
///
/// ```
/// use csb_isa::Addr;
/// use csb_mem::FlatMemory;
///
/// let mut mem = FlatMemory::new();
/// mem.write(Addr::new(0x1000), 8, 0xdead_beef_cafe_f00d);
/// assert_eq!(mem.read(Addr::new(0x1000), 8), 0xdead_beef_cafe_f00d);
/// assert_eq!(mem.read(Addr::new(0x1004), 4), 0xdead_beef);
/// assert_eq!(mem.read(Addr::new(0x9999), 8), 0); // untouched reads zero
/// ```
#[derive(Debug, Clone, Default)]
pub struct FlatMemory {
    chunks: HashMap<u64, Box<[u8]>>,
}

impl FlatMemory {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> Self {
        Self::default()
    }

    fn chunk_mut(&mut self, base: u64) -> &mut [u8] {
        self.chunks
            .entry(base)
            .or_insert_with(|| vec![0u8; CHUNK as usize].into_boxed_slice())
    }

    /// Reads `width` bytes (1–8) at `addr` as a little-endian value.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 8.
    pub fn read(&self, addr: csb_isa::Addr, width: usize) -> u64 {
        assert!((1..=8).contains(&width), "width {width} out of range");
        let mut buf = [0u8; 8];
        self.read_bytes(addr, &mut buf[..width]);
        u64::from_le_bytes(buf)
    }

    /// Writes the low `width` bytes (1–8) of `value` at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 8.
    pub fn write(&mut self, addr: csb_isa::Addr, width: usize, value: u64) {
        assert!((1..=8).contains(&width), "width {width} out of range");
        let bytes = value.to_le_bytes();
        self.write_bytes(addr, &bytes[..width]);
    }

    /// Atomically swaps `value` with the 8-byte word at `addr`, returning the
    /// old contents (the SPARC `swap` semantics the lock benchmark relies on).
    pub fn swap(&mut self, addr: csb_isa::Addr, value: u64) -> u64 {
        let old = self.read(addr, 8);
        self.write(addr, 8, value);
        old
    }

    /// Copies bytes out of memory into `buf`.
    pub fn read_bytes(&self, addr: csb_isa::Addr, buf: &mut [u8]) {
        let mut a = addr.raw();
        for b in buf.iter_mut() {
            let (base, off) = (a & !(CHUNK - 1), (a & (CHUNK - 1)) as usize);
            *b = self.chunks.get(&base).map_or(0, |c| c[off]);
            a = a.wrapping_add(1);
        }
    }

    /// Copies `buf` into memory.
    pub fn write_bytes(&mut self, addr: csb_isa::Addr, buf: &[u8]) {
        let mut a = addr.raw();
        for &b in buf {
            let (base, off) = (a & !(CHUNK - 1), (a & (CHUNK - 1)) as usize);
            self.chunk_mut(base)[off] = b;
            a = a.wrapping_add(1);
        }
    }

    /// Number of distinct chunks touched (for tests and memory accounting).
    pub fn touched_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Serializes the memory contents: every chunk holding at least one
    /// nonzero byte, sorted by base address. All-zero chunks are skipped,
    /// so the byte stream depends only on the memory's observable
    /// contents — not on which chunks a warm-reused instance happens to
    /// have allocated.
    pub fn save_state(&self, w: &mut csb_snap::SnapshotWriter) {
        w.put_tag("flat");
        let mut bases: Vec<u64> = self
            .chunks
            .iter()
            .filter(|(_, c)| c.iter().any(|&b| b != 0))
            .map(|(&base, _)| base)
            .collect();
        bases.sort_unstable();
        w.put_usize(bases.len());
        for base in bases {
            w.put_u64(base);
            w.put_raw(&self.chunks[&base]);
        }
    }

    /// Restores contents written by [`FlatMemory::save_state`]: zeroes
    /// the memory in place, then rewrites the saved chunks.
    ///
    /// # Errors
    ///
    /// [`csb_snap::SnapshotError`] on a malformed stream.
    pub fn restore_state(
        &mut self,
        r: &mut csb_snap::SnapshotReader<'_>,
    ) -> Result<(), csb_snap::SnapshotError> {
        self.reset();
        r.take_tag("flat")?;
        let n = r.take_usize()?;
        for _ in 0..n {
            let base = r.take_u64()?;
            let bytes = r.take_raw(CHUNK as usize)?;
            if base % CHUNK != 0 {
                return Err(csb_snap::SnapshotError::Corrupt(format!(
                    "unaligned memory chunk base {base:#x}"
                )));
            }
            self.chunk_mut(base).copy_from_slice(bytes);
        }
        Ok(())
    }

    /// Zeroes every allocated chunk in place, keeping the storage. The
    /// memory reads all-zero afterwards — indistinguishable from a fresh
    /// instance — without returning anything to the allocator, which is
    /// what the simulator's warm-reset path wants between sweep points.
    pub fn reset(&mut self) {
        for chunk in self.chunks.values_mut() {
            chunk.fill(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csb_isa::Addr;

    #[test]
    fn read_write_round_trip_all_widths() {
        let mut m = FlatMemory::new();
        for (w, v) in [
            (1usize, 0xabu64),
            (2, 0xabcd),
            (4, 0xdead_beef),
            (8, u64::MAX - 5),
        ] {
            m.write(Addr::new(0x100), w, v);
            assert_eq!(m.read(Addr::new(0x100), w), v);
        }
    }

    #[test]
    fn cross_chunk_access() {
        let mut m = FlatMemory::new();
        let boundary = Addr::new(CHUNK - 4);
        m.write(boundary, 8, 0x1122_3344_5566_7788);
        assert_eq!(m.read(boundary, 8), 0x1122_3344_5566_7788);
        assert_eq!(m.touched_chunks(), 2);
    }

    #[test]
    fn swap_returns_old_value() {
        let mut m = FlatMemory::new();
        m.write(Addr::new(0x40), 8, 7);
        let old = m.swap(Addr::new(0x40), 99);
        assert_eq!(old, 7);
        assert_eq!(m.read(Addr::new(0x40), 8), 99);
        // Swap on untouched memory returns zero (unlocked lock).
        assert_eq!(m.swap(Addr::new(0x80), 1), 0);
    }

    #[test]
    fn partial_overwrite_is_little_endian() {
        let mut m = FlatMemory::new();
        m.write(Addr::new(0), 8, 0xffff_ffff_ffff_ffff);
        m.write(Addr::new(0), 2, 0);
        assert_eq!(m.read(Addr::new(0), 8), 0xffff_ffff_ffff_0000);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_width_rejected() {
        FlatMemory::new().read(Addr::new(0), 0);
    }

    #[test]
    fn byte_slice_io() {
        let mut m = FlatMemory::new();
        m.write_bytes(Addr::new(0x10), &[1, 2, 3, 4, 5]);
        let mut buf = [0u8; 5];
        m.read_bytes(Addr::new(0x10), &mut buf);
        assert_eq!(buf, [1, 2, 3, 4, 5]);
    }
}
