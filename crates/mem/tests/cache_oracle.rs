//! Property test: the set-associative cache must agree, access for access,
//! with an independently written (and obviously correct) LRU model.

use csb_isa::Addr;
use csb_mem::{Cache, CacheConfig};
use proptest::prelude::*;

/// The oracle: per set, a most-recently-used-last list of tags.
struct OracleCache {
    sets: Vec<Vec<u64>>,
    assoc: usize,
    line: u64,
}

impl OracleCache {
    fn new(cfg: &CacheConfig) -> Self {
        OracleCache {
            sets: vec![Vec::new(); cfg.sets()],
            assoc: cfg.assoc,
            line: cfg.line as u64,
        }
    }

    fn index(&self, addr: u64) -> (usize, u64) {
        let line_addr = addr / self.line;
        (
            (line_addr % self.sets.len() as u64) as usize,
            line_addr / self.sets.len() as u64,
        )
    }

    /// Access with allocate-on-miss; returns `true` on a hit.
    fn access(&mut self, addr: u64) -> bool {
        let (set, tag) = self.index(addr);
        let set = &mut self.sets[set];
        if let Some(pos) = set.iter().position(|&t| t == tag) {
            let t = set.remove(pos);
            set.push(t); // most recently used at the back
            true
        } else {
            if set.len() == self.assoc {
                set.remove(0); // evict LRU (front)
            }
            set.push(tag);
            false
        }
    }
}

proptest! {
    #[test]
    fn cache_matches_oracle(
        accesses in proptest::collection::vec((0u64..4096, proptest::bool::ANY), 1..300),
        assoc in 1usize..=4,
        sets_log in 1u32..=4,
    ) {
        let line = 32usize;
        let sets = 1usize << sets_log;
        let cfg = CacheConfig {
            size: sets * assoc * line,
            assoc,
            line,
            hit_latency: 1,
        };
        let mut cache = Cache::new(cfg).unwrap();
        let mut oracle = OracleCache::new(&cfg);
        for (i, &(slot, write)) in accesses.iter().enumerate() {
            let addr = Addr::new(slot * 8);
            let oracle_hit = oracle.access(addr.raw());
            let cache_hit = cache.lookup(addr, write);
            if !cache_hit {
                cache.fill(addr, write);
            }
            prop_assert_eq!(
                cache_hit,
                oracle_hit,
                "access #{} to {} diverged (assoc {}, sets {})",
                i,
                addr,
                assoc,
                sets
            );
        }
        // Tag state agrees at the end, too.
        for slot in 0..4096u64 {
            let addr = Addr::new(slot * 8);
            let (s, tag) = oracle.index(addr.raw());
            prop_assert_eq!(
                cache.probe(addr),
                oracle.sets[s].contains(&tag),
                "final residency diverged at {}",
                addr
            );
        }
    }
}
