//! A network-interface (NI) device model for the CSB reproduction.
//!
//! The paper's motivation and qualitative evaluation (§2, §5) are about
//! exactly this device class: NIs whose transmit path is a memory-mapped
//! window written with programmed I/O — the Atoll adapter's single-store
//! DMA doorbell and HP Medusa's on-board descriptor FIFOs are its examples.
//! What those designs exploit is that *individual bus transactions are
//! atomic*; the CSB extends that atomicity to a whole cache line.
//!
//! This crate models the receiving side of such a device:
//!
//! * the TX window is an array of cache-line-sized **slots**;
//! * a message is a [`Header`] doubleword (magic, sender, sequence number,
//!   payload length) followed by its payload bytes, all within one slot;
//! * the NI watches the bus writes landing in its window ([`Nic::ingest`]),
//!   assembles messages from whatever transaction granularity the sender's
//!   store path produced (one CSB line burst, or a dribble of single
//!   beats), timestamps them, and models wire transmission ([`WireModel`]);
//! * a header arriving while the slot's previous message is still
//!   incomplete marks a **torn frame** — the failure the CSB's atomic
//!   commit rules out by construction, and the reason lock-free NI access
//!   is unsafe with plain store buffers.
//!
//! The model is a pure consumer of bus write events, so it composes with
//! the simulator (adapt `csb-core`'s delivered writes into
//! [`WindowWrite`]s) and is unit-testable in isolation.
//!
//! # Examples
//!
//! ```
//! use csb_nic::{encode_header, Nic, NicConfig, WindowWrite};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut nic = Nic::new(NicConfig::default())?;
//!
//! // One CSB line burst carrying a 16-byte message in slot 0.
//! let mut line = vec![0u8; 64];
//! line[..8].copy_from_slice(&encode_header(16, 1, 7).to_le_bytes());
//! line[8..24].copy_from_slice(&[0xab; 16]);
//! nic.ingest(&WindowWrite { offset: 0, data: line, bus_cycle: 100 });
//!
//! let m = &nic.messages()[0];
//! assert_eq!(m.sender, 7);
//! assert_eq!(m.payload, vec![0xab; 16]);
//! assert!(m.arrived_at > 100);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use serde::{Deserialize, Serialize};

/// Magic tag in the top 16 bits of a valid header doubleword.
pub const HEADER_MAGIC: u16 = 0xCAFE;

/// Maximum payload carried by one slot-sized message.
pub const fn max_payload(slot_size: usize) -> usize {
    slot_size - 8
}

/// Parsed message header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Header {
    /// Payload length in bytes.
    pub len: u16,
    /// Sender-assigned sequence number.
    pub seq: u16,
    /// Sender identifier.
    pub sender: u16,
}

/// Packs a header doubleword: `[magic | sender | seq | len]` from the top.
pub fn encode_header(len: u16, seq: u16, sender: u16) -> u64 {
    (u64::from(HEADER_MAGIC) << 48)
        | (u64::from(sender) << 32)
        | (u64::from(seq) << 16)
        | u64::from(len)
}

/// Parses a header doubleword; `None` if the magic tag is absent.
pub fn decode_header(dword: u64) -> Option<Header> {
    if (dword >> 48) as u16 != HEADER_MAGIC {
        return None;
    }
    Some(Header {
        len: dword as u16,
        seq: (dword >> 16) as u16,
        sender: (dword >> 32) as u16,
    })
}

/// Wire-transmission timing, in bus cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireModel {
    /// Fixed propagation + switching latency.
    pub latency: u64,
    /// Serialization: cycles per 8 payload bytes.
    pub cycles_per_dword: u64,
}

impl Default for WireModel {
    fn default() -> Self {
        WireModel {
            latency: 20,
            cycles_per_dword: 1,
        }
    }
}

impl WireModel {
    /// Arrival time of a message completed at `done` carrying `len` payload
    /// bytes.
    pub fn arrival(&self, done: u64, len: usize) -> u64 {
        done + self.latency + self.cycles_per_dword * (len as u64).div_ceil(8)
    }
}

/// NI configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NicConfig {
    /// Slot size in bytes (one cache line).
    pub slot_size: usize,
    /// Number of slots in the TX window.
    pub slots: usize,
    /// NI processing overhead between the completing bus write and wire
    /// launch, in bus cycles.
    pub process_cycles: u64,
    /// Wire model.
    pub wire: WireModel,
}

impl Default for NicConfig {
    fn default() -> Self {
        NicConfig {
            slot_size: 64,
            slots: 64,
            process_cycles: 4,
            wire: WireModel::default(),
        }
    }
}

/// Invalid [`NicConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NicConfigError {
    /// The rejected slot size.
    pub slot_size: usize,
    /// The rejected slot count.
    pub slots: usize,
}

impl fmt::Display for NicConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "NIC window invalid: slot size {} must be a power of two >= 16, slots {} nonzero",
            self.slot_size, self.slots
        )
    }
}

impl std::error::Error for NicConfigError {}

/// One bus write landing in the NI window.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowWrite {
    /// Byte offset within the window (window-relative, not a bus address).
    pub offset: u64,
    /// Written bytes.
    pub data: Vec<u8>,
    /// Bus cycle of the transaction's address phase.
    pub bus_cycle: u64,
}

/// A fully assembled, wire-delivered message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReceivedMessage {
    /// Sender id from the header.
    pub sender: u16,
    /// Sequence number from the header.
    pub seq: u16,
    /// Payload bytes (exactly `header.len` of them).
    pub payload: Vec<u8>,
    /// Slot index the message used.
    pub slot: usize,
    /// Bus cycle of the first write of this message.
    pub first_bus_cycle: u64,
    /// Bus cycle of the write that completed it.
    pub completed_bus_cycle: u64,
    /// Wire-model arrival time at the peer.
    pub arrived_at: u64,
}

impl ReceivedMessage {
    /// Bus cycles from first write to wire arrival — the device-side
    /// component of end-to-end latency.
    pub fn device_latency(&self) -> u64 {
        self.arrived_at - self.first_bus_cycle
    }
}

/// NI counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NicStats {
    /// Messages assembled and launched.
    pub messages: u64,
    /// Payload bytes delivered.
    pub payload_bytes: u64,
    /// Frames torn by a new header overwriting an incomplete message.
    pub torn_frames: u64,
    /// Writes carrying data into a slot with no message in progress.
    pub stray_writes: u64,
    /// Header doublewords that failed magic validation.
    pub invalid_headers: u64,
}

#[derive(Debug, Clone)]
struct Pending {
    header: Header,
    buf: Vec<u8>,
    /// Coverage bitmap over the slot's payload bytes.
    got: Vec<bool>,
    first_bus_cycle: u64,
}

impl Pending {
    fn complete(&self) -> bool {
        self.got[..self.header.len as usize].iter().all(|&b| b)
    }
}

/// The NI device: feed it window writes, read back delivered messages.
///
/// See the crate-level docs and example.
#[derive(Debug, Clone)]
pub struct Nic {
    cfg: NicConfig,
    pending: Vec<Option<Pending>>,
    messages: Vec<ReceivedMessage>,
    stats: NicStats,
}

impl Nic {
    /// Creates an idle NI.
    ///
    /// # Errors
    ///
    /// Returns [`NicConfigError`] unless the slot size is a power of two of
    /// at least 16 bytes and there is at least one slot.
    pub fn new(cfg: NicConfig) -> Result<Self, NicConfigError> {
        if cfg.slot_size < 16 || !cfg.slot_size.is_power_of_two() || cfg.slots == 0 {
            return Err(NicConfigError {
                slot_size: cfg.slot_size,
                slots: cfg.slots,
            });
        }
        Ok(Nic {
            cfg,
            pending: vec![None; cfg.slots],
            messages: Vec::new(),
            stats: NicStats::default(),
        })
    }

    /// The NI configuration.
    pub fn config(&self) -> &NicConfig {
        &self.cfg
    }

    /// Counters.
    pub fn stats(&self) -> &NicStats {
        &self.stats
    }

    /// Messages delivered so far, in completion order.
    pub fn messages(&self) -> &[ReceivedMessage] {
        &self.messages
    }

    /// Consumes one bus write into the window. Writes crossing a slot
    /// boundary are split internally; bytes past the window are ignored.
    pub fn ingest(&mut self, w: &WindowWrite) {
        self.ingest_bytes(w.offset, &w.data, w.bus_cycle);
    }

    /// [`Nic::ingest`] without the owned buffer — the simulator's
    /// per-delivery hot path, which already holds the bytes.
    pub fn ingest_bytes(&mut self, offset: u64, data: &[u8], bus_cycle: u64) {
        let slot_size = self.cfg.slot_size as u64;
        let mut offset = offset;
        let mut data = data;
        while !data.is_empty() {
            let slot = (offset / slot_size) as usize;
            if slot >= self.cfg.slots {
                return; // past the window
            }
            let within = (offset % slot_size) as usize;
            let take = data.len().min(self.cfg.slot_size - within);
            self.ingest_in_slot(slot, within, &data[..take], bus_cycle);
            offset += take as u64;
            data = &data[take..];
        }
    }

    fn ingest_in_slot(&mut self, slot: usize, within: usize, data: &[u8], bus_cycle: u64) {
        // A write covering the slot's first doubleword may open a message.
        if within == 0 && data.len() >= 8 {
            let dword = u64::from_le_bytes(data[..8].try_into().expect("8 bytes checked"));
            match decode_header(dword) {
                Some(header) if (header.len as usize) <= max_payload(self.cfg.slot_size) => {
                    if self.pending[slot].as_ref().is_some_and(|p| !p.complete()) {
                        self.stats.torn_frames += 1;
                    }
                    self.pending[slot] = Some(Pending {
                        header,
                        buf: vec![0u8; max_payload(self.cfg.slot_size)],
                        got: vec![false; max_payload(self.cfg.slot_size)],
                        first_bus_cycle: bus_cycle,
                    });
                }
                _ => {
                    self.stats.invalid_headers += 1;
                    return;
                }
            }
        }
        let Some(p) = &mut self.pending[slot] else {
            self.stats.stray_writes += 1;
            return;
        };
        // Record payload coverage (slot bytes 8.. are payload).
        let start = within.max(8);
        let end = within + data.len();
        for b in start..end {
            let pay = b - 8;
            if pay < p.buf.len() {
                p.buf[pay] = data[b - within];
                p.got[pay] = true;
            }
        }
        if p.complete() {
            let p = self.pending[slot].take().expect("checked");
            let len = p.header.len as usize;
            let done = bus_cycle + self.cfg.process_cycles;
            let arrived_at = self.cfg.wire.arrival(done, len);
            self.stats.messages += 1;
            self.stats.payload_bytes += len as u64;
            self.messages.push(ReceivedMessage {
                sender: p.header.sender,
                seq: p.header.seq,
                payload: p.buf[..len].to_vec(),
                slot,
                first_bus_cycle: p.first_bus_cycle,
                completed_bus_cycle: bus_cycle,
                arrived_at,
            });
        }
    }

    /// Discards all in-flight assembly state, delivered messages, and
    /// counters, keeping the configuration (the warm-reset path).
    pub fn clear(&mut self) {
        for p in &mut self.pending {
            *p = None;
        }
        self.messages.clear();
        self.stats = NicStats::default();
    }

    /// Serializes the NI's mutable state: counters, per-slot in-flight
    /// assembly (header, partial payload, coverage bitmap), and the
    /// delivered-message log. The configuration is *not* serialized — the
    /// restoring side must construct the NI with the same [`NicConfig`].
    pub fn save_state(&self, w: &mut csb_snap::SnapshotWriter) {
        w.put_tag("nic");
        w.put_u64(self.stats.messages);
        w.put_u64(self.stats.payload_bytes);
        w.put_u64(self.stats.torn_frames);
        w.put_u64(self.stats.stray_writes);
        w.put_u64(self.stats.invalid_headers);
        w.put_usize(self.pending.len());
        for p in &self.pending {
            match p {
                None => w.put_bool(false),
                Some(p) => {
                    w.put_bool(true);
                    w.put_u64(encode_header(p.header.len, p.header.seq, p.header.sender));
                    w.put_bytes(&p.buf);
                    w.put_usize(p.got.len());
                    for &g in &p.got {
                        w.put_bool(g);
                    }
                    w.put_u64(p.first_bus_cycle);
                }
            }
        }
        w.put_usize(self.messages.len());
        for m in &self.messages {
            w.put_u64(u64::from(m.sender));
            w.put_u64(u64::from(m.seq));
            w.put_bytes(&m.payload);
            w.put_usize(m.slot);
            w.put_u64(m.first_bus_cycle);
            w.put_u64(m.completed_bus_cycle);
            w.put_u64(m.arrived_at);
        }
    }

    /// Restores state written by [`Nic::save_state`] into an NI constructed
    /// with the same configuration.
    ///
    /// # Errors
    ///
    /// Returns [`csb_snap::SnapshotError`] if the frame is truncated or its
    /// slot layout disagrees with this NI's configuration.
    pub fn restore_state(
        &mut self,
        r: &mut csb_snap::SnapshotReader<'_>,
    ) -> Result<(), csb_snap::SnapshotError> {
        r.take_tag("nic")?;
        self.stats.messages = r.take_u64()?;
        self.stats.payload_bytes = r.take_u64()?;
        self.stats.torn_frames = r.take_u64()?;
        self.stats.stray_writes = r.take_u64()?;
        self.stats.invalid_headers = r.take_u64()?;
        let slots = r.take_usize()?;
        if slots != self.cfg.slots {
            return Err(csb_snap::SnapshotError::Corrupt(format!(
                "NIC frame has {} slots, config has {}",
                slots, self.cfg.slots
            )));
        }
        let payload_cap = max_payload(self.cfg.slot_size);
        for slot in 0..slots {
            self.pending[slot] = if r.take_bool()? {
                let header = decode_header(r.take_u64()?).ok_or_else(|| {
                    csb_snap::SnapshotError::Corrupt("NIC pending header lost its magic".into())
                })?;
                let buf = r.take_bytes()?.to_vec();
                let got_len = r.take_usize()?;
                if buf.len() != payload_cap || got_len != payload_cap {
                    return Err(csb_snap::SnapshotError::Corrupt(format!(
                        "NIC pending buffers sized {}/{} bytes, slot carries {}",
                        buf.len(),
                        got_len,
                        payload_cap
                    )));
                }
                let mut got = vec![false; got_len];
                for g in &mut got {
                    *g = r.take_bool()?;
                }
                let first_bus_cycle = r.take_u64()?;
                Some(Pending {
                    header,
                    buf,
                    got,
                    first_bus_cycle,
                })
            } else {
                None
            };
        }
        self.messages.clear();
        let n = r.take_usize()?;
        for _ in 0..n {
            let sender = r.take_u64()? as u16;
            let seq = r.take_u64()? as u16;
            let payload = r.take_bytes()?.to_vec();
            let slot = r.take_usize()?;
            let first_bus_cycle = r.take_u64()?;
            let completed_bus_cycle = r.take_u64()?;
            let arrived_at = r.take_u64()?;
            self.messages.push(ReceivedMessage {
                sender,
                seq,
                payload,
                slot,
                first_bus_cycle,
                completed_bus_cycle,
                arrived_at,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_with(len: u16, seq: u16, sender: u16, fill: u8) -> Vec<u8> {
        let mut v = vec![0u8; 64];
        v[..8].copy_from_slice(&encode_header(len, seq, sender).to_le_bytes());
        for b in &mut v[8..8 + len as usize] {
            *b = fill;
        }
        v
    }

    #[test]
    fn header_round_trip() {
        let h = decode_header(encode_header(48, 3, 9)).unwrap();
        assert_eq!(
            h,
            Header {
                len: 48,
                seq: 3,
                sender: 9
            }
        );
        assert_eq!(decode_header(0), None);
        assert_eq!(decode_header(u64::MAX >> 16), None);
    }

    #[test]
    fn config_validation() {
        assert!(Nic::new(NicConfig {
            slot_size: 8,
            ..NicConfig::default()
        })
        .is_err());
        assert!(Nic::new(NicConfig {
            slot_size: 48,
            ..NicConfig::default()
        })
        .is_err());
        assert!(Nic::new(NicConfig {
            slots: 0,
            ..NicConfig::default()
        })
        .is_err());
        let e = Nic::new(NicConfig {
            slots: 0,
            ..NicConfig::default()
        })
        .unwrap_err();
        assert!(!e.to_string().is_empty());
    }

    #[test]
    fn burst_message_completes_immediately() {
        let mut nic = Nic::new(NicConfig::default()).unwrap();
        nic.ingest(&WindowWrite {
            offset: 64,
            data: line_with(24, 5, 2, 0x77),
            bus_cycle: 40,
        });
        assert_eq!(nic.messages().len(), 1);
        let m = &nic.messages()[0];
        assert_eq!((m.sender, m.seq, m.slot), (2, 5, 1));
        assert_eq!(m.payload, vec![0x77; 24]);
        assert_eq!(m.first_bus_cycle, 40);
        assert_eq!(m.completed_bus_cycle, 40);
        // 40 + 4 process + 20 wire + 3 dwords serialization.
        assert_eq!(m.arrived_at, 67);
        assert_eq!(m.device_latency(), 27);
    }

    #[test]
    fn dribbled_message_completes_on_last_byte() {
        let mut nic = Nic::new(NicConfig::default()).unwrap();
        let line = line_with(16, 1, 1, 0x55);
        // Header first (single beat), then payload dwords out of order.
        nic.ingest(&WindowWrite {
            offset: 0,
            data: line[..8].to_vec(),
            bus_cycle: 10,
        });
        assert!(nic.messages().is_empty());
        nic.ingest(&WindowWrite {
            offset: 16,
            data: line[16..24].to_vec(),
            bus_cycle: 12,
        });
        assert!(nic.messages().is_empty());
        nic.ingest(&WindowWrite {
            offset: 8,
            data: line[8..16].to_vec(),
            bus_cycle: 14,
        });
        assert_eq!(nic.messages().len(), 1);
        let m = &nic.messages()[0];
        assert_eq!(m.payload, vec![0x55; 16]);
        assert_eq!(m.first_bus_cycle, 10);
        assert_eq!(m.completed_bus_cycle, 14);
    }

    #[test]
    fn torn_frame_detected() {
        let mut nic = Nic::new(NicConfig::default()).unwrap();
        // Message A: header + half its payload...
        let a = line_with(16, 1, 1, 0xaa);
        nic.ingest(&WindowWrite {
            offset: 0,
            data: a[..8].to_vec(),
            bus_cycle: 10,
        });
        nic.ingest(&WindowWrite {
            offset: 8,
            data: a[8..16].to_vec(),
            bus_cycle: 11,
        });
        // ...then message B's header lands in the same slot.
        let b = line_with(8, 2, 2, 0xbb);
        nic.ingest(&WindowWrite {
            offset: 0,
            data: b[..8].to_vec(),
            bus_cycle: 20,
        });
        nic.ingest(&WindowWrite {
            offset: 8,
            data: b[8..16].to_vec(),
            bus_cycle: 21,
        });
        assert_eq!(nic.stats().torn_frames, 1);
        assert_eq!(nic.messages().len(), 1);
        assert_eq!(nic.messages()[0].sender, 2);
    }

    #[test]
    fn stray_and_invalid_writes_counted() {
        let mut nic = Nic::new(NicConfig::default()).unwrap();
        // Payload with no header in progress.
        nic.ingest(&WindowWrite {
            offset: 8,
            data: vec![1; 8],
            bus_cycle: 0,
        });
        assert_eq!(nic.stats().stray_writes, 1);
        // Slot-start write without the magic.
        nic.ingest(&WindowWrite {
            offset: 0,
            data: vec![0; 64],
            bus_cycle: 1,
        });
        assert_eq!(nic.stats().invalid_headers, 1);
        // Oversized declared length is rejected as invalid.
        let mut big = vec![0u8; 64];
        big[..8].copy_from_slice(&encode_header(60, 0, 0).to_le_bytes());
        nic.ingest(&WindowWrite {
            offset: 0,
            data: big,
            bus_cycle: 2,
        });
        assert_eq!(nic.stats().invalid_headers, 2);
        assert!(nic.messages().is_empty());
    }

    #[test]
    fn writes_crossing_slots_split() {
        let mut nic = Nic::new(NicConfig::default()).unwrap();
        // Two back-to-back slot bursts delivered as one 128-byte write.
        let mut data = line_with(8, 1, 1, 0x11);
        data.extend(line_with(8, 2, 1, 0x22));
        nic.ingest(&WindowWrite {
            offset: 0,
            data,
            bus_cycle: 5,
        });
        assert_eq!(nic.messages().len(), 2);
        assert_eq!(nic.messages()[0].payload, vec![0x11; 8]);
        assert_eq!(nic.messages()[1].payload, vec![0x22; 8]);
    }

    #[test]
    fn writes_past_window_ignored() {
        let mut nic = Nic::new(NicConfig {
            slots: 1,
            ..NicConfig::default()
        })
        .unwrap();
        nic.ingest(&WindowWrite {
            offset: 64,
            data: line_with(8, 1, 1, 0x33),
            bus_cycle: 0,
        });
        assert!(nic.messages().is_empty());
        assert_eq!(nic.stats().stray_writes, 0);
    }

    #[test]
    fn zero_length_message_is_a_pure_doorbell() {
        // A single 8-byte store as a doorbell, like Atoll's single-word DMA
        // launch: len = 0 completes instantly.
        let mut nic = Nic::new(NicConfig::default()).unwrap();
        nic.ingest(&WindowWrite {
            offset: 0,
            data: encode_header(0, 9, 4).to_le_bytes().to_vec(),
            bus_cycle: 33,
        });
        assert_eq!(nic.messages().len(), 1);
        assert!(nic.messages()[0].payload.is_empty());
        assert_eq!(nic.messages()[0].seq, 9);
    }

    #[test]
    fn wire_model_arrival() {
        let w = WireModel {
            latency: 10,
            cycles_per_dword: 2,
        };
        assert_eq!(w.arrival(100, 0), 110);
        assert_eq!(w.arrival(100, 8), 112);
        assert_eq!(w.arrival(100, 17), 116); // 3 dwords
    }

    #[test]
    fn partial_write_then_new_header_tears() {
        // A burst that covers the header but only part of the payload,
        // followed immediately by the next message's full burst: the
        // incomplete frame is torn, the complete one delivers.
        let mut nic = Nic::new(NicConfig::default()).unwrap();
        let a = line_with(32, 1, 1, 0xaa);
        nic.ingest(&WindowWrite {
            offset: 0,
            data: a[..24].to_vec(), // header + 16 of 32 payload bytes
            bus_cycle: 10,
        });
        assert!(nic.messages().is_empty());
        nic.ingest(&WindowWrite {
            offset: 0,
            data: line_with(8, 2, 1, 0xbb),
            bus_cycle: 20,
        });
        assert_eq!(nic.stats().torn_frames, 1);
        assert_eq!(nic.messages().len(), 1);
        assert_eq!(nic.messages()[0].seq, 2);
    }

    #[test]
    fn interleaved_slots_assemble_independently() {
        // Two senders dribbling into different slots concurrently: no
        // tearing, both messages complete with their own timestamps.
        let mut nic = Nic::new(NicConfig::default()).unwrap();
        let a = line_with(8, 1, 1, 0x11);
        let b = line_with(8, 7, 2, 0x22);
        nic.ingest(&WindowWrite {
            offset: 0,
            data: a[..8].to_vec(),
            bus_cycle: 10,
        });
        nic.ingest(&WindowWrite {
            offset: 64,
            data: b[..8].to_vec(),
            bus_cycle: 11,
        });
        nic.ingest(&WindowWrite {
            offset: 64 + 8,
            data: b[8..16].to_vec(),
            bus_cycle: 12,
        });
        nic.ingest(&WindowWrite {
            offset: 8,
            data: a[8..16].to_vec(),
            bus_cycle: 13,
        });
        assert_eq!(nic.stats().torn_frames, 0);
        assert_eq!(nic.messages().len(), 2);
        assert_eq!(nic.messages()[0].sender, 2);
        assert_eq!(nic.messages()[0].first_bus_cycle, 11);
        assert_eq!(nic.messages()[1].sender, 1);
        assert_eq!(nic.messages()[1].first_bus_cycle, 10);
    }

    #[test]
    fn save_restore_round_trips_mid_assembly() {
        let cfg = NicConfig::default();
        let mut nic = Nic::new(cfg).unwrap();
        // One delivered message, one in-flight half-assembled frame.
        nic.ingest(&WindowWrite {
            offset: 0,
            data: line_with(16, 1, 3, 0x44),
            bus_cycle: 5,
        });
        let partial = line_with(24, 2, 3, 0x55);
        nic.ingest(&WindowWrite {
            offset: 64,
            data: partial[..16].to_vec(),
            bus_cycle: 9,
        });
        let mut w = csb_snap::SnapshotWriter::new();
        nic.save_state(&mut w);
        let bytes = w.finish();

        let mut restored = Nic::new(cfg).unwrap();
        let mut r = csb_snap::SnapshotReader::new(&bytes);
        restored.restore_state(&mut r).unwrap();
        assert_eq!(restored.stats(), nic.stats());
        assert_eq!(restored.messages(), nic.messages());
        // Completing the in-flight frame behaves identically on both sides.
        for n in [&mut nic, &mut restored] {
            n.ingest(&WindowWrite {
                offset: 64 + 16,
                data: partial[16..32].to_vec(),
                bus_cycle: 30,
            });
        }
        assert_eq!(restored.messages(), nic.messages());
        assert_eq!(nic.messages().len(), 2);
    }

    #[test]
    fn restore_rejects_mismatched_slot_count() {
        let mut nic = Nic::new(NicConfig::default()).unwrap();
        let mut w = csb_snap::SnapshotWriter::new();
        nic.save_state(&mut w);
        let bytes = w.finish();
        let mut other = Nic::new(NicConfig {
            slots: 8,
            ..NicConfig::default()
        })
        .unwrap();
        let mut r = csb_snap::SnapshotReader::new(&bytes);
        assert!(other.restore_state(&mut r).is_err());
        // The original still restores cleanly.
        let mut r = csb_snap::SnapshotReader::new(&bytes);
        nic.restore_state(&mut r).unwrap();
        let _checksum = r.take_u64().unwrap();
        r.expect_end("nic frame").unwrap();
    }

    #[test]
    fn clear_resets_everything_but_config() {
        let mut nic = Nic::new(NicConfig::default()).unwrap();
        nic.ingest(&WindowWrite {
            offset: 0,
            data: line_with(8, 1, 1, 0x66),
            bus_cycle: 1,
        });
        let partial = line_with(24, 2, 1, 0x77);
        nic.ingest(&WindowWrite {
            offset: 64,
            data: partial[..16].to_vec(),
            bus_cycle: 2,
        });
        nic.clear();
        assert_eq!(nic.stats(), &NicStats::default());
        assert!(nic.messages().is_empty());
        // The half-built frame in slot 1 is gone: its payload is now stray.
        nic.ingest(&WindowWrite {
            offset: 64 + 16,
            data: partial[16..24].to_vec(),
            bus_cycle: 3,
        });
        assert_eq!(nic.stats().stray_writes, 1);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn header_encode_decode_round_trip(len in any::<u16>(), seq in any::<u16>(), sender in any::<u16>()) {
                let h = decode_header(encode_header(len, seq, sender)).unwrap();
                prop_assert_eq!(h, Header { len, seq, sender });
            }

            #[test]
            fn malformed_dwords_rejected(dword in any::<u64>()) {
                let decoded = decode_header(dword);
                if (dword >> 48) as u16 == HEADER_MAGIC {
                    prop_assert!(decoded.is_some());
                } else {
                    prop_assert_eq!(decoded, None);
                }
            }

            #[test]
            fn arrival_is_monotone(
                latency in 0u64..1_000_000,
                cpd in 0u64..1_000,
                done_a in 0u64..1_000_000_000,
                done_step in 0u64..1_000_000,
                len_a in 0usize..100_000,
                len_step in 0usize..10_000,
            ) {
                let w = WireModel { latency, cycles_per_dword: cpd };
                // Never earlier than completion, monotone in both arguments.
                prop_assert!(w.arrival(done_a, len_a) >= done_a + latency);
                prop_assert!(w.arrival(done_a + done_step, len_a) >= w.arrival(done_a, len_a));
                prop_assert!(w.arrival(done_a, len_a + len_step) >= w.arrival(done_a, len_a));
            }

            #[test]
            fn snapshot_round_trips_random_write_streams(
                writes in proptest::collection::vec(
                    (0u64..2048, proptest::collection::vec(any::<u8>(), 1..96), 0u64..10_000),
                    0..24,
                ),
            ) {
                let cfg = NicConfig::default();
                let mut nic = Nic::new(cfg).unwrap();
                for (offset, data, bus_cycle) in &writes {
                    nic.ingest(&WindowWrite {
                        offset: *offset,
                        data: data.clone(),
                        bus_cycle: *bus_cycle,
                    });
                }
                let mut w = csb_snap::SnapshotWriter::new();
                nic.save_state(&mut w);
                let bytes = w.finish();
                let mut restored = Nic::new(cfg).unwrap();
                let mut r = csb_snap::SnapshotReader::new(&bytes);
                restored.restore_state(&mut r).unwrap();
                let _checksum = r.take_u64().unwrap();
                r.expect_end("nic frame").unwrap();
                prop_assert_eq!(restored.stats(), nic.stats());
                prop_assert_eq!(restored.messages(), nic.messages());
                // And the restored frame re-serializes byte-identically.
                let mut w2 = csb_snap::SnapshotWriter::new();
                restored.save_state(&mut w2);
                prop_assert_eq!(w2.finish(), bytes);
            }
        }
    }
}
