//! Unified cycle-stamped tracing and metrics for the CSB simulator.
//!
//! The paper's argument lives in cycle-level interleavings — who owned the
//! bus when, how long a conditional flush optimistically retried, where
//! retirement stalled. This crate gives every simulation component one
//! shared, zero-cost-when-disabled way to record that evidence:
//!
//! * [`TraceSink`] — a cloneable handle into one stream of cycle-stamped
//!   structured [`TraceEvent`]s. Components hold a (possibly disabled)
//!   handle and call [`TraceSink::emit`]; a disabled handle is a single
//!   `Option` check, no allocation, no formatting.
//! * [`MetricsRegistry`] — named counters and log2-bucketed [`Histogram`]s
//!   (flush retry latency, store→flush gaps, burst sizes, stall runs),
//!   snapshotted into a serializable [`MetricsSnapshot`].
//! * [`chrome_trace_json`] — exports a recorded event stream as Chrome
//!   trace-event JSON, loadable directly in `ui.perfetto.dev`, with one
//!   track per agent (CPU pipeline, CSB, uncached buffer, bus master,
//!   foreign traffic).
//! * [`Timeline`] — a fixed-capacity ring of per-window activity counters
//!   (bus occupancy, flush outcomes, faults, retirement), fed identically
//!   by the naive loop and the fast-forward walk and exported as the
//!   `timeline` section of [`MetricsSnapshot`].
//! * [`LedgerRecord`] / [`diff_ledgers`] — the append-only JSONL perf
//!   ledger bench binaries write one record per point into, and the diff
//!   that flags cycle-count or flush-latency regressions between runs.
//!
//! Time is always the **CPU cycle** clock (one trace microsecond per CPU
//! cycle in the export). Components clocked in bus cycles attach through
//! [`TraceSink::scaled`], which rescales their timestamps onto the shared
//! timeline at emission.
//!
//! # Examples
//!
//! ```
//! use csb_obs::{chrome_trace_json, EventKind, TraceSink, Track};
//!
//! let sink = TraceSink::enabled();
//! sink.set_now(12);
//! sink.emit(Track::Cpu, EventKind::Retire { pc: 3, inst: "std".into() });
//!
//! // A bus-clocked component (ratio 6) stamps in bus cycles:
//! let bus_sink = sink.scaled(6);
//! bus_sink.emit_span(2, 9, Track::Bus, EventKind::BusTxn {
//!     addr: 0x2000_0000, size: 64, payload: 64, write: true, tag: 0,
//! });
//!
//! let events = sink.snapshot();
//! assert_eq!(events.len(), 2);
//! assert_eq!(events[1].cycle, 12); // 2 bus cycles × 6
//! let json = chrome_trace_json(&events);
//! assert!(json.contains("\"traceEvents\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chrome;
mod event;
mod ledger;
mod metrics;
mod sink;
mod timeline;

pub use chrome::chrome_trace_json;
pub use event::{EventKind, TraceEvent, Track};
pub use ledger::{
    diff_ledgers, hash_config, parse_ledger, parse_record, LedgerDiff, LedgerRecord,
    LedgerRegression,
};
pub use metrics::{BucketCount, Histogram, HistogramSummary, MetricsRegistry, MetricsSnapshot};
pub use sink::TraceSink;
pub use timeline::{
    Timeline, TimelineEvent, TimelineSnapshot, WindowStats, TIMELINE_BASE_WINDOW, TIMELINE_WINDOWS,
};
