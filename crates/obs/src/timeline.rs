//! Windowed time-series metrics: a fixed-capacity timeline of per-window
//! activity counters fed identically by the naive loop and the
//! fast-forward walk.
//!
//! A [`Timeline`] divides the run into windows of `window_cycles` CPU
//! cycles and accumulates one [`WindowStats`] per window (bus occupancy,
//! flush outcomes, fault counts, retirement rate). The capacity is fixed:
//! when a run outgrows it, the window size doubles and adjacent windows
//! are compacted pairwise in place, so arbitrarily long runs fit in
//! bounded memory, per-window resolution degrades gracefully, and the
//! *sums* across windows stay exact at every resolution — the invariant
//! the timeline's consumers (over-time curves at gigacycle scale) rely
//! on, and the one the test suite pins against the totals counters.

use serde::Serialize;

/// Fixed number of windows a [`Timeline`] holds before coarsening.
pub const TIMELINE_WINDOWS: usize = 64;

/// Initial window width in CPU cycles.
pub const TIMELINE_BASE_WINDOW: u64 = 4096;

/// Activity accumulated over one timeline window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct WindowStats {
    /// Bus transactions issued (accepted) in the window.
    pub bus_txns: u64,
    /// CPU cycles of bus occupancy attributed to the window (each
    /// transaction's full duration is attributed to its issue window).
    pub bus_busy_cycles: u64,
    /// Payload bytes carried by transactions issued in the window.
    pub bus_payload_bytes: u64,
    /// Conditional flushes that committed in the window.
    pub flush_successes: u64,
    /// Conditional flushes that failed (disturbed) in the window.
    pub flush_failures: u64,
    /// Injected faults observed in the window (bus errors, device NACKs,
    /// flush disturbs).
    pub faults: u64,
    /// Instructions retired in the window.
    pub retired: u64,
}

impl WindowStats {
    fn add(&mut self, other: &WindowStats) {
        self.bus_txns += other.bus_txns;
        self.bus_busy_cycles += other.bus_busy_cycles;
        self.bus_payload_bytes += other.bus_payload_bytes;
        self.flush_successes += other.flush_successes;
        self.flush_failures += other.flush_failures;
        self.faults += other.faults;
        self.retired += other.retired;
    }

    fn is_zero(&self) -> bool {
        *self == WindowStats::default()
    }
}

/// One timeline sample: what happened, to be accumulated into the window
/// covering the cycle it happened at.
#[derive(Debug, Clone, Copy)]
pub enum TimelineEvent {
    /// A bus transaction was accepted: `busy_cycles` of occupancy (CPU
    /// cycles) carrying `payload` bytes.
    BusTxn {
        /// Transaction duration in CPU cycles.
        busy_cycles: u64,
        /// Payload bytes carried.
        payload: u64,
    },
    /// A conditional flush committed.
    FlushSuccess,
    /// A conditional flush failed (line disturbed mid-flush).
    FlushFailure,
    /// An injected fault fired (bus error, device NACK, or flush disturb).
    Fault,
    /// An instruction retired.
    Retired,
}

/// The adaptive-resolution window ring described in the module docs.
#[derive(Debug, Clone)]
pub struct Timeline {
    window_cycles: u64,
    windows: Vec<WindowStats>,
}

impl Default for Timeline {
    fn default() -> Self {
        Timeline {
            window_cycles: TIMELINE_BASE_WINDOW,
            windows: Vec::new(),
        }
    }
}

impl Timeline {
    /// Current window width in CPU cycles.
    pub fn window_cycles(&self) -> u64 {
        self.window_cycles
    }

    /// Accumulates `event` into the window covering `cycle`, coarsening
    /// first if `cycle` lies beyond the fixed capacity.
    pub fn record(&mut self, cycle: u64, event: TimelineEvent) {
        while cycle / self.window_cycles >= TIMELINE_WINDOWS as u64 {
            self.coarsen();
        }
        let idx = (cycle / self.window_cycles) as usize;
        if self.windows.len() <= idx {
            self.windows.resize(idx + 1, WindowStats::default());
        }
        let w = &mut self.windows[idx];
        match event {
            TimelineEvent::BusTxn {
                busy_cycles,
                payload,
            } => {
                w.bus_txns += 1;
                w.bus_busy_cycles += busy_cycles;
                w.bus_payload_bytes += payload;
            }
            TimelineEvent::FlushSuccess => w.flush_successes += 1,
            TimelineEvent::FlushFailure => w.flush_failures += 1,
            TimelineEvent::Fault => w.faults += 1,
            TimelineEvent::Retired => w.retired += 1,
        }
    }

    /// Doubles the window width, folding adjacent window pairs together.
    /// Sums across windows are preserved exactly.
    fn coarsen(&mut self) {
        let pairs = self.windows.len().div_ceil(2);
        for i in 0..pairs {
            let mut merged = self.windows[2 * i];
            if let Some(odd) = self.windows.get(2 * i + 1) {
                merged.add(odd);
            }
            self.windows[i] = merged;
        }
        self.windows.truncate(pairs);
        self.window_cycles *= 2;
    }

    /// A serializable copy of the timeline. Trailing all-zero windows are
    /// kept (they are real quiet windows); an unfed timeline snapshots to
    /// an empty window list.
    pub fn snapshot(&self) -> TimelineSnapshot {
        TimelineSnapshot {
            window_cycles: self.window_cycles,
            windows: self.windows.clone(),
        }
    }
}

/// Serializable form of a [`Timeline`] — the `timeline` section of the
/// metrics JSON artifact.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct TimelineSnapshot {
    /// Window width in CPU cycles.
    pub window_cycles: u64,
    /// Per-window activity, window 0 covering cycles
    /// `[0, window_cycles)`.
    pub windows: Vec<WindowStats>,
}

impl Default for TimelineSnapshot {
    fn default() -> Self {
        TimelineSnapshot {
            window_cycles: TIMELINE_BASE_WINDOW,
            windows: Vec::new(),
        }
    }
}

impl TimelineSnapshot {
    /// `true` if no activity was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.windows.iter().all(WindowStats::is_zero)
    }

    /// Sums every window into one [`WindowStats`] — by construction equal
    /// to the run totals at any resolution.
    pub fn totals(&self) -> WindowStats {
        let mut t = WindowStats::default();
        for w in &self.windows {
            t.add(w);
        }
        t
    }

    /// Folds another timeline into this one: the finer side is coarsened
    /// to the wider window width, then windows add elementwise. Used when
    /// sweep points merge into one run-level profile.
    pub fn merge(&mut self, other: &TimelineSnapshot) {
        let mut other = other.clone();
        while self.window_cycles < other.window_cycles {
            self.coarsen_snapshot();
        }
        while other.window_cycles < self.window_cycles {
            other.coarsen_snapshot();
        }
        if self.windows.len() < other.windows.len() {
            self.windows
                .resize(other.windows.len(), WindowStats::default());
        }
        for (a, b) in self.windows.iter_mut().zip(other.windows.iter()) {
            a.add(b);
        }
    }

    fn coarsen_snapshot(&mut self) {
        let pairs = self.windows.len().div_ceil(2);
        for i in 0..pairs {
            let mut merged = self.windows[2 * i];
            if let Some(odd) = self.windows.get(2 * i + 1) {
                merged.add(odd);
            }
            self.windows[i] = merged;
        }
        self.windows.truncate(pairs);
        self.window_cycles *= 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_the_covering_window() {
        let mut t = Timeline::default();
        t.record(0, TimelineEvent::Retired);
        t.record(TIMELINE_BASE_WINDOW - 1, TimelineEvent::Retired);
        t.record(TIMELINE_BASE_WINDOW, TimelineEvent::FlushSuccess);
        let s = t.snapshot();
        assert_eq!(s.window_cycles, TIMELINE_BASE_WINDOW);
        assert_eq!(s.windows.len(), 2);
        assert_eq!(s.windows[0].retired, 2);
        assert_eq!(s.windows[1].flush_successes, 1);
    }

    #[test]
    fn coarsening_preserves_totals_exactly() {
        let mut t = Timeline::default();
        // Spread activity far enough to force several coarsenings.
        for i in 0..1000u64 {
            t.record(
                i * 997,
                TimelineEvent::BusTxn {
                    busy_cycles: 48,
                    payload: 64,
                },
            );
            t.record(i * 997, TimelineEvent::Retired);
        }
        // Jump three orders of magnitude past the base capacity.
        t.record(
            TIMELINE_BASE_WINDOW * TIMELINE_WINDOWS as u64 * 1000,
            TimelineEvent::Fault,
        );
        let s = t.snapshot();
        assert!(s.windows.len() <= TIMELINE_WINDOWS);
        assert!(s.window_cycles > TIMELINE_BASE_WINDOW);
        let totals = s.totals();
        assert_eq!(totals.bus_txns, 1000);
        assert_eq!(totals.bus_busy_cycles, 48_000);
        assert_eq!(totals.bus_payload_bytes, 64_000);
        assert_eq!(totals.retired, 1000);
        assert_eq!(totals.faults, 1);
    }

    #[test]
    fn merge_coarsens_to_the_wider_window() {
        let mut fine = Timeline::default();
        fine.record(0, TimelineEvent::Retired);
        fine.record(TIMELINE_BASE_WINDOW * 3, TimelineEvent::FlushFailure);
        let mut coarse = Timeline::default();
        coarse.record(
            TIMELINE_BASE_WINDOW * TIMELINE_WINDOWS as u64 * 2,
            TimelineEvent::Fault,
        );
        let mut merged = fine.snapshot();
        let coarse_snap = coarse.snapshot();
        merged.merge(&coarse_snap);
        assert_eq!(merged.window_cycles, coarse_snap.window_cycles);
        let totals = merged.totals();
        assert_eq!(totals.retired, 1);
        assert_eq!(totals.flush_failures, 1);
        assert_eq!(totals.faults, 1);
        // Symmetric direction: coarse absorbs fine.
        let mut merged2 = coarse.snapshot();
        merged2.merge(&fine.snapshot());
        assert_eq!(merged2, merged);
    }

    #[test]
    fn unfed_timeline_is_empty() {
        let t = Timeline::default();
        assert!(t.snapshot().is_empty());
        assert_eq!(t.snapshot().totals(), WindowStats::default());
    }
}
