//! Counters and log2-bucketed histograms.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use serde::Serialize;

use crate::timeline::{Timeline, TimelineEvent, TimelineSnapshot};

/// Number of histogram buckets: one for zero plus one per power of two.
const BUCKETS: usize = 65;

/// Inclusive upper bound of bucket `i`: 0, then `2^i − 1`.
fn bucket_upper(i: usize) -> u64 {
    match i {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

/// A log2-bucketed latency/size histogram with exact count, sum, min, and
/// max. Bucket 0 holds zeros; bucket `i ≥ 1` holds `[2^(i−1), 2^i)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// The bucket index `value` falls into.
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Upper-bound estimate of the `q`-quantile (`0.0..=1.0`): the bucket
    /// boundary at or above the ranked observation, clamped to the exact
    /// maximum. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// A serializable summary (p50/p95/p99 are bucket upper-bound
    /// estimates).
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            min: self.min(),
            max: self.max,
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter(|&(_, &n)| n > 0)
                .map(|(i, &n)| BucketCount {
                    le: bucket_upper(i),
                    n,
                })
                .collect(),
        }
    }
}

/// One non-empty histogram bucket: `n` observations `≤ le` (and above the
/// previous bucket's bound).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct BucketCount {
    /// Inclusive upper bound of the bucket.
    pub le: u64,
    /// Observations in the bucket.
    pub n: u64,
}

/// Serializable summary of one [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct HistogramSummary {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (exact).
    pub max: u64,
    /// Median, as a bucket upper-bound estimate clamped to `max`.
    pub p50: u64,
    /// 95th percentile, as a bucket upper-bound estimate clamped to `max`.
    pub p95: u64,
    /// 99th percentile, as a bucket upper-bound estimate clamped to `max`.
    pub p99: u64,
    /// 99.9th percentile, as a bucket upper-bound estimate clamped to
    /// `max` — the deep tail the many-core contention sweep reports.
    pub p999: u64,
    /// The non-empty buckets, in ascending `le` order.
    pub buckets: Vec<BucketCount>,
}

impl HistogramSummary {
    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Folds another summary into this one. The raw bucket counts are
    /// merged key-by-key on their exact `le` bounds — never re-bucketed
    /// through [`Histogram::bucket_index`], which would reinterpret the
    /// upper-bound *estimates* as observations — and the quantile
    /// estimates are re-derived from the merged counts, so
    /// `merge(a, b)` equals the summary of the union histogram exactly.
    pub fn merge(&mut self, other: &HistogramSummary) {
        let mut merged: Vec<BucketCount> =
            Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut i, mut j) = (0, 0);
        while i < self.buckets.len() || j < other.buckets.len() {
            let next = match (self.buckets.get(i), other.buckets.get(j)) {
                (Some(a), Some(b)) if a.le == b.le => {
                    i += 1;
                    j += 1;
                    BucketCount {
                        le: a.le,
                        n: a.n + b.n,
                    }
                }
                (Some(a), Some(b)) if a.le < b.le => {
                    i += 1;
                    *a
                }
                (Some(_), Some(b)) => {
                    j += 1;
                    *b
                }
                (Some(a), None) => {
                    i += 1;
                    *a
                }
                (None, Some(b)) => {
                    j += 1;
                    *b
                }
                (None, None) => unreachable!("loop condition guarantees a bucket remains"),
            };
            merged.push(next);
        }
        self.min = match (self.count, other.count) {
            (0, _) => other.min,
            (_, 0) => self.min,
            _ => self.min.min(other.min),
        };
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
        self.p50 = bucket_quantile(&merged, self.count, self.max, 0.50);
        self.p95 = bucket_quantile(&merged, self.count, self.max, 0.95);
        self.p99 = bucket_quantile(&merged, self.count, self.max, 0.99);
        self.p999 = bucket_quantile(&merged, self.count, self.max, 0.999);
        self.buckets = merged;
    }
}

/// The `q`-quantile upper-bound estimate over an ascending bucket list —
/// the same ranked walk as [`Histogram::quantile`], applied to merged
/// [`BucketCount`]s.
fn bucket_quantile(buckets: &[BucketCount], count: u64, max: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
    let mut seen = 0u64;
    for b in buckets {
        seen += b.n;
        if seen >= rank {
            return b.le.min(max);
        }
    }
    max
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
    timeline: Timeline,
}

/// A cloneable handle into one shared set of named counters and
/// histograms. Like [`crate::TraceSink`], the default handle is disabled
/// and every call on it costs one branch.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Option<Rc<RefCell<Inner>>>,
}

impl MetricsRegistry {
    /// A disabled handle: every update is a no-op.
    pub fn disabled() -> Self {
        MetricsRegistry { inner: None }
    }

    /// A new, enabled, empty registry.
    pub fn enabled() -> Self {
        MetricsRegistry {
            inner: Some(Rc::new(RefCell::new(Inner::default()))),
        }
    }

    /// `true` if updates through this handle are recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Increments the named counter by 1.
    #[inline]
    pub fn inc(&self, name: &'static str) {
        self.add(name, 1);
    }

    /// Adds `n` to the named counter.
    #[inline]
    pub fn add(&self, name: &'static str, n: u64) {
        if let Some(i) = &self.inner {
            *i.borrow_mut().counters.entry(name).or_insert(0) += n;
        }
    }

    /// Records one observation into the named histogram.
    #[inline]
    pub fn observe(&self, name: &'static str, value: u64) {
        if let Some(i) = &self.inner {
            i.borrow_mut()
                .histograms
                .entry(name)
                .or_default()
                .observe(value);
        }
    }

    /// Accumulates `event` into the registry's windowed timeline at
    /// `cycle` (CPU cycles). Both simulation loops call this from the
    /// same component sites, so fast-forward and naive runs build
    /// identical timelines by construction.
    #[inline]
    pub fn timeline_mark(&self, cycle: u64, event: TimelineEvent) {
        if let Some(i) = &self.inner {
            i.borrow_mut().timeline.record(cycle, event);
        }
    }

    /// The named counter's current value (0 if absent or disabled).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.borrow().counters.get(name).copied().unwrap_or(0))
    }

    /// A copy of the named histogram, if it has been observed into.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.inner
            .as_ref()
            .and_then(|i| i.borrow().histograms.get(name).cloned())
    }

    /// A serializable snapshot of every counter and histogram.
    pub fn snapshot(&self) -> MetricsSnapshot {
        match &self.inner {
            None => MetricsSnapshot::default(),
            Some(i) => {
                let inner = i.borrow();
                MetricsSnapshot {
                    counters: inner
                        .counters
                        .iter()
                        .map(|(&k, &v)| (k.to_string(), v))
                        .collect(),
                    histograms: inner
                        .histograms
                        .iter()
                        .map(|(&k, h)| (k.to_string(), h.summary()))
                        .collect(),
                    timeline: inner.timeline.snapshot(),
                }
            }
        }
    }
}

/// A point-in-time snapshot of a [`MetricsRegistry`], mergeable across
/// simulation points and serializable into the metrics JSON artifact.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Windowed over-time activity profile.
    pub timeline: TimelineSnapshot,
}

impl MetricsSnapshot {
    /// `true` if the snapshot holds no counters, no histograms, and no
    /// timeline activity.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty() && self.timeline.is_empty()
    }

    /// Folds another snapshot into this one: counters add, histograms
    /// merge bucket-wise with re-derived quantile estimates, and the
    /// timelines fold at the wider window width.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(k.clone(), h.clone());
                }
            }
        }
        self.timeline.merge(&other.timeline);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        // Bucket 0 = {0}; bucket i ≥ 1 = [2^(i−1), 2^i).
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(7), 3);
        assert_eq!(Histogram::bucket_index(8), 4);
        for i in 1..=63usize {
            let lo = 1u64 << (i - 1);
            assert_eq!(Histogram::bucket_index(lo), i, "lower edge of bucket {i}");
            let hi = (1u64 << i) - 1;
            assert_eq!(Histogram::bucket_index(hi), i, "upper edge of bucket {i}");
        }
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(4), 15);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn histogram_stats_and_quantiles() {
        let mut h = Histogram::default();
        for v in [0, 0, 1, 3, 6, 6, 6, 40] {
            h.observe(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 62);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 40);
        // Rank ceil(0.5×8)=4 lands in bucket [2,3] → upper bound 3.
        assert_eq!(h.quantile(0.50), 3);
        // Rank 8 is the max observation; clamped to the exact max.
        assert_eq!(h.quantile(0.95), 40);
        assert_eq!(h.quantile(1.0), 40);
        assert_eq!(h.quantile(0.0), 0);
    }

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
        let s = h.summary();
        assert_eq!(s.min, 0);
        assert!(s.buckets.is_empty());
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn all_zero_observations_stay_zero() {
        let mut h = Histogram::default();
        for _ in 0..5 {
            h.observe(0);
        }
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(0.95), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.summary().buckets, vec![BucketCount { le: 0, n: 5 }]);
    }

    #[test]
    fn merge_matches_combined_observations() {
        let (mut a, mut b, mut both) = (
            Histogram::default(),
            Histogram::default(),
            Histogram::default(),
        );
        for v in [1u64, 5, 9] {
            a.observe(v);
            both.observe(v);
        }
        for v in [0u64, 100, 3] {
            b.observe(v);
            both.observe(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
        // Summary-level merge agrees on every derived statistic.
        let mut sa = Histogram::default();
        for v in [1u64, 5, 9] {
            sa.observe(v);
        }
        let mut sb = Histogram::default();
        for v in [0u64, 100, 3] {
            sb.observe(v);
        }
        let mut s = sa.summary();
        s.merge(&sb.summary());
        assert_eq!(s, both.summary());
    }

    #[test]
    fn summary_merge_equals_histogram_of_union() {
        // Pin merge(a, b) == summary of the union histogram on every
        // derived field — p50/p95/p99 included — across skewed splits,
        // zero-heavy sets, an empty side, and cross-bucket spreads.
        let cases: [(&[u64], &[u64]); 5] = [
            (&[1, 5, 9], &[0, 100, 3]),
            (&[0, 0, 0, 0], &[1]),
            (&[], &[7, 7, 7, 1 << 40]),
            (&[2; 99], &[1 << 20]),
            (&[1, 2, 4, 8, 16, 32, 64, 128], &[3, 5, 1000, u64::MAX]),
        ];
        for (xs, ys) in cases {
            let (mut a, mut b, mut union) = (
                Histogram::default(),
                Histogram::default(),
                Histogram::default(),
            );
            for &v in xs {
                a.observe(v);
                union.observe(v);
            }
            for &v in ys {
                b.observe(v);
                union.observe(v);
            }
            let mut s = a.summary();
            s.merge(&b.summary());
            assert_eq!(s, union.summary(), "union of {xs:?} and {ys:?}");
            // And the symmetric merge.
            let mut s = b.summary();
            s.merge(&a.summary());
            assert_eq!(s, union.summary(), "union of {ys:?} and {xs:?}");
        }
    }

    #[test]
    fn p999_tracks_the_deep_tail() {
        // 2000 fast observations and two slow ones: p99 stays in the fast
        // bucket while p99.9 lands on the tail — the gauge the many-core
        // contention sweep exists to expose.
        let mut h = Histogram::default();
        for _ in 0..2000 {
            h.observe(3);
        }
        h.observe(5000);
        h.observe(9000);
        let s = h.summary();
        assert_eq!(s.p99, 3);
        // Rank ceil(0.999×2002) = 2000 is still fast; 0.9995 would be the
        // first slow one. Use a slightly heavier tail to pin the split:
        let mut h = Histogram::default();
        for _ in 0..990 {
            h.observe(3);
        }
        for _ in 0..10 {
            h.observe(8000);
        }
        let s = h.summary();
        assert_eq!(s.p99, 3, "rank 990 of 1000 is still fast");
        assert_eq!(s.p999, 8000, "rank 999 of 1000 is in the tail");
        // Merge-safety: splitting the same observations across two
        // summaries re-derives the identical p999.
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        for i in 0..990 {
            if i % 2 == 0 {
                a.observe(3);
            } else {
                b.observe(3);
            }
        }
        for _ in 0..5 {
            a.observe(8000);
            b.observe(8000);
        }
        let mut m = a.summary();
        m.merge(&b.summary());
        assert_eq!(m, s);
    }

    #[test]
    fn registry_enabled_and_disabled() {
        let off = MetricsRegistry::disabled();
        off.inc("x");
        off.observe("h", 3);
        assert!(!off.is_enabled());
        assert!(off.snapshot().is_empty());

        let on = MetricsRegistry::enabled();
        let clone = on.clone();
        on.inc("x");
        clone.add("x", 2);
        on.observe("h", 3);
        assert_eq!(on.counter("x"), 3);
        assert_eq!(on.histogram("h").unwrap().count(), 1);
        let snap = on.snapshot();
        assert_eq!(snap.counters["x"], 3);
        assert_eq!(snap.histograms["h"].count, 1);
    }

    #[test]
    fn snapshot_merge_adds_counters_and_buckets() {
        let a = MetricsRegistry::enabled();
        a.inc("c");
        a.observe("h", 4);
        let b = MetricsRegistry::enabled();
        b.add("c", 4);
        b.inc("only_b");
        b.observe("h", 16);
        b.observe("g", 1);
        let mut snap = a.snapshot();
        snap.merge(&b.snapshot());
        assert_eq!(snap.counters["c"], 5);
        assert_eq!(snap.counters["only_b"], 1);
        assert_eq!(snap.histograms["h"].count, 2);
        assert_eq!(snap.histograms["h"].max, 16);
        assert_eq!(snap.histograms["g"].count, 1);
    }

    #[test]
    fn snapshot_serializes_to_json() {
        let r = MetricsRegistry::enabled();
        r.inc("flushes");
        r.observe("lat", 12);
        let json = serde_json::to_string(&r.snapshot()).unwrap();
        assert!(json.contains("\"flushes\""));
        assert!(json.contains("\"p95\""));
    }
}
