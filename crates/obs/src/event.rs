//! Structured, cycle-stamped trace events and the tracks they render on.

/// The agent (Perfetto thread track) an event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Track {
    /// The out-of-order core: retires, stall runs, squashes, cache misses.
    Cpu,
    /// The conditional store buffer: combining stores and flushes.
    Csb,
    /// The FIFO uncached buffer: pushes, coalesces, full stalls.
    Uncached,
    /// The local bus master: address/data occupancy per transaction.
    Bus,
    /// Foreign-master occupancy from the background-traffic model.
    Foreign,
}

impl Track {
    /// Every track, in display (tid) order.
    pub const ALL: [Track; 5] = [
        Track::Cpu,
        Track::Csb,
        Track::Uncached,
        Track::Bus,
        Track::Foreign,
    ];

    /// The Chrome-trace thread id this track exports as.
    pub fn tid(self) -> u32 {
        match self {
            Track::Cpu => 1,
            Track::Csb => 2,
            Track::Uncached => 3,
            Track::Bus => 4,
            Track::Foreign => 5,
        }
    }

    /// The human-readable track name shown in the Perfetto UI.
    pub fn name(self) -> &'static str {
        match self {
            Track::Cpu => "CPU pipeline",
            Track::Csb => "CSB",
            Track::Uncached => "Uncached buffer",
            Track::Bus => "Bus master",
            Track::Foreign => "Foreign traffic",
        }
    }
}

/// What happened. Every variant carries the machine state that makes the
/// event diagnosable on its own, without joining against other streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// An instruction retired (left the ROB head, in order).
    Retire {
        /// Program counter of the retired instruction.
        pc: usize,
        /// Disassembled instruction text.
        inst: String,
    },
    /// A run of consecutive cycles in which retirement stalled on an
    /// uncached operation (buffer full, CSB busy, flush not accepted).
    UncachedStallRun {
        /// Length of the run in CPU cycles.
        cycles: u64,
    },
    /// A run of consecutive cycles in which a `membar` at the ROB head
    /// waited for the uncached buffer to drain.
    MembarStallRun {
        /// Length of the run in CPU cycles.
        cycles: u64,
    },
    /// In-flight instructions were squashed.
    Squash {
        /// Number of ROB entries discarded.
        count: u64,
        /// Why: `"mispredict"` or `"context-switch"`.
        reason: &'static str,
    },
    /// A cached access missed the L1 (and possibly the L2).
    CacheMiss {
        /// Accessed address.
        addr: u64,
        /// Level that finally served it: `"L2"` or `"memory"`.
        level: &'static str,
    },
    /// The CSB accepted a combining store.
    CsbStore {
        /// Issuing process.
        pid: u32,
        /// Store address.
        addr: u64,
        /// Store width in bytes.
        width: usize,
        /// Hit counter after the store.
        count: u64,
        /// `true` if the store cleared and restarted the buffer (cold
        /// start or conflict) rather than merging.
        reset: bool,
    },
    /// The CSB refused a store while delivering a flushed line (the
    /// processor stalls and retries).
    CsbBusy {
        /// Store address that was refused.
        addr: u64,
    },
    /// A conditional flush was attempted.
    CsbFlushAttempt {
        /// Flushing process.
        pid: u32,
        /// Line address being committed.
        addr: u64,
        /// The store count the flush claims.
        expected: u64,
    },
    /// The outcome of the flush attempted this cycle.
    CsbFlushOutcome {
        /// `true` if the line was committed as a burst.
        success: bool,
        /// Payload bytes committed (0 on failure).
        payload: u64,
    },
    /// The uncached buffer accepted a store.
    UncachedPush {
        /// Store address.
        addr: u64,
        /// Store width in bytes.
        width: usize,
        /// `true` if it coalesced into a waiting entry.
        coalesced: bool,
    },
    /// The uncached buffer accepted a load (or the load half of a swap).
    UncachedLoad {
        /// Load address.
        addr: u64,
        /// Load width in bytes.
        width: usize,
    },
    /// The uncached buffer refused a store (full; the processor stalls).
    UncachedFull {
        /// Store address that was refused.
        addr: u64,
    },
    /// A local transaction occupied the bus (address + data cycles).
    BusTxn {
        /// Target address.
        addr: u64,
        /// Transfer size in bytes.
        size: usize,
        /// Meaningful payload bytes (≤ size).
        payload: usize,
        /// `true` for a write, `false` for a read.
        write: bool,
        /// Transaction tag (ROB sequence number for uncached loads/swaps).
        tag: u64,
    },
    /// A foreign master occupied the bus (fair-share background traffic).
    ForeignTxn {
        /// Foreign burst size in bytes.
        size: usize,
    },
    /// An injected bus transaction error: the slot was consumed but the
    /// transfer completed with an error status, so the master retries.
    BusFault {
        /// Target address of the errored transaction.
        addr: u64,
        /// Transfer size in bytes.
        size: usize,
    },
    /// An injected device busy/NACK: the bus carried the write but the
    /// device refused the payload, so the master retries.
    DeviceNack {
        /// Target address of the refused write.
        addr: u64,
    },
    /// An injected conditional-flush disturbance (forced flush failure,
    /// as if a competing access hit the buffered line).
    FlushDisturb {
        /// Line address whose flush was disturbed.
        addr: u64,
    },
    /// The attached NI assembled a complete message and launched it onto
    /// the wire.
    NicMessage {
        /// Sender id from the message header.
        sender: u16,
        /// Sequence number from the message header.
        seq: u16,
        /// Payload length in bytes.
        len: usize,
        /// Wire-model arrival cycle at the peer (CPU cycles).
        arrival: u64,
    },
    /// A new header landed in an NI slot whose previous message was still
    /// incomplete: the old frame is torn and lost.
    NicTornFrame {
        /// Window offset of the tearing header write.
        offset: u64,
    },
}

impl EventKind {
    /// Short dotted event name used in the trace export.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Retire { .. } => "retire",
            EventKind::UncachedStallRun { .. } => "stall.uncached",
            EventKind::MembarStallRun { .. } => "stall.membar",
            EventKind::Squash { .. } => "squash",
            EventKind::CacheMiss { .. } => "cache.miss",
            EventKind::CsbStore { .. } => "csb.store",
            EventKind::CsbBusy { .. } => "csb.busy",
            EventKind::CsbFlushAttempt { .. } => "csb.flush",
            EventKind::CsbFlushOutcome { .. } => "csb.flush.done",
            EventKind::UncachedPush { .. } => "uncached.push",
            EventKind::UncachedLoad { .. } => "uncached.load",
            EventKind::UncachedFull { .. } => "uncached.full",
            EventKind::BusTxn { write: true, .. } => "bus.write",
            EventKind::BusTxn { write: false, .. } => "bus.read",
            EventKind::ForeignTxn { .. } => "bus.foreign",
            EventKind::BusFault { .. } => "fault.bus",
            EventKind::DeviceNack { .. } => "fault.nack",
            EventKind::FlushDisturb { .. } => "fault.disturb",
            EventKind::NicMessage { .. } => "nic.msg",
            EventKind::NicTornFrame { .. } => "nic.torn",
        }
    }
}

/// One recorded event on the shared CPU-cycle timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// CPU cycle the event starts at.
    pub cycle: u64,
    /// Duration in CPU cycles; 0 renders as an instant.
    pub dur: u64,
    /// The agent this event belongs to.
    pub track: Track,
    /// What happened.
    pub kind: EventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_have_distinct_tids_and_names() {
        let mut tids: Vec<u32> = Track::ALL.iter().map(|t| t.tid()).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), Track::ALL.len());
        for t in Track::ALL {
            assert!(!t.name().is_empty());
        }
    }

    #[test]
    fn event_names_follow_read_write() {
        let w = EventKind::BusTxn {
            addr: 0,
            size: 8,
            payload: 8,
            write: true,
            tag: 0,
        };
        let r = EventKind::BusTxn {
            addr: 0,
            size: 8,
            payload: 8,
            write: false,
            tag: 0,
        };
        assert_eq!(w.name(), "bus.write");
        assert_eq!(r.name(), "bus.read");
    }
}
